file(REMOVE_RECURSE
  "CMakeFiles/evolution_analysis.dir/evolution_analysis.cpp.o"
  "CMakeFiles/evolution_analysis.dir/evolution_analysis.cpp.o.d"
  "evolution_analysis"
  "evolution_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolution_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
