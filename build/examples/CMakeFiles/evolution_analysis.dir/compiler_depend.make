# Empty compiler generated dependencies file for evolution_analysis.
# This may be replaced when dependencies are built.
