file(REMOVE_RECURSE
  "CMakeFiles/weight_tuning.dir/weight_tuning.cpp.o"
  "CMakeFiles/weight_tuning.dir/weight_tuning.cpp.o.d"
  "weight_tuning"
  "weight_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weight_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
