# Empty compiler generated dependencies file for weight_tuning.
# This may be replaced when dependencies are built.
