file(REMOVE_RECURSE
  "CMakeFiles/research_teams.dir/research_teams.cpp.o"
  "CMakeFiles/research_teams.dir/research_teams.cpp.o.d"
  "research_teams"
  "research_teams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/research_teams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
