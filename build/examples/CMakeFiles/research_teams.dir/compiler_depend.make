# Empty compiler generated dependencies file for research_teams.
# This may be replaced when dependencies are built.
