# Empty compiler generated dependencies file for table4_group_weights.
# This may be replaced when dependencies are built.
