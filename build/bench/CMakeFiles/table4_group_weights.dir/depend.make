# Empty dependencies file for table4_group_weights.
# This may be replaced when dependencies are built.
