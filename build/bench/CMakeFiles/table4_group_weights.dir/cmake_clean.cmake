file(REMOVE_RECURSE
  "CMakeFiles/table4_group_weights.dir/table4_group_weights.cpp.o"
  "CMakeFiles/table4_group_weights.dir/table4_group_weights.cpp.o.d"
  "table4_group_weights"
  "table4_group_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_group_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
