# Empty compiler generated dependencies file for table8_preserved_households.
# This may be replaced when dependencies are built.
