file(REMOVE_RECURSE
  "CMakeFiles/table8_preserved_households.dir/table8_preserved_households.cpp.o"
  "CMakeFiles/table8_preserved_households.dir/table8_preserved_households.cpp.o.d"
  "table8_preserved_households"
  "table8_preserved_households.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_preserved_households.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
