# Empty dependencies file for table6_collective.
# This may be replaced when dependencies are built.
