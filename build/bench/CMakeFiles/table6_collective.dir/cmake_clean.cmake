file(REMOVE_RECURSE
  "CMakeFiles/table6_collective.dir/table6_collective.cpp.o"
  "CMakeFiles/table6_collective.dir/table6_collective.cpp.o.d"
  "table6_collective"
  "table6_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
