# Empty dependencies file for blocking_comparison.
# This may be replaced when dependencies are built.
