file(REMOVE_RECURSE
  "CMakeFiles/blocking_comparison.dir/blocking_comparison.cpp.o"
  "CMakeFiles/blocking_comparison.dir/blocking_comparison.cpp.o.d"
  "blocking_comparison"
  "blocking_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
