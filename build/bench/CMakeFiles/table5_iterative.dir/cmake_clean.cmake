file(REMOVE_RECURSE
  "CMakeFiles/table5_iterative.dir/table5_iterative.cpp.o"
  "CMakeFiles/table5_iterative.dir/table5_iterative.cpp.o.d"
  "table5_iterative"
  "table5_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
