# Empty dependencies file for table5_iterative.
# This may be replaced when dependencies are built.
