# Empty compiler generated dependencies file for table3_prematching_weights.
# This may be replaced when dependencies are built.
