file(REMOVE_RECURSE
  "CMakeFiles/table3_prematching_weights.dir/table3_prematching_weights.cpp.o"
  "CMakeFiles/table3_prematching_weights.dir/table3_prematching_weights.cpp.o.d"
  "table3_prematching_weights"
  "table3_prematching_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_prematching_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
