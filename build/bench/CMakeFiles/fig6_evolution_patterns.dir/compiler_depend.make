# Empty compiler generated dependencies file for fig6_evolution_patterns.
# This may be replaced when dependencies are built.
