file(REMOVE_RECURSE
  "CMakeFiles/fig6_evolution_patterns.dir/fig6_evolution_patterns.cpp.o"
  "CMakeFiles/fig6_evolution_patterns.dir/fig6_evolution_patterns.cpp.o.d"
  "fig6_evolution_patterns"
  "fig6_evolution_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_evolution_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
