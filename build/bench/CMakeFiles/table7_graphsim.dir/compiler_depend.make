# Empty compiler generated dependencies file for table7_graphsim.
# This may be replaced when dependencies are built.
