file(REMOVE_RECURSE
  "CMakeFiles/table7_graphsim.dir/table7_graphsim.cpp.o"
  "CMakeFiles/table7_graphsim.dir/table7_graphsim.cpp.o.d"
  "table7_graphsim"
  "table7_graphsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_graphsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
