# Empty compiler generated dependencies file for tglink_cli.
# This may be replaced when dependencies are built.
