file(REMOVE_RECURSE
  "CMakeFiles/tglink_cli.dir/tglink_cli.cc.o"
  "CMakeFiles/tglink_cli.dir/tglink_cli.cc.o.d"
  "tglink_cli"
  "tglink_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tglink_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
