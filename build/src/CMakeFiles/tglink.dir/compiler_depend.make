# Empty compiler generated dependencies file for tglink.
# This may be replaced when dependencies are built.
