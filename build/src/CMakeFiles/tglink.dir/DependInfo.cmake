
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tglink/baselines/collective.cc" "src/CMakeFiles/tglink.dir/tglink/baselines/collective.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/baselines/collective.cc.o.d"
  "/root/repo/src/tglink/baselines/graphsim.cc" "src/CMakeFiles/tglink.dir/tglink/baselines/graphsim.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/baselines/graphsim.cc.o.d"
  "/root/repo/src/tglink/baselines/temporal_decay.cc" "src/CMakeFiles/tglink.dir/tglink/baselines/temporal_decay.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/baselines/temporal_decay.cc.o.d"
  "/root/repo/src/tglink/blocking/block_key.cc" "src/CMakeFiles/tglink.dir/tglink/blocking/block_key.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/blocking/block_key.cc.o.d"
  "/root/repo/src/tglink/blocking/blocking.cc" "src/CMakeFiles/tglink.dir/tglink/blocking/blocking.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/blocking/blocking.cc.o.d"
  "/root/repo/src/tglink/blocking/sorted_neighborhood.cc" "src/CMakeFiles/tglink.dir/tglink/blocking/sorted_neighborhood.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/blocking/sorted_neighborhood.cc.o.d"
  "/root/repo/src/tglink/census/dataset.cc" "src/CMakeFiles/tglink.dir/tglink/census/dataset.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/census/dataset.cc.o.d"
  "/root/repo/src/tglink/census/household.cc" "src/CMakeFiles/tglink.dir/tglink/census/household.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/census/household.cc.o.d"
  "/root/repo/src/tglink/census/io.cc" "src/CMakeFiles/tglink.dir/tglink/census/io.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/census/io.cc.o.d"
  "/root/repo/src/tglink/census/profile.cc" "src/CMakeFiles/tglink.dir/tglink/census/profile.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/census/profile.cc.o.d"
  "/root/repo/src/tglink/census/record.cc" "src/CMakeFiles/tglink.dir/tglink/census/record.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/census/record.cc.o.d"
  "/root/repo/src/tglink/census/roles.cc" "src/CMakeFiles/tglink.dir/tglink/census/roles.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/census/roles.cc.o.d"
  "/root/repo/src/tglink/eval/gold.cc" "src/CMakeFiles/tglink.dir/tglink/eval/gold.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/eval/gold.cc.o.d"
  "/root/repo/src/tglink/eval/metrics.cc" "src/CMakeFiles/tglink.dir/tglink/eval/metrics.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/eval/metrics.cc.o.d"
  "/root/repo/src/tglink/eval/report.cc" "src/CMakeFiles/tglink.dir/tglink/eval/report.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/eval/report.cc.o.d"
  "/root/repo/src/tglink/eval/tuner.cc" "src/CMakeFiles/tglink.dir/tglink/eval/tuner.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/eval/tuner.cc.o.d"
  "/root/repo/src/tglink/evolution/evolution_graph.cc" "src/CMakeFiles/tglink.dir/tglink/evolution/evolution_graph.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/evolution/evolution_graph.cc.o.d"
  "/root/repo/src/tglink/evolution/export.cc" "src/CMakeFiles/tglink.dir/tglink/evolution/export.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/evolution/export.cc.o.d"
  "/root/repo/src/tglink/evolution/patterns.cc" "src/CMakeFiles/tglink.dir/tglink/evolution/patterns.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/evolution/patterns.cc.o.d"
  "/root/repo/src/tglink/evolution/queries.cc" "src/CMakeFiles/tglink.dir/tglink/evolution/queries.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/evolution/queries.cc.o.d"
  "/root/repo/src/tglink/evolution/trajectories.cc" "src/CMakeFiles/tglink.dir/tglink/evolution/trajectories.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/evolution/trajectories.cc.o.d"
  "/root/repo/src/tglink/graph/enrichment.cc" "src/CMakeFiles/tglink.dir/tglink/graph/enrichment.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/graph/enrichment.cc.o.d"
  "/root/repo/src/tglink/graph/household_graph.cc" "src/CMakeFiles/tglink.dir/tglink/graph/household_graph.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/graph/household_graph.cc.o.d"
  "/root/repo/src/tglink/graph/union_find.cc" "src/CMakeFiles/tglink.dir/tglink/graph/union_find.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/graph/union_find.cc.o.d"
  "/root/repo/src/tglink/linkage/config.cc" "src/CMakeFiles/tglink.dir/tglink/linkage/config.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/linkage/config.cc.o.d"
  "/root/repo/src/tglink/linkage/explain.cc" "src/CMakeFiles/tglink.dir/tglink/linkage/explain.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/linkage/explain.cc.o.d"
  "/root/repo/src/tglink/linkage/iterative.cc" "src/CMakeFiles/tglink.dir/tglink/linkage/iterative.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/linkage/iterative.cc.o.d"
  "/root/repo/src/tglink/linkage/mapping.cc" "src/CMakeFiles/tglink.dir/tglink/linkage/mapping.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/linkage/mapping.cc.o.d"
  "/root/repo/src/tglink/linkage/prematching.cc" "src/CMakeFiles/tglink.dir/tglink/linkage/prematching.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/linkage/prematching.cc.o.d"
  "/root/repo/src/tglink/linkage/residual.cc" "src/CMakeFiles/tglink.dir/tglink/linkage/residual.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/linkage/residual.cc.o.d"
  "/root/repo/src/tglink/linkage/result_io.cc" "src/CMakeFiles/tglink.dir/tglink/linkage/result_io.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/linkage/result_io.cc.o.d"
  "/root/repo/src/tglink/linkage/selection.cc" "src/CMakeFiles/tglink.dir/tglink/linkage/selection.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/linkage/selection.cc.o.d"
  "/root/repo/src/tglink/linkage/series.cc" "src/CMakeFiles/tglink.dir/tglink/linkage/series.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/linkage/series.cc.o.d"
  "/root/repo/src/tglink/linkage/subgraph.cc" "src/CMakeFiles/tglink.dir/tglink/linkage/subgraph.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/linkage/subgraph.cc.o.d"
  "/root/repo/src/tglink/linkage/subgraph_export.cc" "src/CMakeFiles/tglink.dir/tglink/linkage/subgraph_export.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/linkage/subgraph_export.cc.o.d"
  "/root/repo/src/tglink/similarity/alignment.cc" "src/CMakeFiles/tglink.dir/tglink/similarity/alignment.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/similarity/alignment.cc.o.d"
  "/root/repo/src/tglink/similarity/composite.cc" "src/CMakeFiles/tglink.dir/tglink/similarity/composite.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/similarity/composite.cc.o.d"
  "/root/repo/src/tglink/similarity/double_metaphone.cc" "src/CMakeFiles/tglink.dir/tglink/similarity/double_metaphone.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/similarity/double_metaphone.cc.o.d"
  "/root/repo/src/tglink/similarity/edit_distance.cc" "src/CMakeFiles/tglink.dir/tglink/similarity/edit_distance.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/similarity/edit_distance.cc.o.d"
  "/root/repo/src/tglink/similarity/field_similarity.cc" "src/CMakeFiles/tglink.dir/tglink/similarity/field_similarity.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/similarity/field_similarity.cc.o.d"
  "/root/repo/src/tglink/similarity/jaro.cc" "src/CMakeFiles/tglink.dir/tglink/similarity/jaro.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/similarity/jaro.cc.o.d"
  "/root/repo/src/tglink/similarity/numeric.cc" "src/CMakeFiles/tglink.dir/tglink/similarity/numeric.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/similarity/numeric.cc.o.d"
  "/root/repo/src/tglink/similarity/phonetic.cc" "src/CMakeFiles/tglink.dir/tglink/similarity/phonetic.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/similarity/phonetic.cc.o.d"
  "/root/repo/src/tglink/similarity/qgram.cc" "src/CMakeFiles/tglink.dir/tglink/similarity/qgram.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/similarity/qgram.cc.o.d"
  "/root/repo/src/tglink/similarity/token.cc" "src/CMakeFiles/tglink.dir/tglink/similarity/token.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/similarity/token.cc.o.d"
  "/root/repo/src/tglink/synth/corruption.cc" "src/CMakeFiles/tglink.dir/tglink/synth/corruption.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/synth/corruption.cc.o.d"
  "/root/repo/src/tglink/synth/generator.cc" "src/CMakeFiles/tglink.dir/tglink/synth/generator.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/synth/generator.cc.o.d"
  "/root/repo/src/tglink/synth/name_pools.cc" "src/CMakeFiles/tglink.dir/tglink/synth/name_pools.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/synth/name_pools.cc.o.d"
  "/root/repo/src/tglink/synth/population.cc" "src/CMakeFiles/tglink.dir/tglink/synth/population.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/synth/population.cc.o.d"
  "/root/repo/src/tglink/synth/presets.cc" "src/CMakeFiles/tglink.dir/tglink/synth/presets.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/synth/presets.cc.o.d"
  "/root/repo/src/tglink/util/csv.cc" "src/CMakeFiles/tglink.dir/tglink/util/csv.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/util/csv.cc.o.d"
  "/root/repo/src/tglink/util/logging.cc" "src/CMakeFiles/tglink.dir/tglink/util/logging.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/util/logging.cc.o.d"
  "/root/repo/src/tglink/util/random.cc" "src/CMakeFiles/tglink.dir/tglink/util/random.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/util/random.cc.o.d"
  "/root/repo/src/tglink/util/status.cc" "src/CMakeFiles/tglink.dir/tglink/util/status.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/util/status.cc.o.d"
  "/root/repo/src/tglink/util/strings.cc" "src/CMakeFiles/tglink.dir/tglink/util/strings.cc.o" "gcc" "src/CMakeFiles/tglink.dir/tglink/util/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
