file(REMOVE_RECURSE
  "libtglink.a"
)
