# Empty dependencies file for sorted_neighborhood_test.
# This may be replaced when dependencies are built.
