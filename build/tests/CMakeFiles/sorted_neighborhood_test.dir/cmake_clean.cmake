file(REMOVE_RECURSE
  "CMakeFiles/sorted_neighborhood_test.dir/sorted_neighborhood_test.cc.o"
  "CMakeFiles/sorted_neighborhood_test.dir/sorted_neighborhood_test.cc.o.d"
  "sorted_neighborhood_test"
  "sorted_neighborhood_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorted_neighborhood_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
