# Empty compiler generated dependencies file for phonetic_test.
# This may be replaced when dependencies are built.
