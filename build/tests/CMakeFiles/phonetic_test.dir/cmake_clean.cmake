file(REMOVE_RECURSE
  "CMakeFiles/phonetic_test.dir/phonetic_test.cc.o"
  "CMakeFiles/phonetic_test.dir/phonetic_test.cc.o.d"
  "phonetic_test"
  "phonetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phonetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
