# Empty dependencies file for verified_protocol_test.
# This may be replaced when dependencies are built.
