file(REMOVE_RECURSE
  "CMakeFiles/verified_protocol_test.dir/verified_protocol_test.cc.o"
  "CMakeFiles/verified_protocol_test.dir/verified_protocol_test.cc.o.d"
  "verified_protocol_test"
  "verified_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
