file(REMOVE_RECURSE
  "CMakeFiles/residual_test.dir/residual_test.cc.o"
  "CMakeFiles/residual_test.dir/residual_test.cc.o.d"
  "residual_test"
  "residual_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/residual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
