# Empty dependencies file for residual_test.
# This may be replaced when dependencies are built.
