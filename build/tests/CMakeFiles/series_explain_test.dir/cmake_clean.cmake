file(REMOVE_RECURSE
  "CMakeFiles/series_explain_test.dir/series_explain_test.cc.o"
  "CMakeFiles/series_explain_test.dir/series_explain_test.cc.o.d"
  "series_explain_test"
  "series_explain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/series_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
