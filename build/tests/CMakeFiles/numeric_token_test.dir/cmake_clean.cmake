file(REMOVE_RECURSE
  "CMakeFiles/numeric_token_test.dir/numeric_token_test.cc.o"
  "CMakeFiles/numeric_token_test.dir/numeric_token_test.cc.o.d"
  "numeric_token_test"
  "numeric_token_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_token_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
