# Empty dependencies file for numeric_token_test.
# This may be replaced when dependencies are built.
