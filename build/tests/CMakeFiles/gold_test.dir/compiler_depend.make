# Empty compiler generated dependencies file for gold_test.
# This may be replaced when dependencies are built.
