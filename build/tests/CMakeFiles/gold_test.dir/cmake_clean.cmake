file(REMOVE_RECURSE
  "CMakeFiles/gold_test.dir/gold_test.cc.o"
  "CMakeFiles/gold_test.dir/gold_test.cc.o.d"
  "gold_test"
  "gold_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
