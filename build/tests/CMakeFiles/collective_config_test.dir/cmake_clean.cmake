file(REMOVE_RECURSE
  "CMakeFiles/collective_config_test.dir/collective_config_test.cc.o"
  "CMakeFiles/collective_config_test.dir/collective_config_test.cc.o.d"
  "collective_config_test"
  "collective_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
