# Empty compiler generated dependencies file for collective_config_test.
# This may be replaced when dependencies are built.
