# Empty dependencies file for presets_test.
# This may be replaced when dependencies are built.
