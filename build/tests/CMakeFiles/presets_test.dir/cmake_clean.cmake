file(REMOVE_RECURSE
  "CMakeFiles/presets_test.dir/presets_test.cc.o"
  "CMakeFiles/presets_test.dir/presets_test.cc.o.d"
  "presets_test"
  "presets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
