# Empty dependencies file for export_trajectories_test.
# This may be replaced when dependencies are built.
