file(REMOVE_RECURSE
  "CMakeFiles/export_trajectories_test.dir/export_trajectories_test.cc.o"
  "CMakeFiles/export_trajectories_test.dir/export_trajectories_test.cc.o.d"
  "export_trajectories_test"
  "export_trajectories_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_trajectories_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
