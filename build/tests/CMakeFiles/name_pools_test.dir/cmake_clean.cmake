file(REMOVE_RECURSE
  "CMakeFiles/name_pools_test.dir/name_pools_test.cc.o"
  "CMakeFiles/name_pools_test.dir/name_pools_test.cc.o.d"
  "name_pools_test"
  "name_pools_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_pools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
