# Empty dependencies file for name_pools_test.
# This may be replaced when dependencies are built.
