# Empty dependencies file for evolution_graph_test.
# This may be replaced when dependencies are built.
