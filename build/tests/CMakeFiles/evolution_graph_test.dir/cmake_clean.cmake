file(REMOVE_RECURSE
  "CMakeFiles/evolution_graph_test.dir/evolution_graph_test.cc.o"
  "CMakeFiles/evolution_graph_test.dir/evolution_graph_test.cc.o.d"
  "evolution_graph_test"
  "evolution_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolution_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
