file(REMOVE_RECURSE
  "CMakeFiles/temporal_decay_test.dir/temporal_decay_test.cc.o"
  "CMakeFiles/temporal_decay_test.dir/temporal_decay_test.cc.o.d"
  "temporal_decay_test"
  "temporal_decay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_decay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
