# Empty dependencies file for temporal_decay_test.
# This may be replaced when dependencies are built.
