file(REMOVE_RECURSE
  "CMakeFiles/measure_properties_test.dir/measure_properties_test.cc.o"
  "CMakeFiles/measure_properties_test.dir/measure_properties_test.cc.o.d"
  "measure_properties_test"
  "measure_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
