# Empty compiler generated dependencies file for double_metaphone_test.
# This may be replaced when dependencies are built.
