file(REMOVE_RECURSE
  "CMakeFiles/double_metaphone_test.dir/double_metaphone_test.cc.o"
  "CMakeFiles/double_metaphone_test.dir/double_metaphone_test.cc.o.d"
  "double_metaphone_test"
  "double_metaphone_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_metaphone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
