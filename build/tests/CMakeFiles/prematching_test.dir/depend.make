# Empty dependencies file for prematching_test.
# This may be replaced when dependencies are built.
