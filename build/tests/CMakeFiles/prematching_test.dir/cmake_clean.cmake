file(REMOVE_RECURSE
  "CMakeFiles/prematching_test.dir/prematching_test.cc.o"
  "CMakeFiles/prematching_test.dir/prematching_test.cc.o.d"
  "prematching_test"
  "prematching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prematching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
