file(REMOVE_RECURSE
  "CMakeFiles/enrichment_test.dir/enrichment_test.cc.o"
  "CMakeFiles/enrichment_test.dir/enrichment_test.cc.o.d"
  "enrichment_test"
  "enrichment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enrichment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
