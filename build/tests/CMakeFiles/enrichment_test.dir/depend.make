# Empty dependencies file for enrichment_test.
# This may be replaced when dependencies are built.
