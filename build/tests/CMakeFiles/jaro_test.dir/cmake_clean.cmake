file(REMOVE_RECURSE
  "CMakeFiles/jaro_test.dir/jaro_test.cc.o"
  "CMakeFiles/jaro_test.dir/jaro_test.cc.o.d"
  "jaro_test"
  "jaro_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
