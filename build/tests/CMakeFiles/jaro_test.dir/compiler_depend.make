# Empty compiler generated dependencies file for jaro_test.
# This may be replaced when dependencies are built.
