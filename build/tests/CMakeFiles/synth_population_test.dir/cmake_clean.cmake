file(REMOVE_RECURSE
  "CMakeFiles/synth_population_test.dir/synth_population_test.cc.o"
  "CMakeFiles/synth_population_test.dir/synth_population_test.cc.o.d"
  "synth_population_test"
  "synth_population_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_population_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
