# Empty compiler generated dependencies file for synth_population_test.
# This may be replaced when dependencies are built.
