file(REMOVE_RECURSE
  "CMakeFiles/linkage_properties_test.dir/linkage_properties_test.cc.o"
  "CMakeFiles/linkage_properties_test.dir/linkage_properties_test.cc.o.d"
  "linkage_properties_test"
  "linkage_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkage_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
