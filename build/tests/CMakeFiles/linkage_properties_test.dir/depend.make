# Empty dependencies file for linkage_properties_test.
# This may be replaced when dependencies are built.
