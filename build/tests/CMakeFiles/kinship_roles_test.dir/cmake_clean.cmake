file(REMOVE_RECURSE
  "CMakeFiles/kinship_roles_test.dir/kinship_roles_test.cc.o"
  "CMakeFiles/kinship_roles_test.dir/kinship_roles_test.cc.o.d"
  "kinship_roles_test"
  "kinship_roles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kinship_roles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
