# Empty dependencies file for kinship_roles_test.
# This may be replaced when dependencies are built.
