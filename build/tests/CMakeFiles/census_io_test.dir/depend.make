# Empty dependencies file for census_io_test.
# This may be replaced when dependencies are built.
