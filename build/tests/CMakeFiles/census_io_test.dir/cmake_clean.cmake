file(REMOVE_RECURSE
  "CMakeFiles/census_io_test.dir/census_io_test.cc.o"
  "CMakeFiles/census_io_test.dir/census_io_test.cc.o.d"
  "census_io_test"
  "census_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
