// The annotation layer must be free: under any compiler the wrappers add
// no state over the std primitives they forward to, and under non-Clang
// compilers the annotation macros must expand to *nothing* — not even a
// token — so a GCC release build of annotated headers is byte-for-byte the
// unannotated program. The functional cases then prove the wrappers behave
// like the primitives they replace (lock exclusion, reader concurrency,
// condition-variable handoff), so migrating a subsystem onto them is purely
// a static-analysis change.

#include "tglink/util/thread_annotations.h"

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tglink {
namespace {

// --- zero-cost: no size overhead over the std primitives -------------------

static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "Mutex must add no state over std::mutex");
static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex),
              "SharedMutex must add no state over std::shared_mutex");
static_assert(sizeof(MutexLock) == sizeof(Mutex*),
              "MutexLock must hold exactly the mutex reference");
static_assert(sizeof(ReaderMutexLock) == sizeof(SharedMutex*),
              "ReaderMutexLock must hold exactly the mutex reference");
static_assert(sizeof(WriterMutexLock) == sizeof(SharedMutex*),
              "WriterMutexLock must hold exactly the mutex reference");

// --- zero-cost: macros vanish entirely on non-Clang compilers --------------

#ifndef __clang__
#define TGLINK_TA_STR_INNER(x) #x
#define TGLINK_TA_STR(x) TGLINK_TA_STR_INNER(x)
// Stringizing an empty expansion yields "", i.e. a 1-byte literal. Any
// leftover token — an attribute, a keyword, even a stray space-producing
// macro — would grow the literal and fail the assert.
static_assert(sizeof(TGLINK_TA_STR(TGLINK_GUARDED_BY(mu))) == 1,
              "TGLINK_GUARDED_BY must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_PT_GUARDED_BY(mu))) == 1,
              "TGLINK_PT_GUARDED_BY must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_REQUIRES(mu))) == 1,
              "TGLINK_REQUIRES must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_REQUIRES_SHARED(mu))) == 1,
              "TGLINK_REQUIRES_SHARED must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_ACQUIRE(mu))) == 1,
              "TGLINK_ACQUIRE must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_ACQUIRE_SHARED(mu))) == 1,
              "TGLINK_ACQUIRE_SHARED must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_RELEASE(mu))) == 1,
              "TGLINK_RELEASE must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_RELEASE_SHARED(mu))) == 1,
              "TGLINK_RELEASE_SHARED must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_TRY_ACQUIRE(true, mu))) == 1,
              "TGLINK_TRY_ACQUIRE must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_EXCLUDES(mu))) == 1,
              "TGLINK_EXCLUDES must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_CAPABILITY("mutex"))) == 1,
              "TGLINK_CAPABILITY must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_SCOPED_CAPABILITY)) == 1,
              "TGLINK_SCOPED_CAPABILITY must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_RETURN_CAPABILITY(mu))) == 1,
              "TGLINK_RETURN_CAPABILITY must expand to nothing under GCC");
static_assert(sizeof(TGLINK_TA_STR(TGLINK_NO_THREAD_SAFETY_ANALYSIS)) == 1,
              "TGLINK_NO_THREAD_SAFETY_ANALYSIS must expand to nothing");
#undef TGLINK_TA_STR
#undef TGLINK_TA_STR_INNER
#endif  // !__clang__

// --- functional: the wrappers behave like the primitives -------------------

TEST(ThreadAnnotationsTest, MutexLockExcludesConcurrentWriters) {
  Mutex mu;
  int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIterations = 25000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIterations; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIterations);
}

TEST(ThreadAnnotationsTest, TryLockReportsContention) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(ThreadAnnotationsTest, SharedMutexAdmitsParallelReaders) {
  SharedMutex mu;
  std::atomic<int> readers_inside{0};
  std::atomic<int> peak_readers{0};
  std::atomic<bool> go{false};
  constexpr int kReaders = 4;
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) {
      }
      ReaderMutexLock lock(mu);
      const int inside = readers_inside.fetch_add(1) + 1;
      int peak = peak_readers.load();
      while (inside > peak && !peak_readers.compare_exchange_weak(peak, inside)) {
      }
      // Linger long enough that overlapping holds are overwhelmingly
      // likely; correctness does not depend on the overlap (see below).
      for (volatile int spin = 0; spin < 50000; ++spin) {
      }
      readers_inside.fetch_sub(1);
    });
  }
  go.store(true);
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(readers_inside.load(), 0);
  // At minimum the locks all completed; on any real scheduler several
  // readers overlapped. Single-core schedulers may serialize legitimately,
  // so assert only that sharing never produced mutual exclusion deadlock
  // and that at least one reader ran.
  EXPECT_GE(peak_readers.load(), 1);
}

TEST(ThreadAnnotationsTest, WriterMutexLockIsExclusive) {
  SharedMutex mu;
  int64_t value = 0;
  constexpr int kThreads = 4;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &value] {
      for (int i = 0; i < kIterations; ++i) {
        WriterMutexLock lock(mu);
        ++value;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(value, static_cast<int64_t>(kThreads) * kIterations);
}

TEST(ThreadAnnotationsTest, CondVarHandsOffUnderMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool consumed = false;
  std::thread consumer([&] {
    mu.Lock();
    while (!ready) cv.Wait(mu);
    consumed = true;
    mu.Unlock();
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  {
    mu.Lock();
    while (!consumed) cv.Wait(mu);
    mu.Unlock();
  }
  consumer.join();
  EXPECT_TRUE(consumed);
}

}  // namespace
}  // namespace tglink
