#include "tglink/census/io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "tests/paper_example.h"

namespace tglink {
namespace {

TEST(CensusIoTest, CsvRoundTripPreservesEverything) {
  const CensusDataset original = testing_example::MakeCensus1871();
  const std::string csv = DatasetToCsv(original);
  auto loaded = DatasetFromCsv(csv, 1871);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const CensusDataset& d = loaded.value();
  ASSERT_EQ(d.num_records(), original.num_records());
  ASSERT_EQ(d.num_households(), original.num_households());
  for (RecordId r = 0; r < d.num_records(); ++r) {
    const PersonRecord& a = original.record(r);
    const PersonRecord& b = d.record(r);
    EXPECT_EQ(a.external_id, b.external_id);
    EXPECT_EQ(a.first_name, b.first_name);
    EXPECT_EQ(a.surname, b.surname);
    EXPECT_EQ(a.sex, b.sex);
    EXPECT_EQ(a.age, b.age);
    EXPECT_EQ(a.role, b.role);
    EXPECT_EQ(a.address, b.address);
    EXPECT_EQ(a.occupation, b.occupation);
    EXPECT_EQ(a.group, b.group);
  }
  for (GroupId g = 0; g < d.num_households(); ++g) {
    EXPECT_EQ(d.household(g).external_id, original.household(g).external_id);
    EXPECT_EQ(d.household(g).members, original.household(g).members);
  }
}

TEST(CensusIoTest, NormalizesRawValuesOnLoad) {
  const std::string csv =
      "record_id,household_id,first_name,surname,sex,age,role,address,"
      "occupation\n"
      "r1,h1,John,O'Brien,M,39,head,\"12, Mill St.\",Cotton Weaver\n";
  auto loaded = DatasetFromCsv(csv, 1871);
  ASSERT_TRUE(loaded.ok());
  const PersonRecord& r = loaded.value().record(0);
  EXPECT_EQ(r.first_name, "john");
  EXPECT_EQ(r.surname, "o brien");
  EXPECT_EQ(r.address, "12 mill st");
  EXPECT_EQ(r.occupation, "cotton weaver");
  EXPECT_EQ(r.sex, Sex::kMale);
}

TEST(CensusIoTest, MissingPlaceholdersBecomeEmpty) {
  const std::string csv =
      "record_id,household_id,first_name,surname,sex,age,role,address,"
      "occupation\n"
      "r1,h1,john,smith,m,-,head,unknown,n/a\n";
  auto loaded = DatasetFromCsv(csv, 1871);
  ASSERT_TRUE(loaded.ok());
  const PersonRecord& r = loaded.value().record(0);
  EXPECT_FALSE(r.has_age());
  EXPECT_TRUE(r.address.empty());
  EXPECT_TRUE(r.occupation.empty());
}

TEST(CensusIoTest, RejectsBadHeader) {
  EXPECT_FALSE(DatasetFromCsv("a,b,c\n1,2,3\n", 1871).ok());
  EXPECT_FALSE(DatasetFromCsv("", 1871).ok());
}

TEST(CensusIoTest, RejectsWrongArity) {
  const std::string csv =
      "record_id,household_id,first_name,surname,sex,age,role,address,"
      "occupation\n"
      "r1,h1,john\n";
  EXPECT_FALSE(DatasetFromCsv(csv, 1871).ok());
}

TEST(CensusIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tglink_census.csv";
  const CensusDataset original = testing_example::MakeCensus1881();
  ASSERT_TRUE(SaveDataset(original, path).ok());
  auto loaded = LoadDataset(path, 1881);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_records(), original.num_records());
  EXPECT_EQ(loaded.value().num_households(), original.num_households());
  std::remove(path.c_str());
}

TEST(CensusIoTest, HouseholdsReassembledFromInterleavedRows) {
  const std::string csv =
      "record_id,household_id,first_name,surname,sex,age,role,address,"
      "occupation\n"
      "r1,h1,a,x,m,30,head,,\n"
      "r2,h2,b,y,m,40,head,,\n"
      "r3,h1,c,x,f,28,wife,,\n";
  auto loaded = DatasetFromCsv(csv, 1871);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().num_households(), 2u);
  EXPECT_EQ(loaded.value().household(0).members.size(), 2u);  // h1 first seen
  EXPECT_EQ(loaded.value().household(1).members.size(), 1u);
}

}  // namespace
}  // namespace tglink
