#include "tglink/eval/tuner.h"

#include <gtest/gtest.h>

#include "tglink/linkage/config.h"
#include "tglink/synth/generator.h"

namespace tglink {
namespace {

struct TunerFixture {
  SyntheticPair pair;
  ResolvedGold gold;

  TunerFixture() {
    GeneratorConfig gen;
    gen.seed = 77;
    gen.scale = 0.04;
    gen.num_censuses = 2;
    pair = GenerateCensusPair(gen, 0);
    gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset).value();
  }
};

TEST(TunerTest, ObjectiveIsInUnitRangeAndSane) {
  TunerFixture fx;
  const double f = GreedyMatchObjective(fx.pair.old_dataset,
                                        fx.pair.new_dataset, fx.gold,
                                        configs::Omega2(), 0.7,
                                        BlockingConfig::MakeDefault());
  EXPECT_GT(f, 0.5);  // ω2 at 0.7 is a solid matcher already
  EXPECT_LE(f, 1.0);
}

TEST(TunerTest, NeverWorseThanInitial) {
  TunerFixture fx;
  TunerConfig config;
  config.max_rounds = 2;
  const TunerResult result =
      TuneAttributeWeights(fx.pair.old_dataset, fx.pair.new_dataset, fx.gold,
                           configs::Omega2(), config);
  EXPECT_GE(result.tuned_f, result.initial_f);
  EXPECT_GT(result.evaluations, 1u);
}

TEST(TunerTest, ImprovesDeliberatelyBadWeights) {
  TunerFixture fx;
  // Start from a pathological ω: almost all weight on the volatile
  // occupation attribute.
  SimilarityFunction bad(
      {
          {Field::kFirstName, Measure::kQGramDice, 0.05},
          {Field::kSex, Measure::kExact, 0.05},
          {Field::kSurname, Measure::kQGramDice, 0.05},
          {Field::kAddress, Measure::kQGramDice, 0.05},
          {Field::kOccupation, Measure::kQGramDice, 0.8},
      },
      0.7);
  TunerConfig config;
  config.max_rounds = 6;
  const TunerResult result = TuneAttributeWeights(
      fx.pair.old_dataset, fx.pair.new_dataset, fx.gold, bad, config);
  EXPECT_GT(result.tuned_f, result.initial_f + 0.05)
      << "coordinate ascent failed to escape the bad start: "
      << result.initial_f << " -> " << result.tuned_f;
  // The tuned function keeps the spec structure (fields + measures).
  ASSERT_EQ(result.tuned.specs().size(), bad.specs().size());
  for (size_t i = 0; i < bad.specs().size(); ++i) {
    EXPECT_EQ(result.tuned.specs()[i].field, bad.specs()[i].field);
    EXPECT_EQ(result.tuned.specs()[i].measure, bad.specs()[i].measure);
  }
  // Weights stay normalized.
  double total = 0.0;
  for (const AttributeSpec& spec : result.tuned.specs()) total += spec.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TunerTest, Deterministic) {
  TunerFixture fx;
  TunerConfig config;
  config.max_rounds = 1;
  const TunerResult a = TuneAttributeWeights(
      fx.pair.old_dataset, fx.pair.new_dataset, fx.gold, configs::Omega1(),
      config);
  const TunerResult b = TuneAttributeWeights(
      fx.pair.old_dataset, fx.pair.new_dataset, fx.gold, configs::Omega1(),
      config);
  EXPECT_DOUBLE_EQ(a.tuned_f, b.tuned_f);
  for (size_t i = 0; i < a.tuned.specs().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tuned.specs()[i].weight, b.tuned.specs()[i].weight);
  }
}

}  // namespace
}  // namespace tglink
