#include "tglink/similarity/composite.h"

#include <gtest/gtest.h>

#include "tglink/linkage/config.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using testing_example::MakeRecord;

PersonRecord Base() {
  return MakeRecord("x", "john", "ashworth", Sex::kMale, 39, Role::kHead,
                    "12 mill street", "cotton weaver");
}

TEST(CompositeTest, IdenticalRecordsScoreOne) {
  const SimilarityFunction f = configs::Omega2();
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(Base(), Base()), 1.0);
  EXPECT_TRUE(f.Matches(Base(), Base()));
}

TEST(CompositeTest, WeightedSumMatchesHandComputation) {
  // Two attributes, hand-checkable: fn exact (weight .6), sex exact (.4).
  SimilarityFunction f(
      {
          {Field::kFirstName, Measure::kExact, 0.6},
          {Field::kSex, Measure::kExact, 0.4},
      },
      0.5);
  PersonRecord a = Base();
  PersonRecord b = Base();
  b.first_name = "james";
  // fn differs (0), sex equal (1): 0.6*0 + 0.4*1 = 0.4.
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 0.4);
  EXPECT_FALSE(f.Matches(a, b));
}

TEST(CompositeTest, CompareReturnsPerAttributeVector) {
  const SimilarityFunction f = configs::Omega2();
  PersonRecord a = Base();
  PersonRecord b = Base();
  b.surname = "ashword";
  const std::vector<double> sims = f.Compare(a, b);
  ASSERT_EQ(sims.size(), 5u);
  EXPECT_DOUBLE_EQ(sims[0], 1.0);            // first name
  EXPECT_DOUBLE_EQ(sims[1], 1.0);            // sex
  EXPECT_GT(sims[2], 0.5);                   // surname: close but < 1
  EXPECT_LT(sims[2], 1.0);
}

TEST(CompositeTest, CompareEncodesMissingValuesPerPolicy) {
  // Compare() reports missing components with per-policy sentinels: -1
  // (both missing, kRedistribute), 0 (kZero / one-sided), 0.5 (kNeutral) —
  // the vector is what the attribute-weight tuner consumes.
  SimilarityFunction f(
      {
          {Field::kFirstName, Measure::kExact, 0.5},
          {Field::kOccupation, Measure::kExact, 0.3},
          {Field::kAge, Measure::kExact, 0.2},
      },
      0.5);
  PersonRecord a = Base();
  PersonRecord b = Base();
  a.occupation.clear();
  b.occupation.clear();
  b.age = -1;  // one-sided missing age

  f.set_missing_policy(MissingPolicy::kRedistribute);
  std::vector<double> sims = f.Compare(a, b);
  ASSERT_EQ(sims.size(), 3u);
  EXPECT_DOUBLE_EQ(sims[0], 1.0);
  EXPECT_DOUBLE_EQ(sims[1], -1.0);  // both missing: excluded sentinel
  EXPECT_DOUBLE_EQ(sims[2], 0.0);   // one-sided: weak disagreement

  f.set_missing_policy(MissingPolicy::kZero);
  sims = f.Compare(a, b);
  EXPECT_DOUBLE_EQ(sims[1], 0.0);
  EXPECT_DOUBLE_EQ(sims[2], 0.0);

  f.set_missing_policy(MissingPolicy::kNeutral);
  sims = f.Compare(a, b);
  EXPECT_DOUBLE_EQ(sims[1], 0.5);
  EXPECT_DOUBLE_EQ(sims[2], 0.5);
}

TEST(CompositeTest, ConstructorRejectsInvalidSpecs) {
  EXPECT_DEATH(SimilarityFunction({}, 0.5), "at least one attribute");
  EXPECT_DEATH(
      SimilarityFunction({{Field::kFirstName, Measure::kExact, -0.1}}, 0.5),
      "negative weight");
}

TEST(CompositeTest, MissingPolicyRedistributeBothMissing) {
  SimilarityFunction f(
      {
          {Field::kFirstName, Measure::kExact, 0.6},
          {Field::kOccupation, Measure::kExact, 0.4},
      },
      0.5);
  f.set_missing_policy(MissingPolicy::kRedistribute);
  PersonRecord a = Base();
  PersonRecord b = Base();
  a.occupation.clear();
  b.occupation.clear();  // missing on BOTH sides: no evidence, excluded
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 1.0);
}

TEST(CompositeTest, MissingPolicyRedistributeOneSidedPenalizes) {
  SimilarityFunction f(
      {
          {Field::kFirstName, Measure::kExact, 0.6},
          {Field::kOccupation, Measure::kExact, 0.4},
      },
      0.5);
  PersonRecord a = Base();
  PersonRecord b = Base();
  b.occupation.clear();  // missing on ONE side: weak disagreement
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 0.6);
}

TEST(CompositeTest, CoverageFloorRejectsSparsePairs) {
  // Two records that only share first name + sex must not score high just
  // because everything else is unrecorded on both sides.
  const SimilarityFunction f = configs::Omega2();
  PersonRecord a = Base();
  PersonRecord b = Base();
  for (PersonRecord* r : {&a, &b}) {
    r->surname.clear();
    r->address.clear();
    r->occupation.clear();
  }
  // Covered weight = fn (0.4) + sex (0.2) = 0.6 >= 0.5: still accepted...
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 1.0);
  a.sex = Sex::kUnknown;
  b.sex = Sex::kUnknown;
  // ...but with sex also gone, coverage 0.4 < 0.5: rejected outright.
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 0.0);
}

TEST(CompositeTest, MissingPolicyZero) {
  SimilarityFunction f(
      {
          {Field::kFirstName, Measure::kExact, 0.5},
          {Field::kOccupation, Measure::kExact, 0.5},
      },
      0.5);
  f.set_missing_policy(MissingPolicy::kZero);
  PersonRecord a = Base();
  PersonRecord b = Base();
  b.occupation.clear();
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 0.5);
}

TEST(CompositeTest, MissingPolicyNeutral) {
  SimilarityFunction f(
      {
          {Field::kFirstName, Measure::kExact, 0.5},
          {Field::kOccupation, Measure::kExact, 0.5},
      },
      0.5);
  f.set_missing_policy(MissingPolicy::kNeutral);
  PersonRecord a = Base();
  PersonRecord b = Base();
  b.occupation.clear();
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 0.75);
}

TEST(CompositeTest, AllAttributesMissingScoresZero) {
  SimilarityFunction f({{Field::kOccupation, Measure::kExact, 1.0}}, 0.5);
  PersonRecord a = Base();
  PersonRecord b = Base();
  a.occupation.clear();
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 0.0);  // one-sided: penalized
  b.occupation.clear();
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 0.0);  // both: no coverage
}

TEST(CompositeTest, AgeComponentUsesYearGap) {
  SimilarityFunction f({{Field::kAge, Measure::kExact, 1.0}}, 0.5);
  f.set_year_gap(10);
  PersonRecord a = Base();  // 39
  PersonRecord b = Base();
  b.age = 49;
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 1.0);
  b.age = 39;  // did not age: far outside tolerance
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 0.0);
}

TEST(CompositeTest, UnknownSexOneSidedIsWeakDisagreement) {
  const SimilarityFunction f = configs::Omega2();
  PersonRecord a = Base();
  PersonRecord b = Base();
  b.sex = Sex::kUnknown;  // one-sided: the 0.2 sex weight scores 0
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 0.8);
  a.sex = Sex::kUnknown;  // both-sided: excluded, weight redistributed
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 1.0);
}

TEST(CompositeTest, Omega2WeightsFavourFirstName) {
  // Changing the first name must hurt more under ω2 than under ω1.
  PersonRecord a = Base();
  PersonRecord b = Base();
  b.first_name = "zebedee";
  const double w1 = configs::Omega1().AggregateSimilarity(a, b);
  const double w2 = configs::Omega2().AggregateSimilarity(a, b);
  EXPECT_LT(w2, w1);
}

TEST(CompositeTest, ThresholdBoundaryIsInclusive) {
  SimilarityFunction f(
      {
          {Field::kFirstName, Measure::kExact, 0.5},
          {Field::kSurname, Measure::kExact, 0.5},
      },
      0.5);
  PersonRecord a = Base();
  PersonRecord b = Base();
  b.surname = "zzz";
  EXPECT_DOUBLE_EQ(f.AggregateSimilarity(a, b), 0.5);
  EXPECT_TRUE(f.Matches(a, b));
}

TEST(CompositeTest, ToStringMentionsComponents) {
  const std::string s = configs::Omega2().ToString();
  EXPECT_NE(s.find("first_name"), std::string::npos);
  EXPECT_NE(s.find("q-gram"), std::string::npos);
}

TEST(CompositeTest, PaperExamplePrematchFunctionSeparatesAliceSurnames) {
  // Fig. 3 uses fn+sn with threshold 1: Alice Ashworth and Alice Smith must
  // NOT match, while John Ashworth 1871/1881 must.
  SimilarityFunction f(
      {
          {Field::kFirstName, Measure::kExact, 0.5},
          {Field::kSurname, Measure::kExact, 0.5},
      },
      1.0);
  const CensusDataset d1871 = testing_example::MakeCensus1871();
  const CensusDataset d1881 = testing_example::MakeCensus1881();
  EXPECT_TRUE(f.Matches(d1871.record(0), d1881.record(0)));   // john ashworth
  EXPECT_FALSE(f.Matches(d1871.record(2), d1881.record(6)));  // alice a. vs s.
}

}  // namespace
}  // namespace tglink
