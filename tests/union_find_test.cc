#include "tglink/graph/union_find.h"

#include <gtest/gtest.h>

#include "tglink/util/random.h"

namespace tglink {
namespace {

TEST(UnionFindTest, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.ComponentSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesAndReportsNovelty) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_EQ(uf.ComponentSize(0), 2u);
}

TEST(UnionFindTest, TransitivityThroughChains) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Connected(3, 4));
  EXPECT_FALSE(uf.Connected(2, 3));
  uf.Union(2, 3);
  EXPECT_TRUE(uf.Connected(0, 4));
  EXPECT_EQ(uf.ComponentSize(0), 5u);
  EXPECT_EQ(uf.num_components(), 2u);  // {0..4}, {5}
}

TEST(UnionFindTest, ComponentLabelsAreDenseAndConsistent) {
  UnionFind uf(6);
  uf.Union(0, 3);
  uf.Union(1, 4);
  const std::vector<uint32_t> labels = uf.ComponentLabels();
  ASSERT_EQ(labels.size(), 6u);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_EQ(labels[1], labels[4]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[2], labels[5]);
  // Dense: all labels < num_components, first appearance order.
  for (uint32_t l : labels) EXPECT_LT(l, uf.num_components());
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[2], 2u);
}

TEST(UnionFindTest, LargeRandomisedInvariant) {
  // Property: after any union sequence, num_components equals n minus the
  // number of novel unions, and sizes sum to n.
  const size_t n = 1000;
  UnionFind uf(n);
  size_t novel = 0;
  uint64_t state = 99;
  for (int i = 0; i < 2000; ++i) {
    const size_t a = SplitMix64(&state) % n;
    const size_t b = SplitMix64(&state) % n;
    if (a == b) continue;
    if (uf.Union(a, b)) ++novel;
  }
  EXPECT_EQ(uf.num_components(), n - novel);
  // Each element's component size is consistent with its label class size.
  const std::vector<uint32_t> labels = uf.ComponentLabels();
  std::vector<size_t> class_size(uf.num_components(), 0);
  for (uint32_t l : labels) ++class_size[l];
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(uf.ComponentSize(i), class_size[labels[i]]);
  }
}

}  // namespace
}  // namespace tglink
