// Behavioural tests of the collective-linkage baseline's knobs: seed
// threshold, relational weight and accept threshold must move the outcome
// in the documented directions.

#include <set>

#include <gtest/gtest.h>

#include "tglink/baselines/collective.h"
#include "tglink/eval/metrics.h"
#include "tglink/linkage/config.h"
#include "tglink/synth/generator.h"

namespace tglink {
namespace {

struct Fixture {
  SyntheticPair pair;
  ResolvedGold gold;

  Fixture() {
    GeneratorConfig gen;
    gen.seed = 55;
    gen.scale = 0.05;
    gen.num_censuses = 2;
    pair = GenerateCensusPair(gen, 0);
    gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset).value();
  }

  RecordMapping Run(CollectiveConfig config) {
    config.sim_func = configs::Omega2();
    return CollectiveLink(pair.old_dataset, pair.new_dataset, config);
  }
};

TEST(CollectiveConfigTest, HigherAcceptThresholdTradesRecallForPrecision) {
  Fixture fx;
  CollectiveConfig loose;
  loose.accept_threshold = 0.6;
  CollectiveConfig strict;
  strict.accept_threshold = 0.9;
  const RecordMapping loose_map = fx.Run(loose);
  const RecordMapping strict_map = fx.Run(strict);
  const PrecisionRecall loose_pr = EvaluateRecordMapping(loose_map, fx.gold);
  const PrecisionRecall strict_pr = EvaluateRecordMapping(strict_map, fx.gold);
  // Precision is not strictly monotone under collective feedback (accepted
  // links change later relational scores), so allow a small tolerance; the
  // recall/volume direction is strict.
  EXPECT_GE(strict_pr.precision(), loose_pr.precision() - 0.01);
  EXPECT_LE(strict_pr.recall(), loose_pr.recall() + 1e-9);
  EXPECT_LE(strict_map.size(), loose_map.size());
}

TEST(CollectiveConfigTest, RelationalWeightChangesDecisions) {
  Fixture fx;
  CollectiveConfig attribute_only;
  attribute_only.relational_weight = 0.0;
  CollectiveConfig relational;
  relational.relational_weight = 0.6;
  const RecordMapping a = fx.Run(attribute_only);
  const RecordMapping b = fx.Run(relational);
  // The configurations must not be observationally identical.
  EXPECT_NE(a.links(), b.links());
}

TEST(CollectiveConfigTest, AgeFilterStrictnessReducesLinks) {
  Fixture fx;
  CollectiveConfig permissive;
  permissive.max_age_difference = 10;
  CollectiveConfig strict;
  strict.max_age_difference = 1;
  EXPECT_GE(fx.Run(permissive).size(), fx.Run(strict).size());
}

TEST(CollectiveConfigTest, SeedsAreSubsetOfHighSimilarityPairs) {
  Fixture fx;
  CollectiveConfig config;
  config.accept_threshold = 2.0;  // nothing but seeds can be accepted
  const RecordMapping seeds_only = fx.Run(config);
  SimilarityFunction f = configs::Omega2();
  f.set_year_gap(10);
  for (const RecordLink& link : seeds_only.links()) {
    EXPECT_GE(f.AggregateSimilarity(fx.pair.old_dataset.record(link.first),
                                    fx.pair.new_dataset.record(link.second)),
              config.seed_threshold - 1e-9);
  }
}

}  // namespace
}  // namespace tglink
