#include "tglink/evolution/patterns.h"

#include <gtest/gtest.h>

#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

/// Builds the running example's mappings by hand (the 7 person links of
/// Fig. 5(a), including the hard Alice link the paper's expert mapping has).
struct Fig5Fixture {
  CensusDataset old_d = MakeCensus1871();
  CensusDataset new_d = MakeCensus1881();
  RecordMapping records{8, 11};
  GroupMapping groups;

  Fig5Fixture() {
    // preserve_R: john, elizabeth, william ashworth; john, elizabeth smith;
    // alice (married into g_c); steve (moved to g_c).
    EXPECT_TRUE(records.Add(0, 0).ok());
    EXPECT_TRUE(records.Add(1, 1).ok());
    EXPECT_TRUE(records.Add(3, 2).ok());
    EXPECT_TRUE(records.Add(5, 3).ok());
    EXPECT_TRUE(records.Add(6, 4).ok());
    EXPECT_TRUE(records.Add(2, 6).ok());  // alice -> g_c
    EXPECT_TRUE(records.Add(7, 5).ok());  // steve -> g_c
    groups.Add(kG1871A, kG1881A);
    groups.Add(kG1871B, kG1881B);
    groups.Add(kG1871A, kG1881C);  // alice's move
    groups.Add(kG1871B, kG1881C);  // steve's move
  }
};

TEST(PatternsTest, Fig5RecordPatternCounts) {
  Fig5Fixture fx;
  const EvolutionAnalysis analysis =
      AnalyzeEvolution(fx.old_d, fx.new_d, fx.records, fx.groups);
  // Paper: 7 preserved, 4 additions, 1 removal.
  EXPECT_EQ(analysis.counts.preserve_records, 7u);
  EXPECT_EQ(analysis.counts.add_records, 4u);
  EXPECT_EQ(analysis.counts.remove_records, 1u);
}

TEST(PatternsTest, Fig5GroupPatternCounts) {
  Fig5Fixture fx;
  const EvolutionAnalysis analysis =
      AnalyzeEvolution(fx.old_d, fx.new_d, fx.records, fx.groups);
  // Paper: two preserved households (a and b), two moves into g_c, one new
  // household (g_d; g_c is reached by moves so it is linked), no removals.
  EXPECT_EQ(analysis.counts.preserve_groups, 2u);
  EXPECT_EQ(analysis.counts.move_groups, 2u);
  EXPECT_EQ(analysis.counts.add_groups, 1u);
  EXPECT_EQ(analysis.counts.remove_groups, 0u);
  EXPECT_EQ(analysis.counts.split_groups, 0u);
  EXPECT_EQ(analysis.counts.merge_groups, 0u);
}

TEST(PatternsTest, SplitDetection) {
  // One old household of 4 splits into two new households of 2+2.
  CensusDataset old_d(1871);
  old_d.AddHousehold(
      "o1", {MakeRecord("o1", "a", "x", Sex::kMale, 40, Role::kHead, "", ""),
             MakeRecord("o2", "b", "x", Sex::kFemale, 38, Role::kWife, "", ""),
             MakeRecord("o3", "c", "x", Sex::kMale, 18, Role::kSon, "", ""),
             MakeRecord("o4", "d", "x", Sex::kFemale, 16, Role::kDaughter, "",
                        "")});
  CensusDataset new_d(1881);
  new_d.AddHousehold(
      "n1", {MakeRecord("n1", "a", "x", Sex::kMale, 50, Role::kHead, "", ""),
             MakeRecord("n2", "b", "x", Sex::kFemale, 48, Role::kWife, "",
                        "")});
  new_d.AddHousehold(
      "n2", {MakeRecord("n3", "c", "x", Sex::kMale, 28, Role::kHead, "", ""),
             MakeRecord("n4", "d", "x", Sex::kFemale, 26, Role::kSister, "",
                        "")});
  RecordMapping records(4, 4);
  ASSERT_TRUE(records.Add(0, 0).ok());
  ASSERT_TRUE(records.Add(1, 1).ok());
  ASSERT_TRUE(records.Add(2, 2).ok());
  ASSERT_TRUE(records.Add(3, 3).ok());
  GroupMapping groups;
  groups.Add(0, 0);
  groups.Add(0, 1);
  const EvolutionAnalysis analysis =
      AnalyzeEvolution(old_d, new_d, records, groups);
  EXPECT_EQ(analysis.counts.split_groups, 1u);
  EXPECT_EQ(analysis.counts.preserve_groups, 0u);  // split, not preserve
  EXPECT_EQ(analysis.counts.merge_groups, 0u);
  // The split instance lists both destinations.
  bool found_split = false;
  for (const GroupPatternInstance& instance : analysis.group_patterns) {
    if (instance.pattern == GroupPattern::kSplit) {
      found_split = true;
      EXPECT_EQ(instance.old_groups, std::vector<GroupId>{0});
      EXPECT_EQ(instance.new_groups.size(), 2u);
    }
  }
  EXPECT_TRUE(found_split);
}

TEST(PatternsTest, MergeDetection) {
  // Two old households merge into one new household.
  CensusDataset old_d(1871);
  old_d.AddHousehold(
      "o1", {MakeRecord("o1", "a", "x", Sex::kMale, 70, Role::kHead, "", ""),
             MakeRecord("o2", "b", "x", Sex::kFemale, 68, Role::kWife, "",
                        "")});
  old_d.AddHousehold(
      "o2", {MakeRecord("o3", "c", "x", Sex::kMale, 40, Role::kHead, "", ""),
             MakeRecord("o4", "d", "x", Sex::kFemale, 38, Role::kWife, "",
                        "")});
  CensusDataset new_d(1881);
  new_d.AddHousehold(
      "n1", {MakeRecord("n1", "c", "x", Sex::kMale, 50, Role::kHead, "", ""),
             MakeRecord("n2", "d", "x", Sex::kFemale, 48, Role::kWife, "", ""),
             MakeRecord("n3", "a", "x", Sex::kMale, 80, Role::kFather, "", ""),
             MakeRecord("n4", "b", "x", Sex::kFemale, 78, Role::kMother, "",
                        "")});
  RecordMapping records(4, 4);
  ASSERT_TRUE(records.Add(0, 2).ok());
  ASSERT_TRUE(records.Add(1, 3).ok());
  ASSERT_TRUE(records.Add(2, 0).ok());
  ASSERT_TRUE(records.Add(3, 1).ok());
  GroupMapping groups;
  groups.Add(0, 0);
  groups.Add(1, 0);
  const EvolutionAnalysis analysis =
      AnalyzeEvolution(old_d, new_d, records, groups);
  EXPECT_EQ(analysis.counts.merge_groups, 1u);
  EXPECT_EQ(analysis.counts.split_groups, 0u);
  EXPECT_EQ(analysis.counts.preserve_groups, 0u);
  for (const GroupPatternInstance& instance : analysis.group_patterns) {
    if (instance.pattern == GroupPattern::kMerge) {
      EXPECT_EQ(instance.new_groups, std::vector<GroupId>{0});
      EXPECT_EQ(instance.old_groups.size(), 2u);
    }
  }
}

TEST(PatternsTest, PreserveSurvivesSingleMemberMovingAway) {
  // Parents stay (preserve), child moves out alone (move) — the parents'
  // pair must still count as preserved despite the extra link.
  CensusDataset old_d(1871);
  old_d.AddHousehold(
      "o1", {MakeRecord("o1", "a", "x", Sex::kMale, 40, Role::kHead, "", ""),
             MakeRecord("o2", "b", "x", Sex::kFemale, 38, Role::kWife, "", ""),
             MakeRecord("o3", "c", "x", Sex::kMale, 18, Role::kSon, "", "")});
  CensusDataset new_d(1881);
  new_d.AddHousehold(
      "n1", {MakeRecord("n1", "a", "x", Sex::kMale, 50, Role::kHead, "", ""),
             MakeRecord("n2", "b", "x", Sex::kFemale, 48, Role::kWife, "",
                        "")});
  new_d.AddHousehold(
      "n2", {MakeRecord("n3", "c", "x", Sex::kMale, 28, Role::kHead, "", "")});
  RecordMapping records(3, 3);
  ASSERT_TRUE(records.Add(0, 0).ok());
  ASSERT_TRUE(records.Add(1, 1).ok());
  ASSERT_TRUE(records.Add(2, 2).ok());
  GroupMapping groups;
  groups.Add(0, 0);
  groups.Add(0, 1);
  const EvolutionAnalysis analysis =
      AnalyzeEvolution(old_d, new_d, records, groups);
  EXPECT_EQ(analysis.counts.preserve_groups, 1u);
  EXPECT_EQ(analysis.counts.move_groups, 1u);
  EXPECT_EQ(analysis.counts.split_groups, 0u);
}

TEST(PatternsTest, NamesAreStable) {
  EXPECT_STREQ(RecordPatternName(RecordPattern::kPreserve), "preserve_R");
  EXPECT_STREQ(GroupPatternName(GroupPattern::kMerge), "merge");
  Fig5Fixture fx;
  const EvolutionAnalysis analysis =
      AnalyzeEvolution(fx.old_d, fx.new_d, fx.records, fx.groups);
  EXPECT_FALSE(analysis.counts.ToString().empty());
}

TEST(PatternsTest, EndToEndPatternsFromLinkage) {
  // Patterns computed from the actual linkage output on the running example
  // must classify g_d as an addition and John Riley as a removal.
  LinkageConfig config = configs::DefaultConfig();
  config.blocking = BlockingConfig::MakeExhaustive();
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const LinkageResult result = LinkCensusPair(old_d, new_d, config);
  const EvolutionAnalysis analysis = AnalyzeEvolution(
      old_d, new_d, result.record_mapping, result.group_mapping);
  EXPECT_GE(analysis.counts.add_groups, 1u);     // g_d
  EXPECT_GE(analysis.counts.remove_records, 1u); // john riley
  EXPECT_GE(analysis.counts.preserve_groups, 2u);
}

}  // namespace
}  // namespace tglink
