#include <gtest/gtest.h>

#include "tglink/similarity/jaro.h"
#include "tglink/similarity/numeric.h"
#include "tglink/similarity/token.h"

namespace tglink {
namespace {

TEST(AbsDiffSimilarityTest, LinearDecay) {
  EXPECT_DOUBLE_EQ(AbsDiffSimilarity(10, 10, 5), 1.0);
  EXPECT_DOUBLE_EQ(AbsDiffSimilarity(10, 12.5, 5), 0.5);
  EXPECT_DOUBLE_EQ(AbsDiffSimilarity(10, 15, 5), 0.0);
  EXPECT_DOUBLE_EQ(AbsDiffSimilarity(10, 20, 5), 0.0);
  EXPECT_DOUBLE_EQ(AbsDiffSimilarity(10, 7.5, 5), 0.5);  // symmetric
}

TEST(AgeDiffSimilarityTest, ToleranceSemantics) {
  // Tolerance 3: deviation 3 still scores positive, deviation 4 scores 0.
  EXPECT_DOUBLE_EQ(AgeDiffSimilarity(31, 31), 1.0);
  EXPECT_GT(AgeDiffSimilarity(31, 34), 0.0);
  EXPECT_DOUBLE_EQ(AgeDiffSimilarity(31, 35), 0.0);
  // Sign matters: +31 vs -31 is a deviation of 62.
  EXPECT_DOUBLE_EQ(AgeDiffSimilarity(31, -31), 0.0);
}

TEST(TemporalAgeSimilarityTest, ExpectsAgeToAdvanceByGap) {
  // Aged 39 in 1871 -> expected 49 in 1881.
  EXPECT_DOUBLE_EQ(TemporalAgeSimilarity(39, 49, 10), 1.0);
  EXPECT_GT(TemporalAgeSimilarity(39, 47, 10), 0.0);   // misstated by 2
  EXPECT_DOUBLE_EQ(TemporalAgeSimilarity(39, 39, 10), 0.0);  // didn't age
  EXPECT_GT(TemporalAgeSimilarity(39, 52, 10, 3), 0.0);
  EXPECT_DOUBLE_EQ(TemporalAgeSimilarity(39, 53, 10, 3), 0.0);
}

TEST(MongeElkanTest, ExactTokensScoreOne) {
  EXPECT_DOUBLE_EQ(MongeElkanJaroWinkler("mill street", "mill street"), 1.0);
}

TEST(MongeElkanTest, TokenOrderInsensitive) {
  EXPECT_DOUBLE_EQ(MongeElkanJaroWinkler("street mill", "mill street"), 1.0);
}

TEST(MongeElkanTest, EmptyConventions) {
  EXPECT_DOUBLE_EQ(MongeElkanJaroWinkler("", ""), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanJaroWinkler("", "mill street"), 0.0);
}

TEST(MongeElkanTest, PartialTokenOverlapScoresBetweenZeroAndOne) {
  const double sim = MongeElkanJaroWinkler("12 mill street", "14 mill lane");
  EXPECT_GT(sim, 0.4);
  EXPECT_LT(sim, 1.0);
}

TEST(MongeElkanTest, SymmetricByConstruction) {
  const char* pairs[][2] = {{"12 mill street", "mill street"},
                            {"cotton weaver", "cotton spinner"},
                            {"a b c", "c d"}};
  for (const auto& p : pairs) {
    EXPECT_DOUBLE_EQ(MongeElkanJaroWinkler(p[0], p[1]),
                     MongeElkanJaroWinkler(p[1], p[0]));
  }
}

TEST(MongeElkanTest, CustomInnerMeasure) {
  // With an exact inner measure, Monge-Elkan degenerates to average best
  // token equality.
  const auto exact = [](std::string_view a, std::string_view b) {
    return a == b ? 1.0 : 0.0;
  };
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("a b", "b c", exact), 0.5);
}

}  // namespace
}  // namespace tglink
