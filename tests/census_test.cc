#include <gtest/gtest.h>

#include "tglink/census/dataset.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using testing_example::MakeCensus1871;
using testing_example::MakeRecord;

TEST(RolesTest, ParseRoundTripsEveryRole) {
  for (int i = 0; i <= static_cast<int>(Role::kVisitor); ++i) {
    const Role role = static_cast<Role>(i);
    EXPECT_EQ(ParseRole(RoleName(role)), role);
  }
  EXPECT_EQ(ParseRole("HEAD"), Role::kHead);
  EXPECT_EQ(ParseRole("  daughter "), Role::kDaughter);
  EXPECT_EQ(ParseRole("gibberish"), Role::kUnknown);
}

TEST(RolesTest, ParseSex) {
  EXPECT_EQ(ParseSex("m"), Sex::kMale);
  EXPECT_EQ(ParseSex("Female"), Sex::kFemale);
  EXPECT_EQ(ParseSex(""), Sex::kUnknown);
  EXPECT_EQ(ParseSex("x"), Sex::kUnknown);
}

TEST(RolesTest, FamilyAndGenerationStructure) {
  EXPECT_TRUE(IsFamilyRole(Role::kHead));
  EXPECT_TRUE(IsFamilyRole(Role::kGranddaughter));
  EXPECT_FALSE(IsFamilyRole(Role::kServant));
  EXPECT_FALSE(IsFamilyRole(Role::kUnknown));
  EXPECT_EQ(GenerationOffset(Role::kHead), 0);
  EXPECT_EQ(GenerationOffset(Role::kMother), -1);
  EXPECT_EQ(GenerationOffset(Role::kSon), 1);
  EXPECT_EQ(GenerationOffset(Role::kGrandson), 2);
}

TEST(RecordTest, FieldAccess) {
  const PersonRecord r = MakeRecord("id", "john", "ashworth", Sex::kMale, 39,
                                    Role::kHead, "12 mill street", "weaver");
  EXPECT_EQ(GetFieldValue(r, Field::kFirstName), "john");
  EXPECT_EQ(GetFieldValue(r, Field::kSurname), "ashworth");
  EXPECT_EQ(GetFieldValue(r, Field::kSex), "m");
  EXPECT_EQ(GetFieldValue(r, Field::kAge), "39");
  EXPECT_EQ(GetFieldValue(r, Field::kAddress), "12 mill street");
  EXPECT_EQ(GetFieldValue(r, Field::kOccupation), "weaver");
  EXPECT_EQ(r.DisplayName(), "john ashworth");
}

TEST(RecordTest, MissingFieldDetection) {
  PersonRecord r = MakeRecord("id", "", "ashworth", Sex::kUnknown, -1,
                              Role::kHead, "", "");
  EXPECT_TRUE(IsFieldMissing(r, Field::kFirstName));
  EXPECT_FALSE(IsFieldMissing(r, Field::kSurname));
  EXPECT_TRUE(IsFieldMissing(r, Field::kSex));
  EXPECT_TRUE(IsFieldMissing(r, Field::kAge));
  EXPECT_TRUE(IsFieldMissing(r, Field::kAddress));
  EXPECT_TRUE(IsFieldMissing(r, Field::kOccupation));
  EXPECT_EQ(GetFieldValue(r, Field::kAge), "");
  EXPECT_FALSE(r.has_age());
}

TEST(DatasetTest, AddHouseholdAssignsDenseIdsAndGroups) {
  const CensusDataset d = MakeCensus1871();
  EXPECT_EQ(d.year(), 1871);
  EXPECT_EQ(d.num_records(), 8u);
  EXPECT_EQ(d.num_households(), 2u);
  EXPECT_EQ(d.household(0).members.size(), 5u);
  EXPECT_EQ(d.household(1).members.size(), 3u);
  for (GroupId g = 0; g < d.num_households(); ++g) {
    for (RecordId r : d.household(g).members) {
      EXPECT_EQ(d.record(r).group, g);
    }
  }
}

TEST(DatasetTest, ValidatePassesOnWellFormedData) {
  EXPECT_TRUE(MakeCensus1871().Validate().ok());
}

TEST(DatasetTest, ValidateCatchesDuplicateExternalIds) {
  CensusDataset d(1871);
  d.AddHousehold("h1", {MakeRecord("dup", "a", "b", Sex::kMale, 1,
                                   Role::kHead, "", "")});
  d.AddHousehold("h2", {MakeRecord("dup", "c", "d", Sex::kMale, 2,
                                   Role::kHead, "", "")});
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesInconsistentGroupField) {
  CensusDataset d(1871);
  d.AddHousehold("h1", {MakeRecord("r1", "a", "b", Sex::kMale, 1, Role::kHead,
                                   "", "")});
  d.mutable_record(0)->group = 7;  // corrupt
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, StatsCountNamesAndMissing) {
  CensusDataset d(1871);
  d.AddHousehold("h1",
                 {MakeRecord("r1", "john", "smith", Sex::kMale, 30,
                             Role::kHead, "x", "weaver"),
                  MakeRecord("r2", "john", "smith", Sex::kMale, 3, Role::kSon,
                             "x", "")});
  d.AddHousehold("h2", {MakeRecord("r3", "mary", "holt", Sex::kFemale, 25,
                                   Role::kHead, "", "")});
  const DatasetStats stats = d.Stats();
  EXPECT_EQ(stats.year, 1871);
  EXPECT_EQ(stats.num_records, 3u);
  EXPECT_EQ(stats.num_households, 2u);
  EXPECT_EQ(stats.unique_name_combinations, 2u);  // john smith, mary holt
  // Missing cells: r2 occupation, r3 address + occupation = 3 of 15.
  EXPECT_NEAR(stats.missing_value_ratio, 3.0 / 15.0, 1e-12);
  EXPECT_NEAR(stats.avg_household_size, 1.5, 1e-12);
}

TEST(DatasetTest, EmptyDatasetStats) {
  const CensusDataset d(1901);
  const DatasetStats stats = d.Stats();
  EXPECT_EQ(stats.num_records, 0u);
  EXPECT_DOUBLE_EQ(stats.missing_value_ratio, 0.0);
  EXPECT_DOUBLE_EQ(stats.avg_household_size, 0.0);
}

}  // namespace
}  // namespace tglink
