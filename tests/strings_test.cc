#include "tglink/util/strings.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(StringsTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("AshWorth-42"), "ashworth-42");
  EXPECT_EQ(ToUpper("AshWorth-42"), "ASHWORTH-42");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\r\nx\n"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, SplitWhitespaceSkipsEmptyTokens) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("ashworth", "ash"));
  EXPECT_FALSE(StartsWith("ash", "ashworth"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringsTest, NormalizeValueFoldsCaseAndPunctuation) {
  EXPECT_EQ(NormalizeValue("  O'Brien-Smith "), "o brien smith");
  EXPECT_EQ(NormalizeValue("12, Mill St."), "12 mill st");
  EXPECT_EQ(NormalizeValue("ASHWORTH"), "ashworth");
  EXPECT_EQ(NormalizeValue("---"), "");
  EXPECT_EQ(NormalizeValue(""), "");
}

TEST(StringsTest, NormalizeValueCollapsesInteriorRuns) {
  EXPECT_EQ(NormalizeValue("a  --  b"), "a b");
  EXPECT_EQ(NormalizeValue(" x "), "x");
}

TEST(StringsTest, IsMissingRecognizesPlaceholders) {
  EXPECT_TRUE(IsMissing(""));
  EXPECT_TRUE(IsMissing("  "));
  EXPECT_TRUE(IsMissing("-"));
  EXPECT_TRUE(IsMissing("N/A"));
  EXPECT_TRUE(IsMissing("na"));
  EXPECT_TRUE(IsMissing("Unknown"));
  EXPECT_TRUE(IsMissing("NK"));
  EXPECT_TRUE(IsMissing("?"));
  EXPECT_FALSE(IsMissing("nancy"));
  EXPECT_FALSE(IsMissing("0"));
}

TEST(StringsTest, ParseNonNegativeInt) {
  EXPECT_EQ(ParseNonNegativeInt("42"), 42);
  EXPECT_EQ(ParseNonNegativeInt(" 7 "), 7);
  EXPECT_EQ(ParseNonNegativeInt("0"), 0);
  EXPECT_EQ(ParseNonNegativeInt(""), -1);
  EXPECT_EQ(ParseNonNegativeInt("-3"), -1);
  EXPECT_EQ(ParseNonNegativeInt("4x"), -1);
  EXPECT_EQ(ParseNonNegativeInt("9999999999"), -1);  // too long
}

}  // namespace
}  // namespace tglink
