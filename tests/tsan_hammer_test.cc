// Data-race hammers for the shared-state subsystems the thread-safety
// annotations now cover, meant to run under the tsan preset (they pass —
// slowly — on plain builds too). Each case maximizes the interleavings the
// static analysis reasons about: SimCache's sharded memo under mixed
// insert/read traffic that crosses shard boundaries, and the metrics
// registry taking snapshots while other threads concurrently register and
// update metrics. A TSan report here means either an annotation is wrong
// (a field marked guarded that is touched unlocked) or a lock was dropped
// in a migration — both are exactly what the analyze preset + this suite
// exist to catch from opposite directions (compile time vs run time).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tglink/obs/memprof.h"
#include "tglink/obs/metrics.h"
#include "tglink/similarity/sim_batch.h"
#include "tglink/similarity/sim_cache.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

// A similarity function built entirely from fallback measures — the ones
// without batch kernels (Monge-Elkan, Smith-Waterman, double-metaphone,
// LCS) — so that even in batched mode every component comparison goes
// through the sharded memo and its SharedMutex discipline. The split-mix
// shard hash spreads the (old value, new value) id pairs of the census
// fixtures across shards, so concurrent threads constantly interleave an
// exclusive insert on one shard with shared reads on others.
SimilarityFunction FallbackHeavySimFunc() {
  SimilarityFunction fn({{Field::kFirstName, Measure::kMongeElkan, 2.0},
                         {Field::kSurname, Measure::kSmithWaterman, 2.0},
                         {Field::kFirstName, Measure::kDoubleMetaphone, 1.0},
                         {Field::kAddress, Measure::kLcsSubstring, 1.0}},
                        /*threshold=*/0.8);
  fn.set_year_gap(10);
  return fn;
}

TEST(TsanHammerTest, SimCacheCrossShardInsertReadInterleaving) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const SimilarityFunction fn = FallbackHeavySimFunc();
  for (const bool batched : {true, false}) {
    ScopedBatchKernels mode(batched);
    const SimCache cache(fn, old_d, new_d);
    ASSERT_EQ(cache.batched(), batched);

    const size_t num_old = old_d.num_records();
    const size_t num_new = new_d.num_records();
    constexpr int kThreads = 4;
    constexpr int kRounds = 30;
    std::atomic<bool> mismatch{false};

    // Every thread walks the full cross product, each starting at a
    // different offset so early iterations mix first-touch inserts from one
    // thread with memo reads of the same pair from another. Values must be
    // bit-identical to the direct path no matter which thread populated the
    // memo entry.
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const size_t total = num_old * num_new;
        for (int round = 0; round < kRounds; ++round) {
          for (size_t k = 0; k < total; ++k) {
            const size_t flat = (k + static_cast<size_t>(t) * 7) % total;
            const RecordId o = static_cast<RecordId>(flat / num_new);
            const RecordId n = static_cast<RecordId>(flat % num_new);
            const double got = cache.Aggregate(o, n);
            const double want =
                fn.AggregateSimilarity(old_d.record(o), new_d.record(n));
            if (got != want) mismatch.store(true);
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    EXPECT_FALSE(mismatch.load()) << "batched=" << batched;
    // The fallback measures generated real memo traffic (otherwise this
    // test silently stopped exercising the shard locks).
    EXPECT_GT(cache.misses(), 0u) << "batched=" << batched;
    EXPECT_GT(cache.hits(), 0u) << "batched=" << batched;
  }
}

TEST(TsanHammerTest, MetricsRegistryConcurrentSnapshotDuringRegistration) {
  // A private registry keeps the hammer isolated from GlobalMetrics(), so
  // assertions on counts are exact and other tests' metrics don't bleed in.
  obs::MetricsRegistry registry;
  constexpr int kWriterThreads = 3;
  constexpr int kNamesPerThread = 40;
  constexpr int kUpdatesPerName = 50;
  constexpr int kSnapshots = 200;
  std::atomic<bool> done{false};

  // Writers force the registration path (map insert under mu_) and the
  // lock-free update path simultaneously, with overlapping name sets so
  // first-registration races on the same name are common.
  std::vector<std::thread> writers;
  writers.reserve(kWriterThreads);
  for (int t = 0; t < kWriterThreads; ++t) {
    writers.emplace_back([&registry, t] {
      for (int i = 0; i < kNamesPerThread; ++i) {
        // Half the names are shared across threads, half are private.
        const bool shared = (i % 2) == 0;
        const std::string name =
            "hammer." + std::string(shared ? "shared" : "own") + "." +
            std::to_string(shared ? i : i * kWriterThreads + t);
        obs::Counter& counter = registry.GetCounter(name);
        obs::Gauge& gauge = registry.GetGauge(name + ".gauge");
        obs::Histogram& hist = registry.GetHistogram(
            name + ".hist", obs::Histogram::UnitIntervalBounds());
        for (int u = 0; u < kUpdatesPerName; ++u) {
          counter.Increment();
          gauge.Set(static_cast<double>(u));
          hist.Observe(static_cast<double>(u % 10) / 10.0);
        }
      }
    });
  }

  // The snapshotter runs for the writers' whole lifetime: every Snapshot()
  // walks all three maps under mu_ while writers are inserting into them,
  // and serializes concurrently-updated atomics. Monotonicity of a counter
  // total across snapshots is the cheap coherence check.
  std::thread snapshotter([&registry, &done] {
    uint64_t last_total = 0;
    int taken = 0;
    while (taken < kSnapshots && !done.load()) {
      const obs::MetricsSnapshot snap = registry.Snapshot();
      uint64_t total = 0;
      for (const auto& c : snap.counters) total += c.value;
      EXPECT_GE(total, last_total);
      last_total = total;
      (void)snap.ToJson();
      ++taken;
    }
  });

  for (std::thread& th : writers) th.join();
  done.store(true);
  snapshotter.join();

  // Final state is exact: every registration landed once, every update
  // landed exactly once.
  const obs::MetricsSnapshot final_snap = registry.Snapshot();
  constexpr int kSharedNames = kNamesPerThread / 2;
  constexpr int kOwnNames = (kNamesPerThread / 2) * kWriterThreads;
  EXPECT_EQ(final_snap.counters.size(),
            static_cast<size_t>(kSharedNames + kOwnNames));
  EXPECT_EQ(final_snap.gauges.size(), final_snap.counters.size());
  EXPECT_EQ(final_snap.histograms.size(), final_snap.counters.size());
  uint64_t total = 0;
  for (const auto& c : final_snap.counters) total += c.value;
  EXPECT_EQ(total, static_cast<uint64_t>(kWriterThreads) * kNamesPerThread *
                       kUpdatesPerName);
}

TEST(TsanHammerTest, MemProfConcurrentStagesArenasAndSnapshots) {
  // The memory profiler's full shared surface under contention: stage
  // scopes interning and folding on several threads (first-registration
  // races on shared stage names), arena reports racing AtomicMax, raw
  // allocator traffic driving the hooks (when compiled in), and a
  // snapshotter walking the registries the whole time. Totals are exact
  // afterwards: relaxed atomics may reorder, but nothing may be lost.
  obs::ResetMemProfForTesting();
  obs::SetMemProfEnabled(true);

  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  constexpr uint64_t kArenaBytes = 64;
  std::atomic<bool> done{false};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int round = 0; round < kRounds; ++round) {
        TGLINK_MEM_STAGE("hammer.shared");
        {
          TGLINK_MEM_STAGE(round % 2 == 0 ? "hammer.even" : "hammer.odd");
          // Allocator traffic inside the stage; freed before scope exit so
          // the per-stage live delta nets out.
          std::vector<char> block(256 + static_cast<size_t>(t) * 64);
          block[0] = static_cast<char>(round);
        }
        obs::ReportArenaBytes("hammer.arena",
                              kArenaBytes + static_cast<uint64_t>(t));
        (void)obs::ThreadStageDepth();
        (void)obs::CurrentStageName();
      }
    });
  }

  std::thread snapshotter([&done] {
    while (!done.load()) {
      const obs::MemorySnapshot snap = obs::SnapshotMemory();
      for (size_t i = 1; i < snap.arenas.size(); ++i) {
        EXPECT_LT(snap.arenas[i - 1].name, snap.arenas[i].name);
      }
    }
  });

  for (std::thread& th : workers) th.join();
  done.store(true);
  snapshotter.join();

  const obs::MemorySnapshot snap = obs::SnapshotMemory();
  const auto stage = [&snap](const std::string& name) -> uint64_t {
    for (const auto& s : snap.stages) {
      if (s.name == name) return s.count;
    }
    return 0;
  };
  EXPECT_EQ(stage("hammer.shared"),
            static_cast<uint64_t>(kThreads) * kRounds);
  EXPECT_EQ(stage("hammer.even") + stage("hammer.odd"),
            static_cast<uint64_t>(kThreads) * kRounds);
  uint64_t arena_total = 0;
  for (const auto& arena : snap.arenas) {
    if (arena.name == "hammer.arena") {
      arena_total = arena.bytes_total;
      EXPECT_EQ(arena.reports, static_cast<uint64_t>(kThreads) * kRounds);
      EXPECT_EQ(arena.max_bytes, kArenaBytes + kThreads - 1);
    }
  }
  // Sum over threads of kRounds * (kArenaBytes + t).
  uint64_t want = 0;
  for (int t = 0; t < kThreads; ++t) {
    want += static_cast<uint64_t>(kRounds) * (kArenaBytes + t);
  }
  EXPECT_EQ(arena_total, want);
  if (obs::MemProfHooksCompiledIn()) {
    EXPECT_GT(obs::GlobalAllocTotals().bytes_allocated, 0u);
  }

  obs::SetMemProfEnabled(false);
  obs::ResetMemProfForTesting();
}

}  // namespace
}  // namespace tglink
