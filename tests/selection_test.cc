#include "tglink/linkage/selection.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

GroupPairSubgraph MakeSubgraph(GroupId old_g, GroupId new_g, double g_sim,
                               std::vector<SubgraphVertex> vertices) {
  GroupPairSubgraph s;
  s.old_group = old_g;
  s.new_group = new_g;
  s.g_sim = g_sim;
  s.vertices = std::move(vertices);
  return s;
}

struct SelectionFixture {
  GroupMapping groups;
  RecordMapping records{20, 20};
  std::vector<bool> active_old = std::vector<bool>(20, true);
  std::vector<bool> active_new = std::vector<bool>(20, true);

  SelectionResult Run(std::vector<GroupPairSubgraph> subgraphs) {
    return SelectGroupLinks(std::move(subgraphs), &groups, &records,
                            &active_old, &active_new);
  }
};

TEST(SelectionTest, AcceptsHighestScoringOfConflictingPairs) {
  // Two subgraphs compete for old records {0,1}: the higher g_sim wins,
  // the other is rejected (the paper's (a,a) vs (a,d) situation).
  SelectionFixture fx;
  const SelectionResult result = fx.Run({
      MakeSubgraph(0, 0, 0.9, {{0, 0, 1.0}, {1, 1, 1.0}}),
      MakeSubgraph(0, 1, 0.5, {{0, 5, 1.0}, {1, 6, 1.0}}),
  });
  EXPECT_EQ(result.accepted_subgraphs, 1u);
  EXPECT_TRUE(fx.groups.Contains(0, 0));
  EXPECT_FALSE(fx.groups.Contains(0, 1));
  EXPECT_EQ(fx.records.NewFor(0), 0u);
  EXPECT_EQ(fx.records.NewFor(1), 1u);
  EXPECT_FALSE(fx.active_old[0]);
  EXPECT_TRUE(fx.active_old[2]);
}

TEST(SelectionTest, DisjointSubgraphsOfSameGroupBothAccepted) {
  // A household split: g_old 0 links to two new groups via disjoint members
  // — both links enter the N:M mapping.
  SelectionFixture fx;
  const SelectionResult result = fx.Run({
      MakeSubgraph(0, 0, 0.9, {{0, 0, 1.0}, {1, 1, 1.0}}),
      MakeSubgraph(0, 1, 0.8, {{2, 5, 1.0}, {3, 6, 1.0}}),
  });
  EXPECT_EQ(result.accepted_subgraphs, 2u);
  EXPECT_TRUE(fx.groups.Contains(0, 0));
  EXPECT_TRUE(fx.groups.Contains(0, 1));
  EXPECT_EQ(fx.records.size(), 4u);
}

TEST(SelectionTest, PartialOverlapRejectsWholeSubgraph) {
  // Overlap in even one record rejects the whole candidate subgraph.
  SelectionFixture fx;
  const SelectionResult result = fx.Run({
      MakeSubgraph(0, 0, 0.9, {{0, 0, 1.0}, {1, 1, 1.0}}),
      MakeSubgraph(1, 1, 0.8, {{5, 1, 1.0}, {6, 6, 1.0}}),  // new 1 reused
  });
  EXPECT_EQ(result.accepted_subgraphs, 1u);
  EXPECT_FALSE(fx.groups.Contains(1, 1));
  EXPECT_FALSE(fx.records.IsOldLinked(5));
}

TEST(SelectionTest, TieBreaksAreDeterministic) {
  // Equal g_sim: the (old_group, new_group) order decides.
  SelectionFixture fx;
  const SelectionResult result = fx.Run({
      MakeSubgraph(3, 1, 0.7, {{0, 0, 1.0}}),
      MakeSubgraph(2, 9, 0.7, {{0, 1, 1.0}}),  // same old record 0
  });
  EXPECT_EQ(result.accepted_subgraphs, 1u);
  EXPECT_TRUE(fx.groups.Contains(2, 9));  // lower old_group wins the tie
  EXPECT_FALSE(fx.groups.Contains(3, 1));
}

TEST(SelectionTest, RecordLinksMirrorAcceptedVertices) {
  SelectionFixture fx;
  fx.Run({MakeSubgraph(0, 0, 0.9, {{4, 7, 0.8}, {5, 8, 0.9}})});
  EXPECT_EQ(fx.records.size(), 2u);
  EXPECT_EQ(fx.records.NewFor(4), 7u);
  EXPECT_EQ(fx.records.OldFor(8), 5u);
  EXPECT_FALSE(fx.active_new[7]);
  EXPECT_FALSE(fx.active_new[8]);
}

TEST(SelectionTest, DuplicateGroupPairCountsOnceInMapping) {
  SelectionFixture fx;
  const SelectionResult result = fx.Run({
      MakeSubgraph(0, 0, 0.9, {{0, 0, 1.0}}),
      MakeSubgraph(0, 0, 0.8, {{1, 1, 1.0}}),  // disjoint, same group pair
  });
  EXPECT_EQ(result.accepted_subgraphs, 2u);
  EXPECT_EQ(result.new_group_links, 1u);  // set semantics
  EXPECT_EQ(fx.groups.size(), 1u);
  EXPECT_EQ(result.new_record_links, 2u);
}

TEST(SelectionTest, EmptyInputProducesNothing) {
  SelectionFixture fx;
  const SelectionResult result = fx.Run({});
  EXPECT_EQ(result.accepted_subgraphs, 0u);
  EXPECT_EQ(fx.groups.size(), 0u);
  EXPECT_EQ(fx.records.size(), 0u);
}

}  // namespace
}  // namespace tglink
