// End-to-end integration: generate a multi-census synthetic series, link
// every successive pair, run the evolution analysis, and check the global
// invariants and quality bars that the paper's experiments rely on.

#include <set>

#include <gtest/gtest.h>

#include "tglink/census/io.h"
#include "tglink/evolution/evolution_graph.h"
#include "tglink/evolution/queries.h"
#include "tglink/eval/metrics.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"

namespace tglink {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig config;
    config.seed = 101;
    config.scale = 0.04;
    config.num_censuses = 4;
    series_ = new SyntheticSeries(GenerateCensusSeries(config));
    results_ = new std::vector<LinkageResult>();
    const LinkageConfig linkage = configs::DefaultConfig();
    for (size_t i = 0; i + 1 < series_->snapshots.size(); ++i) {
      results_->push_back(LinkCensusPair(series_->snapshots[i],
                                         series_->snapshots[i + 1], linkage));
    }
  }

  static void TearDownTestSuite() {
    delete series_;
    delete results_;
    series_ = nullptr;
    results_ = nullptr;
  }

  static SyntheticSeries* series_;
  static std::vector<LinkageResult>* results_;
};

SyntheticSeries* IntegrationTest::series_ = nullptr;
std::vector<LinkageResult>* IntegrationTest::results_ = nullptr;

TEST_F(IntegrationTest, EveryPairLinksWithHighQuality) {
  for (size_t i = 0; i < results_->size(); ++i) {
    auto gold = ResolveGold(series_->gold[i], series_->snapshots[i],
                            series_->snapshots[i + 1]);
    ASSERT_TRUE(gold.ok());
    const PrecisionRecall record_pr =
        EvaluateRecordMapping((*results_)[i].record_mapping, gold.value());
    const PrecisionRecall group_pr =
        EvaluateGroupMapping((*results_)[i].group_mapping, gold.value());
    EXPECT_GT(record_pr.f_measure(), 0.85)
        << "pair " << i << ": " << record_pr.ToString();
    EXPECT_GT(group_pr.f_measure(), 0.80)
        << "pair " << i << ": " << group_pr.ToString();
    EXPECT_GT(record_pr.precision(), 0.88)
        << "pair " << i << ": " << record_pr.ToString();
  }
}

TEST_F(IntegrationTest, MappingsAreStructurallySound) {
  for (size_t i = 0; i < results_->size(); ++i) {
    const CensusDataset& old_d = series_->snapshots[i];
    const CensusDataset& new_d = series_->snapshots[i + 1];
    std::set<RecordId> olds, news;
    for (const RecordLink& link : (*results_)[i].record_mapping.links()) {
      ASSERT_LT(link.first, old_d.num_records());
      ASSERT_LT(link.second, new_d.num_records());
      EXPECT_TRUE(olds.insert(link.first).second);
      EXPECT_TRUE(news.insert(link.second).second);
    }
    for (const GroupLink& link : (*results_)[i].group_mapping.links()) {
      ASSERT_LT(link.first, old_d.num_households());
      ASSERT_LT(link.second, new_d.num_households());
    }
  }
}

TEST_F(IntegrationTest, EvolutionGraphCountsAreConserved) {
  std::vector<RecordMapping> record_mappings;
  std::vector<GroupMapping> group_mappings;
  for (const LinkageResult& result : *results_) {
    record_mappings.push_back(result.record_mapping);
    group_mappings.push_back(result.group_mapping);
  }
  const EvolutionGraph graph(series_->snapshots, record_mappings,
                             group_mappings);
  ASSERT_EQ(graph.pair_counts().size(), results_->size());
  for (size_t i = 0; i < results_->size(); ++i) {
    const EvolutionCounts& counts = graph.pair_counts()[i];
    // Conservation: preserved + removed = old records; preserved + added =
    // new records.
    EXPECT_EQ(counts.preserve_records + counts.remove_records,
              series_->snapshots[i].num_records());
    EXPECT_EQ(counts.preserve_records + counts.add_records,
              series_->snapshots[i + 1].num_records());
    // Every old household is preserved-ish, removed, or linked some way.
    EXPECT_LE(counts.remove_groups, series_->snapshots[i].num_households());
    // Growth: the synthetic region grows, so additions dominate removals.
    EXPECT_GT(counts.add_groups, 0u);
  }

  // Preserved chain profile is monotone non-increasing in interval length.
  const std::vector<size_t> profile = PreservedChainProfile(graph);
  ASSERT_EQ(profile.size(), series_->snapshots.size() - 1);
  for (size_t k = 1; k < profile.size(); ++k) {
    EXPECT_LE(profile[k], profile[k - 1]);
  }
  // intervals=1 equals the summed per-pair preserve counts (Table 8 row 1).
  size_t preserve_sum = 0;
  for (const EvolutionCounts& counts : graph.pair_counts()) {
    preserve_sum += counts.preserve_groups;
  }
  EXPECT_EQ(profile[0], preserve_sum);

  // Connected components cover a substantial share of all households (the
  // paper reports a largest component covering ~52%).
  const ComponentStats stats = ConnectedHouseholdComponents(graph);
  EXPECT_GT(stats.largest_component, 0u);
  EXPECT_LE(stats.largest_coverage, 1.0);
}

TEST_F(IntegrationTest, SnapshotStatsResembleTable1Shape) {
  size_t prev_records = 0;
  for (const CensusDataset& snapshot : series_->snapshots) {
    const DatasetStats stats = snapshot.Stats();
    EXPECT_GT(stats.num_records, prev_records);  // monotone growth
    prev_records = stats.num_records;
    EXPECT_GT(stats.avg_household_size, 3.0);
    EXPECT_LT(stats.avg_household_size, 7.0);
  }
}

TEST_F(IntegrationTest, SerializationRoundTripPreservesLinkageInput) {
  // Save + reload the first pair, re-link, and expect identical mappings
  // (the whole pipeline is deterministic and IO is lossless).
  const CensusDataset& old_d = series_->snapshots[0];
  const CensusDataset& new_d = series_->snapshots[1];
  auto old_rt = DatasetFromCsv(DatasetToCsv(old_d), old_d.year());
  auto new_rt = DatasetFromCsv(DatasetToCsv(new_d), new_d.year());
  ASSERT_TRUE(old_rt.ok());
  ASSERT_TRUE(new_rt.ok());
  const LinkageResult relinked =
      LinkCensusPair(old_rt.value(), new_rt.value(), configs::DefaultConfig());
  EXPECT_EQ(relinked.record_mapping.links(),
            (*results_)[0].record_mapping.links());
}

}  // namespace
}  // namespace tglink
