#include "tglink/util/status.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::IoError("c"), StatusCode::kIoError, "IoError"},
      {Status::ParseError("d"), StatusCode::kParseError, "ParseError"},
      {Status::OutOfRange("e"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Internal("f"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.ToString(),
              std::string(c.name) + ": " + c.status.message());
  }
}

TEST(StatusTest, StatusCodeNameCoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status Helper(bool fail) {
  TGLINK_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace tglink
