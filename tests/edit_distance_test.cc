#include "tglink/similarity/edit_distance.h"

#include <string>

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0);
}

TEST(DamerauTest, TranspositionCountsAsOne) {
  EXPECT_EQ(LevenshteinDistance("ashworth", "ashowrth"), 2);  // swap = 2 subs
  EXPECT_EQ(DamerauDistance("ashworth", "ashowrth"), 1);      // 1 transposition
  EXPECT_EQ(DamerauDistance("ca", "ac"), 1);
  EXPECT_EQ(DamerauDistance("abc", "abc"), 0);
}

TEST(DamerauTest, NeverExceedsLevenshtein) {
  const std::pair<const char*, const char*> pairs[] = {
      {"smith", "smyth"},   {"riley", "reilly"}, {"john", "jhon"},
      {"mary", "marry"},    {"steve", "stephen"}, {"", "x"},
  };
  for (const auto& [a, b] : pairs) {
    EXPECT_LE(DamerauDistance(a, b), LevenshteinDistance(a, b));
  }
}

TEST(EditSimilarityTest, NormalizedRangeAndIdentity) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abcd", "abc"), 0.75);
  EXPECT_DOUBLE_EQ(DamerauSimilarity("ab", "ba"), 0.5);
}

// Metric properties over a parameterized pool.
class EditDistancePropertyTest
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {};

TEST_P(EditDistancePropertyTest, SymmetryAndBounds) {
  const auto& [a, b] = GetParam();
  EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
  EXPECT_EQ(DamerauDistance(a, b), DamerauDistance(b, a));
  const int d = LevenshteinDistance(a, b);
  // Distance bounded by longest length, at least the length difference.
  EXPECT_LE(d, static_cast<int>(std::max(a.size(), b.size())));
  EXPECT_GE(d, static_cast<int>(std::max(a.size(), b.size()) -
                                std::min(a.size(), b.size())));
}

TEST_P(EditDistancePropertyTest, TriangleInequalityThroughFixedPivot) {
  const auto& [a, b] = GetParam();
  const std::string pivot = "ashworth";
  EXPECT_LE(LevenshteinDistance(a, b),
            LevenshteinDistance(a, pivot) + LevenshteinDistance(pivot, b));
}

INSTANTIATE_TEST_SUITE_P(
    NamePairs, EditDistancePropertyTest,
    ::testing::Values(std::make_pair("ashworth", "ashword"),
                      std::make_pair("elizabeth", "elisabeth"),
                      std::make_pair("john", "jane"),
                      std::make_pair("", "ab"),
                      std::make_pair("riley", "reilly"),
                      std::make_pair("pickup", "pickles"),
                      std::make_pair("aaaa", "aa"),
                      std::make_pair("smith", "schmidt")));

}  // namespace
}  // namespace tglink
