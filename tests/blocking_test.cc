#include "tglink/blocking/blocking.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tglink/blocking/block_key.h"

#include "tglink/linkage/config.h"
#include "tglink/synth/generator.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using testing_example::MakeCensus1871;
using testing_example::MakeCensus1881;

TEST(BlockKeyTest, SoundexKeysStableUnderSpellingNoise) {
  PersonRecord a = testing_example::MakeRecord("1", "john", "ashworth",
                                               Sex::kMale, 30, Role::kHead,
                                               "", "");
  PersonRecord b = a;
  b.surname = "ashwerth";  // vowel-level noise
  EXPECT_EQ(SoundexSurnameFirstInitial()(a), SoundexSurnameFirstInitial()(b));
}

TEST(BlockKeyTest, EmptyNameYieldsEmptyKey) {
  PersonRecord a = testing_example::MakeRecord("1", "", "", Sex::kMale, 30,
                                               Role::kHead, "", "");
  EXPECT_EQ(SoundexSurnameFirstInitial()(a), "");
  EXPECT_EQ(SoundexFirstNameSurnameInitial()(a), "");
  EXPECT_EQ(SurnamePrefix(3)(a), "");
}

TEST(BlockingTest, ExhaustiveProducesCrossProduct) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const auto pairs = GenerateCandidatePairs(old_d, new_d,
                                            BlockingConfig::MakeExhaustive());
  EXPECT_EQ(pairs.size(), old_d.num_records() * new_d.num_records());
}

TEST(BlockingTest, PairsAreSortedAndUnique) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const auto pairs = GenerateCandidatePairs(old_d, new_d,
                                            BlockingConfig::MakeDefault());
  for (size_t i = 1; i < pairs.size(); ++i) {
    const auto prev = std::make_pair(pairs[i - 1].old_id, pairs[i - 1].new_id);
    const auto cur = std::make_pair(pairs[i].old_id, pairs[i].new_id);
    EXPECT_LT(prev, cur);
  }
}

TEST(BlockingTest, DefaultBlockingKeepsSameNamePairs) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const auto pairs = GenerateCandidatePairs(old_d, new_d,
                                            BlockingConfig::MakeDefault());
  std::set<std::pair<RecordId, RecordId>> set;
  for (const auto& p : pairs) set.emplace(p.old_id, p.new_id);
  // John Ashworth 1871_1 (record 0) vs 1881_1 (record 0) must be a candidate.
  EXPECT_TRUE(set.count({0, 0}));
  // Alice Ashworth (2) vs Alice Smith (6): caught by the first-name pass.
  EXPECT_TRUE(set.count({2, 6}));
}

TEST(BlockingTest, MaxBlockSizeSkipsOversizedBlocks) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  BlockingConfig tiny = BlockingConfig::MakeDefault();
  tiny.max_block_size = 1;  // everything is oversized
  EXPECT_TRUE(GenerateCandidatePairs(old_d, new_d, tiny).empty());
}

// The load-bearing property: on realistic noisy data, multi-pass blocking
// must retain nearly all true matches (pair completeness) while generating
// far fewer candidates than the cross product.
TEST(BlockingTest, PairCompletenessOnSyntheticData) {
  GeneratorConfig config;
  config.seed = 7;
  config.scale = 0.05;  // ~165 households
  config.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(config, 0);

  auto resolved = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
  ASSERT_TRUE(resolved.ok());

  const auto candidates = GenerateCandidatePairs(
      pair.old_dataset, pair.new_dataset, BlockingConfig::MakeDefault());
  std::set<std::pair<RecordId, RecordId>> candidate_set;
  for (const auto& c : candidates) candidate_set.emplace(c.old_id, c.new_id);

  size_t found = 0;
  for (const RecordLink& link : resolved.value().record_links) {
    if (candidate_set.count(link)) ++found;
  }
  const double completeness =
      static_cast<double>(found) / resolved.value().record_links.size();
  EXPECT_GT(completeness, 0.93)
      << "blocking lost too many true matches: " << found << "/"
      << resolved.value().record_links.size();

  // Reduction ratio: candidates must be well below the cross product.
  const double cross = static_cast<double>(pair.old_dataset.num_records()) *
                       pair.new_dataset.num_records();
  EXPECT_LT(candidates.size(), cross * 0.25);
}

}  // namespace
}  // namespace tglink
