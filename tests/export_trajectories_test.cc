#include <gtest/gtest.h>

#include "tglink/evolution/export.h"
#include "tglink/evolution/trajectories.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

/// Three-snapshot fixture with a preserve chain, a move and an addition
/// (reused from the evolution_graph tests' shape).
struct Fixture {
  std::vector<CensusDataset> datasets;
  std::vector<RecordMapping> record_mappings;
  std::vector<GroupMapping> group_mappings;

  static CensusDataset Snapshot(int year) {
    CensusDataset d(year);
    auto rec = [&](const char* id, const char* fn, int age, Role role) {
      return MakeRecord(std::string(id) + std::to_string(year), fn, "x",
                        role == Role::kWife ? Sex::kFemale : Sex::kMale, age,
                        role, "", "");
    };
    d.AddHousehold("x" + std::to_string(year),
                   {rec("x1_", "a", 40, Role::kHead),
                    rec("x2_", "b", 38, Role::kWife)});
    d.AddHousehold("y" + std::to_string(year),
                   {rec("y1_", "c", 50, Role::kHead)});
    return d;
  }

  Fixture() {
    datasets = {Snapshot(1851), Snapshot(1861), Snapshot(1871)};
    for (int i = 0; i < 2; ++i) {
      RecordMapping m(3, 3);
      EXPECT_TRUE(m.Add(0, 0).ok());
      EXPECT_TRUE(m.Add(1, 1).ok());
      EXPECT_TRUE(m.Add(2, 2).ok());
      GroupMapping g;
      g.Add(0, 0);  // X preserved
      g.Add(1, 1);  // Y single member: move-style link
      record_mappings.push_back(std::move(m));
      group_mappings.push_back(std::move(g));
    }
  }
};

TEST(ExportTest, DotContainsClustersAndEdges) {
  Fixture fx;
  const EvolutionGraph graph(fx.datasets, fx.record_mappings,
                             fx.group_mappings);
  const std::string dot = EvolutionGraphToDot(graph, fx.datasets);
  EXPECT_NE(dot.find("digraph evolution"), std::string::npos);
  EXPECT_NE(dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_2"), std::string::npos);
  EXPECT_NE(dot.find("1851"), std::string::npos);
  EXPECT_NE(dot.find("preserve_G"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(ExportTest, MinComponentSizePrunesIsolates) {
  Fixture fx;
  // Remove Y's links so Y households become isolated vertices.
  fx.group_mappings[0] = GroupMapping();
  fx.group_mappings[0].Add(0, 0);
  fx.group_mappings[1] = GroupMapping();
  fx.group_mappings[1].Add(0, 0);
  const EvolutionGraph graph(fx.datasets, fx.record_mappings,
                             fx.group_mappings);
  DotExportOptions options;
  options.min_component_size = 2;
  const std::string dot = EvolutionGraphToDot(graph, fx.datasets, options);
  EXPECT_NE(dot.find("x1851"), std::string::npos);
  EXPECT_EQ(dot.find("y1851"), std::string::npos);  // isolated: pruned
}

TEST(ExportTest, RecordEdgesOptIn) {
  Fixture fx;
  const EvolutionGraph graph(fx.datasets, fx.record_mappings,
                             fx.group_mappings);
  DotExportOptions options;
  options.include_record_edges = true;
  const std::string with = EvolutionGraphToDot(graph, fx.datasets, options);
  const std::string without = EvolutionGraphToDot(graph, fx.datasets);
  EXPECT_NE(with.find("style=dotted"), std::string::npos);
  EXPECT_EQ(without.find("style=dotted"), std::string::npos);
}

TEST(ExportTest, MaxVerticesCapsOutput) {
  Fixture fx;
  const EvolutionGraph graph(fx.datasets, fx.record_mappings,
                             fx.group_mappings);
  DotExportOptions options;
  options.min_component_size = 1;
  options.max_vertices = 2;
  const std::string dot = EvolutionGraphToDot(graph, fx.datasets, options);
  // Vertex declarations are the 4-space-indented "v<N> [..." lines.
  size_t vertices = 0;
  for (size_t pos = dot.find("\n    v"); pos != std::string::npos;
       pos = dot.find("\n    v", pos + 1)) {
    ++vertices;
  }
  EXPECT_LE(vertices, 2u);
}

TEST(ExportTest, CsvEdgeList) {
  Fixture fx;
  const EvolutionGraph graph(fx.datasets, fx.record_mappings,
                             fx.group_mappings);
  const std::string csv = EvolutionGraphToCsv(graph, fx.datasets);
  EXPECT_NE(csv.find("epoch,old_year,new_year"), std::string::npos);
  EXPECT_NE(csv.find("x1851,x1861,preserve_G,2"), std::string::npos);
  EXPECT_NE(csv.find("y1861,y1871,move,1"), std::string::npos);
}

TEST(TrajectoriesTest, ExtractsLineagesFromRoots) {
  Fixture fx;
  const EvolutionGraph graph(fx.datasets, fx.record_mappings,
                             fx.group_mappings);
  const auto trajectories = ExtractTrajectories(graph);
  // Roots: X@1851 and Y@1851 only (the rest have incoming edges).
  ASSERT_EQ(trajectories.size(), 2u);
  EXPECT_EQ(trajectories[0].start_epoch, 0u);
  EXPECT_EQ(trajectories[0].patterns.size(), 2u);
  EXPECT_EQ(trajectories[0].patterns[0], GroupPattern::kPreserve);
  EXPECT_EQ(TrajectorySignature(trajectories[0]), "preserve_G>preserve_G");
  EXPECT_EQ(TrajectorySignature(trajectories[1]), "move>move");
}

TEST(TrajectoriesTest, FrequencyCounting) {
  Fixture fx;
  const EvolutionGraph graph(fx.datasets, fx.record_mappings,
                             fx.group_mappings);
  const auto counts = FrequentTrajectories(ExtractTrajectories(graph));
  ASSERT_EQ(counts.size(), 2u);
  for (const TrajectoryCount& tc : counts) EXPECT_EQ(tc.count, 1u);
  // top_k truncation.
  EXPECT_EQ(FrequentTrajectories(ExtractTrajectories(graph), 1).size(), 1u);
}

TEST(TrajectoriesTest, SplitFollowsLargestBranch) {
  // One household splits 3+2; the trajectory follows the 3-member branch.
  CensusDataset old_d(1851);
  std::vector<PersonRecord> members;
  for (int i = 0; i < 5; ++i) {
    members.push_back(MakeRecord("o" + std::to_string(i), "p", "x",
                                 Sex::kMale, 30 + i,
                                 i == 0 ? Role::kHead : Role::kSon, "", ""));
  }
  old_d.AddHousehold("big", std::move(members));
  CensusDataset new_d(1861);
  new_d.AddHousehold(
      "n3", {MakeRecord("n0", "p", "x", Sex::kMale, 40, Role::kHead, "", ""),
             MakeRecord("n1", "p", "x", Sex::kMale, 41, Role::kSon, "", ""),
             MakeRecord("n2", "p", "x", Sex::kMale, 42, Role::kSon, "", "")});
  new_d.AddHousehold(
      "n2h", {MakeRecord("n3", "p", "x", Sex::kMale, 43, Role::kHead, "", ""),
              MakeRecord("n4", "p", "x", Sex::kMale, 44, Role::kSon, "", "")});
  RecordMapping m(5, 5);
  for (RecordId r = 0; r < 5; ++r) ASSERT_TRUE(m.Add(r, r).ok());
  GroupMapping g;
  g.Add(0, 0);
  g.Add(0, 1);
  std::vector<CensusDataset> datasets = {std::move(old_d), std::move(new_d)};
  std::vector<RecordMapping> rms;
  rms.push_back(std::move(m));
  std::vector<GroupMapping> gms;
  gms.push_back(std::move(g));
  const EvolutionGraph graph(datasets, rms, gms);
  const auto trajectories = ExtractTrajectories(graph);
  ASSERT_EQ(trajectories.size(), 1u);
  EXPECT_EQ(TrajectorySignature(trajectories[0]), "split");
}

}  // namespace
}  // namespace tglink
