// Multi-threaded hammer over the metrics registry and tracer. The point of
// this binary is to run clean under the `tsan` preset (tools/check.sh runs
// it there); the assertions also pin down update-count correctness.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"

namespace tglink {
namespace obs {
namespace {

constexpr int kThreads = 4;
constexpr int kIterations = 20000;

TEST(ObsThreadsTest, CountersGaugesHistogramsUnderContention) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Registration races with updates from other threads on purpose.
      Counter& counter = registry.GetCounter("hammer.events");
      Gauge& gauge = registry.GetGauge("hammer.level");
      Histogram& hist =
          registry.GetHistogram("hammer.sizes", Histogram::SizeBounds());
      for (int i = 0; i < kIterations; ++i) {
        counter.Increment();
        gauge.Set(static_cast<double>(t));
        hist.Observe(static_cast<double>(i % 64));
        if (i % 512 == 0) {
          // Concurrent snapshots must be safe (values are advisory).
          (void)registry.Snapshot();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value,
            static_cast<uint64_t>(kThreads) * kIterations);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count,
            static_cast<uint64_t>(kThreads) * kIterations);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.histograms[0].bucket_counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.histograms[0].count);
  EXPECT_DOUBLE_EQ(snap.histograms[0].min, 0.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].max, 63.0);
  // The gauge holds whichever thread wrote last — any valid id.
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_GE(snap.gauges[0].value, 0.0);
  EXPECT_LT(snap.gauges[0].value, kThreads);
}

TEST(ObsThreadsTest, TracerUnderContention) {
  GlobalTracer().Clear();
  GlobalTracer().SetEnabled(true);
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TGLINK_TRACE_SPAN("hammer.outer");
        TGLINK_TRACE_SPAN("hammer.inner", static_cast<double>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  GlobalTracer().SetEnabled(false);

  const std::vector<TraceEvent> events = GlobalTracer().Snapshot();
  EXPECT_EQ(events.size(),
            static_cast<size_t>(2 * kThreads * kSpansPerThread));
  // Per-thread name stacks must not bleed across threads: every inner span
  // nests under its own thread's outer span.
  for (const TraceEvent& e : events) {
    if (e.name == "hammer.inner") {
      EXPECT_EQ(e.path, "hammer.outer/hammer.inner");
      EXPECT_EQ(e.depth, 1u);
    }
  }
  const std::string json = GlobalTracer().ToChromeTraceJson();
  EXPECT_NE(json.find("hammer.inner"), std::string::npos);
  GlobalTracer().Clear();
}

TEST(ObsThreadsTest, MacroCachedReferencesAreThreadSafe) {
  GlobalMetrics().ResetAllForTesting();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIterations; ++i) {
        TGLINK_COUNTER_INC("hammer.macro_events");
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(GlobalMetrics().GetCounter("hammer.macro_events").Value(),
            static_cast<uint64_t>(kThreads) * kIterations);
}

}  // namespace
}  // namespace obs
}  // namespace tglink
