#include "tglink/blocking/sorted_neighborhood.h"

#include <set>

#include <gtest/gtest.h>

#include "tglink/eval/gold.h"
#include "tglink/synth/generator.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

TEST(SortedNeighborhoodTest, AdjacentKeysBecomeCandidates) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const auto pairs = SortedNeighborhoodPairs(
      old_d, new_d, SortedNeighborhoodConfig::MakeDefault());
  std::set<std::pair<RecordId, RecordId>> set;
  for (const auto& p : pairs) set.emplace(p.old_id, p.new_id);
  // Identical sort keys sort adjacently: john ashworth 1871 (0) next to the
  // 1881 johns (0 and 8).
  EXPECT_TRUE(set.count({0, 0}));
  // Pairs are cross-snapshot only and within range.
  for (const auto& p : pairs) {
    EXPECT_LT(p.old_id, old_d.num_records());
    EXPECT_LT(p.new_id, new_d.num_records());
  }
}

TEST(SortedNeighborhoodTest, SortedAndUnique) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const auto pairs = SortedNeighborhoodPairs(
      old_d, new_d, SortedNeighborhoodConfig::MakeDefault());
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LT(std::make_pair(pairs[i - 1].old_id, pairs[i - 1].new_id),
              std::make_pair(pairs[i].old_id, pairs[i].new_id));
  }
}

TEST(SortedNeighborhoodTest, WindowBoundsCandidateCount) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  SortedNeighborhoodConfig narrow = SortedNeighborhoodConfig::MakeDefault();
  narrow.window = 2;
  SortedNeighborhoodConfig wide = SortedNeighborhoodConfig::MakeDefault();
  wide.window = 16;
  const auto narrow_pairs = SortedNeighborhoodPairs(old_d, new_d, narrow);
  const auto wide_pairs = SortedNeighborhoodPairs(old_d, new_d, wide);
  EXPECT_LT(narrow_pairs.size(), wide_pairs.size());
  // Narrow candidates are a subset of wide ones.
  std::set<std::pair<RecordId, RecordId>> wide_set;
  for (const auto& p : wide_pairs) wide_set.emplace(p.old_id, p.new_id);
  for (const auto& p : narrow_pairs) {
    EXPECT_TRUE(wide_set.count({p.old_id, p.new_id}));
  }
}

TEST(SortedNeighborhoodTest, EmptyKeysExcluded) {
  CensusDataset old_d(1871);
  old_d.AddHousehold("h", {MakeRecord("r1", "", "", Sex::kMale, 30,
                                      Role::kHead, "", "")});
  CensusDataset new_d(1881);
  new_d.AddHousehold("h", {MakeRecord("n1", "", "", Sex::kMale, 40,
                                      Role::kHead, "", "")});
  EXPECT_TRUE(SortedNeighborhoodPairs(
                  old_d, new_d, SortedNeighborhoodConfig::MakeDefault())
                  .empty());
}

TEST(SortedNeighborhoodTest, UnionWithBlockingImprovesCompleteness) {
  GeneratorConfig config;
  config.seed = 31;
  config.scale = 0.05;
  config.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(config, 0);
  const auto blocked = GenerateCandidatePairs(
      pair.old_dataset, pair.new_dataset, BlockingConfig::MakeDefault());
  const auto snm = SortedNeighborhoodPairs(
      pair.old_dataset, pair.new_dataset,
      SortedNeighborhoodConfig::MakeDefault());
  const auto unioned = UnionCandidatePairs(blocked, snm);
  EXPECT_GE(unioned.size(), blocked.size());
  EXPECT_GE(unioned.size(), snm.size());
  EXPECT_LE(unioned.size(), blocked.size() + snm.size());

  auto completeness = [&](const std::vector<CandidatePair>& candidates) {
    auto gold =
        ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset).value();
    std::set<std::pair<RecordId, RecordId>> set;
    for (const auto& c : candidates) set.emplace(c.old_id, c.new_id);
    size_t found = 0;
    for (const RecordLink& link : gold.record_links) {
      if (set.count(link)) ++found;
    }
    return static_cast<double>(found) / gold.record_links.size();
  };
  EXPECT_GE(completeness(unioned), completeness(blocked));
}

TEST(UnionCandidatePairsTest, Deduplicates) {
  const std::vector<CandidatePair> a = {{0, 0}, {1, 2}};
  const std::vector<CandidatePair> b = {{1, 2}, {3, 4}};
  const auto u = UnionCandidatePairs(a, b);
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u[0].old_id, 0u);
  EXPECT_EQ(u[1].old_id, 1u);
  EXPECT_EQ(u[2].old_id, 3u);
}

}  // namespace
}  // namespace tglink
