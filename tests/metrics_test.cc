#include "tglink/eval/metrics.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(MetricsTest, PerfectPrediction) {
  const std::vector<std::pair<uint32_t, uint32_t>> links = {{0, 0}, {1, 2}};
  const PrecisionRecall pr = EvaluateLinks(links, links);
  EXPECT_EQ(pr.true_positives, 2u);
  EXPECT_EQ(pr.false_positives, 0u);
  EXPECT_EQ(pr.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(pr.precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 1.0);
  EXPECT_DOUBLE_EQ(pr.f_measure(), 1.0);
}

TEST(MetricsTest, MixedPrediction) {
  const PrecisionRecall pr = EvaluateLinks({{0, 0}, {1, 1}, {2, 2}},
                                           {{0, 0}, {1, 1}, {3, 3}, {4, 4}});
  EXPECT_EQ(pr.true_positives, 2u);
  EXPECT_EQ(pr.false_positives, 1u);
  EXPECT_EQ(pr.false_negatives, 2u);
  EXPECT_DOUBLE_EQ(pr.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 0.5);
  EXPECT_NEAR(pr.f_measure(), 2 * (2.0 / 3.0) * 0.5 / ((2.0 / 3.0) + 0.5),
              1e-12);
}

TEST(MetricsTest, EmptySetsDegradeGracefully) {
  PrecisionRecall pr = EvaluateLinks({}, {});
  EXPECT_DOUBLE_EQ(pr.precision(), 0.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 0.0);
  EXPECT_DOUBLE_EQ(pr.f_measure(), 0.0);
  pr = EvaluateLinks({{1, 1}}, {});
  EXPECT_EQ(pr.false_positives, 1u);
  pr = EvaluateLinks({}, {{1, 1}});
  EXPECT_EQ(pr.false_negatives, 1u);
}

TEST(MetricsTest, DuplicatesCollapse) {
  const PrecisionRecall pr =
      EvaluateLinks({{0, 0}, {0, 0}, {1, 1}}, {{0, 0}});
  EXPECT_EQ(pr.true_positives, 1u);
  EXPECT_EQ(pr.false_positives, 1u);
}

TEST(MetricsTest, ToStringFormats) {
  const PrecisionRecall pr = EvaluateLinks({{0, 0}}, {{0, 0}});
  EXPECT_EQ(pr.ToString(), "P=100.0% R=100.0% F=100.0%");
}

TEST(MetricsTest, RecordMappingUniverseRestriction) {
  RecordMapping mapping(10, 10);
  ASSERT_TRUE(mapping.Add(0, 0).ok());
  ASSERT_TRUE(mapping.Add(5, 5).ok());  // outside the gold universe
  ResolvedGold gold;
  gold.record_links = {{0, 0}, {1, 1}};
  const PrecisionRecall unrestricted =
      EvaluateRecordMapping(mapping, gold, /*restrict=*/false);
  EXPECT_EQ(unrestricted.false_positives, 1u);
  const PrecisionRecall restricted =
      EvaluateRecordMapping(mapping, gold, /*restrict=*/true);
  EXPECT_EQ(restricted.false_positives, 0u);  // (5,5) ignored
  EXPECT_EQ(restricted.true_positives, 1u);
  EXPECT_EQ(restricted.false_negatives, 1u);
}

TEST(MetricsTest, GroupMappingEvaluation) {
  GroupMapping mapping;
  mapping.Add(0, 0);
  mapping.Add(1, 2);
  mapping.Add(9, 9);
  ResolvedGold gold;
  gold.group_links = {{0, 0}, {1, 2}, {3, 3}};
  const PrecisionRecall pr = EvaluateGroupMapping(mapping, gold);
  EXPECT_EQ(pr.true_positives, 2u);
  EXPECT_EQ(pr.false_positives, 1u);
  EXPECT_EQ(pr.false_negatives, 1u);
  const PrecisionRecall restricted =
      EvaluateGroupMapping(mapping, gold, /*restrict=*/true);
  EXPECT_EQ(restricted.false_positives, 0u);
}

TEST(RecordMappingTest, RejectsDuplicateEndpoints) {
  RecordMapping mapping(3, 3);
  EXPECT_TRUE(mapping.Add(0, 0).ok());
  EXPECT_FALSE(mapping.Add(0, 1).ok());  // old reused
  EXPECT_FALSE(mapping.Add(1, 0).ok());  // new reused
  EXPECT_FALSE(mapping.Add(9, 1).ok());  // out of range
  EXPECT_EQ(mapping.size(), 1u);
  EXPECT_EQ(mapping.NewFor(1), kInvalidRecord);
}

TEST(GroupMappingTest, SetSemanticsAndLookups) {
  GroupMapping mapping;
  EXPECT_TRUE(mapping.Add(1, 2));
  EXPECT_FALSE(mapping.Add(1, 2));
  EXPECT_TRUE(mapping.Add(1, 3));
  EXPECT_TRUE(mapping.Add(0, 2));
  EXPECT_EQ(mapping.size(), 3u);
  EXPECT_TRUE(mapping.Contains(1, 3));
  EXPECT_FALSE(mapping.Contains(3, 1));
  const auto partners = mapping.NewPartners(1);
  EXPECT_EQ(partners.size(), 2u);
  EXPECT_EQ(mapping.OldPartners(2).size(), 2u);
  const auto sorted = mapping.SortedLinks();
  EXPECT_EQ(sorted.front(), (GroupLink{0, 2}));
  EXPECT_EQ(sorted.back(), (GroupLink{1, 3}));
}

}  // namespace
}  // namespace tglink
