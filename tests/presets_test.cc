#include "tglink/synth/presets.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

GeneratorConfig Shrunk(GeneratorConfig config) {
  config.scale = 0.05;
  config.num_censuses = 2;
  config.seed = 11;
  return config;
}

TEST(PresetsTest, RawtenstallEqualsDefaults) {
  const GeneratorConfig preset = presets::Rawtenstall();
  const GeneratorConfig defaults;
  EXPECT_EQ(preset.population.household_targets,
            defaults.population.household_targets);
  EXPECT_DOUBLE_EQ(preset.corruption.noise_scale,
                   defaults.corruption.noise_scale);
}

TEST(PresetsTest, HighMobilityProducesMoreChurn) {
  const SyntheticPair mobile =
      GenerateCensusPair(Shrunk(presets::HighMobilityTown()), 0);
  const SyntheticPair stable =
      GenerateCensusPair(Shrunk(presets::StableRuralParish()), 0);
  // Churn proxy: fraction of old records with NO gold partner (left the
  // region or died).
  auto unlinked_fraction = [](const SyntheticPair& pair) {
    return 1.0 - static_cast<double>(pair.gold.record_links.size()) /
                     static_cast<double>(pair.old_dataset.num_records());
  };
  EXPECT_GT(unlinked_fraction(mobile), unlinked_fraction(stable));
}

TEST(PresetsTest, StableParishBarelyGrows) {
  GeneratorConfig config = presets::StableRuralParish();
  config.num_censuses = 2;
  config.seed = 11;
  // Parish targets are absolute (not Table 1); keep scale 1.0 but the
  // parish is small anyway.
  const SyntheticSeries series = GenerateCensusSeries(config);
  const double growth =
      static_cast<double>(series.snapshots[1].num_households()) /
      static_cast<double>(series.snapshots[0].num_households());
  EXPECT_LT(growth, 1.10);
}

TEST(PresetsTest, TranscriptionQualityBracketsTheDefault) {
  const SyntheticPair clean =
      GenerateCensusPair(Shrunk(presets::CleanTranscription()), 0);
  const SyntheticPair normal =
      GenerateCensusPair(Shrunk(presets::Rawtenstall()), 0);
  const SyntheticPair poor =
      GenerateCensusPair(Shrunk(presets::PoorTranscription()), 0);
  const double clean_mv = clean.old_dataset.Stats().missing_value_ratio;
  const double normal_mv = normal.old_dataset.Stats().missing_value_ratio;
  const double poor_mv = poor.old_dataset.Stats().missing_value_ratio;
  EXPECT_LT(clean_mv, normal_mv);
  EXPECT_LT(normal_mv, poor_mv);
  // Even "clean" data has structurally missing values (infant occupations),
  // but corruption-driven missing sex must vanish entirely.
  size_t missing_sex = 0;
  for (const PersonRecord& record : clean.old_dataset.records()) {
    missing_sex += record.sex == Sex::kUnknown;
  }
  EXPECT_EQ(missing_sex, 0u);
}

}  // namespace
}  // namespace tglink
