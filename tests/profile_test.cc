#include "tglink/census/profile.h"

#include <gtest/gtest.h>

#include "tglink/synth/generator.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

TEST(ProfileTest, AttributeFillRates) {
  const DatasetProfile profile = ProfileDataset(MakeCensus1871());
  ASSERT_EQ(profile.attributes.size(), 6u);
  for (const AttributeProfile& ap : profile.attributes) {
    EXPECT_EQ(ap.present + ap.missing, 8u);
    if (ap.field == Field::kFirstName) {
      EXPECT_DOUBLE_EQ(ap.fill_rate(), 1.0);
      EXPECT_EQ(ap.distinct, 5u);  // john, elizabeth, alice, william, steve
    }
  }
}

TEST(ProfileTest, Histograms) {
  const DatasetProfile profile = ProfileDataset(MakeCensus1871());
  EXPECT_EQ(profile.household_size_histogram[5], 1u);  // g_a
  EXPECT_EQ(profile.household_size_histogram[3], 1u);  // g_b
  // Ages: 39,37,8,2,62,41,40,17 -> decades 3:39,37 0:8,2 6:62 4:41,40 1:17.
  EXPECT_EQ(profile.age_histogram[0], 2u);
  EXPECT_EQ(profile.age_histogram[3], 2u);
  EXPECT_EQ(profile.age_histogram[6], 1u);
}

TEST(ProfileTest, CleanExampleHasNoWarnings) {
  const DatasetProfile profile = ProfileDataset(MakeCensus1871());
  EXPECT_TRUE(profile.warnings.empty())
      << profile.warnings.front().detail;
}

TEST(ProfileTest, DetectsNoHead) {
  CensusDataset d(1871);
  d.AddHousehold("h", {MakeRecord("r1", "a", "x", Sex::kMale, 30,
                                  Role::kLodger, "", "")});
  const DatasetProfile profile = ProfileDataset(d);
  ASSERT_EQ(profile.warnings.size(), 1u);
  EXPECT_EQ(profile.warnings[0].kind, ConsistencyWarning::Kind::kNoHead);
}

TEST(ProfileTest, DetectsMultipleHeadsAndMaleWife) {
  CensusDataset d(1871);
  d.AddHousehold(
      "h", {MakeRecord("r1", "a", "x", Sex::kMale, 30, Role::kHead, "", ""),
            MakeRecord("r2", "b", "x", Sex::kMale, 31, Role::kHead, "", ""),
            MakeRecord("r3", "c", "x", Sex::kMale, 29, Role::kWife, "", "")});
  const DatasetProfile profile = ProfileDataset(d);
  bool multiple = false, male_wife = false;
  for (const ConsistencyWarning& w : profile.warnings) {
    multiple |= w.kind == ConsistencyWarning::Kind::kMultipleHeads;
    male_wife |= w.kind == ConsistencyWarning::Kind::kMaleWife;
  }
  EXPECT_TRUE(multiple);
  EXPECT_TRUE(male_wife);
}

TEST(ProfileTest, DetectsImplausibleParentAndAges) {
  CensusDataset d(1871);
  d.AddHousehold(
      "h", {MakeRecord("r1", "a", "x", Sex::kMale, 30, Role::kHead, "", ""),
            MakeRecord("r2", "b", "x", Sex::kMale, 25, Role::kSon, "", ""),
            MakeRecord("r3", "c", "x", Sex::kFemale, 110, Role::kMother, "",
                       "")});
  const DatasetProfile profile = ProfileDataset(d);
  bool parent = false, implausible_age = false;
  for (const ConsistencyWarning& w : profile.warnings) {
    parent |= w.kind == ConsistencyWarning::Kind::kImplausibleParent;
    implausible_age |= w.kind == ConsistencyWarning::Kind::kImplausibleAge;
  }
  EXPECT_TRUE(parent) << "5-year parent-child gap must warn";
  EXPECT_TRUE(implausible_age);
}

TEST(ProfileTest, WarningCapRespected) {
  CensusDataset d(1871);
  for (int i = 0; i < 10; ++i) {
    d.AddHousehold("h" + std::to_string(i),
                   {MakeRecord("r" + std::to_string(i), "a", "x", Sex::kMale,
                               30, Role::kLodger, "", "")});
  }
  EXPECT_EQ(ProfileDataset(d, 3).warnings.size(), 3u);
  EXPECT_EQ(ProfileDataset(d, 0).warnings.size(), 10u);
}

TEST(ProfileTest, SyntheticDataIsLargelyConsistent) {
  GeneratorConfig gen;
  gen.seed = 9;
  gen.scale = 0.05;
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  const DatasetProfile profile = ProfileDataset(pair.old_dataset, 0);
  // Corruption produces a few warnings (age misstatement, missing heads
  // from missing-value corruption is impossible — roles are never blanked —
  // but implausible parent gaps can appear); they must stay rare.
  EXPECT_LT(profile.warnings.size(), pair.old_dataset.num_households() / 5);
  EXPECT_FALSE(profile.ToString().empty());
}

}  // namespace
}  // namespace tglink
