#include "tglink/obs/trace.h"

#include <gtest/gtest.h>

namespace tglink {
namespace obs {
namespace {

/// Tests drive the process-wide tracer (ScopedSpan is hard-wired to it), so
/// each test starts from a clean, enabled state and disables on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalTracer().Clear();
    GlobalTracer().SetEnabled(true);
  }
  void TearDown() override {
    GlobalTracer().SetEnabled(false);
    GlobalTracer().Clear();
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  GlobalTracer().SetEnabled(false);
  { TGLINK_TRACE_SPAN("quiet.phase"); }
  EXPECT_TRUE(GlobalTracer().Snapshot().empty());
}

TEST_F(TraceTest, NestedSpansCarrySlashJoinedPaths) {
  {
    TGLINK_TRACE_SPAN("outer");
    {
      TGLINK_TRACE_SPAN("inner");
    }
  }
  const std::vector<TraceEvent> events = GlobalTracer().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].path, "outer/inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].path, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  // The child interval nests inside the parent's.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST_F(TraceTest, NumericArgIsRecorded) {
  { TGLINK_TRACE_SPAN("round", 0.65); }
  const std::vector<TraceEvent> events = GlobalTracer().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].has_arg);
  EXPECT_DOUBLE_EQ(events[0].arg, 0.65);
}

TEST_F(TraceTest, AggregateCollapsesByPath) {
  for (int i = 0; i < 3; ++i) {
    TGLINK_TRACE_SPAN("repeat");
  }
  { TGLINK_TRACE_SPAN("once"); }
  const std::vector<SpanAggregate> agg =
      AggregateSpans(GlobalTracer().Snapshot());
  ASSERT_EQ(agg.size(), 2u);  // sorted by path
  EXPECT_EQ(agg[0].path, "once");
  EXPECT_EQ(agg[0].count, 1u);
  EXPECT_EQ(agg[1].path, "repeat");
  EXPECT_EQ(agg[1].count, 3u);
}

TEST_F(TraceTest, ChromeTraceJsonHasCompleteEvents) {
  {
    TGLINK_TRACE_SPAN("phase.alpha");
    TGLINK_TRACE_SPAN("phase.beta", 2.0);
  }
  const std::string json = GlobalTracer().ToChromeTraceJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"phase.alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase.beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST_F(TraceTest, ClearEmptiesTheBuffer) {
  { TGLINK_TRACE_SPAN("gone"); }
  ASSERT_FALSE(GlobalTracer().Snapshot().empty());
  GlobalTracer().Clear();
  EXPECT_TRUE(GlobalTracer().Snapshot().empty());
}

TEST_F(TraceTest, EnabledFlagCapturedAtEntry) {
  // A span that started disabled records nothing even if tracing turns on
  // mid-flight; nothing half-started leaks into the buffer.
  GlobalTracer().SetEnabled(false);
  {
    TGLINK_TRACE_SPAN("straddle");
    GlobalTracer().SetEnabled(true);
  }
  EXPECT_TRUE(GlobalTracer().Snapshot().empty());
}

}  // namespace
}  // namespace obs
}  // namespace tglink
