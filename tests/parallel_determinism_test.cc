// End-to-end determinism of the parallel pipeline (the tentpole guarantee
// of util/parallel.h): LinkCensusPair must produce byte-identical results —
// mappings, per-iteration statistics, provenance — for every thread count.
// Runs under the `tsan` preset too (tools/check.sh).

#include <vector>

#include <gtest/gtest.h>

#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"
#include "tglink/util/parallel.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

/// The thread counts under test: serial baseline, a small pool, and the
/// hardware default (whatever this machine resolves 0 to).
std::vector<int> ThreadCounts() {
  SetParallelThreadCount(0);
  const int hw = ParallelThreadCount();
  SetParallelThreadCount(1);
  std::vector<int> counts = {1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

void ExpectIdenticalResults(const LinkageResult& base,
                            const LinkageResult& got, int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  // Record links, in insertion order: parallel scoring must not even
  // reorder them.
  ASSERT_EQ(got.record_mapping.links(), base.record_mapping.links());
  ASSERT_EQ(got.group_mapping.SortedLinks(), base.group_mapping.SortedLinks());
  EXPECT_EQ(got.context_record_links, base.context_record_links);
  EXPECT_EQ(got.residual_record_links, base.residual_record_links);

  ASSERT_EQ(got.iterations.size(), base.iterations.size());
  for (size_t i = 0; i < base.iterations.size(); ++i) {
    const IterationStats& b = base.iterations[i];
    const IterationStats& g = got.iterations[i];
    EXPECT_EQ(g.delta, b.delta) << "iteration " << i;
    EXPECT_EQ(g.scored_pairs, b.scored_pairs) << "iteration " << i;
    EXPECT_EQ(g.candidate_subgraphs, b.candidate_subgraphs)
        << "iteration " << i;
    EXPECT_EQ(g.accepted_subgraphs, b.accepted_subgraphs) << "iteration " << i;
    EXPECT_EQ(g.new_group_links, b.new_group_links) << "iteration " << i;
    EXPECT_EQ(g.new_record_links, b.new_record_links) << "iteration " << i;
  }

  ASSERT_EQ(got.provenance.size(), base.provenance.size());
  for (size_t i = 0; i < base.provenance.size(); ++i) {
    EXPECT_EQ(got.provenance[i].phase, base.provenance[i].phase)
        << "link " << i;
    EXPECT_EQ(got.provenance[i].delta, base.provenance[i].delta)
        << "link " << i;
  }
}

TEST(ParallelDeterminismTest, PaperExampleIdenticalAcrossThreadCounts) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  LinkageConfig config = configs::DefaultConfig();
  config.blocking = BlockingConfig::MakeExhaustive();

  SetParallelThreadCount(1);
  const LinkageResult base = LinkCensusPair(old_d, new_d, config);
  // Sanity: the serial baseline still solves the running example.
  ASSERT_TRUE(base.group_mapping.Contains(kG1871A, kG1881A));
  ASSERT_TRUE(base.group_mapping.Contains(kG1871B, kG1881B));

  for (int threads : ThreadCounts()) {
    SetParallelThreadCount(threads);
    const LinkageResult got = LinkCensusPair(old_d, new_d, config);
    ExpectIdenticalResults(base, got, threads);
  }
  SetParallelThreadCount(1);
}

TEST(ParallelDeterminismTest, SyntheticPairIdenticalAcrossThreadCounts) {
  // A messier instance than the hand-built example: corrupted names,
  // missing values, real blocking — enough candidate pairs that every
  // parallel stage actually chunks.
  GeneratorConfig gen;
  gen.seed = 7;
  gen.scale = 0.05;
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  const LinkageConfig config = configs::DefaultConfig();

  SetParallelThreadCount(1);
  const LinkageResult base =
      LinkCensusPair(pair.old_dataset, pair.new_dataset, config);
  ASSERT_GT(base.record_mapping.size(), 0u);

  for (int threads : ThreadCounts()) {
    SetParallelThreadCount(threads);
    const LinkageResult got =
        LinkCensusPair(pair.old_dataset, pair.new_dataset, config);
    ExpectIdenticalResults(base, got, threads);
  }
  SetParallelThreadCount(1);
}

}  // namespace
}  // namespace tglink
