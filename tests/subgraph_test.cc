#include "tglink/linkage/subgraph.h"

#include <memory>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "tglink/graph/enrichment.h"
#include "tglink/linkage/subgraph_export.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

/// Fixture reproducing the exact setting of the paper's Fig. 4 / Eq. 8.
class SubgraphPaperExampleTest : public ::testing::Test {
 protected:
  SubgraphPaperExampleTest()
      : old_d_(MakeCensus1871()),
        new_d_(MakeCensus1881()),
        old_graphs_(EnrichAllHouseholds(old_d_)),
        new_graphs_(EnrichAllHouseholds(new_d_)) {
    config_.sim_func = SimilarityFunction(
        {
            {Field::kFirstName, Measure::kQGramDice, 0.5},
            {Field::kSurname, Measure::kQGramDice, 0.5},
        },
        1.0);
    // Eq. 8 weights the three scores; any (α, β) works for score checks.
    config_.group_weights = {0.2, 0.7};
    // Fig. 4 considers the decoy household's vertices despite their ages
    // deviating by 19 years; disable the vertex gate to reproduce the
    // figure literally (the production default would prune them earlier).
    config_.vertex_age_tolerance = 0;
    prematcher_ = std::make_unique<PreMatcher>(
        old_d_, new_d_, config_.sim_func, BlockingConfig::MakeExhaustive(),
        1.0);
    clustering_ = prematcher_->Cluster(
        1.0, std::vector<bool>(old_d_.num_records(), true),
        std::vector<bool>(new_d_.num_records(), true));
  }

  GroupPairSubgraph Build(GroupId old_g, GroupId new_g) {
    return BuildGroupPairSubgraph(old_g, new_g, old_graphs_[old_g],
                                  new_graphs_[new_g], clustering_,
                                  *prematcher_, config_, old_d_, new_d_,
                                  /*delta=*/1.0);
  }

  CensusDataset old_d_;
  CensusDataset new_d_;
  std::vector<HouseholdGraph> old_graphs_;
  std::vector<HouseholdGraph> new_graphs_;
  LinkageConfig config_;
  std::unique_ptr<PreMatcher> prematcher_;
  Clustering clustering_;
};

TEST_F(SubgraphPaperExampleTest, GroupPairAAMatchesPaperScores) {
  const GroupPairSubgraph sub = Build(kG1871A, kG1881A);
  ASSERT_EQ(sub.vertices.size(), 3u);  // A, B, C
  EXPECT_EQ(sub.edges.size(), 3u);     // all three edges agree
  // Eq. 8: avg_sim = 1, e_sim = 2*3/(10+3) ≈ 0.46, unique = 2*3/9 ≈ 0.66.
  EXPECT_DOUBLE_EQ(sub.avg_sim, 1.0);
  EXPECT_NEAR(sub.e_sim, 6.0 / 13.0, 1e-9);
  EXPECT_NEAR(sub.uniqueness, 2.0 / 3.0, 1e-9);
}

TEST_F(SubgraphPaperExampleTest, GroupPairADReducedToMatchingEdge) {
  const GroupPairSubgraph sub = Build(kG1871A, kG1881D);
  // Three label-equal vertex pairs exist, but only the spouse edge
  // (John-Elizabeth) agrees in type and age difference; William's vertex is
  // pruned (Fig. 4 bottom right).
  ASSERT_EQ(sub.vertices.size(), 2u);
  EXPECT_EQ(sub.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(sub.avg_sim, 1.0);
  EXPECT_NEAR(sub.e_sim, 2.0 / 13.0, 1e-9);       // 2*1/(10+3) ≈ 0.15
  EXPECT_NEAR(sub.uniqueness, 2.0 / 3.0, 1e-9);   // 2*2/(3+3)
}

TEST_F(SubgraphPaperExampleTest, AggregatePrefersTrueLink) {
  // With any weighting that includes edge similarity, (a,a) must outscore
  // (a,d) — the paper's central disambiguation claim.
  const GroupPairSubgraph aa = Build(kG1871A, kG1881A);
  const GroupPairSubgraph ad = Build(kG1871A, kG1881D);
  EXPECT_GT(aa.g_sim, ad.g_sim);
  // With edge similarity ignored (α=1), the two are indistinguishable on
  // record similarity alone.
  EXPECT_DOUBLE_EQ(aa.avg_sim, ad.avg_sim);
}

TEST_F(SubgraphPaperExampleTest, GroupPairBBHasSpouseEdge) {
  const GroupPairSubgraph sub = Build(kG1871B, kG1881B);
  ASSERT_EQ(sub.vertices.size(), 2u);  // John + Elizabeth Smith
  EXPECT_EQ(sub.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(sub.avg_sim, 1.0);
}

TEST_F(SubgraphPaperExampleTest, SingleSharedVertexYieldsEmptySubgraph) {
  // g_1871_b and g_1881_c share only Steve: no edges -> pruned to empty
  // (the residual matcher handles such movers).
  const GroupPairSubgraph sub = Build(kG1871B, kG1881C);
  EXPECT_TRUE(sub.empty());
}

TEST_F(SubgraphPaperExampleTest, BuildAllEnumeratesSharedLabelPairsOnly) {
  const auto subgraphs =
      BuildAllSubgraphs(old_d_, new_d_, old_graphs_, new_graphs_, clustering_,
                        *prematcher_, config_, /*delta=*/1.0);
  // Non-empty subgraphs: (a,a), (a,d), (b,b). (b,c) prunes to empty.
  ASSERT_EQ(subgraphs.size(), 3u);
  std::set<std::pair<GroupId, GroupId>> pairs;
  for (const auto& s : subgraphs) pairs.emplace(s.old_group, s.new_group);
  EXPECT_TRUE(pairs.count({kG1871A, kG1881A}));
  EXPECT_TRUE(pairs.count({kG1871A, kG1881D}));
  EXPECT_TRUE(pairs.count({kG1871B, kG1881B}));
}

TEST_F(SubgraphPaperExampleTest, EdgeAgeToleranceGate) {
  // Tightening the tolerance to 0 still accepts exact age-diff agreement;
  // an artificial 3-year deviation must be rejected at tolerance 2.
  LinkageConfig strict = config_;
  strict.edge_age_tolerance = 0;
  GroupPairSubgraph sub = BuildGroupPairSubgraph(
      kG1871A, kG1881A, old_graphs_[kG1871A], new_graphs_[kG1881A],
      clustering_, *prematcher_, strict, old_d_, new_d_, /*delta=*/1.0);
  EXPECT_EQ(sub.edges.size(), 3u);  // diffs agree exactly in the fixture

  // Perturb William's 1881 age by 3: parent-child diffs now deviate by 3.
  CensusDataset perturbed = MakeCensus1881();
  perturbed.mutable_record(2)->age = 15;
  const auto graphs = EnrichAllHouseholds(perturbed);
  PreMatcher pm(old_d_, perturbed, config_.sim_func,
                BlockingConfig::MakeExhaustive(), 1.0);
  const Clustering cl = pm.Cluster(
      1.0, std::vector<bool>(old_d_.num_records(), true),
      std::vector<bool>(perturbed.num_records(), true));
  sub = BuildGroupPairSubgraph(kG1871A, kG1881A, old_graphs_[kG1871A],
                               graphs[kG1881A], cl, pm, config_, old_d_,
                               perturbed, /*delta=*/1.0);
  // tolerance 2: the two William edges (deviation 3) are rejected; the
  // spouse edge survives; William's vertex is pruned.
  EXPECT_EQ(sub.vertices.size(), 2u);
  EXPECT_EQ(sub.edges.size(), 1u);
}

TEST_F(SubgraphPaperExampleTest, DotRenderingShowsFig4) {
  const GroupPairSubgraph aa = Build(kG1871A, kG1881A);
  const std::string dot = GroupPairSubgraphToDot(
      aa, old_d_, new_d_, old_graphs_[kG1871A], new_graphs_[kG1881A]);
  EXPECT_NE(dot.find("graph subgraph_match"), std::string::npos);
  EXPECT_NE(dot.find("g1871_a"), std::string::npos);
  EXPECT_NE(dot.find("g1881_a"), std::string::npos);
  EXPECT_NE(dot.find("john ashworth"), std::string::npos);
  EXPECT_NE(dot.find("e_sim"), std::string::npos);
  // Three matched vertex pairs -> three dashed cross edges.
  size_t cross = 0;
  for (size_t pos = dot.find("style=dashed"); pos != std::string::npos;
       pos = dot.find("style=dashed", pos + 1)) {
    ++cross;
  }
  EXPECT_EQ(cross, 3u);
  // 10 + 3 relationship edges rendered in total.
  size_t rel = 0;
  for (size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1)) {
    ++rel;
  }
  EXPECT_EQ(rel, 10u + 3u + 3u);  // household edges + cross edges
}

TEST_F(SubgraphPaperExampleTest, GSimIsConvexCombination) {
  const GroupPairSubgraph aa = Build(kG1871A, kG1881A);
  const GroupScoreWeights& w = config_.group_weights;
  EXPECT_NEAR(aa.g_sim,
              w.alpha * aa.avg_sim + w.beta * aa.e_sim +
                  w.uniqueness_weight() * aa.uniqueness,
              1e-12);
}

}  // namespace
}  // namespace tglink
