// Seed-parameterized end-to-end linkage properties: for any generated
// region, the pipeline must uphold its structural invariants and clear a
// quality floor under the paper's evaluation protocol.
//
// A second suite replays the structural invariants over every profile in
// the scenario registry (synth/scenario.h) — including the adversarial
// regimes (mass surname change, household dissolution waves, migration
// shocks, extreme missingness, within-snapshot duplicates). Those corpora
// are designed to degrade QUALITY, so the quality floor deliberately does
// not apply to them; structure must survive regardless.

#include <map>
#include <set>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "tglink/eval/metrics.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"
#include "tglink/synth/scenario.h"
#include "tglink/util/logging.h"

namespace tglink {
namespace {

class LinkagePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  LinkagePropertyTest() {
    GeneratorConfig gen;
    gen.seed = GetParam();
    gen.scale = 0.05;
    gen.num_censuses = 2;
    pair_ = GenerateCensusPair(gen, 0);
    gold_ = ResolveGold(pair_.gold, pair_.old_dataset, pair_.new_dataset)
                .value();
    verified_ =
        SelectVerifiedSubset(gold_, pair_.old_dataset, pair_.new_dataset);
    result_ = LinkCensusPair(pair_.old_dataset, pair_.new_dataset,
                             configs::DefaultConfig());
  }

  SyntheticPair pair_;
  ResolvedGold gold_;
  ResolvedGold verified_;
  LinkageResult result_;
};

TEST_P(LinkagePropertyTest, OneToOneAndInRange) {
  std::set<RecordId> olds, news;
  for (const RecordLink& link : result_.record_mapping.links()) {
    ASSERT_LT(link.first, pair_.old_dataset.num_records());
    ASSERT_LT(link.second, pair_.new_dataset.num_records());
    EXPECT_TRUE(olds.insert(link.first).second);
    EXPECT_TRUE(news.insert(link.second).second);
  }
}

TEST_P(LinkagePropertyTest, GroupLinksAreRecordSupported) {
  std::set<GroupLink> supported;
  for (const RecordLink& link : result_.record_mapping.links()) {
    supported.emplace(pair_.old_dataset.record(link.first).group,
                      pair_.new_dataset.record(link.second).group);
  }
  for (const GroupLink& link : result_.group_mapping.links()) {
    EXPECT_TRUE(supported.count(link));
  }
}

TEST_P(LinkagePropertyTest, ProvenanceCoversEveryLink) {
  ASSERT_EQ(result_.provenance.size(), result_.record_mapping.size());
  size_t subgraph = 0, context = 0, residual = 0;
  for (const LinkProvenance& p : result_.provenance) {
    switch (p.phase) {
      case LinkPhase::kSubgraph:
        ++subgraph;
        break;
      case LinkPhase::kContextResidual:
        ++context;
        break;
      case LinkPhase::kGlobalResidual:
        ++residual;
        break;
    }
  }
  EXPECT_EQ(context, result_.context_record_links);
  EXPECT_EQ(residual, result_.residual_record_links);
  EXPECT_EQ(subgraph + context + residual, result_.record_mapping.size());
  EXPECT_GT(subgraph, 0u);  // the core phase always contributes
}

TEST_P(LinkagePropertyTest, QualityFloorUnderPaperProtocol) {
  const PrecisionRecall rec =
      EvaluateRecordMapping(result_.record_mapping, verified_, true);
  const GroupMapping heavy =
      HeavyGroupLinks(result_.group_mapping, result_.record_mapping,
                      pair_.old_dataset, pair_.new_dataset);
  const PrecisionRecall grp = EvaluateGroupMapping(heavy, verified_, true);
  EXPECT_GT(rec.f_measure(), 0.9) << "seed " << GetParam() << ": "
                                  << rec.ToString();
  EXPECT_GT(grp.f_measure(), 0.85) << "seed " << GetParam() << ": "
                                   << grp.ToString();
}

TEST_P(LinkagePropertyTest, IterationThresholdScheduleIsSound) {
  ASSERT_FALSE(result_.iterations.empty());
  const LinkageConfig config = configs::DefaultConfig();
  for (const IterationStats& it : result_.iterations) {
    EXPECT_LE(it.delta, config.delta_high + 1e-9);
    EXPECT_GE(it.delta, config.delta_low - 1e-9);
    EXPECT_GE(it.candidate_subgraphs, it.accepted_subgraphs);
    EXPECT_GE(it.new_record_links, it.accepted_subgraphs);  // >=1 vertex each
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkagePropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654u));

/// One fully linked scenario corpus, computed once per preset and shared
/// by every structural test below (the pipeline run dominates test time).
struct ScenarioRun {
  SyntheticPair pair;
  ResolvedGold gold;
  LinkageResult result;
};

const ScenarioRun& RunForScenario(const std::string& name) {
  static auto* cache = new std::map<std::string, ScenarioRun>();
  auto it = cache->find(name);
  if (it != cache->end()) return it->second;

  auto scenario = ResolveScenario(name);
  TGLINK_CHECK(scenario.ok()) << scenario.status().ToString();
  GeneratorConfig gen = scenario.value().config;
  gen.seed = 42;
  gen.scale = 0.05;
  // Measure transition 0 -> 1 unless the profile stages its event in a
  // later decade (migration_shock fires at decade 3): then measure the
  // transition the event actually lands in.
  const int shock = static_cast<int>(gen.population.migration_shock_decade);
  const int pair_index = shock > 0 ? shock - 1 : 0;
  gen.num_censuses = pair_index + 2;

  ScenarioRun run;
  run.pair = GenerateCensusPair(gen, pair_index);
  auto gold =
      ResolveGold(run.pair.gold, run.pair.old_dataset, run.pair.new_dataset);
  TGLINK_CHECK(gold.ok()) << gold.status().ToString();
  run.gold = std::move(gold).value();
  run.result = LinkCensusPair(run.pair.old_dataset, run.pair.new_dataset,
                              configs::DefaultConfig());
  return cache->emplace(name, std::move(run)).first->second;
}

class ScenarioLinkagePropertyTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioLinkagePropertyTest, OneToOneAndInRange) {
  const ScenarioRun& run = RunForScenario(GetParam());
  std::set<RecordId> olds, news;
  for (const RecordLink& link : run.result.record_mapping.links()) {
    ASSERT_LT(link.first, run.pair.old_dataset.num_records());
    ASSERT_LT(link.second, run.pair.new_dataset.num_records());
    EXPECT_TRUE(olds.insert(link.first).second);
    EXPECT_TRUE(news.insert(link.second).second);
  }
}

TEST_P(ScenarioLinkagePropertyTest, GroupLinksAreRecordSupported) {
  const ScenarioRun& run = RunForScenario(GetParam());
  std::set<GroupLink> supported;
  for (const RecordLink& link : run.result.record_mapping.links()) {
    supported.emplace(run.pair.old_dataset.record(link.first).group,
                      run.pair.new_dataset.record(link.second).group);
  }
  for (const GroupLink& link : run.result.group_mapping.links()) {
    EXPECT_TRUE(supported.count(link));
  }
}

TEST_P(ScenarioLinkagePropertyTest, ProvenanceAccountingBalances) {
  // Unlike the friendly-corpus suite, no phase is required to contribute:
  // an adversarial regime may legitimately starve the subgraph phase.
  const ScenarioRun& run = RunForScenario(GetParam());
  ASSERT_EQ(run.result.provenance.size(), run.result.record_mapping.size());
  size_t context = 0, residual = 0;
  for (const LinkProvenance& p : run.result.provenance) {
    if (p.phase == LinkPhase::kContextResidual) ++context;
    if (p.phase == LinkPhase::kGlobalResidual) ++residual;
  }
  EXPECT_EQ(context, run.result.context_record_links);
  EXPECT_EQ(residual, run.result.residual_record_links);
}

TEST_P(ScenarioLinkagePropertyTest, GoldResolutionIsOneToOne) {
  // Load-bearing for within_snapshot_duplicates: duplicate records share a
  // person, and the generator must still emit a one-to-one gold mapping
  // (one designated copy per person per transition).
  const ScenarioRun& run = RunForScenario(GetParam());
  std::set<RecordId> olds, news;
  for (const auto& link : run.gold.record_links) {
    EXPECT_TRUE(olds.insert(link.first).second)
        << "old record " << link.first << " gold-linked twice";
    EXPECT_TRUE(news.insert(link.second).second)
        << "new record " << link.second << " gold-linked twice";
  }
}

TEST_P(ScenarioLinkagePropertyTest, IterationThresholdScheduleIsSound) {
  const ScenarioRun& run = RunForScenario(GetParam());
  ASSERT_FALSE(run.result.iterations.empty());
  const LinkageConfig config = configs::DefaultConfig();
  for (const IterationStats& it : run.result.iterations) {
    EXPECT_LE(it.delta, config.delta_high + 1e-9);
    EXPECT_GE(it.delta, config.delta_low - 1e-9);
    EXPECT_GE(it.candidate_subgraphs, it.accepted_subgraphs);
    EXPECT_GE(it.new_record_links, it.accepted_subgraphs);
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, ScenarioLinkagePropertyTest,
                         ::testing::ValuesIn(ScenarioPresetNames()));

}  // namespace
}  // namespace tglink
