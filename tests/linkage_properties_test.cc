// Seed-parameterized end-to-end linkage properties: for any generated
// region, the pipeline must uphold its structural invariants and clear a
// quality floor under the paper's evaluation protocol.

#include <set>

#include <gtest/gtest.h>

#include "tglink/eval/metrics.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"

namespace tglink {
namespace {

class LinkagePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  LinkagePropertyTest() {
    GeneratorConfig gen;
    gen.seed = GetParam();
    gen.scale = 0.05;
    gen.num_censuses = 2;
    pair_ = GenerateCensusPair(gen, 0);
    gold_ = ResolveGold(pair_.gold, pair_.old_dataset, pair_.new_dataset)
                .value();
    verified_ =
        SelectVerifiedSubset(gold_, pair_.old_dataset, pair_.new_dataset);
    result_ = LinkCensusPair(pair_.old_dataset, pair_.new_dataset,
                             configs::DefaultConfig());
  }

  SyntheticPair pair_;
  ResolvedGold gold_;
  ResolvedGold verified_;
  LinkageResult result_;
};

TEST_P(LinkagePropertyTest, OneToOneAndInRange) {
  std::set<RecordId> olds, news;
  for (const RecordLink& link : result_.record_mapping.links()) {
    ASSERT_LT(link.first, pair_.old_dataset.num_records());
    ASSERT_LT(link.second, pair_.new_dataset.num_records());
    EXPECT_TRUE(olds.insert(link.first).second);
    EXPECT_TRUE(news.insert(link.second).second);
  }
}

TEST_P(LinkagePropertyTest, GroupLinksAreRecordSupported) {
  std::set<GroupLink> supported;
  for (const RecordLink& link : result_.record_mapping.links()) {
    supported.emplace(pair_.old_dataset.record(link.first).group,
                      pair_.new_dataset.record(link.second).group);
  }
  for (const GroupLink& link : result_.group_mapping.links()) {
    EXPECT_TRUE(supported.count(link));
  }
}

TEST_P(LinkagePropertyTest, ProvenanceCoversEveryLink) {
  ASSERT_EQ(result_.provenance.size(), result_.record_mapping.size());
  size_t subgraph = 0, context = 0, residual = 0;
  for (const LinkProvenance& p : result_.provenance) {
    switch (p.phase) {
      case LinkPhase::kSubgraph:
        ++subgraph;
        break;
      case LinkPhase::kContextResidual:
        ++context;
        break;
      case LinkPhase::kGlobalResidual:
        ++residual;
        break;
    }
  }
  EXPECT_EQ(context, result_.context_record_links);
  EXPECT_EQ(residual, result_.residual_record_links);
  EXPECT_EQ(subgraph + context + residual, result_.record_mapping.size());
  EXPECT_GT(subgraph, 0u);  // the core phase always contributes
}

TEST_P(LinkagePropertyTest, QualityFloorUnderPaperProtocol) {
  const PrecisionRecall rec =
      EvaluateRecordMapping(result_.record_mapping, verified_, true);
  const GroupMapping heavy =
      HeavyGroupLinks(result_.group_mapping, result_.record_mapping,
                      pair_.old_dataset, pair_.new_dataset);
  const PrecisionRecall grp = EvaluateGroupMapping(heavy, verified_, true);
  EXPECT_GT(rec.f_measure(), 0.9) << "seed " << GetParam() << ": "
                                  << rec.ToString();
  EXPECT_GT(grp.f_measure(), 0.85) << "seed " << GetParam() << ": "
                                   << grp.ToString();
}

TEST_P(LinkagePropertyTest, IterationThresholdScheduleIsSound) {
  ASSERT_FALSE(result_.iterations.empty());
  const LinkageConfig config = configs::DefaultConfig();
  for (const IterationStats& it : result_.iterations) {
    EXPECT_LE(it.delta, config.delta_high + 1e-9);
    EXPECT_GE(it.delta, config.delta_low - 1e-9);
    EXPECT_GE(it.candidate_subgraphs, it.accepted_subgraphs);
    EXPECT_GE(it.new_record_links, it.accepted_subgraphs);  // >=1 vertex each
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkagePropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654u));

}  // namespace
}  // namespace tglink
