#include <set>

#include <gtest/gtest.h>

#include "tglink/baselines/collective.h"
#include "tglink/baselines/graphsim.h"
#include "tglink/eval/metrics.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

CollectiveConfig MakeCollectiveConfig() {
  CollectiveConfig config;
  config.sim_func = configs::Omega2();
  config.blocking = BlockingConfig::MakeExhaustive();
  return config;
}

GraphSimConfig MakeGraphSimConfig() {
  GraphSimConfig config;
  config.sim_func = configs::Omega2();
  config.blocking = BlockingConfig::MakeExhaustive();
  return config;
}

TEST(CollectiveTest, LinksUnambiguousRecordsOnPaperExample) {
  const RecordMapping mapping = CollectiveLink(
      MakeCensus1871(), MakeCensus1881(), MakeCollectiveConfig());
  // The Smiths are unambiguous and must be linked.
  EXPECT_EQ(mapping.NewFor(5), 3u);
  EXPECT_EQ(mapping.NewFor(6), 4u);
  // Dead John Riley stays unlinked.
  EXPECT_FALSE(mapping.IsOldLinked(4));
}

TEST(CollectiveTest, AgeFilterBlocksImplausiblePairs) {
  // 1871 John Ashworth (39) vs 1881 decoy John Ashworth (30): normalized
  // age difference is |39+10-30| = 19 > 3, so the decoy pair must never be
  // considered, steering the link to the true John (49).
  const RecordMapping mapping = CollectiveLink(
      MakeCensus1871(), MakeCensus1881(), MakeCollectiveConfig());
  EXPECT_NE(mapping.NewFor(0), 8u);
}

TEST(CollectiveTest, OneToOneInvariant) {
  const RecordMapping mapping = CollectiveLink(
      MakeCensus1871(), MakeCensus1881(), MakeCollectiveConfig());
  std::set<RecordId> olds, news;
  for (const RecordLink& link : mapping.links()) {
    EXPECT_TRUE(olds.insert(link.first).second);
    EXPECT_TRUE(news.insert(link.second).second);
  }
}

TEST(CollectiveTest, RelationalEvidencePropagatesFromSeeds) {
  GeneratorConfig gen;
  gen.seed = 23;
  gen.scale = 0.04;
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  CollectiveConfig config = MakeCollectiveConfig();
  config.blocking = BlockingConfig::MakeDefault();
  const RecordMapping mapping =
      CollectiveLink(pair.old_dataset, pair.new_dataset, config);
  auto gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
  ASSERT_TRUE(gold.ok());
  const PrecisionRecall pr = EvaluateLinks(
      std::vector<std::pair<uint32_t, uint32_t>>(mapping.links().begin(),
                                                 mapping.links().end()),
      gold.value().record_links);
  // CL is a credible baseline: clearly better than chance, precision high.
  EXPECT_GT(pr.precision(), 0.8) << pr.ToString();
  EXPECT_GT(pr.recall(), 0.4) << pr.ToString();
}

TEST(GraphSimTest, LinksCleanHouseholdsOnPaperExample) {
  const GraphSimResult result = GraphSimLink(
      MakeCensus1871(), MakeCensus1881(), MakeGraphSimConfig());
  EXPECT_TRUE(result.group_mapping.Contains(kG1871A, kG1881A));
  EXPECT_TRUE(result.group_mapping.Contains(kG1871B, kG1881B));
}

TEST(GraphSimTest, OneToOneRecordMapping) {
  const GraphSimResult result = GraphSimLink(
      MakeCensus1871(), MakeCensus1881(), MakeGraphSimConfig());
  std::set<RecordId> olds, news;
  for (const RecordLink& link : result.record_mapping.links()) {
    EXPECT_TRUE(olds.insert(link.first).second);
    EXPECT_TRUE(news.insert(link.second).second);
  }
}

TEST(GraphSimTest, RecallBoundedByInitialMapping) {
  // GraphSim's group links can only connect households containing at least
  // one record link from its one-shot mapping — the structural reason the
  // paper's Table 7 shows lower recall.
  const GraphSimResult result = GraphSimLink(
      MakeCensus1871(), MakeCensus1881(), MakeGraphSimConfig());
  for (const GroupLink& link : result.group_mapping.links()) {
    bool supported = false;
    for (const RecordLink& rl : result.record_mapping.links()) {
      if (MakeCensus1871().record(rl.first).group == link.first &&
          MakeCensus1881().record(rl.second).group == link.second) {
        supported = true;
        break;
      }
    }
    EXPECT_TRUE(supported);
  }
}

TEST(ComparisonTest, IterSubBeatsBaselinesOnSyntheticData) {
  // The headline Table 6 / Table 7 shape: iter-sub's record F-measure beats
  // CL, and its group F-measure beats GraphSim.
  GeneratorConfig gen;
  gen.seed = 29;
  gen.scale = 0.06;
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  auto gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
  ASSERT_TRUE(gold.ok());

  const LinkageResult ours = LinkCensusPair(pair.old_dataset, pair.new_dataset,
                                            configs::DefaultConfig());
  CollectiveConfig cl_config = MakeCollectiveConfig();
  cl_config.blocking = BlockingConfig::MakeDefault();
  const RecordMapping cl =
      CollectiveLink(pair.old_dataset, pair.new_dataset, cl_config);
  GraphSimConfig gs_config = MakeGraphSimConfig();
  gs_config.blocking = BlockingConfig::MakeDefault();
  const GraphSimResult gs =
      GraphSimLink(pair.old_dataset, pair.new_dataset, gs_config);

  const double ours_record_f =
      EvaluateRecordMapping(ours.record_mapping, gold.value()).f_measure();
  const double cl_record_f =
      EvaluateRecordMapping(cl, gold.value()).f_measure();
  const double ours_group_f =
      EvaluateGroupMapping(ours.group_mapping, gold.value()).f_measure();
  const double gs_group_f =
      EvaluateGroupMapping(gs.group_mapping, gold.value()).f_measure();

  EXPECT_GT(ours_record_f, cl_record_f);
  EXPECT_GT(ours_group_f, gs_group_f);
}

}  // namespace
}  // namespace tglink
