#include "tglink/similarity/double_metaphone.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(DoubleMetaphoneTest, EmptyAndNonAlphabetic) {
  EXPECT_EQ(DoubleMetaphone("").primary, "");
  EXPECT_EQ(DoubleMetaphone("123").primary, "");
}

TEST(DoubleMetaphoneTest, SoundAlikeSurnamesAgree) {
  // The property the blocking layer relies on: common spelling variants of
  // the same surname encode identically.
  const std::pair<const char*, const char*> variants[] = {
      {"smith", "smyth"},     {"riley", "reilly"},
      {"ashworth", "ashwerth"}, {"johnson", "jonson"},
      {"pearce", "pierce"},   {"clark", "clarke"},
  };
  for (const auto& [a, b] : variants) {
    EXPECT_GT(DoubleMetaphoneSimilarity(a, b), 0.0)
        << a << " vs " << b << ": " << DoubleMetaphone(a).primary << " / "
        << DoubleMetaphone(b).primary;
  }
}

TEST(DoubleMetaphoneTest, DistinctNamesDisagree) {
  EXPECT_DOUBLE_EQ(DoubleMetaphoneSimilarity("ashworth", "pilkington"), 0.0);
  EXPECT_DOUBLE_EQ(DoubleMetaphoneSimilarity("mary", "john"), 0.0);
}

TEST(DoubleMetaphoneTest, KnownPrimaryCodes) {
  EXPECT_EQ(DoubleMetaphone("smith").primary, "SM0");
  EXPECT_EQ(DoubleMetaphone("smith").secondary, "XMT");
  EXPECT_EQ(DoubleMetaphone("johnson").primary, "JNSN");
  EXPECT_EQ(DoubleMetaphone("williams").primary, "ALMS");
  EXPECT_EQ(DoubleMetaphone("thomas").primary, "TMS");
  EXPECT_EQ(DoubleMetaphone("wright").primary, "RT");
  EXPECT_EQ(DoubleMetaphone("knight").primary, "NT");
  EXPECT_EQ(DoubleMetaphone("philip").primary, "FLP");
}

TEST(DoubleMetaphoneTest, SecondaryCodeCapturesAmbiguity) {
  // "schmidt": germanic XMT primary, SMT secondary in the canonical
  // implementation — we require at least that the two differ.
  const MetaphoneCodes codes = DoubleMetaphone("schmidt");
  EXPECT_FALSE(codes.primary.empty());
  EXPECT_NE(codes.primary, codes.secondary);
}

TEST(DoubleMetaphoneTest, UnambiguousNamesHaveEqualCodes) {
  for (const char* name : {"taylor", "barnes", "riley"}) {
    const MetaphoneCodes codes = DoubleMetaphone(name);
    EXPECT_EQ(codes.primary, codes.secondary) << name;
  }
}

TEST(DoubleMetaphoneTest, MaxLengthRespected) {
  EXPECT_LE(DoubleMetaphone("wolstenholme", 4).primary.size(), 4u);
  EXPECT_LE(DoubleMetaphone("wolstenholme", 6).primary.size(), 6u);
  EXPECT_GE(DoubleMetaphone("wolstenholme", 6).primary.size(),
            DoubleMetaphone("wolstenholme", 4).primary.size());
}

TEST(DoubleMetaphoneTest, CaseInsensitive) {
  EXPECT_EQ(DoubleMetaphone("ASHWORTH"), DoubleMetaphone("ashworth"));
  EXPECT_EQ(DoubleMetaphone("O'Brien").primary,
            DoubleMetaphone("obrien").primary);
}

TEST(DoubleMetaphoneTest, SimilarityGrading) {
  // Same primary: 1.0.
  EXPECT_DOUBLE_EQ(DoubleMetaphoneSimilarity("smith", "smith"), 1.0);
  // Secondary-only agreement grades 0.8: construct via known pair if
  // available; at minimum the function is symmetric and bounded.
  const char* names[] = {"smith", "schmidt", "ashworth", "wright", "xavier"};
  for (const char* a : names) {
    for (const char* b : names) {
      const double ab = DoubleMetaphoneSimilarity(a, b);
      EXPECT_DOUBLE_EQ(ab, DoubleMetaphoneSimilarity(b, a));
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
  }
}

}  // namespace
}  // namespace tglink
