#include "tglink/similarity/double_metaphone.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(DoubleMetaphoneTest, EmptyAndNonAlphabetic) {
  EXPECT_EQ(DoubleMetaphone("").primary, "");
  EXPECT_EQ(DoubleMetaphone("123").primary, "");
}

TEST(DoubleMetaphoneTest, SoundAlikeSurnamesAgree) {
  // The property the blocking layer relies on: common spelling variants of
  // the same surname encode identically.
  const std::pair<const char*, const char*> variants[] = {
      {"smith", "smyth"},     {"riley", "reilly"},
      {"ashworth", "ashwerth"}, {"johnson", "jonson"},
      {"pearce", "pierce"},   {"clark", "clarke"},
  };
  for (const auto& [a, b] : variants) {
    EXPECT_GT(DoubleMetaphoneSimilarity(a, b), 0.0)
        << a << " vs " << b << ": " << DoubleMetaphone(a).primary << " / "
        << DoubleMetaphone(b).primary;
  }
}

TEST(DoubleMetaphoneTest, DistinctNamesDisagree) {
  EXPECT_DOUBLE_EQ(DoubleMetaphoneSimilarity("ashworth", "pilkington"), 0.0);
  EXPECT_DOUBLE_EQ(DoubleMetaphoneSimilarity("mary", "john"), 0.0);
}

TEST(DoubleMetaphoneTest, KnownPrimaryCodes) {
  EXPECT_EQ(DoubleMetaphone("smith").primary, "SM0");
  EXPECT_EQ(DoubleMetaphone("smith").secondary, "XMT");
  EXPECT_EQ(DoubleMetaphone("johnson").primary, "JNSN");
  EXPECT_EQ(DoubleMetaphone("williams").primary, "ALMS");
  EXPECT_EQ(DoubleMetaphone("thomas").primary, "TMS");
  EXPECT_EQ(DoubleMetaphone("wright").primary, "RT");
  EXPECT_EQ(DoubleMetaphone("knight").primary, "NT");
  EXPECT_EQ(DoubleMetaphone("philip").primary, "FLP");
}

TEST(DoubleMetaphoneTest, SecondaryCodeCapturesAmbiguity) {
  // "schmidt": germanic XMT primary, SMT secondary in the canonical
  // implementation — we require at least that the two differ.
  const MetaphoneCodes codes = DoubleMetaphone("schmidt");
  EXPECT_FALSE(codes.primary.empty());
  EXPECT_NE(codes.primary, codes.secondary);
}

TEST(DoubleMetaphoneTest, UnambiguousNamesHaveEqualCodes) {
  for (const char* name : {"taylor", "barnes", "riley"}) {
    const MetaphoneCodes codes = DoubleMetaphone(name);
    EXPECT_EQ(codes.primary, codes.secondary) << name;
  }
}

TEST(DoubleMetaphoneTest, MaxLengthRespected) {
  EXPECT_LE(DoubleMetaphone("wolstenholme", 4).primary.size(), 4u);
  EXPECT_LE(DoubleMetaphone("wolstenholme", 6).primary.size(), 6u);
  EXPECT_GE(DoubleMetaphone("wolstenholme", 6).primary.size(),
            DoubleMetaphone("wolstenholme", 4).primary.size());
}

TEST(DoubleMetaphoneTest, CaseInsensitive) {
  EXPECT_EQ(DoubleMetaphone("ASHWORTH"), DoubleMetaphone("ashworth"));
  EXPECT_EQ(DoubleMetaphone("O'Brien").primary,
            DoubleMetaphone("obrien").primary);
}

TEST(DoubleMetaphoneTest, RuleFamilyBattery) {
  // Regression pins across every rule family of the encoder — Germanic
  // -ACH-, Italian CH/CC/CI, Greek CH, silent GH/S/W, Spanish -ILLO,
  // French endings, Slavic -WICZ/-WITZ, pinyin ZH, and the J/G ambiguity
  // pairs. The codes are this implementation's committed behaviour; a
  // change here shifts blocking keys and phonetic similarity downstream,
  // so it must be deliberate.
  struct Pin {
    const char* word;
    const char* primary;
    const char* secondary;
  };
  const Pin pins[] = {
      {"bacher", "PKR", "PKR"},       {"bach", "PK", "PK"},
      {"caesar", "SSR", "SSR"},       {"chianti", "KNT", "KNT"},
      {"michael", "MKL", "MXL"},      {"charisma", "KRSM", "KRSM"},
      {"chorus", "KRS", "KRS"},       {"chemistry", "KMST", "KMST"},
      {"chore", "XR", "XR"},          {"orchestra", "ARKS", "ARKS"},
      {"architect", "ARKT", "ARKT"},  {"orchid", "ARKT", "ARKT"},
      {"wachtler", "AKTL", "FKTL"},   {"anchor", "ANXR", "ANKR"},
      {"mchugh", "MK", "MK"},         {"czerny", "SRN", "XRN"},
      {"ciao", "X", "X"},             {"focaccia", "FKX", "FKX"},
      {"bellocchio", "PLX", "PLX"},   {"bacchus", "PKS", "PKS"},
      {"accident", "AKST", "AKST"},   {"succeed", "SKST", "SKST"},
      {"acquit", "AKT", "AKT"},       {"cecil", "SSL", "SSL"},
      {"cider", "STR", "STR"},        {"cyrus", "SRS", "SRS"},
      {"lucio", "LS", "LX"},          {"edge", "AJ", "AJ"},
      {"edgar", "ATKR", "ATKR"},      {"ladd", "LT", "LT"},
      {"ghislane", "JLN", "JLN"},     {"ghoul", "KL", "KL"},
      {"hugh", "H", "H"},             {"brough", "PR", "PR"},
      {"laugh", "LF", "LF"},          {"cough", "KF", "KF"},
      {"rough", "RF", "RF"},          {"burgher", "PRKR", "PRKR"},
      {"agnes", "AKNS", "ANS"},       {"wagner", "AKNR", "FKNR"},
      {"cagney", "KKN", "KKN"},       {"gnocchi", "NX", "NX"},
      {"tagliaro", "TKLR", "TLR"},    {"gerald", "KRLT", "JRLT"},
      {"gyro", "KR", "JR"},           {"biaggi", "PJ", "PK"},
      {"getty", "KT", "KT"},          {"ahab", "AHP", "AHP"},
      {"harry", "HR", "HR"},          {"jose", "JS", "HS"},
      {"san jose", "SNJS", "SNHS"},   {"raj", "RJ", "R"},
      {"bajador", "PJTR", "PHTR"},    {"cabrillo", "KPRL", "KPR"},
      {"llewellyn", "LLN", "LLN"},    {"dumb", "TM", "TM"},
      {"plumber", "PLMR", "PLMR"},    {"campbell", "KMPL", "KMPL"},
      {"quick", "KK", "KK"},          {"meyer", "MR", "MR"},
      {"cartier", "KRT", "KRTR"},     {"isle", "AL", "AL"},
      {"carlisle", "KRLL", "KRLL"},   {"island", "ALNT", "ALNT"},
      {"sugar", "XKR", "SKR"},        {"sholz", "SLS", "SLS"},
      {"shaw", "X", "XF"},            {"asia", "AS", "AX"},
      {"laszlo", "LSL", "LXL"},       {"school", "SKL", "SKL"},
      {"schermerhorn", "XRMR", "SKRM"}, {"schmidt", "XMT", "SMT"},
      {"schwartz", "XRTS", "XFRT"},   {"science", "SNS", "SNS"},
      {"scott", "SKT", "SKT"},        {"marais", "MR", "MRS"},
      {"dubois", "TP", "TPS"},        {"nation", "NXN", "NXN"},
      {"martial", "MRXL", "MRXL"},    {"thatcher", "0XR", "TXR"},
      {"thames", "TMS", "TMS"},       {"this", "0S", "TS"},
      {"vivian", "FFN", "FFN"},       {"wasserman", "ASRM", "FSRM"},
      {"whale", "AL", "AL"},          {"arrow", "AR", "ARF"},
      {"majewski", "MJSK", "MJFS"},   {"markowitz", "MRKT", "MRKF"},
      {"filipowicz", "FLPT", "FLPF"}, {"xavier", "SF", "SFR"},
      {"fox", "FKS", "FKS"},          {"breaux", "PR", "PR"},
      {"giroux", "JR", "KR"},         {"zhao", "J", "J"},
      {"mazza", "MS", "MTS"},         {"kazmarek", "KSMR", "KTSM"},
      {"pizza", "PS", "PTS"},
  };
  for (const Pin& pin : pins) {
    const MetaphoneCodes codes = DoubleMetaphone(pin.word, 4);
    EXPECT_EQ(codes.primary, pin.primary) << pin.word;
    EXPECT_EQ(codes.secondary, pin.secondary) << pin.word;
  }
}

TEST(DoubleMetaphoneTest, SimilarityGrading) {
  // Same primary: 1.0.
  EXPECT_DOUBLE_EQ(DoubleMetaphoneSimilarity("smith", "smith"), 1.0);
  // Secondary-only agreement grades 0.8: construct via known pair if
  // available; at minimum the function is symmetric and bounded.
  const char* names[] = {"smith", "schmidt", "ashworth", "wright", "xavier"};
  for (const char* a : names) {
    for (const char* b : names) {
      const double ab = DoubleMetaphoneSimilarity(a, b);
      EXPECT_DOUBLE_EQ(ab, DoubleMetaphoneSimilarity(b, a));
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
  }
}

}  // namespace
}  // namespace tglink
