// Unit tests for the parallel-execution layer, plus the thread hammers the
// `tsan` preset runs (tools/check.sh): pool batches under contention and
// concurrent SimCache lookups must be race-free AND bit-identical to the
// serial path.

#include "tglink/util/parallel.h"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "tglink/linkage/config.h"
#include "tglink/obs/metrics.h"
#include "tglink/similarity/sim_batch.h"
#include "tglink/similarity/sim_cache.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

/// Restores the serial default so tests cannot leak a pool into each other.
class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { SetParallelThreadCount(1); }
};

TEST(ParallelTest, ThreadCountResolution) {
  ThreadCountGuard guard;
  SetParallelThreadCount(1);
  EXPECT_EQ(ParallelThreadCount(), 1);
  SetParallelThreadCount(3);
  EXPECT_EQ(ParallelThreadCount(), 3);
  // 0 resolves to hardware concurrency — at least one worker, whatever the
  // machine.
  SetParallelThreadCount(0);
  EXPECT_GE(ParallelThreadCount(), 1);
}

TEST(ParallelTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 4}) {
    SetParallelThreadCount(threads);
    constexpr size_t kN = 10007;  // prime: exercises a ragged last chunk
    std::vector<std::atomic<int>> touched(kN);
    ParallelFor(kN, "test.cover", [&touched](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        touched[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(touched[i].load(), 1) << "index " << i << " at " << threads
                                      << " threads";
    }
  }
}

TEST(ParallelTest, ParallelMapMatchesSerialInOrderAndValue) {
  ThreadCountGuard guard;
  constexpr size_t kN = 5000;
  auto fn = [](size_t i) {
    return std::sqrt(static_cast<double>(i)) * 0.25 + 1.0 / (1.0 + i);
  };
  SetParallelThreadCount(1);
  const std::vector<double> serial = ParallelMap<double>(kN, "test.map", fn);
  for (int threads : {2, 4}) {
    SetParallelThreadCount(threads);
    const std::vector<double> parallel =
        ParallelMap<double>(kN, "test.map", fn);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < kN; ++i) {
      // Bit-identical, not approximately equal: the determinism contract.
      ASSERT_EQ(parallel[i], serial[i]) << "index " << i;
    }
  }
}

TEST(ParallelTest, EmptyRangeIsANoop) {
  ThreadCountGuard guard;
  SetParallelThreadCount(2);
  bool called = false;
  ParallelFor(0, "test.empty", [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_TRUE(ParallelMap<int>(0, "test.empty", [](size_t) { return 1; })
                  .empty());
}

TEST(ParallelTest, NestedSectionRunsInlineOnTheWorker) {
  ThreadCountGuard guard;
  SetParallelThreadCount(2);
  EXPECT_FALSE(InParallelWorker());
  std::atomic<int> inner_total{0};
  std::atomic<int> worker_observed{0};
  ParallelFor(8, "test.outer", [&](size_t begin, size_t end) {
    if (InParallelWorker()) worker_observed.fetch_add(1);
    // A nested section must not deadlock on the busy pool; it runs inline.
    ParallelFor(end - begin, "test.inner", [&](size_t b, size_t e) {
      inner_total.fetch_add(static_cast<int>(e - b));
    });
  });
  EXPECT_EQ(inner_total.load(), 8);
  EXPECT_GT(worker_observed.load(), 0);
  EXPECT_FALSE(InParallelWorker());
}

TEST(ParallelTest, ExceptionInChunkIsRethrownToTheCaller) {
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    SetParallelThreadCount(threads);
    EXPECT_THROW(
        ParallelFor(64, "test.throw",
                    [](size_t begin, size_t) {
                      if (begin >= 32) throw std::runtime_error("chunk");
                    }),
        std::runtime_error);
    // The pool must stay usable after a failed batch.
    const std::vector<int> ok =
        ParallelMap<int>(16, "test.recover",
                         [](size_t i) { return static_cast<int>(i) * 2; });
    EXPECT_EQ(ok[15], 30);
  }
}

TEST(ParallelTest, ReportsTasksAndThreadsToObs) {
  ThreadCountGuard guard;
  obs::GlobalMetrics().ResetAllForTesting();
  SetParallelThreadCount(2);
  ParallelFor(1000, "test.obs", [](size_t, size_t) {});
  EXPECT_GT(obs::GlobalMetrics().GetCounter("parallel.tasks").Value(), 0u);
}

TEST(ParallelTest, PoolHammerManyBatchesUnderContention) {
  // tsan target: rapid batch turnaround with all workers contending on the
  // batch mutex and the shared metrics registry.
  ThreadCountGuard guard;
  SetParallelThreadCount(4);
  std::atomic<long> total{0};
  constexpr int kBatches = 200;
  constexpr size_t kN = 257;
  for (int b = 0; b < kBatches; ++b) {
    ParallelFor(kN, "test.hammer", [&total](size_t begin, size_t end) {
      long local = 0;
      for (size_t i = begin; i < end; ++i) {
        local += static_cast<long>(i);
        TGLINK_COUNTER_INC("test.hammer_iterations");
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  const long expected_per_batch = static_cast<long>(kN * (kN - 1) / 2);
  EXPECT_EQ(total.load(), kBatches * expected_per_batch);
}

TEST(ParallelTest, SimCacheHammerConcurrentLookupsStayBitIdentical) {
  // tsan target: pool workers hitting the sharded memo concurrently, with
  // every distinct value pair inserted exactly while others read. Results
  // must equal the uncached serial scores bit for bit. Scalar mode — the
  // batched path bypasses the memo for every default-config measure.
  ScopedBatchKernels scalar_mode(false);
  ThreadCountGuard guard;
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  SimilarityFunction fn = configs::DefaultConfig().sim_func;
  fn.set_year_gap(10);

  const size_t n_pairs = old_d.num_records() * new_d.num_records();
  std::vector<double> expected(n_pairs);
  for (size_t i = 0; i < n_pairs; ++i) {
    expected[i] = fn.AggregateSimilarity(
        old_d.record(static_cast<RecordId>(i / new_d.num_records())),
        new_d.record(static_cast<RecordId>(i % new_d.num_records())));
  }

  SetParallelThreadCount(4);
  const SimCache cache(fn, old_d, new_d);
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    const std::vector<double> got =
        ParallelMap<double>(n_pairs, "test.simcache_hammer", [&](size_t i) {
          return cache.Aggregate(
              static_cast<RecordId>(i / new_d.num_records()),
              static_cast<RecordId>(i % new_d.num_records()));
        });
    for (size_t i = 0; i < n_pairs; ++i) {
      ASSERT_EQ(got[i], expected[i]) << "pair " << i << " round " << round;
    }
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

TEST(ParallelTest, SimBatchHammerThresholdScoringStaysBitIdentical) {
  // tsan target for the batched kernels: lock-free reads over the immutable
  // arena plus thread-local kernel scratch, with the pruning screen active.
  // Non-pruned values must equal the serial direct scores bit for bit, and
  // pruning must never drop a pair at or above the cutoff.
  ScopedBatchKernels batched_mode(true);
  ThreadCountGuard guard;
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  SimilarityFunction fn = configs::DefaultConfig().sim_func;
  fn.set_year_gap(10);
  constexpr double kMinSim = 0.7;

  const size_t n_pairs = old_d.num_records() * new_d.num_records();
  std::vector<double> expected(n_pairs);
  for (size_t i = 0; i < n_pairs; ++i) {
    expected[i] = fn.AggregateSimilarity(
        old_d.record(static_cast<RecordId>(i / new_d.num_records())),
        new_d.record(static_cast<RecordId>(i % new_d.num_records())));
  }

  SetParallelThreadCount(4);
  const SimCache cache(fn, old_d, new_d);
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    const std::vector<double> got =
        ParallelMap<double>(n_pairs, "test.simbatch_hammer", [&](size_t i) {
          return cache.AggregateWithThreshold(
              static_cast<RecordId>(i / new_d.num_records()),
              static_cast<RecordId>(i % new_d.num_records()), kMinSim);
        });
    for (size_t i = 0; i < n_pairs; ++i) {
      if (got[i] == SimCache::kPruned) {
        ASSERT_LT(expected[i], kMinSim) << "pair " << i << " round " << round;
      } else {
        ASSERT_EQ(got[i], expected[i]) << "pair " << i << " round " << round;
      }
    }
  }
}

}  // namespace
}  // namespace tglink
