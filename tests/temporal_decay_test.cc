#include "tglink/baselines/temporal_decay.h"

#include <set>

#include <gtest/gtest.h>

#include "tglink/eval/metrics.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

TemporalDecayConfig MakeConfig() {
  TemporalDecayConfig config;
  config.sim_func = configs::Omega2();
  config.blocking = BlockingConfig::MakeExhaustive();
  return config;
}

TEST(DecayedSimilarityTest, ZeroGapMatchesRawWeightedSimilarity) {
  const TemporalDecayConfig config = MakeConfig();
  PersonRecord a = MakeRecord("a", "john", "ashworth", Sex::kMale, 30,
                              Role::kHead, "mill street", "weaver");
  const PersonRecord b = a;
  EXPECT_NEAR(DecayedSimilarity(a, b, 0, config), 1.0, 1e-12);
}

TEST(DecayedSimilarityTest, AgreementErodesTowardAgnostic) {
  const TemporalDecayConfig config = MakeConfig();
  const PersonRecord a = MakeRecord("a", "john", "ashworth", Sex::kMale, 30,
                                    Role::kHead, "mill street", "weaver");
  const double at10 = DecayedSimilarity(a, a, 10, config);
  const double at40 = DecayedSimilarity(a, a, 40, config);
  EXPECT_LT(at10, 1.0);
  EXPECT_LT(at40, at10);
  EXPECT_GT(at40, 0.5);  // never below the agnostic midpoint for agreement
}

TEST(DecayedSimilarityTest, DisagreementOnVolatileAttributesForgiven) {
  const TemporalDecayConfig config = MakeConfig();
  PersonRecord a = MakeRecord("a", "john", "ashworth", Sex::kMale, 30,
                              Role::kHead, "mill street", "weaver");
  PersonRecord b = a;
  b.address = "burnley road";  // moved
  b.occupation = "coal miner";  // changed jobs
  const double at0 = DecayedSimilarity(a, b, 0, config);
  const double at30 = DecayedSimilarity(a, b, 30, config);
  // Over a long gap the address/occupation mismatch hurts less.
  EXPECT_GT(at30, at0);
}

TEST(TemporalDecayLinkTest, OneToOneAndAgeFiltered) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const RecordMapping mapping =
      TemporalDecayLink(old_d, new_d, MakeConfig());
  std::set<RecordId> olds, news;
  for (const RecordLink& link : mapping.links()) {
    EXPECT_TRUE(olds.insert(link.first).second);
    EXPECT_TRUE(news.insert(link.second).second);
  }
  // The age filter kills the decoy John (expected 49, decoy 30).
  EXPECT_NE(mapping.NewFor(0), 8u);
}

TEST(TemporalDecayLinkTest, ReasonableQualityButBelowIterSub) {
  GeneratorConfig gen;
  gen.seed = 42;
  gen.scale = 0.06;
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  const auto gold =
      ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset).value();
  const ResolvedGold verified =
      SelectVerifiedSubset(gold, pair.old_dataset, pair.new_dataset);

  TemporalDecayConfig config = MakeConfig();
  config.blocking = BlockingConfig::MakeDefault();
  const RecordMapping decay =
      TemporalDecayLink(pair.old_dataset, pair.new_dataset, config);
  const LinkageResult ours = LinkCensusPair(
      pair.old_dataset, pair.new_dataset, configs::DefaultConfig());

  const double decay_f =
      EvaluateRecordMapping(decay, verified, true).f_measure();
  const double ours_f =
      EvaluateRecordMapping(ours.record_mapping, verified, true).f_measure();
  EXPECT_GT(decay_f, 0.6);  // a credible baseline...
  EXPECT_GT(ours_f, decay_f);  // ...but structure-free, so iter-sub wins
}

}  // namespace
}  // namespace tglink
