// proptest — a small seeded property-based testing mini-framework for the
// tglink test suite.
//
// A property is a predicate over a randomly generated input; the runner
// derives one deterministic Rng per iteration from a base seed, runs the
// property across the configured iteration count, and on failure minimizes
// the failing synthetic dataset by bisecting its generator scale (smaller
// populations shrink the counterexample while keeping the failing seed and
// corruption regime fixed).
//
// Usage:
//   proptest::Runner runner("candidate_index.equivalence");
//   runner.Run([](proptest::Case& c) {
//     const SyntheticPair pair = proptest::RandomCensusPair(&c);
//     ...generate, assert with c.ExpectTrue(cond, "message")...
//   });
//   EXPECT_TRUE(runner.AllPassed()) << runner.Report();
//
// Iteration count: Runner(name, iterations) or the
// TGLINK_PROPTEST_ITERATIONS environment variable (the env var wins; CI can
// crank every property suite up without touching code).

#ifndef TGLINK_TESTS_PROPTEST_H_
#define TGLINK_TESTS_PROPTEST_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "tglink/synth/generator.h"
#include "tglink/synth/presets.h"
#include "tglink/synth/scenario.h"
#include "tglink/util/random.h"

namespace tglink {
namespace proptest {

/// Per-iteration context: the seeded Rng, the generator knobs the case used
/// (recorded for minimization/reporting), and collected failures.
class Case {
 public:
  Case(uint64_t seed, double scale) : rng_(seed), seed_(seed), scale_(scale) {}

  Rng& rng() { return rng_; }
  uint64_t seed() const { return seed_; }
  /// The dataset scale this iteration generates at; the minimizer reruns
  /// the property with smaller values.
  double scale() const { return scale_; }

  /// Records a failed expectation; the property keeps running so one
  /// iteration reports every broken sub-property at once.
  void ExpectTrue(bool condition, const std::string& message) {
    if (!condition) failures_.push_back(message);
  }

  bool failed() const { return !failures_.empty(); }
  const std::vector<std::string>& failures() const { return failures_; }

 private:
  Rng rng_;
  uint64_t seed_;
  double scale_;
  std::vector<std::string> failures_;
};

using Property = std::function<void(Case&)>;

/// One minimized counterexample: the iteration seed plus the smallest
/// generator scale at which the property still fails.
struct CounterExample {
  uint64_t seed = 0;
  double scale = 0.0;
  std::vector<std::string> failures;
};

inline int IterationsFromEnv(int fallback) {
  const char* env = std::getenv("TGLINK_PROPTEST_ITERATIONS");
  if (env == nullptr || *env == '\0') return fallback;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

class Runner {
 public:
  /// `base_seed` fans out into per-iteration seeds via splitmix64, so suites
  /// with different names/seeds never share datasets.
  explicit Runner(std::string name, int iterations = 50,
                  uint64_t base_seed = 42, double scale = 0.04)
      : name_(std::move(name)),
        iterations_(IterationsFromEnv(iterations)),
        base_seed_(base_seed),
        scale_(scale) {}

  /// Runs the property `iterations` times. On a failing iteration the
  /// dataset scale is bisected downward (the seed stays fixed) until the
  /// property stops failing, and the smallest still-failing scale is kept
  /// as the counterexample. Returns true when every iteration passed.
  bool Run(const Property& property) {
    for (int i = 0; i < iterations_; ++i) {
      uint64_t state = base_seed_ + static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL;
      const uint64_t seed = SplitMix64(&state);
      Case c(seed, scale_);
      property(c);
      ++ran_;
      if (c.failed()) {
        counter_examples_.push_back(Minimize(property, seed, c));
      }
    }
    return AllPassed();
  }

  bool AllPassed() const { return counter_examples_.empty(); }
  int iterations_ran() const { return ran_; }
  const std::vector<CounterExample>& counter_examples() const {
    return counter_examples_;
  }

  /// Human-readable failure report with minimized counterexamples.
  std::string Report() const {
    std::string out = name_ + ": " + std::to_string(counter_examples_.size()) +
                      "/" + std::to_string(ran_) + " iterations failed\n";
    for (const CounterExample& ce : counter_examples_) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  minimized: seed=%llu scale=%.6f\n",
                    static_cast<unsigned long long>(ce.seed), ce.scale);
      out += line;
      for (const std::string& f : ce.failures) out += "    " + f + "\n";
    }
    return out;
  }

 private:
  /// Scale bisection: halve the failing scale while the property still
  /// fails there; stop once it passes (or the dataset degenerates), keeping
  /// the smallest failing scale. Deterministic — reruns reuse the seed.
  CounterExample Minimize(const Property& property, uint64_t seed,
                          const Case& original) {
    CounterExample best{seed, scale_, original.failures()};
    double lo = 0.0;       // largest known-passing scale (exclusive bound)
    double hi = scale_;    // smallest known-failing scale
    for (int step = 0; step < 6; ++step) {
      const double mid = (lo + hi) / 2.0;
      if (mid < 0.005) break;  // ~a handful of households; stop shrinking
      Case c(seed, mid);
      property(c);
      if (c.failed()) {
        hi = mid;
        best = {seed, mid, c.failures()};
      } else {
        lo = mid;
      }
    }
    return best;
  }

  std::string name_;
  int iterations_;
  uint64_t base_seed_;
  double scale_;
  int ran_ = 0;
  std::vector<CounterExample> counter_examples_;
};

/// Value generators -------------------------------------------------------

/// Every named corruption regime (tests that claim coverage "across all
/// presets" iterate this).
inline std::vector<GeneratorConfig> AllPresets() {
  return {presets::Rawtenstall(), presets::HighMobilityTown(),
          presets::StableRuralParish(), presets::PoorTranscription(),
          presets::CleanTranscription()};
}

/// Every scenario-registry profile (synth/scenario.h), paired with its
/// name for failure reports. Structural property suites iterate this in
/// ADDITION to AllPresets(): the adversarial regimes (mass surname change,
/// household dissolution, migration shocks, extreme missingness,
/// within-snapshot duplicates) deliberately generate corpora the friendly
/// presets cannot.
struct NamedScenarioConfig {
  std::string name;
  GeneratorConfig config;
};
inline std::vector<NamedScenarioConfig> AllScenarioConfigs() {
  std::vector<NamedScenarioConfig> out;
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    auto scenario = ParseScenario(preset.json);
    if (!scenario.ok()) std::abort();  // a broken preset must not pass silently
    out.push_back({scenario.value().name, scenario.value().config});
  }
  return out;
}

/// A generator configuration drawn from the case's Rng: random preset,
/// the case's scale, a seed forked from the iteration seed. Half the draws
/// come from the classic corruption presets, half from the scenario
/// registry, so every property sees adversarial corpora too.
inline GeneratorConfig RandomGeneratorConfig(Case* c) {
  GeneratorConfig gen;
  std::vector<GeneratorConfig> presets = AllPresets();
  const size_t pick =
      c->rng().NextBounded(presets.size() + ScenarioPresets().size());
  if (pick < presets.size()) {
    gen = presets[pick];
  } else {
    auto scenario =
        ParseScenario(ScenarioPresets()[pick - presets.size()].json);
    if (!scenario.ok()) std::abort();
    gen = scenario.value().config;
  }
  gen.seed = c->rng().Next();
  gen.scale = c->scale();
  gen.num_censuses = 2;
  return gen;
}

/// A random successive census pair (snapshot 0 -> 1) under a random preset.
inline SyntheticPair RandomCensusPair(Case* c) {
  return GenerateCensusPair(RandomGeneratorConfig(c), 0);
}

}  // namespace proptest
}  // namespace tglink

#endif  // TGLINK_TESTS_PROPTEST_H_
