// SimCache correctness: both kernel modes (batched default, scalar
// reference) must be bit-identical to the direct SimilarityFunction path
// (they share the AggregateWith arithmetic), hits/misses must reflect the
// skew of the value pools in scalar mode, missing-value handling must
// mirror ComponentSimilarity exactly, and threshold-aware scoring must
// never prune a pair at or above the cutoff.

#include "tglink/similarity/sim_cache.h"

#include <gtest/gtest.h>

#include "tglink/linkage/config.h"
#include "tglink/similarity/sim_batch.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

SimilarityFunction PaperSimFunc() {
  SimilarityFunction fn = configs::DefaultConfig().sim_func;
  fn.set_year_gap(10);
  return fn;
}

TEST(SimCacheTest, BitIdenticalToDirectAggregationOverFullCrossProduct) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const SimilarityFunction fn = PaperSimFunc();
  for (const bool batched : {true, false}) {
    ScopedBatchKernels mode(batched);
    const SimCache cache(fn, old_d, new_d);
    ASSERT_EQ(cache.batched(), batched);
    for (RecordId o = 0; o < old_d.num_records(); ++o) {
      for (RecordId n = 0; n < new_d.num_records(); ++n) {
        const double direct =
            fn.AggregateSimilarity(old_d.record(o), new_d.record(n));
        // EXPECT_EQ, not NEAR: both modes must reproduce the exact bits,
        // both on first computation and on replay.
        EXPECT_EQ(cache.Aggregate(o, n), direct)
            << "batched=" << batched << " pair (" << o << "," << n
            << ") first pass";
        EXPECT_EQ(cache.Aggregate(o, n), direct)
            << "batched=" << batched << " pair (" << o << "," << n
            << ") cached pass";
      }
    }
  }
}

TEST(SimCacheTest, RepeatedValuePairsHitTheMemo) {
  // Memo traffic is a scalar-mode property: the batched kernels evaluate
  // q-gram/Jaro components directly from precomputed profiles and only
  // memoize the heavyweight fallback measures (none in the default config).
  ScopedBatchKernels scalar_mode(false);
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const SimilarityFunction fn = PaperSimFunc();
  const SimCache cache(fn, old_d, new_d);

  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  for (RecordId o = 0; o < old_d.num_records(); ++o) {
    for (RecordId n = 0; n < new_d.num_records(); ++n) {
      (void)cache.Aggregate(o, n);
    }
  }
  const uint64_t first_pass_misses = cache.misses();
  // The census fixture reuses names heavily (three johns, three
  // elizabeths, two smith households...), so even the first full pass must
  // find repeated (value, value) component pairs.
  EXPECT_GT(first_pass_misses, 0u);
  EXPECT_GT(cache.hits(), 0u);

  // A second pass over the same pairs computes nothing new.
  for (RecordId o = 0; o < old_d.num_records(); ++o) {
    for (RecordId n = 0; n < new_d.num_records(); ++n) {
      (void)cache.Aggregate(o, n);
    }
  }
  EXPECT_EQ(cache.misses(), first_pass_misses);
}

TEST(SimCacheTest, BatchedModeGeneratesNoMemoTrafficForOwnedMeasures) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const SimilarityFunction fn = PaperSimFunc();
  ScopedBatchKernels batched_mode(true);
  const SimCache cache(fn, old_d, new_d);
  for (RecordId o = 0; o < old_d.num_records(); ++o) {
    for (RecordId n = 0; n < new_d.num_records(); ++n) {
      (void)cache.Aggregate(o, n);
    }
  }
  // Every default-config measure has a batched kernel, so the memo (and
  // its locks) must stay completely cold.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(SimCacheTest, MissingValuesFollowTheDirectPath) {
  // Records with empty occupation / age exercise every missing-value branch;
  // the cache must agree with the direct path on all of them, under every
  // missing policy, in both kernel modes.
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  for (const bool batched : {true, false}) {
    ScopedBatchKernels mode(batched);
    for (MissingPolicy policy :
         {MissingPolicy::kRedistribute, MissingPolicy::kZero,
          MissingPolicy::kNeutral}) {
      SimilarityFunction fn = PaperSimFunc();
      fn.set_missing_policy(policy);
      const SimCache cache(fn, old_d, new_d);
      for (RecordId o = 0; o < old_d.num_records(); ++o) {
        for (RecordId n = 0; n < new_d.num_records(); ++n) {
          EXPECT_EQ(cache.Aggregate(o, n),
                    fn.AggregateSimilarity(old_d.record(o), new_d.record(n)))
              << "batched=" << batched << " policy "
              << static_cast<int>(policy) << " pair (" << o << "," << n << ")";
        }
      }
    }
  }
}

TEST(SimCacheTest, WorksForOmega1Too) {
  // The ablation similarity function (different specs/weights) must be
  // cacheable through the same layer, in both modes.
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  SimilarityFunction fn = configs::Omega1();
  fn.set_year_gap(10);
  for (const bool batched : {true, false}) {
    ScopedBatchKernels mode(batched);
    const SimCache cache(fn, old_d, new_d);
    for (RecordId o = 0; o < old_d.num_records(); ++o) {
      for (RecordId n = 0; n < new_d.num_records(); ++n) {
        EXPECT_EQ(cache.Aggregate(o, n),
                  fn.AggregateSimilarity(old_d.record(o), new_d.record(n)))
            << "batched=" << batched;
      }
    }
  }
}

TEST(SimCacheTest, ThresholdScoringNeverPrunesAKeptPair) {
  // The pruning contract over the full fixture cross-product, at every
  // plausible cutoff: a pruned pair's exact aggregate is strictly below
  // min_sim, and a non-pruned pair's value is bit-identical to the exact
  // one — so keep-sets are identical to the scalar path at every
  // threshold.
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const SimilarityFunction fn = PaperSimFunc();
  ScopedBatchKernels batched_mode(true);
  const SimCache cache(fn, old_d, new_d);
  for (const double min_sim : {0.1, 0.5, 0.7, 0.85, 0.95, 1.0}) {
    for (RecordId o = 0; o < old_d.num_records(); ++o) {
      for (RecordId n = 0; n < new_d.num_records(); ++n) {
        const double exact =
            fn.AggregateSimilarity(old_d.record(o), new_d.record(n));
        const double got = cache.AggregateWithThreshold(o, n, min_sim);
        if (got == SimCache::kPruned) {
          EXPECT_LT(exact, min_sim)
              << "pruned a kept pair (" << o << "," << n << ") at "
              << min_sim;
        } else {
          EXPECT_EQ(got, exact)
              << "threshold path drifted for (" << o << "," << n << ") at "
              << min_sim;
        }
      }
    }
  }
}

TEST(SimCacheTest, ThresholdScoringIsExactInScalarModeAndAtZero) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const SimilarityFunction fn = PaperSimFunc();
  for (const bool batched : {true, false}) {
    ScopedBatchKernels mode(batched);
    const SimCache cache(fn, old_d, new_d);
    for (RecordId o = 0; o < old_d.num_records(); ++o) {
      for (RecordId n = 0; n < new_d.num_records(); ++n) {
        const double exact =
            fn.AggregateSimilarity(old_d.record(o), new_d.record(n));
        // min_sim <= 0 disables pruning in batched mode; scalar mode never
        // prunes at any threshold.
        EXPECT_EQ(cache.AggregateWithThreshold(o, n, 0.0), exact);
        if (!batched) {
          EXPECT_EQ(cache.AggregateWithThreshold(o, n, 0.9), exact);
        }
      }
    }
  }
}

}  // namespace
}  // namespace tglink
