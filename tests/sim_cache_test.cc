// SimCache correctness: the memoized aggregate must be bit-identical to the
// direct SimilarityFunction path (they share the AggregateWith arithmetic),
// hits/misses must reflect the skew of the value pools, and missing-value
// handling must mirror ComponentSimilarity exactly.

#include "tglink/similarity/sim_cache.h"

#include <gtest/gtest.h>

#include "tglink/linkage/config.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

SimilarityFunction PaperSimFunc() {
  SimilarityFunction fn = configs::DefaultConfig().sim_func;
  fn.set_year_gap(10);
  return fn;
}

TEST(SimCacheTest, BitIdenticalToDirectAggregationOverFullCrossProduct) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const SimilarityFunction fn = PaperSimFunc();
  const SimCache cache(fn, old_d, new_d);

  for (RecordId o = 0; o < old_d.num_records(); ++o) {
    for (RecordId n = 0; n < new_d.num_records(); ++n) {
      const double direct =
          fn.AggregateSimilarity(old_d.record(o), new_d.record(n));
      // EXPECT_EQ, not NEAR: the cache must reproduce the exact bits, both
      // on first computation (miss) and on replay (hit).
      EXPECT_EQ(cache.Aggregate(o, n), direct) << "pair (" << o << "," << n
                                               << ") first pass";
      EXPECT_EQ(cache.Aggregate(o, n), direct) << "pair (" << o << "," << n
                                               << ") cached pass";
    }
  }
}

TEST(SimCacheTest, RepeatedValuePairsHitTheMemo) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const SimilarityFunction fn = PaperSimFunc();
  const SimCache cache(fn, old_d, new_d);

  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  for (RecordId o = 0; o < old_d.num_records(); ++o) {
    for (RecordId n = 0; n < new_d.num_records(); ++n) {
      (void)cache.Aggregate(o, n);
    }
  }
  const uint64_t first_pass_misses = cache.misses();
  // The census fixture reuses names heavily (three johns, three
  // elizabeths, two smith households...), so even the first full pass must
  // find repeated (value, value) component pairs.
  EXPECT_GT(first_pass_misses, 0u);
  EXPECT_GT(cache.hits(), 0u);

  // A second pass over the same pairs computes nothing new.
  for (RecordId o = 0; o < old_d.num_records(); ++o) {
    for (RecordId n = 0; n < new_d.num_records(); ++n) {
      (void)cache.Aggregate(o, n);
    }
  }
  EXPECT_EQ(cache.misses(), first_pass_misses);
}

TEST(SimCacheTest, MissingValuesFollowTheDirectPath) {
  // Records with empty occupation / age exercise every missing-value branch;
  // the cache must agree with the direct path on all of them, under every
  // missing policy.
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  for (MissingPolicy policy : {MissingPolicy::kRedistribute,
                               MissingPolicy::kZero, MissingPolicy::kNeutral}) {
    SimilarityFunction fn = PaperSimFunc();
    fn.set_missing_policy(policy);
    const SimCache cache(fn, old_d, new_d);
    for (RecordId o = 0; o < old_d.num_records(); ++o) {
      for (RecordId n = 0; n < new_d.num_records(); ++n) {
        EXPECT_EQ(cache.Aggregate(o, n),
                  fn.AggregateSimilarity(old_d.record(o), new_d.record(n)))
            << "policy " << static_cast<int>(policy) << " pair (" << o << ","
            << n << ")";
      }
    }
  }
}

TEST(SimCacheTest, WorksForOmega1Too) {
  // The ablation similarity function (different specs/weights) must be
  // cacheable through the same layer.
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  SimilarityFunction fn = configs::Omega1();
  fn.set_year_gap(10);
  const SimCache cache(fn, old_d, new_d);
  for (RecordId o = 0; o < old_d.num_records(); ++o) {
    for (RecordId n = 0; n < new_d.num_records(); ++n) {
      EXPECT_EQ(cache.Aggregate(o, n),
                fn.AggregateSimilarity(old_d.record(o), new_d.record(n)));
    }
  }
}

}  // namespace
}  // namespace tglink
