#!/bin/sh
# Abnormal-exit flush: a bench harness that dies mid-run (here via the
# hidden --inject-fault=throw hook) must still leave a partial RunReport
# behind, marked "aborted":true with the failure reason — the
# terminate-handler path of bench::ReportOnAbort in bench_common.h.
set -eu

BENCH="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

if "$BENCH" --scale=0.03 --inject-fault=throw --report="$DIR/partial.json" \
    > "$DIR/stdout.txt" 2> "$DIR/stderr.txt"; then
  echo "expected non-zero exit from --inject-fault=throw" >&2
  exit 1
fi

test -s "$DIR/partial.json"
grep -q '"schema":"tglink.run_report/2"' "$DIR/partial.json"
grep -q '"aborted":true' "$DIR/partial.json"
grep -q "injected fault" "$DIR/partial.json"
# The flush announced itself on stderr with the report path.
grep -q "partial report" "$DIR/stderr.txt"

# Control: the same run without a fault exits 0 and the report is normal.
"$BENCH" --scale=0.03 --inject-fault=none --report="$DIR/clean.json" \
    > /dev/null 2>&1
if grep -q '"aborted"' "$DIR/clean.json"; then
  echo "clean run must not carry an aborted marker" >&2
  exit 1
fi

echo "abort report smoke OK"
