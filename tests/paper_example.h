// The paper's running example (Fig. 1): two census snapshots, 1871 and
// 1881, built exactly so that the hand-computed values of Sections 3.2-3.4
// (Fig. 3 clusters, Fig. 4 subgraphs, Eq. 8 scores) are reproducible in
// tests.
//
// 1871:
//   g_a: John Ashworth (head, 39), Elizabeth Ashworth (wife, 37),
//        Alice Ashworth (daughter, 8), William Ashworth (son, 2),
//        John Riley (lodger, 62)                         -- dies
//   g_b: John Smith (head, 41), Elizabeth Smith (wife, 40),
//        Steve Smith (son, 17)
// 1881:
//   g_a: John Ashworth (head, 49), Elizabeth Ashworth (wife, 47),
//        William Ashworth (son, 12)
//   g_b: John Smith (head, 51), Elizabeth Smith (wife, 50)
//   g_c: Steve Smith (head, 27), Alice Smith (wife, 18),
//        Mary Smith (daughter, 2)                        -- born
//   g_d: John Ashworth (head, 30), Elizabeth Ashworth (wife, 28),
//        William Ashworth (brother, 25)                  -- new family;
//        same names as g_a but different relationship structure, so only
//        the John-Elizabeth edge can match g_a's spouse edge.

#ifndef TGLINK_TESTS_PAPER_EXAMPLE_H_
#define TGLINK_TESTS_PAPER_EXAMPLE_H_

#include <string>
#include <vector>

#include "tglink/census/dataset.h"

namespace tglink {
namespace testing_example {

inline PersonRecord MakeRecord(const std::string& id, const std::string& fn,
                               const std::string& sn, Sex sex, int age,
                               Role role, const std::string& address,
                               const std::string& occupation) {
  PersonRecord r;
  r.external_id = id;
  r.first_name = fn;
  r.surname = sn;
  r.sex = sex;
  r.age = age;
  r.role = role;
  r.address = address;
  r.occupation = occupation;
  return r;
}

inline CensusDataset MakeCensus1871() {
  CensusDataset d(1871);
  d.AddHousehold(
      "g1871_a",
      {
          MakeRecord("1871_1", "john", "ashworth", Sex::kMale, 39, Role::kHead,
                     "12 mill street", "cotton weaver"),
          MakeRecord("1871_2", "elizabeth", "ashworth", Sex::kFemale, 37,
                     Role::kWife, "12 mill street", ""),
          MakeRecord("1871_3", "alice", "ashworth", Sex::kFemale, 8,
                     Role::kDaughter, "12 mill street", "scholar"),
          MakeRecord("1871_4", "william", "ashworth", Sex::kMale, 2,
                     Role::kSon, "12 mill street", ""),
          MakeRecord("1871_5", "john", "riley", Sex::kMale, 62, Role::kLodger,
                     "12 mill street", "farm labourer"),
      });
  d.AddHousehold(
      "g1871_b",
      {
          MakeRecord("1871_6", "john", "smith", Sex::kMale, 41, Role::kHead,
                     "3 bank street", "coal miner"),
          MakeRecord("1871_7", "elizabeth", "smith", Sex::kFemale, 40,
                     Role::kWife, "3 bank street", ""),
          MakeRecord("1871_8", "steve", "smith", Sex::kMale, 17, Role::kSon,
                     "3 bank street", "cotton piecer"),
      });
  return d;
}

inline CensusDataset MakeCensus1881() {
  CensusDataset d(1881);
  d.AddHousehold(
      "g1881_a",
      {
          MakeRecord("1881_1", "john", "ashworth", Sex::kMale, 49, Role::kHead,
                     "12 mill street", "cotton weaver"),
          MakeRecord("1881_2", "elizabeth", "ashworth", Sex::kFemale, 47,
                     Role::kWife, "12 mill street", ""),
          MakeRecord("1881_3", "william", "ashworth", Sex::kMale, 12,
                     Role::kSon, "12 mill street", "scholar"),
      });
  d.AddHousehold(
      "g1881_b",
      {
          MakeRecord("1881_4", "john", "smith", Sex::kMale, 51, Role::kHead,
                     "3 bank street", "coal miner"),
          MakeRecord("1881_5", "elizabeth", "smith", Sex::kFemale, 50,
                     Role::kWife, "3 bank street", ""),
      });
  d.AddHousehold(
      "g1881_c",
      {
          MakeRecord("1881_6", "steve", "smith", Sex::kMale, 27, Role::kHead,
                     "7 dale street", "coal miner"),
          MakeRecord("1881_7", "alice", "smith", Sex::kFemale, 18, Role::kWife,
                     "7 dale street", ""),
          MakeRecord("1881_8", "mary", "smith", Sex::kFemale, 2,
                     Role::kDaughter, "7 dale street", ""),
      });
  d.AddHousehold(
      "g1881_d",
      {
          MakeRecord("1881_9", "john", "ashworth", Sex::kMale, 30, Role::kHead,
                     "44 burnley road", "grocer"),
          MakeRecord("1881_10", "elizabeth", "ashworth", Sex::kFemale, 28,
                     Role::kWife, "44 burnley road", "dressmaker"),
          MakeRecord("1881_11", "william", "ashworth", Sex::kMale, 25,
                     Role::kBrother, "44 burnley road", "clerk"),
      });
  return d;
}

/// GroupIds in construction order.
inline constexpr GroupId kG1871A = 0, kG1871B = 1;
inline constexpr GroupId kG1881A = 0, kG1881B = 1, kG1881C = 2, kG1881D = 3;

}  // namespace testing_example
}  // namespace tglink

#endif  // TGLINK_TESTS_PAPER_EXAMPLE_H_
