#include "tglink/eval/gold.h"

#include <gtest/gtest.h>

#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

GoldMapping ExampleGold() {
  GoldMapping gold;
  gold.record_links = {{"1871_1", "1881_1"}, {"1871_8", "1881_6"}};
  gold.group_links = {{"g1871_a", "g1881_a"}, {"g1871_b", "g1881_c"}};
  return gold;
}

TEST(GoldTest, ResolveMapsExternalToDenseIds) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  auto resolved = ResolveGold(ExampleGold(), old_d, new_d);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value().record_links,
            (std::vector<RecordLink>{{0, 0}, {7, 5}}));
  EXPECT_EQ(resolved.value().group_links,
            (std::vector<GroupLink>{{kG1871A, kG1881A}, {kG1871B, kG1881C}}));
}

TEST(GoldTest, ResolveRejectsUnknownIds) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  GoldMapping gold;
  gold.record_links = {{"nope", "1881_1"}};
  EXPECT_FALSE(ResolveGold(gold, old_d, new_d).ok());
  gold.record_links = {{"1871_1", "nope"}};
  EXPECT_FALSE(ResolveGold(gold, old_d, new_d).ok());
  gold.record_links.clear();
  gold.group_links = {{"gX", "g1881_a"}};
  EXPECT_FALSE(ResolveGold(gold, old_d, new_d).ok());
}

TEST(GoldTest, RestrictToHouseholdSubset) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  auto resolved = ResolveGold(ExampleGold(), old_d, new_d);
  ASSERT_TRUE(resolved.ok());
  const ResolvedGold restricted = RestrictGoldToHouseholds(
      resolved.value(), old_d, {kG1871A});
  // Only links whose old side lives in g1871_a survive.
  EXPECT_EQ(restricted.record_links,
            (std::vector<RecordLink>{{0, 0}}));
  EXPECT_EQ(restricted.group_links,
            (std::vector<GroupLink>{{kG1871A, kG1881A}}));
}

TEST(GoldTest, CsvRoundTrip) {
  const GoldMapping gold = ExampleGold();
  const std::string csv = GoldToCsv(gold);
  auto loaded = GoldFromCsv(csv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().record_links, gold.record_links);
  EXPECT_EQ(loaded.value().group_links, gold.group_links);
}

TEST(GoldTest, CsvRejectsMalformedInput) {
  EXPECT_FALSE(GoldFromCsv("").ok());
  EXPECT_FALSE(GoldFromCsv("bad,header,row\n").ok());
  EXPECT_FALSE(GoldFromCsv("kind,old_id,new_id\nwrong,a,b\n").ok());
  EXPECT_FALSE(GoldFromCsv("kind,old_id,new_id\nrecord,a\n").ok());
}

}  // namespace
}  // namespace tglink
