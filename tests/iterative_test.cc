#include "tglink/linkage/iterative.h"

#include <set>

#include <gtest/gtest.h>

#include "tglink/eval/metrics.h"
#include "tglink/synth/generator.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

LinkageConfig PaperExampleConfig() {
  LinkageConfig config = configs::DefaultConfig();
  config.blocking = BlockingConfig::MakeExhaustive();
  return config;
}

TEST(IterativeTest, PaperExampleLinksTheRightGroups) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const LinkageResult result =
      LinkCensusPair(old_d, new_d, PaperExampleConfig());

  // The true household continuations are linked...
  EXPECT_TRUE(result.group_mapping.Contains(kG1871A, kG1881A));
  EXPECT_TRUE(result.group_mapping.Contains(kG1871B, kG1881B));
  // ...and the decoy household with identical names is NOT.
  EXPECT_FALSE(result.group_mapping.Contains(kG1871A, kG1881D));

  // Core person links (record ids per paper_example.h).
  EXPECT_EQ(result.record_mapping.NewFor(0), 0u);  // john ashworth
  EXPECT_EQ(result.record_mapping.NewFor(1), 1u);  // elizabeth ashworth
  EXPECT_EQ(result.record_mapping.NewFor(3), 2u);  // william ashworth
  EXPECT_EQ(result.record_mapping.NewFor(5), 3u);  // john smith
  EXPECT_EQ(result.record_mapping.NewFor(6), 4u);  // elizabeth smith
  // John Riley (died) stays unlinked; Mary Smith (born) stays unlinked.
  EXPECT_FALSE(result.record_mapping.IsOldLinked(4));
  EXPECT_FALSE(result.record_mapping.IsNewLinked(7));
}

TEST(IterativeTest, PaperExampleSteveFoundByResidualMatching) {
  // Steve moved households: no shared edge context, so subgraph matching
  // cannot link him — the residual matcher must.
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const LinkageResult result =
      LinkCensusPair(old_d, new_d, PaperExampleConfig());
  EXPECT_EQ(result.record_mapping.NewFor(7), 5u);  // steve smith
  EXPECT_GE(result.residual_record_links, 1u);
  // His move induces the (g_b, g_c) group link.
  EXPECT_TRUE(result.group_mapping.Contains(kG1871B, kG1881C));
}

TEST(IterativeTest, IterationStatsAreWellFormed) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const LinkageConfig config = PaperExampleConfig();
  const LinkageResult result = LinkCensusPair(old_d, new_d, config);
  ASSERT_FALSE(result.iterations.empty());
  EXPECT_DOUBLE_EQ(result.iterations.front().delta, config.delta_high);
  for (size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_LT(result.iterations[i].delta, result.iterations[i - 1].delta);
    EXPECT_GE(result.iterations[i].delta, config.delta_low - 1e-9);
  }
  EXPECT_FALSE(result.Summary().empty());
}

TEST(IterativeTest, OneToOneRecordMappingInvariant) {
  GeneratorConfig gen;
  gen.seed = 11;
  gen.scale = 0.04;
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  const LinkageResult result =
      LinkCensusPair(pair.old_dataset, pair.new_dataset,
                     configs::DefaultConfig());
  std::set<RecordId> olds, news;
  for (const RecordLink& link : result.record_mapping.links()) {
    EXPECT_TRUE(olds.insert(link.first).second) << "old linked twice";
    EXPECT_TRUE(news.insert(link.second).second) << "new linked twice";
  }
  // Every group link must be supported by at least one record link.
  std::set<std::pair<GroupId, GroupId>> supported;
  for (const RecordLink& link : result.record_mapping.links()) {
    supported.emplace(pair.old_dataset.record(link.first).group,
                      pair.new_dataset.record(link.second).group);
  }
  for (const GroupLink& link : result.group_mapping.links()) {
    EXPECT_TRUE(supported.count(link))
        << "group link without record support";
  }
}

TEST(IterativeTest, QualityOnSyntheticDataIsHigh) {
  GeneratorConfig gen;
  gen.seed = 13;
  gen.scale = 0.06;
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  const LinkageResult result = LinkCensusPair(
      pair.old_dataset, pair.new_dataset, configs::DefaultConfig());
  auto gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
  ASSERT_TRUE(gold.ok());
  const PrecisionRecall record_pr =
      EvaluateRecordMapping(result.record_mapping, gold.value());
  const PrecisionRecall group_pr =
      EvaluateGroupMapping(result.group_mapping, gold.value());
  EXPECT_GT(record_pr.f_measure(), 0.85) << record_pr.ToString();
  EXPECT_GT(group_pr.f_measure(), 0.80) << group_pr.ToString();
}

TEST(IterativeTest, IterativeBeatsNonIterativeOnAverage) {
  // The Table 5 claim, checked as a property on synthetic data. Individual
  // tiny seeds are noisy, so aggregate the confusion counts over several.
  PrecisionRecall iter_total, flat_total;
  for (uint64_t seed : {17u, 18u, 19u}) {
    GeneratorConfig gen;
    gen.seed = seed;
    gen.scale = 0.06;
    gen.num_censuses = 2;
    const SyntheticPair pair = GenerateCensusPair(gen, 0);
    auto gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
    ASSERT_TRUE(gold.ok());

    LinkageConfig oneshot = configs::DefaultConfig();
    oneshot.delta_high = oneshot.delta_low = 0.5;
    const LinkageResult iter_result = LinkCensusPair(
        pair.old_dataset, pair.new_dataset, configs::DefaultConfig());
    const LinkageResult flat_result =
        LinkCensusPair(pair.old_dataset, pair.new_dataset, oneshot);
    for (const auto& [result, total] :
         {std::make_pair(&iter_result, &iter_total),
          std::make_pair(&flat_result, &flat_total)}) {
      const PrecisionRecall pr =
          EvaluateRecordMapping(result->record_mapping, gold.value());
      total->true_positives += pr.true_positives;
      total->false_positives += pr.false_positives;
      total->false_negatives += pr.false_negatives;
    }
  }
  EXPECT_GE(iter_total.f_measure(), flat_total.f_measure() - 0.005)
      << "iterative " << iter_total.ToString() << " vs one-shot "
      << flat_total.ToString();
}

TEST(IterativeTest, DeterministicAcrossRuns) {
  GeneratorConfig gen;
  gen.seed = 19;
  gen.scale = 0.03;
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  const LinkageResult a = LinkCensusPair(pair.old_dataset, pair.new_dataset,
                                         configs::DefaultConfig());
  const LinkageResult b = LinkCensusPair(pair.old_dataset, pair.new_dataset,
                                         configs::DefaultConfig());
  EXPECT_EQ(a.record_mapping.links(), b.record_mapping.links());
  EXPECT_EQ(a.group_mapping.SortedLinks(), b.group_mapping.SortedLinks());
}

TEST(IterativeTest, EnrichmentAblationChangesNothingStructural) {
  // With enrichment off the algorithm must still run and produce a valid
  // 1:1 mapping (quality is compared in the ablation bench).
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  LinkageConfig config = PaperExampleConfig();
  config.enrich_groups = false;
  const LinkageResult result = LinkCensusPair(old_d, new_d, config);
  std::set<RecordId> olds;
  for (const RecordLink& link : result.record_mapping.links()) {
    EXPECT_TRUE(olds.insert(link.first).second);
  }
}

}  // namespace
}  // namespace tglink
