#include "tglink/linkage/prematching.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/paper_example.h"

namespace tglink {
namespace {

using testing_example::MakeCensus1871;
using testing_example::MakeCensus1881;

/// Fig. 3's configuration: exact first name + surname, threshold 1.
SimilarityFunction Fig3SimFunc() {
  return SimilarityFunction(
      {
          {Field::kFirstName, Measure::kQGramDice, 0.5},
          {Field::kSurname, Measure::kQGramDice, 0.5},
      },
      1.0);
}

class PreMatchingFig3Test : public ::testing::Test {
 protected:
  PreMatchingFig3Test()
      : old_d_(MakeCensus1871()),
        new_d_(MakeCensus1881()),
        sim_func_(Fig3SimFunc()),
        prematcher_(old_d_, new_d_, sim_func_,
                    BlockingConfig::MakeExhaustive(), 1.0),
        clustering_(prematcher_.Cluster(
            1.0, std::vector<bool>(old_d_.num_records(), true),
            std::vector<bool>(new_d_.num_records(), true))) {}

  CensusDataset old_d_;
  CensusDataset new_d_;
  SimilarityFunction sim_func_;
  PreMatcher prematcher_;
  Clustering clustering_;
};

TEST_F(PreMatchingFig3Test, ReproducesPaperClusters) {
  // Fig. 3: {1871_1, 1881_1, 1881_9} share label A, etc.
  // record ids: 1871: 0..7 ; 1881: 0..10 (see paper_example.h).
  const auto label_old = [&](RecordId r) { return clustering_.old_labels[r]; };
  const auto label_new = [&](RecordId r) { return clustering_.new_labels[r]; };

  // A: john ashworth — 1871_1(0), 1881_1(0), 1881_9(8).
  EXPECT_EQ(label_old(0), label_new(0));
  EXPECT_EQ(label_old(0), label_new(8));
  // B: elizabeth ashworth — 1871_2(1), 1881_2(1), 1881_10(9).
  EXPECT_EQ(label_old(1), label_new(1));
  EXPECT_EQ(label_old(1), label_new(9));
  // C: william ashworth — 1871_4(3), 1881_3(2), 1881_11(10).
  EXPECT_EQ(label_old(3), label_new(2));
  EXPECT_EQ(label_old(3), label_new(10));
  // D/E/F: the smiths.
  EXPECT_EQ(label_old(5), label_new(3));  // john smith
  EXPECT_EQ(label_old(6), label_new(4));  // elizabeth smith
  EXPECT_EQ(label_old(7), label_new(5));  // steve smith
  // Alice Ashworth (2) and Alice Smith (6) carry DIFFERENT labels (I vs K).
  EXPECT_NE(label_old(2), label_new(6));
  // John Riley (4) and Mary Smith (7) are singletons.
  EXPECT_EQ(clustering_.LabelSize(label_old(4)), 1u);
  EXPECT_EQ(clustering_.LabelSize(label_new(7)), 1u);
  // Distinct clusters are distinct labels.
  EXPECT_NE(label_old(0), label_old(1));
  EXPECT_NE(label_old(0), label_old(5));
}

TEST_F(PreMatchingFig3Test, LabelSizesMatchPaper) {
  // |A| = |B| = |C| = 3 (used by the uniqueness example, Eq. 8).
  EXPECT_EQ(clustering_.LabelSize(clustering_.old_labels[0]), 3u);
  EXPECT_EQ(clustering_.LabelSize(clustering_.old_labels[1]), 3u);
  EXPECT_EQ(clustering_.LabelSize(clustering_.old_labels[3]), 3u);
  EXPECT_EQ(clustering_.LabelSize(clustering_.old_labels[5]), 2u);  // D
}

TEST_F(PreMatchingFig3Test, MemberListsConsistentWithLabels) {
  for (RecordId r = 0; r < old_d_.num_records(); ++r) {
    const uint32_t label = clustering_.old_labels[r];
    ASSERT_NE(label, Clustering::kNoLabel);
    const auto& members = clustering_.label_old_members[label];
    EXPECT_NE(std::find(members.begin(), members.end(), r), members.end());
  }
}

TEST_F(PreMatchingFig3Test, PairSimilarityCachedAndOnDemandAgree) {
  // Cached pair (john ashworth 0-0) and a non-cached pair must both return
  // the underlying similarity function's value.
  EXPECT_DOUBLE_EQ(prematcher_.PairSimilarity(0, 0), 1.0);
  const double direct =
      sim_func_.AggregateSimilarity(old_d_.record(2), new_d_.record(6));
  EXPECT_DOUBLE_EQ(prematcher_.PairSimilarity(2, 6), direct);
}

TEST_F(PreMatchingFig3Test, InactiveRecordsExcluded) {
  std::vector<bool> active_old(old_d_.num_records(), true);
  std::vector<bool> active_new(new_d_.num_records(), true);
  active_old[0] = false;  // John Ashworth 1871 already matched
  const Clustering c = prematcher_.Cluster(1.0, active_old, active_new);
  EXPECT_EQ(c.old_labels[0], Clustering::kNoLabel);
  // The 1881 Johns still cluster with each other? No — clustering links only
  // across accepted pairs, and pairs require one old + one new record; the
  // two 1881 Johns are connected only through 1871_1. Without it they are
  // separate.
  EXPECT_NE(c.new_labels[0], c.new_labels[8]);
}

TEST(PreMatchingTest, LowerThresholdNeverShrinksClusters) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  SimilarityFunction f(
      {
          {Field::kFirstName, Measure::kQGramDice, 0.5},
          {Field::kSurname, Measure::kQGramDice, 0.5},
      },
      0.5);
  PreMatcher pm(old_d, new_d, f, BlockingConfig::MakeExhaustive(), 0.5);
  const std::vector<bool> all_old(old_d.num_records(), true);
  const std::vector<bool> all_new(new_d.num_records(), true);
  const Clustering strict = pm.Cluster(0.9, all_old, all_new);
  const Clustering loose = pm.Cluster(0.5, all_old, all_new);
  // Records sharing a label at 0.9 must also share one at 0.5.
  for (RecordId o = 0; o < old_d.num_records(); ++o) {
    for (RecordId n = 0; n < new_d.num_records(); ++n) {
      if (strict.old_labels[o] == strict.new_labels[n]) {
        EXPECT_EQ(loose.old_labels[o], loose.new_labels[n]);
      }
    }
  }
  EXPECT_LE(loose.num_labels, strict.num_labels);
}

TEST(PreMatchingTest, ScoredPairsRespectMinThreshold) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  SimilarityFunction f(
      {
          {Field::kFirstName, Measure::kQGramDice, 0.5},
          {Field::kSurname, Measure::kQGramDice, 0.5},
      },
      0.5);
  PreMatcher pm(old_d, new_d, f, BlockingConfig::MakeExhaustive(), 0.6);
  for (const ScoredPair& p : pm.scored_pairs()) {
    EXPECT_GE(p.sim, 0.6);
  }
}

}  // namespace
}  // namespace tglink
