#include "tglink/synth/name_pools.h"

#include <set>

#include <gtest/gtest.h>

#include "tglink/util/strings.h"

namespace tglink {
namespace {

TEST(NamePoolsTest, PoolsAreNonTrivialAndNormalized) {
  for (const auto* pool : {&MaleFirstNames(), &FemaleFirstNames(),
                           &Surnames(), &Occupations(), &StreetNames()}) {
    EXPECT_GT(pool->size(), 50u);
    for (const std::string& value : *pool) {
      EXPECT_FALSE(value.empty());
      EXPECT_EQ(value, NormalizeValue(value)) << value;
    }
  }
  // The surname pool is large enough to drive Table 1's unique-name growth.
  EXPECT_GT(Surnames().size(), 500u);
}

TEST(NamePoolsTest, SurnamesAreUnique) {
  std::set<std::string> seen(Surnames().begin(), Surnames().end());
  EXPECT_EQ(seen.size(), Surnames().size());
}

TEST(NamePoolsTest, CuratedHeadPrecedesGeneratedTail) {
  // Zipf rank 0 and 1 must stay the famously frequent local surnames that
  // the paper names (ashworth, smith).
  EXPECT_EQ(Surnames()[0], "ashworth");
  EXPECT_EQ(Surnames()[1], "smith");
}

TEST(NamePoolsTest, NicknamesCoverCommonNames) {
  EXPECT_FALSE(NicknamesFor("john").empty());
  EXPECT_FALSE(NicknamesFor("elizabeth").empty());
  EXPECT_TRUE(NicknamesFor("zebedee").empty());
  for (const std::string& nickname : NicknamesFor("william")) {
    EXPECT_EQ(nickname, NormalizeValue(nickname));
  }
}

TEST(NameSamplerTest, SamplesComeFromPoolsAndRespectSex) {
  NameSampler sampler;
  Rng rng(5);
  const std::set<std::string> male(MaleFirstNames().begin(),
                                   MaleFirstNames().end());
  const std::set<std::string> female(FemaleFirstNames().begin(),
                                     FemaleFirstNames().end());
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(male.count(sampler.SampleFirstName(Sex::kMale, &rng)));
    EXPECT_TRUE(female.count(sampler.SampleFirstName(Sex::kFemale, &rng)));
  }
}

TEST(NameSamplerTest, SurnameSamplingIsSkewed) {
  NameSampler sampler;
  Rng rng(6);
  size_t head_hits = 0;
  const std::set<std::string> head(Surnames().begin(), Surnames().begin() + 20);
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (head.count(sampler.SampleSurname(&rng))) ++head_hits;
  }
  // The 20 most frequent surnames must carry a large share of the mass.
  EXPECT_GT(head_hits, n / 5);

  // The diverse sampler spreads far wider.
  size_t diverse_head_hits = 0;
  for (int i = 0; i < n; ++i) {
    if (head.count(sampler.SampleSurnameDiverse(&rng))) ++diverse_head_hits;
  }
  EXPECT_LT(diverse_head_hits, head_hits);
}

TEST(NameSamplerTest, AddressesHaveNumberAndKnownStreet) {
  NameSampler sampler;
  Rng rng(7);
  const std::set<std::string> streets(StreetNames().begin(),
                                      StreetNames().end());
  for (int i = 0; i < 50; ++i) {
    const std::string address = sampler.SampleAddress(&rng);
    const size_t space = address.find(' ');
    ASSERT_NE(space, std::string::npos);
    EXPECT_GT(ParseNonNegativeInt(address.substr(0, space)), 0);
    EXPECT_TRUE(streets.count(address.substr(space + 1))) << address;
  }
}

}  // namespace
}  // namespace tglink
