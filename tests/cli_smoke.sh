#!/bin/sh
# End-to-end smoke test of tglink_cli: generate -> stats/profile -> link ->
# evaluate -> analyze, checking exit codes and that artifacts materialize.
set -eu

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" generate --out-dir "$DIR" --scale 0.03 --censuses 3 --seed 5 > /dev/null

test -s "$DIR/census_1851.csv"
test -s "$DIR/census_1861.csv"
test -s "$DIR/census_1871.csv"
test -s "$DIR/gold_1851_1861.csv"

"$CLI" stats --census "$DIR/census_1851.csv" --year 1851 | grep -q 1851
"$CLI" profile --census "$DIR/census_1851.csv" --year 1851 \
    --max-warnings 5 | grep -q "attributes:"

"$CLI" link --old "$DIR/census_1851.csv" --old-year 1851 \
    --new "$DIR/census_1861.csv" --new-year 1861 \
    --out "$DIR/map.csv" --report "$DIR/report.json" \
    --trace "$DIR/trace.json" > /dev/null
test -s "$DIR/map.csv"
grep -q "tglink.run_report/2" "$DIR/report.json"
grep -q "traceEvents" "$DIR/trace.json"
grep -q "linkage.link_census_pair" "$DIR/trace.json"

"$CLI" evaluate --old "$DIR/census_1851.csv" --old-year 1851 \
    --new "$DIR/census_1861.csv" --new-year 1861 \
    --mappings "$DIR/map.csv" --gold "$DIR/gold_1851_1861.csv" \
    --protocol verified | grep -q "record mapping"
"$CLI" evaluate --old "$DIR/census_1851.csv" --old-year 1851 \
    --new "$DIR/census_1861.csv" --new-year 1861 \
    --mappings "$DIR/map.csv" --gold "$DIR/gold_1851_1861.csv" \
    --protocol full | grep -q "record mapping"

"$CLI" analyze --dir "$DIR" --years 1851,1861,1871 \
    --dot "$DIR/evo.dot" --csv "$DIR/evo.csv" > /dev/null
test -s "$DIR/evo.dot"
grep -q "digraph evolution" "$DIR/evo.dot"
test -s "$DIR/evo.csv"

# Scenario registry: listing, validation, and scenario-driven generation.
"$CLI" scenarios | grep -q "rawtenstall"
"$CLI" scenarios --validate migration_shock | grep -q "ok"
mkdir "$DIR/shock"
"$CLI" generate --out-dir "$DIR/shock" --scenario migration_shock \
    --scale 0.03 > /dev/null
test -s "$DIR/shock/census_1851.csv"
# An unknown scenario and an out-of-range profile both fail loudly.
if "$CLI" generate --out-dir "$DIR/x" --scenario no_such_profile \
    > /dev/null 2>&1; then exit 1; fi
printf '{"schema": "tglink.scenario/1", "name": "bad",\n' > "$DIR/bad.json"
printf ' "population": {"emigration_prob": 2.0}}\n' >> "$DIR/bad.json"
if "$CLI" scenarios --validate "$DIR/bad.json" > /dev/null 2>&1; then
  exit 1
fi

# Unknown commands and missing options fail loudly.
if "$CLI" frobnicate > /dev/null 2>&1; then exit 1; fi
if "$CLI" link > /dev/null 2>&1; then exit 1; fi
# Malformed numeric option values are rejected, not silently parsed as 0.
if "$CLI" stats --census "$DIR/census_1851.csv" --year banana \
    > /dev/null 2>&1; then exit 1; fi

echo "cli smoke OK"
