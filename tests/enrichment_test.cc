#include "tglink/graph/enrichment.h"

#include <gtest/gtest.h>

#include "tests/paper_example.h"

namespace tglink {
namespace {

using testing_example::MakeCensus1871;
using testing_example::MakeCensus1881;

TEST(DeriveRelTypeTest, UnifiedTypeMatrix) {
  EXPECT_EQ(DeriveRelType(Role::kHead, Role::kWife), RelType::kSpouse);
  EXPECT_EQ(DeriveRelType(Role::kWife, Role::kHead), RelType::kSpouse);
  EXPECT_EQ(DeriveRelType(Role::kHead, Role::kSon), RelType::kParentChild);
  EXPECT_EQ(DeriveRelType(Role::kWife, Role::kDaughter),
            RelType::kParentChild);
  EXPECT_EQ(DeriveRelType(Role::kSon, Role::kDaughter), RelType::kSibling);
  EXPECT_EQ(DeriveRelType(Role::kHead, Role::kBrother), RelType::kSibling);
  EXPECT_EQ(DeriveRelType(Role::kHead, Role::kGrandson),
            RelType::kGrandparent);
  EXPECT_EQ(DeriveRelType(Role::kMother, Role::kSon), RelType::kGrandparent);
  EXPECT_EQ(DeriveRelType(Role::kMother, Role::kGrandson),
            RelType::kExtended);  // 3 generations apart
  EXPECT_EQ(DeriveRelType(Role::kHead, Role::kLodger), RelType::kCoResident);
  EXPECT_EQ(DeriveRelType(Role::kServant, Role::kServant),
            RelType::kCoResident);
  EXPECT_EQ(DeriveRelType(Role::kUnknown, Role::kHead), RelType::kCoResident);
}

TEST(EnrichmentTest, CompleteGraphOverMembers) {
  const CensusDataset d = MakeCensus1871();
  const HouseholdGraph g = EnrichHousehold(d, testing_example::kG1871A);
  // 5 members -> C(5,2) = 10 implicit relationships (the paper's |E| = 10
  // for this very household).
  EXPECT_EQ(g.members().size(), 5u);
  EXPECT_EQ(g.num_edges(), 10u);
  // Every member pair connected.
  for (size_t i = 0; i < g.members().size(); ++i) {
    for (size_t j = i + 1; j < g.members().size(); ++j) {
      EXPECT_NE(g.EdgeBetween(g.members()[i], g.members()[j]), nullptr);
    }
  }
}

TEST(EnrichmentTest, PaperExampleEdgeProperties) {
  const CensusDataset d = MakeCensus1871();
  const HouseholdGraph g = EnrichHousehold(d, testing_example::kG1871A);
  // John (record 0, 39) - Alice (record 2, 8): parent-child, age diff 31.
  const RelEdge* ja = g.EdgeBetween(0, 2);
  ASSERT_NE(ja, nullptr);
  EXPECT_EQ(ja->type, RelType::kParentChild);
  ASSERT_TRUE(ja->age_diff_known);
  EXPECT_EQ(g.OrientedAgeDiff(*ja, 0, 2), 31);
  EXPECT_EQ(g.OrientedAgeDiff(*ja, 2, 0), -31);
  // Alice (2, 8) - William (3, 2): siblings, age diff 6.
  const RelEdge* aw = g.EdgeBetween(2, 3);
  ASSERT_NE(aw, nullptr);
  EXPECT_EQ(aw->type, RelType::kSibling);
  EXPECT_EQ(g.OrientedAgeDiff(*aw, 2, 3), 6);
  // John - John Riley (4, lodger): co-resident.
  const RelEdge* jr = g.EdgeBetween(0, 4);
  ASSERT_NE(jr, nullptr);
  EXPECT_EQ(jr->type, RelType::kCoResident);
}

TEST(EnrichmentTest, MissingAgeMakesAgeDiffUnknown) {
  CensusDataset d(1871);
  d.AddHousehold(
      "h",
      {testing_example::MakeRecord("r1", "a", "x", Sex::kMale, 40, Role::kHead,
                                   "", ""),
       testing_example::MakeRecord("r2", "b", "x", Sex::kFemale, -1,
                                   Role::kWife, "", "")});
  const HouseholdGraph g = EnrichHousehold(d, 0);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.edges()[0].age_diff_known);
  EXPECT_EQ(g.edges()[0].type, RelType::kSpouse);
}

TEST(EnrichmentTest, EnrichAllCoversEveryHousehold) {
  const CensusDataset d = MakeCensus1881();
  const std::vector<HouseholdGraph> graphs = EnrichAllHouseholds(d);
  ASSERT_EQ(graphs.size(), d.num_households());
  for (GroupId g = 0; g < d.num_households(); ++g) {
    EXPECT_EQ(graphs[g].group(), g);
    const size_t n = d.household(g).members.size();
    EXPECT_EQ(graphs[g].num_edges(), n * (n - 1) / 2);
  }
}

TEST(EnrichmentTest, SingletonHouseholdHasNoEdges) {
  CensusDataset d(1871);
  d.AddHousehold("h", {testing_example::MakeRecord(
                          "r1", "a", "x", Sex::kMale, 40, Role::kHead, "",
                          "")});
  const HouseholdGraph g = EnrichHousehold(d, 0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.members().size(), 1u);
}

TEST(HouseholdGraphTest, EdgeCanonicalization) {
  // AddEdge must canonicalize endpoint order and flip the age sign.
  CensusDataset d(1871);
  d.AddHousehold(
      "h",
      {testing_example::MakeRecord("r1", "a", "x", Sex::kMale, 40, Role::kHead,
                                   "", ""),
       testing_example::MakeRecord("r2", "b", "x", Sex::kFemale, 30,
                                   Role::kWife, "", "")});
  HouseholdGraph g(0, d.household(0).members);
  g.AddEdge(1, 0, RelType::kSpouse, -10, true);  // b->a: 30-40 = -10
  const RelEdge* e = g.EdgeBetween(0, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->a, 0u);
  EXPECT_EQ(e->b, 1u);
  EXPECT_EQ(e->age_diff, 10);  // canonical orientation a(40) - b(30)
  EXPECT_EQ(g.OrientedAgeDiff(*e, 1, 0), -10);
}

TEST(HouseholdGraphTest, RelTypeNamesAreDistinct) {
  EXPECT_STREQ(RelTypeName(RelType::kSpouse), "spouse");
  EXPECT_STREQ(RelTypeName(RelType::kParentChild), "parent-child");
  EXPECT_STREQ(RelTypeName(RelType::kCoResident), "co-resident");
}

}  // namespace
}  // namespace tglink
