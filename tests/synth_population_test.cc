#include "tglink/synth/population.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

namespace tglink {
namespace {

PopulationConfig SmallConfig() {
  PopulationConfig config;
  config.household_targets = {120, 150, 180};
  return config;
}

TEST(PopulationTest, InitialPopulationHitsTarget) {
  Rng rng(1);
  Population population(SmallConfig(), &rng);
  EXPECT_EQ(population.PresentHouseholds(), 120u);
  EXPECT_GT(population.PresentPersons(), 200u);  // families, not singletons
  EXPECT_EQ(population.current_year(), 1851);
}

TEST(PopulationTest, AdvanceDecadeReachesTargets) {
  Rng rng(2);
  Population population(SmallConfig(), &rng);
  population.AdvanceDecade(&rng);
  EXPECT_EQ(population.current_year(), 1861);
  EXPECT_GE(population.PresentHouseholds(), 150u);
  population.AdvanceDecade(&rng);
  EXPECT_GE(population.PresentHouseholds(), 180u);
}

TEST(PopulationTest, SnapshotIsValidDataset) {
  Rng rng(3);
  Population population(SmallConfig(), &rng);
  const CorruptionModel corruption{CorruptionConfig{}};
  for (int step = 0; step < 3; ++step) {
    const Population::Snapshot snapshot =
        population.TakeSnapshot(corruption, &rng);
    ASSERT_TRUE(snapshot.dataset.Validate().ok());
    EXPECT_EQ(snapshot.record_pids.size(), snapshot.dataset.num_records());
    EXPECT_EQ(snapshot.household_hids.size(),
              snapshot.dataset.num_households());
    if (step < 2) population.AdvanceDecade(&rng);
  }
}

TEST(PopulationTest, HouseholdMembershipIsConsistent) {
  Rng rng(4);
  Population population(SmallConfig(), &rng);
  population.AdvanceDecade(&rng);
  population.AdvanceDecade(&rng);
  for (const auto& [hid, household] : population.households()) {
    if (!household.present) continue;
    for (uint64_t pid : household.members) {
      const SimPerson& person = population.persons().at(pid);
      EXPECT_TRUE(person.present);
      EXPECT_EQ(person.household, hid);
    }
    if (!household.members.empty()) {
      // The head is a member.
      EXPECT_NE(std::find(household.members.begin(), household.members.end(),
                          household.head),
                household.members.end());
    }
  }
  // Every present person is in exactly one present household.
  for (const auto& [pid, person] : population.persons()) {
    if (!person.present) continue;
    ASSERT_NE(person.household, 0u);
    const SimHousehold& hh = population.households().at(person.household);
    EXPECT_TRUE(hh.present);
  }
}

TEST(PopulationTest, EveryHouseholdHasExactlyOneHeadRole) {
  Rng rng(5);
  Population population(SmallConfig(), &rng);
  population.AdvanceDecade(&rng);
  CorruptionConfig no_noise;
  no_noise.noise_scale = 0.0;
  const CorruptionModel corruption(no_noise);
  const Population::Snapshot snapshot =
      population.TakeSnapshot(corruption, &rng);
  for (const Household& hh : snapshot.dataset.households()) {
    int heads = 0;
    for (RecordId r : hh.members) {
      if (snapshot.dataset.record(r).role == Role::kHead) ++heads;
    }
    EXPECT_EQ(heads, 1) << "household " << hh.external_id;
  }
}

TEST(PopulationTest, AgesAreConsistentWithYears) {
  Rng rng(6);
  Population population(SmallConfig(), &rng);
  CorruptionConfig no_noise;
  no_noise.noise_scale = 0.0;
  const CorruptionModel corruption(no_noise);
  const Population::Snapshot snapshot =
      population.TakeSnapshot(corruption, &rng);
  for (const PersonRecord& record : snapshot.dataset.records()) {
    EXPECT_GE(record.age, 0);
    EXPECT_LT(record.age, 100);
  }
}

TEST(PopulationTest, PeopleAgeTenYearsBetweenCleanSnapshots) {
  Rng rng(7);
  Population population(SmallConfig(), &rng);
  CorruptionConfig no_noise;
  no_noise.noise_scale = 0.0;
  const CorruptionModel corruption(no_noise);
  const Population::Snapshot before =
      population.TakeSnapshot(corruption, &rng);
  population.AdvanceDecade(&rng);
  const Population::Snapshot after = population.TakeSnapshot(corruption, &rng);
  std::unordered_map<uint64_t, int> age_before;
  for (RecordId r = 0; r < before.record_pids.size(); ++r) {
    age_before[before.record_pids[r]] = before.dataset.record(r).age;
  }
  size_t survivors = 0;
  for (RecordId r = 0; r < after.record_pids.size(); ++r) {
    auto it = age_before.find(after.record_pids[r]);
    if (it == age_before.end()) continue;
    ++survivors;
    EXPECT_EQ(after.dataset.record(r).age, it->second + 10);
  }
  EXPECT_GT(survivors, 100u);  // most people survive a decade
}

TEST(PopulationTest, DemographicChurnProducesAllEventKinds) {
  Rng rng(8);
  Population population(SmallConfig(), &rng);
  const size_t people_before = population.PresentPersons();
  std::set<uint64_t> pids_before;
  for (const auto& [pid, p] : population.persons()) {
    if (p.present) pids_before.insert(pid);
  }
  population.AdvanceDecade(&rng);
  size_t died_or_left = 0, stayed = 0, born_or_arrived = 0;
  for (const auto& [pid, p] : population.persons()) {
    if (p.present) {
      if (pids_before.count(pid)) {
        ++stayed;
      } else {
        ++born_or_arrived;
      }
    } else if (pids_before.count(pid)) {
      ++died_or_left;
    }
  }
  EXPECT_GT(died_or_left, 0u);
  EXPECT_GT(born_or_arrived, 0u);
  EXPECT_GT(stayed, people_before / 2);
}

TEST(PopulationTest, MarriedWomenTookHusbandsSurname) {
  Rng rng(9);
  Population population(SmallConfig(), &rng);
  population.AdvanceDecade(&rng);
  size_t couples = 0;
  for (const auto& [pid, p] : population.persons()) {
    if (!p.present || p.sex != Sex::kFemale || p.spouse == 0) continue;
    const SimPerson& husband = population.persons().at(p.spouse);
    if (!husband.present) continue;
    EXPECT_EQ(p.surname, husband.surname);
    ++couples;
  }
  EXPECT_GT(couples, 50u);
}

TEST(CorruptionTest, TypoChangesButKeepsSimilarity) {
  Rng rng(10);
  const CorruptionModel model{CorruptionConfig{}};
  int changed = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string corrupted = model.ApplyTypo("elizabeth", &rng);
    if (corrupted != "elizabeth") ++changed;
    // One edit operation at most: length within 1 of the original.
    EXPECT_LE(std::abs(static_cast<int>(corrupted.size()) - 9), 1);
  }
  EXPECT_GT(changed, 150);  // most typo draws alter the string
}

TEST(CorruptionTest, NoiseScaleZeroIsClean) {
  Rng rng(11);
  CorruptionConfig config;
  config.noise_scale = 0.0;
  const CorruptionModel model(config);
  PersonRecord record;
  record.first_name = "john";
  record.surname = "ashworth";
  record.sex = Sex::kMale;
  record.age = 30;
  record.address = "mill street";
  record.occupation = "weaver";
  for (int i = 0; i < 100; ++i) {
    PersonRecord copy = record;
    model.CorruptRecord(&copy, &rng);
    EXPECT_EQ(copy.first_name, "john");
    EXPECT_EQ(copy.age, 30);
    EXPECT_EQ(copy.occupation, "weaver");
  }
}

TEST(CorruptionTest, MissingRatesRoughlyCalibrated) {
  Rng rng(12);
  const CorruptionModel model{CorruptionConfig{}};
  int missing_occupation = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    PersonRecord record;
    record.first_name = "john";
    record.surname = "ashworth";
    record.sex = Sex::kMale;
    record.age = 30;
    record.address = "mill street";
    record.occupation = "weaver";
    model.CorruptRecord(&record, &rng);
    if (record.occupation.empty()) ++missing_occupation;
  }
  EXPECT_NEAR(missing_occupation / static_cast<double>(n),
              CorruptionConfig{}.missing_occupation, 0.02);
}

}  // namespace
}  // namespace tglink
