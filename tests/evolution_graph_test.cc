#include "tglink/evolution/evolution_graph.h"

#include <gtest/gtest.h>

#include "tglink/evolution/queries.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

/// Three tiny snapshots: household X preserved twice (chain of 2 preserve
/// edges), household Y preserved once then removed, household Z appears in
/// the last snapshot.
struct ChainFixture {
  std::vector<CensusDataset> datasets;
  std::vector<RecordMapping> record_mappings;
  std::vector<GroupMapping> group_mappings;

  static CensusDataset Snapshot(int year, bool with_y, bool with_z) {
    CensusDataset d(year);
    auto rec = [&](const std::string& id, const char* fn, int age,
                   Role role) {
      return MakeRecord(id + "_" + std::to_string(year), fn, "x",
                        role == Role::kWife ? Sex::kFemale : Sex::kMale, age,
                        role, "", "");
    };
    d.AddHousehold("x" + std::to_string(year),
                   {rec("x1", "a", 40, Role::kHead),
                    rec("x2", "b", 38, Role::kWife)});
    if (with_y) {
      d.AddHousehold("y" + std::to_string(year),
                     {rec("y1", "c", 50, Role::kHead),
                      rec("y2", "d", 48, Role::kWife)});
    }
    if (with_z) {
      d.AddHousehold("z" + std::to_string(year),
                     {rec("z1", "e", 30, Role::kHead)});
    }
    return d;
  }

  ChainFixture() {
    datasets.push_back(Snapshot(1851, true, false));   // X=0, Y=1
    datasets.push_back(Snapshot(1861, true, false));   // X=0, Y=1
    datasets.push_back(Snapshot(1871, false, true));   // X=0, Z=1

    // 1851 -> 1861: X and Y preserved (2 members each).
    RecordMapping m0(4, 4);
    EXPECT_TRUE(m0.Add(0, 0).ok());
    EXPECT_TRUE(m0.Add(1, 1).ok());
    EXPECT_TRUE(m0.Add(2, 2).ok());
    EXPECT_TRUE(m0.Add(3, 3).ok());
    GroupMapping g0;
    g0.Add(0, 0);
    g0.Add(1, 1);
    record_mappings.push_back(std::move(m0));
    group_mappings.push_back(std::move(g0));

    // 1861 -> 1871: X preserved; Y disappears; Z appears.
    RecordMapping m1(4, 3);
    EXPECT_TRUE(m1.Add(0, 0).ok());
    EXPECT_TRUE(m1.Add(1, 1).ok());
    GroupMapping g1;
    g1.Add(0, 0);
    record_mappings.push_back(std::move(m1));
    group_mappings.push_back(std::move(g1));
  }
};

TEST(EvolutionGraphTest, StructureAndCounts) {
  ChainFixture fx;
  const EvolutionGraph graph(fx.datasets, fx.record_mappings,
                             fx.group_mappings);
  EXPECT_EQ(graph.num_epochs(), 3u);
  EXPECT_EQ(graph.total_households(), 6u);
  EXPECT_EQ(graph.group_edges().size(), 3u);
  EXPECT_EQ(graph.record_edges().size(), 6u);
  ASSERT_EQ(graph.pair_counts().size(), 2u);
  EXPECT_EQ(graph.pair_counts()[0].preserve_groups, 2u);
  EXPECT_EQ(graph.pair_counts()[1].preserve_groups, 1u);
  EXPECT_EQ(graph.pair_counts()[1].remove_groups, 1u);  // Y
  EXPECT_EQ(graph.pair_counts()[1].add_groups, 1u);     // Z
}

TEST(EvolutionGraphTest, PreservedChainCounting) {
  ChainFixture fx;
  const EvolutionGraph graph(fx.datasets, fx.record_mappings,
                             fx.group_mappings);
  // intervals=1: preserve edges summed over pairs = 2 + 1 = 3 (Table 8's
  // convention that the 10-year row equals the total preserve_G count).
  EXPECT_EQ(CountPreservedChains(graph, 1), 3u);
  // intervals=2: only X runs through both pairs.
  EXPECT_EQ(CountPreservedChains(graph, 2), 1u);
  // Longer than the series: zero.
  EXPECT_EQ(CountPreservedChains(graph, 3), 0u);
  EXPECT_EQ(CountPreservedChains(graph, 0), 0u);
  EXPECT_EQ(PreservedChainProfile(graph), (std::vector<size_t>{3, 1}));
}

TEST(EvolutionGraphTest, ConnectedComponents) {
  ChainFixture fx;
  const EvolutionGraph graph(fx.datasets, fx.record_mappings,
                             fx.group_mappings);
  const ComponentStats stats = ConnectedHouseholdComponents(graph);
  // X chain: {X1851, X1861, X1871} one component of 3; Y chain of 2;
  // Z isolated. 6 households, 3 components.
  EXPECT_EQ(stats.num_components, 3u);
  EXPECT_EQ(stats.largest_component, 3u);
  EXPECT_DOUBLE_EQ(stats.largest_coverage, 0.5);
}

TEST(EvolutionGraphTest, Fig5ConnectedComponentsExample) {
  // The paper's Fig. 5(b) narrative: components of 4 and 3 households over
  // two snapshots. Reproduce with the running example plus Fig. 5 links.
  std::vector<CensusDataset> datasets = {MakeCensus1871(), MakeCensus1881()};
  RecordMapping records(8, 11);
  ASSERT_TRUE(records.Add(0, 0).ok());
  ASSERT_TRUE(records.Add(1, 1).ok());
  ASSERT_TRUE(records.Add(3, 2).ok());
  ASSERT_TRUE(records.Add(5, 3).ok());
  ASSERT_TRUE(records.Add(6, 4).ok());
  ASSERT_TRUE(records.Add(2, 6).ok());
  ASSERT_TRUE(records.Add(7, 5).ok());
  GroupMapping groups;
  groups.Add(kG1871A, kG1881A);
  groups.Add(kG1871B, kG1881B);
  groups.Add(kG1871A, kG1881C);
  groups.Add(kG1871B, kG1881C);
  std::vector<RecordMapping> rms;
  rms.push_back(std::move(records));
  std::vector<GroupMapping> gms;
  gms.push_back(std::move(groups));
  const EvolutionGraph graph(datasets, rms, gms);
  const ComponentStats stats = ConnectedHouseholdComponents(graph);
  // {a1871, b1871, a1881, b1881, c1881} form one component of 5; d isolated.
  EXPECT_EQ(stats.largest_component, 5u);
  EXPECT_EQ(stats.num_components, 2u);
}

TEST(EvolutionGraphTest, GroupVertexIndexing) {
  ChainFixture fx;
  const EvolutionGraph graph(fx.datasets, fx.record_mappings,
                             fx.group_mappings);
  EXPECT_EQ(graph.GroupVertex(0, 0), 0u);
  EXPECT_EQ(graph.GroupVertex(0, 1), 1u);
  EXPECT_EQ(graph.GroupVertex(1, 0), 2u);
  EXPECT_EQ(graph.GroupVertex(2, 1), 5u);
  EXPECT_EQ(graph.num_households(1), 2u);
}

}  // namespace
}  // namespace tglink
