// Death tests for the TGLINK_CHECK / TGLINK_DCHECK invariant layer:
// CHECK is fatal in every build type, DCHECK is fatal in debug and has
// zero cost (the condition is not even evaluated) under NDEBUG.

#include <gtest/gtest.h>

#include "tglink/util/logging.h"
#include "tglink/util/status.h"

namespace tglink {
namespace {

TEST(CheckDeathTest, FailedCheckAbortsWithDiagnostic) {
  EXPECT_DEATH(TGLINK_CHECK(1 == 2) << "extra context " << 42,
               "check failed: 1 == 2.*extra context 42");
}

TEST(CheckDeathTest, FailedCheckWithoutMessageAborts) {
  EXPECT_DEATH(TGLINK_CHECK(false), "check failed: false");
}

TEST(CheckDeathTest, CheckOkAbortsOnErrorStatus) {
  EXPECT_DEATH(TGLINK_CHECK_OK(Status::Internal("union-find corrupted")),
               "Internal: union-find corrupted");
}

TEST(CheckTest, PassingCheckIsSilent) {
  TGLINK_CHECK(2 + 2 == 4) << "never rendered";
  TGLINK_CHECK_OK(Status::OK());
}

TEST(CheckTest, PassingCheckDoesNotEvaluateMessageOperands) {
  int renders = 0;
  auto count = [&renders]() {
    ++renders;
    return "msg";
  };
  TGLINK_CHECK(true) << count();
  EXPECT_EQ(renders, 0);
}

TEST(DcheckDeathTest, DebugFatalReleaseCompiledOut) {
#ifndef NDEBUG
  EXPECT_DEATH(TGLINK_DCHECK(false) << "debug-only failure",
               "check failed: false");
#else
  // Under NDEBUG the statement must vanish entirely: the condition is not
  // evaluated, so a side-effecting condition observably does nothing.
  int evaluations = 0;
  TGLINK_DCHECK([&evaluations]() {
    ++evaluations;
    return false;
  }());
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST(DcheckTest, PassingDcheckIsSilent) {
  TGLINK_DCHECK(1 < 2) << "never rendered";
}

}  // namespace
}  // namespace tglink
