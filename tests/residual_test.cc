#include "tglink/linkage/residual.h"

#include <set>

#include <gtest/gtest.h>

#include "tglink/linkage/config.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

TEST(ResidualTest, GreedyOneToOneRespectsActivity) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  SimilarityFunction f = configs::Omega2(0.8);
  f.set_year_gap(10);
  std::vector<bool> active_old(old_d.num_records(), true);
  std::vector<bool> active_new(new_d.num_records(), true);
  active_old[0] = false;  // John Ashworth 1871 unavailable
  const auto links = GreedyOneToOneMatch(old_d, new_d, f,
                                         BlockingConfig::MakeExhaustive(),
                                         active_old, active_new);
  for (const ScoredPair& link : links) {
    EXPECT_NE(link.old_id, 0u);
    EXPECT_GE(link.sim, 0.8);
  }
}

TEST(ResidualTest, OneToOneInvariant) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  SimilarityFunction f = configs::Omega2(0.5);
  f.set_year_gap(10);
  const std::vector<bool> all_old(old_d.num_records(), true);
  const std::vector<bool> all_new(new_d.num_records(), true);
  const auto links = GreedyOneToOneMatch(
      old_d, new_d, f, BlockingConfig::MakeExhaustive(), all_old, all_new);
  std::set<RecordId> olds, news;
  for (const ScoredPair& link : links) {
    EXPECT_TRUE(olds.insert(link.old_id).second);
    EXPECT_TRUE(news.insert(link.new_id).second);
  }
}

TEST(ResidualTest, GreedyPrefersHigherSimilarity) {
  // Two old Johns compete for one new John; the closer one must win.
  CensusDataset old_d(1871);
  old_d.AddHousehold(
      "h1", {MakeRecord("o1", "john", "ashworth", Sex::kMale, 30, Role::kHead,
                        "mill street", "weaver")});
  old_d.AddHousehold(
      "h2", {MakeRecord("o2", "john", "ashword", Sex::kMale, 30, Role::kHead,
                        "bank street", "miner")});
  CensusDataset new_d(1881);
  new_d.AddHousehold(
      "h1", {MakeRecord("n1", "john", "ashworth", Sex::kMale, 40, Role::kHead,
                        "mill street", "weaver")});
  SimilarityFunction f = configs::Omega2(0.5);
  f.set_year_gap(10);
  const auto links = GreedyOneToOneMatch(
      old_d, new_d, f, BlockingConfig::MakeExhaustive(),
      std::vector<bool>(2, true), std::vector<bool>(1, true));
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].old_id, 0u);
}

TEST(ResidualTest, MatchResidualExtendsGroupMapping) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  SimilarityFunction f = configs::Omega2(0.9);
  RecordMapping records(old_d.num_records(), new_d.num_records());
  GroupMapping groups;
  std::vector<bool> active_old(old_d.num_records(), true);
  std::vector<bool> active_new(new_d.num_records(), true);
  const size_t added = MatchResidualRecords(
      old_d, new_d, f, BlockingConfig::MakeExhaustive(), &records, &groups,
      &active_old, &active_new);
  EXPECT_EQ(added, records.size());
  // Every record link induces its owning group pair in the group mapping.
  for (const RecordLink& link : records.links()) {
    EXPECT_TRUE(groups.Contains(old_d.record(link.first).group,
                                new_d.record(link.second).group));
    EXPECT_FALSE(active_old[link.first]);
    EXPECT_FALSE(active_new[link.second]);
  }
}

}  // namespace
}  // namespace tglink
