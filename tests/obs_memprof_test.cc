// Unit and integration coverage for the memory profiler (DESIGN.md §12):
// the /proc/self/status parser on fixture text, stage-scope semantics
// (nesting, depth cap, per-thread stacks), arena accumulation, snapshot
// determinism, the hook-gated byte counters, and an end-to-end
// LinkCensusPair run proving every production arena reports.
//
// Every test flips the runtime gate explicitly and restores the
// disabled-by-default state on exit, so ordering between tests (and with
// the rest of the suite) does not matter.

#include "tglink/obs/memprof.h"

#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/util/parallel.h"
#include "tests/paper_example.h"

namespace tglink {
namespace obs {
namespace {

// Restores the profiler to its test-default state (disabled, empty
// registries) on scope exit, no matter how the test body ends.
class MemProfTestScope {
 public:
  MemProfTestScope() {
    ResetMemProfForTesting();
    SetMemProfEnabled(true);
  }
  ~MemProfTestScope() {
    SetMemProfEnabled(false);
    ResetMemProfForTesting();
  }
};

const ArenaStats* Arena(const MemorySnapshot& snapshot,
                        const std::string& name) {
  for (const ArenaStats& arena : snapshot.arenas) {
    if (arena.name == name) return &arena;
  }
  return nullptr;
}

const StageStats* Stage(const MemorySnapshot& snapshot,
                        const std::string& name) {
  for (const StageStats& stage : snapshot.stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

// --- ParseProcStatus on fixture text ---------------------------------------

TEST(MemProfParseTest, ParsesRssAndHwmFromRealisticStatusText) {
  const char* fixture =
      "Name:\ttable5_iterative\n"
      "Umask:\t0022\n"
      "VmPeak:\t   20480 kB\n"
      "VmHWM:\t   18328 kB\n"
      "VmRSS:\t   13684 kB\n"
      "Threads:\t2\n";
  RssSample sample;
  ASSERT_TRUE(ParseProcStatus(fixture, &sample));
  EXPECT_EQ(sample.vm_rss_kb, 13684u);
  EXPECT_EQ(sample.vm_hwm_kb, 18328u);
}

TEST(MemProfParseTest, AcceptsSpacePaddingAndMissingTrailingNewline) {
  RssSample sample;
  ASSERT_TRUE(ParseProcStatus("VmRSS:     42 kB", &sample));
  EXPECT_EQ(sample.vm_rss_kb, 42u);
  EXPECT_EQ(sample.vm_hwm_kb, 0u);
}

TEST(MemProfParseTest, RejectsTextWithoutEitherField) {
  RssSample sample;
  sample.vm_rss_kb = 99;  // must be cleared even on failure
  EXPECT_FALSE(ParseProcStatus("Name:\tx\nThreads:\t4\n", &sample));
  EXPECT_EQ(sample.vm_rss_kb, 0u);
  EXPECT_FALSE(ParseProcStatus("", &sample));
  // A field label with no digits is not a reading.
  EXPECT_FALSE(ParseProcStatus("VmRSS:\t kB\n", &sample));
}

TEST(MemProfParseTest, LiveSampleReadsNonZeroRssOnLinux) {
  const RssSample sample = SampleRss();
  // The test binary is resident, so both figures must be positive and the
  // high-water mark can never be below the current RSS.
  EXPECT_GT(sample.vm_rss_kb, 0u);
  EXPECT_GE(sample.vm_hwm_kb, sample.vm_rss_kb);
}

// --- stage scopes -----------------------------------------------------------

TEST(MemProfStageTest, NestedScopesTrackDepthAndCurrentName) {
  MemProfTestScope guard;
  EXPECT_EQ(ThreadStageDepth(), 0);
  EXPECT_STREQ(CurrentStageName(), "");
  {
    TGLINK_MEM_STAGE("outer");
    EXPECT_EQ(ThreadStageDepth(), 1);
    EXPECT_STREQ(CurrentStageName(), "outer");
    {
      TGLINK_MEM_STAGE("inner");
      EXPECT_EQ(ThreadStageDepth(), 2);
      EXPECT_STREQ(CurrentStageName(), "inner");
    }
    // Exiting the inner scope restores the parent as current.
    EXPECT_EQ(ThreadStageDepth(), 1);
    EXPECT_STREQ(CurrentStageName(), "outer");
  }
  EXPECT_EQ(ThreadStageDepth(), 0);
  EXPECT_STREQ(CurrentStageName(), "");

  const MemorySnapshot snapshot = SnapshotMemory();
  const StageStats* outer = Stage(snapshot, "outer");
  const StageStats* inner = Stage(snapshot, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 1u);
  // Both boundaries sampled RSS; the process is resident.
  EXPECT_GT(outer->peak_rss_kb, 0u);
  EXPECT_GE(outer->peak_vm_hwm_kb, outer->peak_rss_kb);
}

TEST(MemProfStageTest, RepeatedScopesAccumulateIntoOneEntry) {
  MemProfTestScope guard;
  for (int i = 0; i < 5; ++i) {
    TGLINK_MEM_STAGE("repeat");
  }
  const MemorySnapshot snapshot = SnapshotMemory();
  const StageStats* stage = Stage(snapshot, "repeat");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->count, 5u);
}

TEST(MemProfStageTest, DepthCapDropsExcessScopesWithoutCrashing) {
  MemProfTestScope guard;
  // 24 nested scopes against a 16-deep stack: the overflow scopes must be
  // inert (no count, no crash, no depth corruption on unwind).
  std::vector<ScopedMemStage*> scopes;
  scopes.reserve(24);
  for (int i = 0; i < 24; ++i) {
    scopes.push_back(new ScopedMemStage("deep"));
  }
  EXPECT_EQ(ThreadStageDepth(), 16);
  for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) delete *it;
  EXPECT_EQ(ThreadStageDepth(), 0);
  const MemorySnapshot snapshot = SnapshotMemory();
  const StageStats* stage = Stage(snapshot, "deep");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->count, 16u);  // only the in-cap scopes completed
}

TEST(MemProfStageTest, StageStacksAreThreadLocal) {
  MemProfTestScope guard;
  TGLINK_MEM_STAGE("main_thread");
  int other_depth = -1;
  std::thread observer([&other_depth] { other_depth = ThreadStageDepth(); });
  observer.join();
  EXPECT_EQ(other_depth, 0);  // the open scope belongs to this thread only
  EXPECT_EQ(ThreadStageDepth(), 1);
}

// --- arenas -----------------------------------------------------------------

TEST(MemProfArenaTest, ReportsAccumulateSumMaxAndCount) {
  MemProfTestScope guard;
  ReportArenaBytes("widget", 100);
  ReportArenaBytes("widget", 300);
  ReportArenaBytes("widget", 200);
  ReportArenaBytes("other", 7);
  const MemorySnapshot snapshot = SnapshotMemory();
  const ArenaStats* widget = Arena(snapshot, "widget");
  ASSERT_NE(widget, nullptr);
  EXPECT_EQ(widget->bytes_total, 600u);
  EXPECT_EQ(widget->max_bytes, 300u);
  EXPECT_EQ(widget->reports, 3u);
  const ArenaStats* other = Arena(snapshot, "other");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->bytes_total, 7u);
}

TEST(MemProfArenaTest, SnapshotSortsArenasAndStagesByName) {
  MemProfTestScope guard;
  ReportArenaBytes("zeta", 1);
  ReportArenaBytes("alpha", 1);
  ReportArenaBytes("mid", 1);
  { TGLINK_MEM_STAGE("z_stage"); }
  { TGLINK_MEM_STAGE("a_stage"); }
  const MemorySnapshot snapshot = SnapshotMemory();
  ASSERT_EQ(snapshot.arenas.size(), 3u);
  EXPECT_EQ(snapshot.arenas[0].name, "alpha");
  EXPECT_EQ(snapshot.arenas[1].name, "mid");
  EXPECT_EQ(snapshot.arenas[2].name, "zeta");
  ASSERT_EQ(snapshot.stages.size(), 2u);
  EXPECT_EQ(snapshot.stages[0].name, "a_stage");
  EXPECT_EQ(snapshot.stages[1].name, "z_stage");
}

// --- allocation hooks -------------------------------------------------------

TEST(MemProfHookTest, EnabledHooksCountThreadAndGlobalBytes) {
  MemProfTestScope guard;
  if (!MemProfHooksCompiledIn()) {
    GTEST_SKIP() << "allocator hooks compiled out in this build";
  }
  constexpr size_t kBytes = 1 << 16;
  const AllocTotals before = ThreadAllocTotals();
  {
    std::vector<char> block(kBytes);
    // Touch so the allocation cannot be elided.
    block[0] = 1;
    block[kBytes - 1] = 1;
    const AllocTotals during = ThreadAllocTotals();
    EXPECT_GE(during.bytes_allocated - before.bytes_allocated, kBytes);
    EXPECT_GT(during.alloc_calls, before.alloc_calls);
  }
  const AllocTotals after = ThreadAllocTotals();
  // Symmetric usable-size accounting: the vector's buffer shows up on the
  // freed side with the same rounding as on the allocated side.
  EXPECT_GE(after.bytes_freed - before.bytes_freed, kBytes);
  const AllocTotals global = GlobalAllocTotals();
  EXPECT_GE(global.bytes_allocated, after.bytes_allocated);
}

TEST(MemProfHookTest, DisabledGateStopsCountingImmediately) {
  MemProfTestScope guard;
  SetMemProfEnabled(false);
  const AllocTotals before = ThreadAllocTotals();
  {
    std::vector<char> block(1 << 16);
    block[0] = 1;
  }
  const AllocTotals after = ThreadAllocTotals();
  EXPECT_EQ(after.bytes_allocated, before.bytes_allocated);
  EXPECT_EQ(after.alloc_calls, before.alloc_calls);
}

TEST(MemProfHookTest, StageDeltasAreZeroWhenHooksAbsent) {
  MemProfTestScope guard;
  if (MemProfHooksCompiledIn()) {
    GTEST_SKIP() << "covered by EnabledHooksCountThreadAndGlobalBytes";
  }
  {
    TGLINK_MEM_STAGE("no_hooks");
    std::vector<char> block(1 << 16);
    block[0] = 1;
  }
  const MemorySnapshot snapshot = SnapshotMemory();
  EXPECT_FALSE(snapshot.hooks_compiled);
  const StageStats* stage = Stage(snapshot, "no_hooks");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->count, 1u);  // stages still run; byte counts read zero
  EXPECT_EQ(stage->bytes_allocated, 0u);
  EXPECT_EQ(snapshot.allocator.bytes_allocated, 0u);
}

// --- compile-time contracts -------------------------------------------------

// The zero-overhead claims the header makes are pinned here too, so a
// regression fails this suite even if the header's own asserts are edited.
static_assert(std::is_trivially_destructible_v<AllocTotals>);
static_assert(std::is_trivially_copyable_v<AllocTotals>);
#if defined(TGLINK_MEMPROF_DISABLED)
static_assert(std::is_empty_v<ScopedMemStage>);
#endif

// --- end-to-end: the production arenas all report ---------------------------

TEST(MemProfIntegrationTest, LinkCensusPairReportsEveryProductionArena) {
  MemProfTestScope guard;

  // The paper fixture is too small for the pool to spawn inside the
  // pipeline, so the "pool" arena is exercised through an explicit parallel
  // section at the same thread count the run would use.
  SetParallelThreadCount(2);
  std::vector<int> sink(1024, 0);
  ParallelFor(sink.size(), "memprof_test.warmup",
              [&sink](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) sink[i] = static_cast<int>(i);
              });

  LinkageConfig config = configs::DefaultConfig();
  config.blocking = BlockingConfig::MakeInvertedIndex();
  const LinkageResult result =
      LinkCensusPair(testing_example::MakeCensus1871(),
                     testing_example::MakeCensus1881(), config);
  EXPECT_FALSE(result.iterations.empty());
  SetParallelThreadCount(1);

  const MemorySnapshot snapshot = SnapshotMemory();
  for (const char* name : {"simbatch", "candindex", "simcache", "pool"}) {
    const ArenaStats* arena = Arena(snapshot, name);
    ASSERT_NE(arena, nullptr) << "arena " << name << " never reported";
    EXPECT_GT(arena->bytes_total, 0u) << "arena " << name << " reported zero";
    EXPECT_GT(arena->reports, 0u);
  }
  // The instrumented pipeline stages fed the registry as well.
  const StageStats* link = Stage(snapshot, "linkage.link_census_pair");
  ASSERT_NE(link, nullptr);
  EXPECT_GE(link->count, 1u);
  EXPECT_GT(link->peak_rss_kb, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace tglink
