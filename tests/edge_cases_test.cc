// Edge-case and robustness suite: degenerate datasets, extreme
// configurations, and parser behaviour on adversarial input.

#include <gtest/gtest.h>

#include "tglink/census/io.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/util/csv.h"
#include "tglink/util/random.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

TEST(EdgeCaseTest, LinkingEmptyDatasets) {
  const CensusDataset empty_old(1871);
  const CensusDataset empty_new(1881);
  const LinkageResult result =
      LinkCensusPair(empty_old, empty_new, configs::DefaultConfig());
  EXPECT_EQ(result.record_mapping.size(), 0u);
  EXPECT_EQ(result.group_mapping.size(), 0u);
}

TEST(EdgeCaseTest, LinkingEmptyAgainstNonEmpty) {
  const CensusDataset empty_old(1871);
  const CensusDataset new_d = MakeCensus1881();
  const LinkageResult result =
      LinkCensusPair(empty_old, new_d, configs::DefaultConfig());
  EXPECT_EQ(result.record_mapping.size(), 0u);
}

TEST(EdgeCaseTest, SingleHouseholdEachSide) {
  CensusDataset old_d(1871);
  old_d.AddHousehold(
      "h", {MakeRecord("o1", "john", "holt", Sex::kMale, 30, Role::kHead,
                       "mill street", "weaver"),
            MakeRecord("o2", "mary", "holt", Sex::kFemale, 28, Role::kWife,
                       "mill street", "")});
  CensusDataset new_d(1881);
  new_d.AddHousehold(
      "h", {MakeRecord("n1", "john", "holt", Sex::kMale, 40, Role::kHead,
                       "mill street", "weaver"),
            MakeRecord("n2", "mary", "holt", Sex::kFemale, 38, Role::kWife,
                       "mill street", "")});
  const LinkageResult result =
      LinkCensusPair(old_d, new_d, configs::DefaultConfig());
  EXPECT_EQ(result.record_mapping.size(), 2u);
  EXPECT_TRUE(result.group_mapping.Contains(0, 0));
}

TEST(EdgeCaseTest, AllRecordsIdenticallyNamed) {
  // Pathological ambiguity: every person is "john smith". The algorithm
  // must stay 1:1 and not crash; edge structure is the only signal.
  CensusDataset old_d(1871);
  CensusDataset new_d(1881);
  for (int h = 0; h < 4; ++h) {
    std::vector<PersonRecord> old_members, new_members;
    for (int m = 0; m < 3; ++m) {
      const int age = 20 + 10 * h + m;
      old_members.push_back(MakeRecord(
          "o" + std::to_string(h) + "_" + std::to_string(m), "john", "smith",
          Sex::kMale, age, m == 0 ? Role::kHead : Role::kSon, "x", ""));
      new_members.push_back(MakeRecord(
          "n" + std::to_string(h) + "_" + std::to_string(m), "john", "smith",
          Sex::kMale, age + 10, m == 0 ? Role::kHead : Role::kSon, "x", ""));
    }
    old_d.AddHousehold("oh" + std::to_string(h), std::move(old_members));
    new_d.AddHousehold("nh" + std::to_string(h), std::move(new_members));
  }
  LinkageConfig config = configs::DefaultConfig();
  config.blocking = BlockingConfig::MakeExhaustive();
  const LinkageResult result = LinkCensusPair(old_d, new_d, config);
  std::set<RecordId> olds, news;
  for (const RecordLink& link : result.record_mapping.links()) {
    EXPECT_TRUE(olds.insert(link.first).second);
    EXPECT_TRUE(news.insert(link.second).second);
  }
  // The distinct household age structures disambiguate: with the vertex
  // age gate, each household can only match its true counterpart.
  for (const RecordLink& link : result.record_mapping.links()) {
    EXPECT_EQ(old_d.record(link.first).group,
              new_d.record(link.second).group);
  }
}

TEST(EdgeCaseTest, DegenerateDeltaSchedules) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  // Single-iteration schedule.
  LinkageConfig one = configs::DefaultConfig();
  one.delta_high = one.delta_low = 0.6;
  EXPECT_EQ(LinkCensusPair(old_d, new_d, one).iterations.size(), 1u);
  // Step larger than the window: one iteration, then δ drops below δ_low.
  LinkageConfig big_step = configs::DefaultConfig();
  big_step.delta_step = 0.5;
  const LinkageResult result = LinkCensusPair(old_d, new_d, big_step);
  EXPECT_LE(result.iterations.size(), 2u);
  // Threshold above every similarity: no subgraph links, residual may still
  // operate.
  LinkageConfig unreachable = configs::DefaultConfig();
  unreachable.delta_high = unreachable.delta_low = 1.01;
  const LinkageResult none = LinkCensusPair(old_d, new_d, unreachable);
  for (const IterationStats& it : none.iterations) {
    EXPECT_EQ(it.accepted_subgraphs, 0u);
  }
}

TEST(EdgeCaseTest, MissingEverythingRecordsDoNotExplode) {
  CensusDataset old_d(1871);
  old_d.AddHousehold(
      "h", {MakeRecord("o1", "", "", Sex::kUnknown, -1, Role::kUnknown, "",
                       ""),
            MakeRecord("o2", "john", "holt", Sex::kMale, 30, Role::kHead, "",
                       "")});
  CensusDataset new_d(1881);
  new_d.AddHousehold(
      "h", {MakeRecord("n1", "", "", Sex::kUnknown, -1, Role::kUnknown, "",
                       ""),
            MakeRecord("n2", "john", "holt", Sex::kMale, 40, Role::kHead, "",
                       "")});
  const LinkageResult result =
      LinkCensusPair(old_d, new_d, configs::DefaultConfig());
  // The empty records must never be linked (coverage floor).
  EXPECT_FALSE(result.record_mapping.IsOldLinked(0));
}

TEST(EdgeCaseTest, CsvParserSurvivesRandomGarbage) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    const size_t length = rng.NextBounded(200);
    for (size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    // Must not crash; any Status outcome is acceptable.
    const auto result = ParseCsv(garbage);
    if (result.ok()) {
      for (const CsvRow& row : result.value()) {
        EXPECT_GE(row.size(), 1u);
      }
    }
  }
}

TEST(EdgeCaseTest, DatasetParserSurvivesQuasiValidGarbage) {
  Rng rng(2025);
  const std::string header =
      "record_id,household_id,first_name,surname,sex,age,role,address,"
      "occupation\n";
  for (int trial = 0; trial < 100; ++trial) {
    std::string body = header;
    const int rows = static_cast<int>(rng.NextBounded(5));
    for (int r = 0; r < rows; ++r) {
      const int cols = static_cast<int>(rng.NextBounded(12));
      for (int c = 0; c < cols; ++c) {
        if (c > 0) body.push_back(',');
        body.push_back(static_cast<char>('a' + rng.NextBounded(26)));
      }
      body.push_back('\n');
    }
    (void)DatasetFromCsv(body, 1871);  // must not crash
  }
}

TEST(EdgeCaseTest, ExtremeAgesSurviveThePipeline) {
  CensusDataset old_d(1871);
  old_d.AddHousehold(
      "h", {MakeRecord("o1", "john", "holt", Sex::kMale, 0, Role::kHead, "",
                       ""),
            MakeRecord("o2", "mary", "holt", Sex::kFemale, 104, Role::kMother,
                       "", "")});
  CensusDataset new_d(1881);
  new_d.AddHousehold(
      "h", {MakeRecord("n1", "john", "holt", Sex::kMale, 10, Role::kHead, "",
                       "")});
  const LinkageResult result =
      LinkCensusPair(old_d, new_d, configs::DefaultConfig());
  EXPECT_LE(result.record_mapping.size(), 1u);
}

}  // namespace
}  // namespace tglink
