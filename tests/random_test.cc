#include "tglink/util/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
  EXPECT_EQ(rng.NextPoisson(0.0), 0);
  EXPECT_EQ(rng.NextPoisson(-1.0), 0);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(21);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(23);
  for (size_t n : {0u, 1u, 2u, 10u, 100u}) {
    std::vector<size_t> perm = rng.Permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::vector<size_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The fork and the parent should not produce identical streams.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(ZipfSamplerTest, SkewsTowardLowRanks) {
  Rng rng(37);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  // Rank 0 must dominate rank 50 roughly by factor 51 under exponent 1.
  EXPECT_GT(counts[0], counts[50] * 10);
  // Every sample within range (implicitly checked by indexing); low ranks
  // together carry most of the mass.
  const int head = std::accumulate(counts.begin(), counts.begin() + 10, 0);
  EXPECT_GT(head, 25000);
}

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  Rng rng(41);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 400);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(&state);
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(&state2), first);
  EXPECT_NE(SplitMix64(&state2), first);
}

}  // namespace
}  // namespace tglink
