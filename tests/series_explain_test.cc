#include <gtest/gtest.h>

#include "tglink/linkage/explain.h"
#include "tglink/linkage/series.h"
#include "tglink/synth/generator.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

TEST(SeriesTest, LinksEveryPairAndBuildsGraph) {
  GeneratorConfig gen;
  gen.seed = 3;
  gen.scale = 0.03;
  gen.num_censuses = 3;
  const SyntheticSeries series = GenerateCensusSeries(gen);
  const SeriesLinkageResult result =
      LinkCensusSeries(series.snapshots, configs::DefaultConfig());
  ASSERT_EQ(result.pair_results.size(), 2u);
  ASSERT_EQ(result.record_mappings.size(), 2u);
  EXPECT_EQ(result.record_mappings[0].links(),
            result.pair_results[0].record_mapping.links());
  const EvolutionGraph graph = result.BuildEvolutionGraph(series.snapshots);
  EXPECT_EQ(graph.num_epochs(), 3u);
  EXPECT_EQ(graph.pair_counts().size(), 2u);
}

TEST(SeriesTest, MatchesPairwiseDriver) {
  GeneratorConfig gen;
  gen.seed = 4;
  gen.scale = 0.03;
  gen.num_censuses = 3;
  const SyntheticSeries series = GenerateCensusSeries(gen);
  const SeriesLinkageResult chained =
      LinkCensusSeries(series.snapshots, configs::DefaultConfig());
  const LinkageResult direct = LinkCensusPair(
      series.snapshots[1], series.snapshots[2], configs::DefaultConfig());
  EXPECT_EQ(chained.record_mappings[1].links(),
            direct.record_mapping.links());
}

struct ExplainFixture {
  CensusDataset old_d = MakeCensus1871();
  CensusDataset new_d = MakeCensus1881();
  LinkageConfig config;
  LinkageResult result;

  ExplainFixture() {
    config = configs::DefaultConfig();
    config.blocking = BlockingConfig::MakeExhaustive();
    result = LinkCensusPair(old_d, new_d, config);
  }
};

TEST(ExplainTest, ProvenanceIsParallelToLinks) {
  ExplainFixture fx;
  EXPECT_EQ(fx.result.provenance.size(), fx.result.record_mapping.size());
}

TEST(ExplainTest, SubgraphLinkExplained) {
  ExplainFixture fx;
  // John Ashworth (record 0) was linked in the first subgraph iteration.
  const LinkExplanation explanation =
      ExplainLink(fx.result, fx.old_d, fx.new_d, fx.config, 0);
  EXPECT_TRUE(explanation.linked);
  EXPECT_EQ(explanation.new_id, 0u);
  EXPECT_EQ(explanation.phase, LinkPhase::kSubgraph);
  EXPECT_DOUBLE_EQ(explanation.phase_delta, fx.config.delta_high);
  EXPECT_GT(explanation.attribute_similarity, 0.9);
  EXPECT_TRUE(explanation.households_linked);
  EXPECT_EQ(explanation.old_household, "g1871_a");
  EXPECT_EQ(explanation.new_household, "g1881_a");
  const std::string text =
      explanation.ToString(fx.old_d, fx.new_d, fx.config);
  EXPECT_NE(text.find("subgraph"), std::string::npos);
  EXPECT_NE(text.find("john ashworth"), std::string::npos);
}

TEST(ExplainTest, ResidualLinkExplained) {
  ExplainFixture fx;
  // Steve (record 7) moved households: found by a residual phase.
  const LinkExplanation explanation =
      ExplainLink(fx.result, fx.old_d, fx.new_d, fx.config, 7);
  ASSERT_TRUE(explanation.linked);
  EXPECT_NE(explanation.phase, LinkPhase::kSubgraph);
}

TEST(ExplainTest, UnlinkedRecordExplained) {
  ExplainFixture fx;
  // John Riley (record 4) died.
  const LinkExplanation explanation =
      ExplainLink(fx.result, fx.old_d, fx.new_d, fx.config, 4);
  EXPECT_FALSE(explanation.linked);
  const std::string text =
      explanation.ToString(fx.old_d, fx.new_d, fx.config);
  EXPECT_NE(text.find("UNLINKED"), std::string::npos);
  EXPECT_NE(text.find("john riley"), std::string::npos);
}

TEST(ExplainTest, PhaseNamesAreStable) {
  EXPECT_STREQ(LinkPhaseName(LinkPhase::kSubgraph), "subgraph");
  EXPECT_STREQ(LinkPhaseName(LinkPhase::kContextResidual),
               "context-residual");
  EXPECT_STREQ(LinkPhaseName(LinkPhase::kGlobalResidual), "global-residual");
}

}  // namespace
}  // namespace tglink
