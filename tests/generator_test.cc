#include "tglink/synth/generator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace tglink {
namespace {

GeneratorConfig SmallConfig(uint64_t seed = 42) {
  GeneratorConfig config;
  config.seed = seed;
  config.scale = 0.03;  // ~100 households in the first snapshot
  config.num_censuses = 3;
  return config;
}

TEST(GeneratorTest, SeriesShape) {
  const SyntheticSeries series = GenerateCensusSeries(SmallConfig());
  ASSERT_EQ(series.snapshots.size(), 3u);
  ASSERT_EQ(series.gold.size(), 2u);
  ASSERT_EQ(series.record_pids.size(), 3u);
  EXPECT_EQ(series.snapshots[0].year(), 1851);
  EXPECT_EQ(series.snapshots[2].year(), 1871);
  for (const CensusDataset& snapshot : series.snapshots) {
    EXPECT_TRUE(snapshot.Validate().ok());
  }
  // Population grows per the scaled Table 1 targets.
  EXPECT_GT(series.snapshots[2].num_households(),
            series.snapshots[0].num_households());
}

TEST(GeneratorTest, GoldLinksResolveAndAreOneToOne) {
  const SyntheticSeries series = GenerateCensusSeries(SmallConfig());
  for (size_t i = 0; i + 1 < series.snapshots.size(); ++i) {
    auto resolved = ResolveGold(series.gold[i], series.snapshots[i],
                                series.snapshots[i + 1]);
    ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
    std::set<RecordId> olds, news;
    for (const RecordLink& link : resolved.value().record_links) {
      EXPECT_TRUE(olds.insert(link.first).second);
      EXPECT_TRUE(news.insert(link.second).second);
    }
    EXPECT_GT(resolved.value().record_links.size(), 100u);
  }
}

TEST(GeneratorTest, GoldGroupLinksAreInducedByRecordLinks) {
  const SyntheticSeries series = GenerateCensusSeries(SmallConfig());
  const auto resolved =
      ResolveGold(series.gold[0], series.snapshots[0], series.snapshots[1]);
  ASSERT_TRUE(resolved.ok());
  std::set<GroupLink> induced;
  for (const RecordLink& link : resolved.value().record_links) {
    induced.emplace(series.snapshots[0].record(link.first).group,
                    series.snapshots[1].record(link.second).group);
  }
  std::set<GroupLink> declared(resolved.value().group_links.begin(),
                               resolved.value().group_links.end());
  EXPECT_EQ(induced, declared);
}

TEST(GeneratorTest, GoldRecordLinksMatchPersistentIdentity) {
  const SyntheticSeries series = GenerateCensusSeries(SmallConfig());
  // A record link must connect records carrying the same pid.
  const auto resolved =
      ResolveGold(series.gold[0], series.snapshots[0], series.snapshots[1]);
  ASSERT_TRUE(resolved.ok());
  for (const RecordLink& link : resolved.value().record_links) {
    EXPECT_EQ(series.record_pids[0][link.first],
              series.record_pids[1][link.second]);
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const SyntheticSeries a = GenerateCensusSeries(SmallConfig(7));
  const SyntheticSeries b = GenerateCensusSeries(SmallConfig(7));
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  for (size_t i = 0; i < a.snapshots.size(); ++i) {
    ASSERT_EQ(a.snapshots[i].num_records(), b.snapshots[i].num_records());
    for (RecordId r = 0; r < a.snapshots[i].num_records(); ++r) {
      EXPECT_EQ(a.snapshots[i].record(r).first_name,
                b.snapshots[i].record(r).first_name);
      EXPECT_EQ(a.snapshots[i].record(r).age, b.snapshots[i].record(r).age);
    }
  }
  EXPECT_EQ(a.gold[0].record_links, b.gold[0].record_links);
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentData) {
  const SyntheticSeries a = GenerateCensusSeries(SmallConfig(1));
  const SyntheticSeries b = GenerateCensusSeries(SmallConfig(2));
  // Same structural calibration...
  EXPECT_EQ(a.snapshots[0].num_households(),
            b.snapshots[0].num_households());
  // ...but different contents.
  size_t differences = 0;
  const size_t n =
      std::min(a.snapshots[0].num_records(), b.snapshots[0].num_records());
  for (RecordId r = 0; r < n; ++r) {
    if (a.snapshots[0].record(r).first_name !=
        b.snapshots[0].record(r).first_name) {
      ++differences;
    }
  }
  EXPECT_GT(differences, n / 4);
}

TEST(GeneratorTest, PairConvenienceMatchesSeries) {
  const GeneratorConfig config = SmallConfig();
  const SyntheticSeries series = GenerateCensusSeries(config);
  const SyntheticPair pair = GenerateCensusPair(config, 1);
  EXPECT_EQ(pair.old_dataset.year(), series.snapshots[1].year());
  EXPECT_EQ(pair.old_dataset.num_records(),
            series.snapshots[1].num_records());
  EXPECT_EQ(pair.gold.record_links, series.gold[1].record_links);
}

TEST(GeneratorTest, NameAmbiguityIsSkewedLikeThePaper) {
  // The paper's Table 1 reports ~2.2 records per unique (fn, sn) pair with
  // skew; at small scale expect meaningful ambiguity (> 1.2 avg).
  GeneratorConfig config = SmallConfig();
  config.scale = 0.3;
  const SyntheticSeries series = GenerateCensusSeries(config);
  const DatasetStats stats = series.snapshots[0].Stats();
  const double ambiguity = static_cast<double>(stats.num_records) /
                           static_cast<double>(stats.unique_name_combinations);
  EXPECT_GT(ambiguity, 1.2) << stats.num_records << " records over "
                            << stats.unique_name_combinations << " names";
}

TEST(GeneratorTest, MissingValueRatioInPaperBand) {
  GeneratorConfig config = SmallConfig();
  config.scale = 0.1;
  const SyntheticSeries series = GenerateCensusSeries(config);
  for (const CensusDataset& snapshot : series.snapshots) {
    const DatasetStats stats = snapshot.Stats();
    EXPECT_GT(stats.missing_value_ratio, 0.01);
    EXPECT_LT(stats.missing_value_ratio, 0.10);
  }
}

}  // namespace
}  // namespace tglink
