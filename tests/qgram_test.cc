#include "tglink/similarity/qgram.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tglink {
namespace {

/// Reference coefficient computed from the public string-gram API — the
/// pre-packed implementation of QGramSimilarity, kept here as the oracle
/// for the packed fast path.
double ReferenceSimilarity(std::string_view a, std::string_view b,
                           const QGramOptions& opts) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const std::vector<std::string> ga = QGrams(a, opts);
  const std::vector<std::string> gb = QGrams(b, opts);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  size_t i = 0, j = 0, c = 0;
  while (i < ga.size() && j < gb.size()) {
    if (ga[i] < gb[j]) {
      ++i;
    } else if (gb[j] < ga[i]) {
      ++j;
    } else {
      ++c, ++i, ++j;
    }
  }
  const double common = static_cast<double>(c);
  switch (opts.coefficient) {
    case QGramCoefficient::kDice:
      return 2.0 * common / static_cast<double>(ga.size() + gb.size());
    case QGramCoefficient::kJaccard:
      return common / static_cast<double>(ga.size() + gb.size() - common);
    case QGramCoefficient::kOverlap:
      return common / static_cast<double>(std::min(ga.size(), gb.size()));
  }
  return 0.0;
}

TEST(QGramTest, BigramDecompositionPadded) {
  QGramOptions opts;  // q=2, padded
  const auto grams = QGrams("ab", opts);
  // "#ab$" -> {"#a", "ab", "b$"} sorted.
  EXPECT_EQ(grams, (std::vector<std::string>{"#a", "ab", "b$"}));
}

TEST(QGramTest, BigramDecompositionUnpadded) {
  QGramOptions opts;
  opts.padded = false;
  EXPECT_EQ(QGrams("abc", opts), (std::vector<std::string>{"ab", "bc"}));
  // Shorter than q: single gram with the whole string.
  EXPECT_EQ(QGrams("a", opts), (std::vector<std::string>{"a"}));
  EXPECT_TRUE(QGrams("", opts).empty());
}

TEST(QGramTest, IdenticalStringsScoreOne) {
  EXPECT_DOUBLE_EQ(BigramDice("ashworth", "ashworth"), 1.0);
  EXPECT_DOUBLE_EQ(BigramDice("", ""), 1.0);
}

TEST(QGramTest, EmptyVsNonEmptyScoresZero) {
  EXPECT_DOUBLE_EQ(BigramDice("", "x"), 0.0);
  EXPECT_DOUBLE_EQ(BigramDice("x", ""), 0.0);
}

TEST(QGramTest, DisjointStringsScoreZero) {
  QGramOptions opts;
  opts.padded = false;  // padding shares sentinel grams only with equal ends
  EXPECT_DOUBLE_EQ(QGramSimilarity("abab", "cdcd", opts), 0.0);
}

TEST(QGramTest, KnownDiceValue) {
  // Unpadded bigrams: "smith" -> {sm,mi,it,th}, "smyth" -> {sm,my,yt,th};
  // common = 2, dice = 2*2/(4+4) = 0.5.
  QGramOptions opts;
  opts.padded = false;
  EXPECT_DOUBLE_EQ(QGramSimilarity("smith", "smyth", opts), 0.5);
}

TEST(QGramTest, CoefficientOrdering) {
  // overlap >= dice >= jaccard for any pair.
  const char* pairs[][2] = {
      {"smith", "smyth"}, {"ashworth", "ashword"}, {"john", "jon"}};
  for (const auto& p : pairs) {
    QGramOptions dice, jac, over;
    jac.coefficient = QGramCoefficient::kJaccard;
    over.coefficient = QGramCoefficient::kOverlap;
    const double d = QGramSimilarity(p[0], p[1], dice);
    const double j = QGramSimilarity(p[0], p[1], jac);
    const double o = QGramSimilarity(p[0], p[1], over);
    EXPECT_LE(j, d + 1e-12);
    EXPECT_LE(d, o + 1e-12);
  }
}

TEST(QGramTest, MultisetSemanticsCountDuplicates) {
  // "aaa" unpadded bigrams = {aa, aa}; "aa" = {aa}. common = 1.
  QGramOptions opts;
  opts.padded = false;
  EXPECT_DOUBLE_EQ(QGramSimilarity("aaa", "aa", opts), 2.0 * 1 / (2 + 1));
}

TEST(QGramTest, PackedFastPathMatchesStringDecompositionExactly) {
  // The packed path (q <= 7) must return the same bits as the string-gram
  // oracle for every padded/unpadded/coefficient combination, including
  // whole-gram short strings, the 7/8 packing boundary, sentinel bytes
  // inside the input, and non-ASCII / high-bit bytes.
  const std::vector<std::string> corpus = {
      "",       "a",         "ab",          "abc",     "a#b$",
      "###",    "$$$",       "#$",          "aaaaaaa", "aaaaaaaa",
      "smith",  "smyth",     "ashworth",    "ashword", "elizabeth",
      "\x01\xff\x80", std::string("a\0b", 3), "\xc3\xa9\xc3\xa8"};
  for (const std::string& a : corpus) {
    for (const std::string& b : corpus) {
      for (int q = 1; q <= 8; ++q) {
        for (const bool padded : {false, true}) {
          for (const QGramCoefficient coeff :
               {QGramCoefficient::kDice, QGramCoefficient::kJaccard,
                QGramCoefficient::kOverlap}) {
            QGramOptions opts;
            opts.q = q;
            opts.padded = padded;
            opts.coefficient = coeff;
            EXPECT_EQ(QGramSimilarity(a, b, opts),
                      ReferenceSimilarity(a, b, opts))
                << "a=" << a << " b=" << b << " q=" << q
                << " padded=" << padded << " coeff=" << static_cast<int>(coeff);
          }
        }
      }
    }
  }
}

TEST(QGramTest, UnpaddedShortStringKeepsWholeGramSemantics) {
  // |s| < q without padding yields one whole-string gram, so two different
  // short strings share nothing and a short string matches a long one only
  // if a full q-gram equals it — never, since lengths differ.
  QGramOptions opts;
  opts.q = 3;
  opts.padded = false;
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "abc", opts), 0.0);
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "ax", opts), 0.0);
  // Identical short strings hit the equality shortcut.
  EXPECT_DOUBLE_EQ(QGramSimilarity("ab", "ab", opts), 1.0);
}

TEST(QGramTest, SentinelBytesInInputDoNotCollideWithPadding) {
  // A literal '#' or '$' in the value must stay distinct from the virtual
  // padding sentinels. padded("a#") = {"#a","a#","#$"}, padded("a") =
  // {"#a","a$"}: one shared gram -> dice = 2*1/(3+2).
  EXPECT_DOUBLE_EQ(BigramDice("a#", "a"), 2.0 * 1 / (3 + 2));
  // padded("$a") = {"#$","$a","a$"}, padded("a") = {"#a","a$"}.
  EXPECT_DOUBLE_EQ(BigramDice("$a", "a"), 2.0 * 1 / (3 + 2));
}

TEST(QGramTest, BigramDiceMatchesDefaultQGramSimilarity) {
  // The memoized wrapper must agree with the uncached path bit for bit,
  // on first computation and on cache replay.
  const std::vector<std::string> corpus = {"",     "a",        "ab",
                                           "john", "jon",      "ashworth",
                                           "a#b",  "elizabeth"};
  for (int round = 0; round < 2; ++round) {
    for (const std::string& a : corpus) {
      for (const std::string& b : corpus) {
        EXPECT_EQ(BigramDice(a, b), QGramSimilarity(a, b, QGramOptions{}))
            << "a=" << a << " b=" << b << " round " << round;
      }
    }
  }
}

// Property sweep: symmetry and range over a pool of name pairs.
class QGramPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(QGramPropertyTest, SymmetricAndBounded) {
  const auto& [a, b] = GetParam();
  for (int q : {1, 2, 3}) {
    for (bool padded : {false, true}) {
      QGramOptions opts;
      opts.q = q;
      opts.padded = padded;
      const double ab = QGramSimilarity(a, b, opts);
      const double ba = QGramSimilarity(b, a, opts);
      EXPECT_DOUBLE_EQ(ab, ba);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
      EXPECT_DOUBLE_EQ(QGramSimilarity(a, a, opts), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NamePairs, QGramPropertyTest,
    ::testing::Values(std::make_pair("ashworth", "ashword"),
                      std::make_pair("elizabeth", "elisabeth"),
                      std::make_pair("john", "jane"),
                      std::make_pair("a", "ab"),
                      std::make_pair("x", "x"),
                      std::make_pair("", "nonempty"),
                      std::make_pair("riley", "reilly"),
                      std::make_pair("smith", "schmidt")));

}  // namespace
}  // namespace tglink
