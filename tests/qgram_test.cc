#include "tglink/similarity/qgram.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(QGramTest, BigramDecompositionPadded) {
  QGramOptions opts;  // q=2, padded
  const auto grams = QGrams("ab", opts);
  // "#ab$" -> {"#a", "ab", "b$"} sorted.
  EXPECT_EQ(grams, (std::vector<std::string>{"#a", "ab", "b$"}));
}

TEST(QGramTest, BigramDecompositionUnpadded) {
  QGramOptions opts;
  opts.padded = false;
  EXPECT_EQ(QGrams("abc", opts), (std::vector<std::string>{"ab", "bc"}));
  // Shorter than q: single gram with the whole string.
  EXPECT_EQ(QGrams("a", opts), (std::vector<std::string>{"a"}));
  EXPECT_TRUE(QGrams("", opts).empty());
}

TEST(QGramTest, IdenticalStringsScoreOne) {
  EXPECT_DOUBLE_EQ(BigramDice("ashworth", "ashworth"), 1.0);
  EXPECT_DOUBLE_EQ(BigramDice("", ""), 1.0);
}

TEST(QGramTest, EmptyVsNonEmptyScoresZero) {
  EXPECT_DOUBLE_EQ(BigramDice("", "x"), 0.0);
  EXPECT_DOUBLE_EQ(BigramDice("x", ""), 0.0);
}

TEST(QGramTest, DisjointStringsScoreZero) {
  QGramOptions opts;
  opts.padded = false;  // padding shares sentinel grams only with equal ends
  EXPECT_DOUBLE_EQ(QGramSimilarity("abab", "cdcd", opts), 0.0);
}

TEST(QGramTest, KnownDiceValue) {
  // Unpadded bigrams: "smith" -> {sm,mi,it,th}, "smyth" -> {sm,my,yt,th};
  // common = 2, dice = 2*2/(4+4) = 0.5.
  QGramOptions opts;
  opts.padded = false;
  EXPECT_DOUBLE_EQ(QGramSimilarity("smith", "smyth", opts), 0.5);
}

TEST(QGramTest, CoefficientOrdering) {
  // overlap >= dice >= jaccard for any pair.
  const char* pairs[][2] = {
      {"smith", "smyth"}, {"ashworth", "ashword"}, {"john", "jon"}};
  for (const auto& p : pairs) {
    QGramOptions dice, jac, over;
    jac.coefficient = QGramCoefficient::kJaccard;
    over.coefficient = QGramCoefficient::kOverlap;
    const double d = QGramSimilarity(p[0], p[1], dice);
    const double j = QGramSimilarity(p[0], p[1], jac);
    const double o = QGramSimilarity(p[0], p[1], over);
    EXPECT_LE(j, d + 1e-12);
    EXPECT_LE(d, o + 1e-12);
  }
}

TEST(QGramTest, MultisetSemanticsCountDuplicates) {
  // "aaa" unpadded bigrams = {aa, aa}; "aa" = {aa}. common = 1.
  QGramOptions opts;
  opts.padded = false;
  EXPECT_DOUBLE_EQ(QGramSimilarity("aaa", "aa", opts), 2.0 * 1 / (2 + 1));
}

// Property sweep: symmetry and range over a pool of name pairs.
class QGramPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(QGramPropertyTest, SymmetricAndBounded) {
  const auto& [a, b] = GetParam();
  for (int q : {1, 2, 3}) {
    for (bool padded : {false, true}) {
      QGramOptions opts;
      opts.q = q;
      opts.padded = padded;
      const double ab = QGramSimilarity(a, b, opts);
      const double ba = QGramSimilarity(b, a, opts);
      EXPECT_DOUBLE_EQ(ab, ba);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
      EXPECT_DOUBLE_EQ(QGramSimilarity(a, a, opts), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NamePairs, QGramPropertyTest,
    ::testing::Values(std::make_pair("ashworth", "ashword"),
                      std::make_pair("elizabeth", "elisabeth"),
                      std::make_pair("john", "jane"),
                      std::make_pair("a", "ab"),
                      std::make_pair("x", "x"),
                      std::make_pair("", "nonempty"),
                      std::make_pair("riley", "reilly"),
                      std::make_pair("smith", "schmidt")));

}  // namespace
}  // namespace tglink
