// Cross-measure property suite: every Measure in the library must behave
// like a similarity — bounded to [0,1], symmetric, reflexive (1 on equal
// non-empty values), and following the empty-value conventions. Runs as a
// parameterized sweep over the full (measure × value-pair) grid.

#include <cctype>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include <gtest/gtest.h>

#include "tglink/similarity/field_similarity.h"

namespace tglink {
namespace {

const Measure kAllMeasures[] = {
    Measure::kExact,        Measure::kQGramDice,   Measure::kTrigramDice,
    Measure::kLevenshtein,  Measure::kDamerau,     Measure::kJaro,
    Measure::kJaroWinkler,  Measure::kMongeElkan,  Measure::kSoundexEqual,
    Measure::kDoubleMetaphone, Measure::kSmithWaterman,
    Measure::kLcsSubstring,
};

const std::pair<const char*, const char*> kValuePairs[] = {
    {"ashworth", "ashworth"},   {"ashworth", "ashwerth"},
    {"elizabeth", "betsy"},     {"john", "john"},
    {"j", "j"},                 {"j", "k"},
    {"12 mill street", "mill street"},
    {"cotton weaver", "power loom weaver"},
    {"a", "abcdefghij"},        {"riley", "reilly"},
    {"x", ""},                  {"", ""},
};

class MeasurePropertyTest
    : public ::testing::TestWithParam<std::tuple<Measure, size_t>> {};

TEST_P(MeasurePropertyTest, BoundedSymmetricReflexive) {
  const Measure measure = std::get<0>(GetParam());
  const auto& [a, b] = kValuePairs[std::get<1>(GetParam())];

  const double ab = ComputeMeasure(measure, a, b);
  const double ba = ComputeMeasure(measure, b, a);
  EXPECT_GE(ab, 0.0) << MeasureName(measure);
  EXPECT_LE(ab, 1.0) << MeasureName(measure);
  EXPECT_DOUBLE_EQ(ab, ba) << MeasureName(measure);

  // Reflexivity on both operands.
  for (const char* v : {a, b}) {
    EXPECT_DOUBLE_EQ(ComputeMeasure(measure, v, v), 1.0)
        << MeasureName(measure) << " on '" << v << "'";
  }

  // Empty-value conventions.
  const std::string_view sa(a), sb(b);
  if (sa.empty() != sb.empty()) {
    EXPECT_DOUBLE_EQ(ab, 0.0) << MeasureName(measure);
  }
  if (sa.empty() && sb.empty()) {
    EXPECT_DOUBLE_EQ(ab, 1.0) << MeasureName(measure);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasuresAllPairs, MeasurePropertyTest,
    ::testing::Combine(::testing::ValuesIn(kAllMeasures),
                       ::testing::Range<size_t>(0, std::size(kValuePairs))),
    [](const ::testing::TestParamInfo<std::tuple<Measure, size_t>>& info) {
      std::string name = MeasureName(std::get<0>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_pair" + std::to_string(std::get<1>(info.param));
    });

TEST(MeasureNamesTest, AllDistinctAndNonEmpty) {
  std::set<std::string> names;
  for (Measure measure : kAllMeasures) {
    const std::string name = MeasureName(measure);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name << " duplicated";
  }
}

// A similarity used for matching should rank a true spelling variant above
// an unrelated name — check this discrimination property for the fuzzy
// string measures.
class MeasureDiscriminationTest : public ::testing::TestWithParam<Measure> {};

TEST_P(MeasureDiscriminationTest, VariantOutranksUnrelated) {
  const Measure measure = GetParam();
  const double variant = ComputeMeasure(measure, "ashworth", "ashwerth");
  const double unrelated = ComputeMeasure(measure, "ashworth", "pilkington");
  EXPECT_GT(variant, unrelated) << MeasureName(measure);
}

INSTANTIATE_TEST_SUITE_P(
    FuzzyMeasures, MeasureDiscriminationTest,
    ::testing::Values(Measure::kQGramDice, Measure::kTrigramDice,
                      Measure::kLevenshtein, Measure::kDamerau, Measure::kJaro,
                      Measure::kJaroWinkler, Measure::kSmithWaterman,
                      Measure::kLcsSubstring, Measure::kDoubleMetaphone));

}  // namespace
}  // namespace tglink
