// Unit tests for the scenario engine (synth/scenario.h): preset registry
// integrity (embedded JSON byte-identical to the checked-in scenarios/
// files), strict parsing (unknown keys and type mismatches are errors),
// per-field range validation (out-of-range rates return InvalidArgument
// naming the field — never a silent clamp), resolution semantics
// (preset -> file -> NotFound), content-hash stability, and the CHECK
// that stops GenerateCensusSeries from ever running an invalid config.

#include "tglink/synth/scenario.h"

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tglink/synth/generator.h"
#include "tglink/util/csv.h"

namespace tglink {
namespace {

/// A minimal valid document with one splice point for per-field probes.
std::string DocWith(const std::string& body) {
  return std::string("{\"schema\": \"tglink.scenario/1\", "
                     "\"name\": \"probe\"") +
         (body.empty() ? "" : ", " + body) + "}";
}

TEST(ScenarioTest, RegistryHasTheDocumentedPresets) {
  const std::vector<std::string> names = ScenarioPresetNames();
  const char* expected[] = {
      "rawtenstall",          "ice_id_longitudinal",
      "mass_surname_change",  "household_dissolution_wave",
      "migration_shock",      "extreme_missingness",
      "within_snapshot_duplicates",
  };
  ASSERT_EQ(names.size(), std::size(expected));
  for (size_t i = 0; i < names.size(); ++i) EXPECT_EQ(names[i], expected[i]);
}

TEST(ScenarioTest, EveryPresetParsesAndMatchesItsRegistryName) {
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    SCOPED_TRACE(std::string(preset.name));
    auto scenario = ParseScenario(preset.json);
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    EXPECT_EQ(scenario.value().name, preset.name);
    EXPECT_FALSE(scenario.value().description.empty());
    EXPECT_EQ(scenario.value().content_hash.size(), 16u);
  }
}

TEST(ScenarioTest, EmbeddedPresetsAreByteIdenticalToCheckedInFiles) {
  // The registry embeds each profile so presets resolve from any working
  // directory; the scenarios/ tree is the reviewable source of truth. The
  // two must never drift.
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    SCOPED_TRACE(std::string(preset.name));
    const std::string path = std::string(TGLINK_SOURCE_DIR) + "/scenarios/" +
                             std::string(preset.name) + ".json";
    auto file = ReadFileToString(path);
    ASSERT_TRUE(file.ok()) << path << ": " << file.status().ToString();
    EXPECT_EQ(file.value(), preset.json)
        << "embedded preset drifted from " << path;
  }
}

TEST(ScenarioTest, RawtenstallPresetIsTheDefaultConfig) {
  auto scenario = ResolveScenario("rawtenstall");
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  const GeneratorConfig& got = scenario.value().config;
  const GeneratorConfig defaults;
  EXPECT_EQ(got.seed, defaults.seed);
  EXPECT_EQ(got.start_year, defaults.start_year);
  EXPECT_EQ(got.num_censuses, defaults.num_censuses);
  EXPECT_EQ(got.scale, defaults.scale);
  EXPECT_EQ(got.population.emigration_prob,
            defaults.population.emigration_prob);
  EXPECT_EQ(got.population.mass_surname_change_prob, 0.0);
  EXPECT_EQ(got.population.household_dissolution_prob, 0.0);
  EXPECT_EQ(got.population.migration_shock_decade, 0u);
  EXPECT_EQ(got.corruption.duplicate_record_prob, 0.0);
  EXPECT_EQ(got.corruption.noise_scale, defaults.corruption.noise_scale);
}

TEST(ScenarioTest, ParsesOverridesFromEverySection) {
  auto scenario = ParseScenario(DocWith(
      "\"description\": \"d\", "
      "\"generator\": {\"seed\": 7, \"start_year\": 1850, "
      "\"num_censuses\": 8, \"scale\": 0.5}, "
      "\"population\": {\"emigration_prob\": 0.06, "
      "\"migration_shock_decade\": 3, \"migration_shock_multiplier\": 5.0, "
      "\"household_targets\": [40, 50]}, "
      "\"corruption\": {\"noise_scale\": 2.0, \"age_error_max\": 4, "
      "\"duplicate_record_prob\": 0.05}"));
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  const GeneratorConfig& config = scenario.value().config;
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.start_year, 1850);
  EXPECT_EQ(config.num_censuses, 8);
  EXPECT_EQ(config.scale, 0.5);
  EXPECT_EQ(config.population.emigration_prob, 0.06);
  EXPECT_EQ(config.population.migration_shock_decade, 3u);
  EXPECT_EQ(config.population.migration_shock_multiplier, 5.0);
  ASSERT_EQ(config.population.household_targets.size(), 2u);
  EXPECT_EQ(config.population.household_targets[1], 50u);
  // generator.start_year is authoritative for the population model too.
  EXPECT_EQ(config.population.start_year, 1850);
  EXPECT_EQ(config.corruption.noise_scale, 2.0);
  EXPECT_EQ(config.corruption.age_error_max, 4);
  EXPECT_EQ(config.corruption.duplicate_record_prob, 0.05);
}

TEST(ScenarioTest, RejectsStructurallyInvalidDocuments) {
  struct BadDoc {
    const char* json;
    const char* needle;  // must appear in the error message
  };
  const BadDoc bad[] = {
      {"[]", "must be an object"},
      {"{\"name\": \"x\"}", "missing \"schema\""},
      {"{\"schema\": \"tglink.scenario/2\", \"name\": \"x\"}", "schema"},
      {"{\"schema\": \"tglink.scenario/1\"}", "missing \"name\""},
      {"{\"schema\": \"tglink.scenario/1\", \"name\": \"\"}", "name"},
      {"{\"schema\": \"tglink.scenario/1\", \"name\": 3}", "name"},
  };
  for (const BadDoc& doc : bad) {
    auto scenario = ParseScenario(doc.json);
    ASSERT_FALSE(scenario.ok()) << doc.json;
    EXPECT_EQ(scenario.status().code(), StatusCode::kInvalidArgument)
        << doc.json;
    EXPECT_NE(scenario.status().message().find(doc.needle), std::string::npos)
        << doc.json << " -> " << scenario.status().ToString();
  }
  // Malformed JSON surfaces as the parser's error, not a scenario error.
  EXPECT_EQ(ParseScenario("{").status().code(), StatusCode::kParseError);
}

TEST(ScenarioTest, RejectsUnknownKeysAtEveryLevel) {
  struct BadDoc {
    std::string json;
    const char* needle;
  };
  const BadDoc bad[] = {
      {DocWith("\"extra\": 1"), "extra is not a scenario field"},
      {DocWith("\"generator\": {\"sclae\": 0.5}"),
       "generator.sclae is not a generator field"},
      {DocWith("\"population\": {\"emigration\": 0.1}"),
       "population.emigration is not a population field"},
      {DocWith("\"corruption\": {\"typo_prob\": 0.1}"),
       "corruption.typo_prob is not a corruption field"},
  };
  for (const BadDoc& doc : bad) {
    auto scenario = ParseScenario(doc.json);
    ASSERT_FALSE(scenario.ok()) << doc.json;
    EXPECT_NE(scenario.status().message().find(doc.needle), std::string::npos)
        << doc.json << " -> " << scenario.status().ToString();
  }
}

TEST(ScenarioTest, RejectsTypeMismatches) {
  struct BadDoc {
    std::string json;
    const char* needle;
  };
  const BadDoc bad[] = {
      {DocWith("\"generator\": 3"), "generator must be an object"},
      {DocWith("\"generator\": {\"seed\": -1}"), "generator.seed"},
      {DocWith("\"generator\": {\"num_censuses\": 2.5}"),
       "generator.num_censuses must be an integer"},
      {DocWith("\"population\": {\"emigration_prob\": \"high\"}"),
       "population.emigration_prob must be a number"},
      {DocWith("\"population\": {\"household_targets\": 40}"),
       "population.household_targets must be an array"},
      {DocWith("\"population\": {\"household_targets\": [40, \"x\"]}"),
       "population.household_targets[]"},
      {DocWith("\"corruption\": {\"age_error_max\": \"big\"}"),
       "corruption.age_error_max must be an integer"},
  };
  for (const BadDoc& doc : bad) {
    auto scenario = ParseScenario(doc.json);
    ASSERT_FALSE(scenario.ok()) << doc.json;
    EXPECT_NE(scenario.status().message().find(doc.needle), std::string::npos)
        << doc.json << " -> " << scenario.status().ToString();
  }
}

// The no-silent-clamp guarantee, field by field: every out-of-range rate is
// an InvalidArgument naming the offending field.
TEST(ScenarioTest, OutOfRangeRatesAreErrorsNamingTheField) {
  struct BadDoc {
    std::string json;
    const char* needle;
  };
  const BadDoc bad[] = {
      {DocWith("\"generator\": {\"scale\": 0}"), "generator.scale"},
      {DocWith("\"generator\": {\"scale\": -0.5}"), "generator.scale"},
      {DocWith("\"generator\": {\"num_censuses\": 0}"),
       "generator.num_censuses"},
      {DocWith("\"population\": {\"emigration_prob\": 1.5}"),
       "population.emigration_prob"},
      {DocWith("\"population\": {\"death_prob_old\": -0.1}"),
       "population.death_prob_old"},
      {DocWith("\"population\": {\"marriage_prob\": 2}"),
       "population.marriage_prob"},
      {DocWith("\"population\": {\"mass_surname_change_prob\": 1.01}"),
       "population.mass_surname_change_prob"},
      {DocWith("\"population\": {\"household_dissolution_prob\": -1}"),
       "population.household_dissolution_prob"},
      {DocWith("\"population\": {\"migration_shock_multiplier\": -2}"),
       "population.migration_shock_multiplier"},
      {DocWith("\"population\": {\"birth_mean\": -0.5}"),
       "population.birth_mean"},
      {DocWith("\"population\": {\"initial_children_mean\": -1}"),
       "population.initial_children_mean"},
      {DocWith("\"population\": {\"household_targets\": []}"),
       "population.household_targets"},
      {DocWith("\"population\": {\"household_targets\": [40, 0]}"),
       "population.household_targets"},
      {DocWith("\"corruption\": {\"noise_scale\": -0.5}"),
       "corruption.noise_scale"},
      {DocWith("\"corruption\": {\"age_error_max\": 0}"),
       "corruption.age_error_max"},
      {DocWith("\"corruption\": {\"name_typo_prob\": 1.2}"),
       "corruption.name_typo_prob"},
      {DocWith("\"corruption\": {\"missing_age\": -0.2}"),
       "corruption.missing_age"},
      {DocWith("\"corruption\": {\"duplicate_record_prob\": 1.5}"),
       "corruption.duplicate_record_prob"},
      // A legal rate whose product with noise_scale exceeds 1 is equally
      // ill-defined: Bernoulli(rate * noise_scale) must stay a probability.
      {DocWith("\"corruption\": {\"noise_scale\": 4.0, "
               "\"missing_surname\": 0.3}"),
       "corruption.missing_surname"},
  };
  for (const BadDoc& doc : bad) {
    auto scenario = ParseScenario(doc.json);
    ASSERT_FALSE(scenario.ok()) << "accepted: " << doc.json;
    EXPECT_EQ(scenario.status().code(), StatusCode::kInvalidArgument)
        << doc.json;
    EXPECT_NE(scenario.status().message().find(doc.needle), std::string::npos)
        << doc.json << " -> " << scenario.status().ToString();
  }
}

TEST(ScenarioTest, ValidateGeneratorConfigAcceptsDefaultsRejectsBadFields) {
  EXPECT_TRUE(ValidateGeneratorConfig(GeneratorConfig()).ok());

  GeneratorConfig bad_scale;
  bad_scale.scale = 0.0;
  EXPECT_EQ(ValidateGeneratorConfig(bad_scale).code(),
            StatusCode::kInvalidArgument);

  GeneratorConfig bad_prob;
  bad_prob.population.lodger_prob = 1.5;
  const Status status = ValidateGeneratorConfig(bad_prob);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("population.lodger_prob"),
            std::string::npos)
      << status.ToString();

  GeneratorConfig bad_dup;
  bad_dup.corruption.duplicate_record_prob = -0.5;
  EXPECT_FALSE(ValidateGeneratorConfig(bad_dup).ok());
}

TEST(ScenarioDeathTest, GenerateCensusSeriesChecksValidity) {
  // The generator refuses to run an invalid config outright — aborting is
  // the backstop behind the Status-based validation, so a config that
  // bypasses ParseScenario still cannot be silently clamped.
  GeneratorConfig invalid;
  invalid.scale = 0.02;
  invalid.population.emigration_prob = 2.0;
  EXPECT_DEATH(GenerateCensusSeries(invalid),
               "population.emigration_prob");
}

TEST(ScenarioTest, ResolveScenarioPrefersPresetsThenFiles) {
  // Preset name resolves from the registry.
  auto preset = ResolveScenario("migration_shock");
  ASSERT_TRUE(preset.ok()) << preset.status().ToString();
  EXPECT_EQ(preset.value().name, "migration_shock");

  // A path to a checked-in profile resolves through the file loader and
  // yields the same scenario (same content, same hash).
  const std::string path =
      std::string(TGLINK_SOURCE_DIR) + "/scenarios/migration_shock.json";
  auto from_file = ResolveScenario(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  EXPECT_EQ(from_file.value().name, preset.value().name);
  EXPECT_EQ(from_file.value().content_hash, preset.value().content_hash);

  // Neither a preset nor a file: NotFound, listing the registry.
  auto missing = ResolveScenario("no_such_profile");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("rawtenstall"), std::string::npos)
      << missing.status().ToString();
}

TEST(ScenarioTest, LoadScenarioFilePrefixesThePathOnParseErrors) {
  const std::string path = "/tmp/tglink_scenario_test_invalid.json";
  ASSERT_TRUE(WriteStringToFile(path, DocWith(
      "\"population\": {\"emigration_prob\": 9}")).ok());
  auto scenario = LoadScenarioFile(path);
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find(path), std::string::npos)
      << scenario.status().ToString();
  EXPECT_NE(scenario.status().message().find("population.emigration_prob"),
            std::string::npos)
      << scenario.status().ToString();
  std::remove(path.c_str());
}

TEST(ScenarioTest, ContentHashIsStableAndContentSensitive) {
  // Known FNV-1a 64 vectors pin the algorithm itself.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);

  const std::string doc = DocWith("");
  auto first = ParseScenario(doc);
  auto second = ParseScenario(doc);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first.value().content_hash, second.value().content_hash);

  // Any byte change — even whitespace — changes the recorded hash: the
  // hash pins the document text, not the parsed result.
  auto reformatted = ParseScenario(doc + " ");
  ASSERT_TRUE(reformatted.ok());
  EXPECT_NE(reformatted.value().content_hash, first.value().content_hash);

  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(doc)));
  EXPECT_EQ(first.value().content_hash, hex);
}

}  // namespace
}  // namespace tglink
