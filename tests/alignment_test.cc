#include "tglink/similarity/alignment.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(SmithWatermanTest, ScoreBasics) {
  SmithWatermanParams params;  // match 2, mismatch -1, gap -1
  EXPECT_DOUBLE_EQ(SmithWatermanScore("abc", "abc", params), 6.0);
  EXPECT_DOUBLE_EQ(SmithWatermanScore("abc", "xyz", params), 0.0);
  EXPECT_DOUBLE_EQ(SmithWatermanScore("", "abc", params), 0.0);
  // Local alignment: the shared core scores regardless of flanks.
  EXPECT_DOUBLE_EQ(SmithWatermanScore("xxmillxx", "yymillyy", params), 8.0);
}

TEST(SmithWatermanTest, GapHandling) {
  SmithWatermanParams params;
  // "abcd" vs "abxcd": align abcd with one gap: 4 matches * 2 - 1 gap = 7.
  EXPECT_DOUBLE_EQ(SmithWatermanScore("abcd", "abxcd", params), 7.0);
}

TEST(SmithWatermanTest, SimilarityNormalized) {
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("", "a"), 0.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("abc", "abc"), 1.0);
  // Substring containment scores 1 under the shorter-string normalization.
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("mill", "12 mill street"), 1.0);
  const double partial = SmithWatermanSimilarity("smith", "smyth");
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, 1.0);
}

TEST(LcsTest, SubstringLengths) {
  EXPECT_EQ(LongestCommonSubstring("ashworth", "ashword"), 6u);  // "ashwor"
  EXPECT_EQ(LongestCommonSubstring("abc", "abc"), 3u);
  EXPECT_EQ(LongestCommonSubstring("abc", "xyz"), 0u);
  EXPECT_EQ(LongestCommonSubstring("", "abc"), 0u);
  EXPECT_EQ(LongestCommonSubstring("xabcy", "zabcw"), 3u);
}

TEST(LcsTest, SubsequenceLengths) {
  EXPECT_EQ(LongestCommonSubsequence("abcde", "ace"), 3u);
  EXPECT_EQ(LongestCommonSubsequence("abc", "abc"), 3u);
  EXPECT_EQ(LongestCommonSubsequence("abc", "cba"), 1u);
  EXPECT_EQ(LongestCommonSubsequence("", ""), 0u);
  // Subsequence >= substring always.
  EXPECT_GE(LongestCommonSubsequence("elizabeth", "elisabeth"),
            LongestCommonSubstring("elizabeth", "elisabeth"));
}

TEST(LcsTest, NormalizedSimilarities) {
  EXPECT_DOUBLE_EQ(LcsSubstringSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LcsSubstringSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LcsSubstringSimilarity("abcd", "ab"), 2.0 * 2 / 6);
  EXPECT_DOUBLE_EQ(LcsSubsequenceSimilarity("abcde", "ace"), 2.0 * 3 / 8);
}

class AlignmentPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(AlignmentPropertyTest, SymmetryAndBounds) {
  const auto& [a, b] = GetParam();
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity(a, b),
                   SmithWatermanSimilarity(b, a));
  EXPECT_EQ(LongestCommonSubstring(a, b), LongestCommonSubstring(b, a));
  EXPECT_EQ(LongestCommonSubsequence(a, b), LongestCommonSubsequence(b, a));
  for (double sim : {SmithWatermanSimilarity(a, b),
                     LcsSubstringSimilarity(a, b),
                     LcsSubsequenceSimilarity(a, b)}) {
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity(a, a), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    NamePairs, AlignmentPropertyTest,
    ::testing::Values(std::make_pair("ashworth", "ashword"),
                      std::make_pair("12 mill street", "mill st"),
                      std::make_pair("cotton weaver", "weaver"),
                      std::make_pair("", "x"),
                      std::make_pair("riley", "reilly"),
                      std::make_pair("aaaa", "aa")));

}  // namespace
}  // namespace tglink
