#include "tglink/similarity/phonetic.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(SoundexTest, TextbookCodes) {
  EXPECT_EQ(Soundex("robert"), "R163");
  EXPECT_EQ(Soundex("rupert"), "R163");
  EXPECT_EQ(Soundex("ashcraft"), "A261");  // h is transparent
  EXPECT_EQ(Soundex("ashcroft"), "A261");
  EXPECT_EQ(Soundex("tymczak"), "T522");
  EXPECT_EQ(Soundex("pfister"), "P236");
  EXPECT_EQ(Soundex("honeyman"), "H555");
}

TEST(SoundexTest, SoundAlikeSurnamesShareCodes) {
  EXPECT_EQ(Soundex("smith"), Soundex("smyth"));
  EXPECT_EQ(Soundex("riley"), Soundex("reilly"));
  EXPECT_EQ(Soundex("ashworth"), Soundex("ashwerth"));
}

TEST(SoundexTest, CaseAndPunctuationInsensitive) {
  EXPECT_EQ(Soundex("O'Brien"), Soundex("obrien"));
  EXPECT_EQ(Soundex("SMITH"), Soundex("smith"));
}

TEST(SoundexTest, EmptyAndNonAlphabetic) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
  EXPECT_EQ(Soundex("a"), "A000");
}

TEST(SoundexTest, AlwaysFourCharacters) {
  for (const char* name : {"lee", "x", "wolstenholme", "kay", "butterworth"}) {
    EXPECT_EQ(Soundex(name).size(), 4u) << name;
  }
}

TEST(NysiisTest, StableAcrossSpellingVariants) {
  EXPECT_EQ(Nysiis("knight"), Nysiis("night"));
  EXPECT_EQ(Nysiis("macdonald"), Nysiis("mcdonald"));
}

TEST(NysiisTest, KnownShapes) {
  // NYSIIS keeps the first letter and codes vowels as 'A'.
  EXPECT_EQ(Nysiis("smith"), "SNAT");
  EXPECT_EQ(Nysiis(""), "");
}

TEST(NysiisTest, BoundedLength) {
  for (const char* name :
       {"wolstenholme", "ramsbottom", "butterworth", "x", "macdonald"}) {
    EXPECT_LE(Nysiis(name).size(), 6u) << name;
    EXPECT_FALSE(Nysiis(name).empty()) << name;
  }
}

TEST(NysiisTest, MoreDiscriminatingThanSoundexOnPool) {
  // On a surname pool, NYSIIS should produce at least as many distinct codes
  // as Soundex (it keeps more structure).
  const char* pool[] = {"ashworth", "smith",   "taylor",  "holt",
                        "hargreaves", "pickup", "nuttall", "rothwell",
                        "haworth",  "duckworth", "ormerod", "kershaw"};
  std::set<std::string> soundex_codes, nysiis_codes;
  for (const char* name : pool) {
    soundex_codes.insert(Soundex(name));
    nysiis_codes.insert(Nysiis(name));
  }
  EXPECT_GE(nysiis_codes.size(), soundex_codes.size());
}

}  // namespace
}  // namespace tglink
