#include "tglink/similarity/phonetic.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(SoundexTest, TextbookCodes) {
  EXPECT_EQ(Soundex("robert"), "R163");
  EXPECT_EQ(Soundex("rupert"), "R163");
  EXPECT_EQ(Soundex("ashcraft"), "A261");  // h is transparent
  EXPECT_EQ(Soundex("ashcroft"), "A261");
  EXPECT_EQ(Soundex("tymczak"), "T522");
  EXPECT_EQ(Soundex("pfister"), "P236");
  EXPECT_EQ(Soundex("honeyman"), "H555");
}

TEST(SoundexTest, SoundAlikeSurnamesShareCodes) {
  EXPECT_EQ(Soundex("smith"), Soundex("smyth"));
  EXPECT_EQ(Soundex("riley"), Soundex("reilly"));
  EXPECT_EQ(Soundex("ashworth"), Soundex("ashwerth"));
}

TEST(SoundexTest, CaseAndPunctuationInsensitive) {
  EXPECT_EQ(Soundex("O'Brien"), Soundex("obrien"));
  EXPECT_EQ(Soundex("SMITH"), Soundex("smith"));
}

TEST(SoundexTest, EmptyAndNonAlphabetic) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
  EXPECT_EQ(Soundex("a"), "A000");
}

TEST(SoundexTest, AlwaysFourCharacters) {
  for (const char* name : {"lee", "x", "wolstenholme", "kay", "butterworth"}) {
    EXPECT_EQ(Soundex(name).size(), 4u) << name;
  }
}

TEST(NysiisTest, StableAcrossSpellingVariants) {
  EXPECT_EQ(Nysiis("knight"), Nysiis("night"));
  EXPECT_EQ(Nysiis("macdonald"), Nysiis("mcdonald"));
}

TEST(NysiisTest, KnownShapes) {
  // NYSIIS keeps the first letter and codes vowels as 'A'.
  EXPECT_EQ(Nysiis("smith"), "SNAT");
  EXPECT_EQ(Nysiis(""), "");
}

TEST(NysiisTest, RuleBattery) {
  // One word per transformation rule: prefix rewrites (mac/kn/pf/sch/ph),
  // the EV->AF digraph, the q/z/m letter maps, mid-word kn/k/sch/ph, the
  // h- and w-collapse rules, every D-suffix rewrite (dt/rt/rd/nt/nd), and
  // the trailing s / ay / a cleanups. Pinned so a rule regression shifts a
  // known code instead of silently reshaping blocking keys.
  const std::pair<const char*, const char*> pins[] = {
      {"evans", "EVAN"},     {"evremond", "EVRANA"}, {"quick", "QAC"},
      {"zeta", "ZAT"},       {"mummery", "MANARY"},  {"knight", "NAGT"},
      {"hackney", "HACNY"},  {"kirk", "CARC"},       {"school", "SAL"},
      {"mischa", "MASSS"},   {"phil", "FAL"},        {"raphael", "RAFFAL"},
      {"john", "JAN"},       {"ruth", "RAT"},        {"lowe", "L"},
      {"pfeiffer", "FAFAR"}, {"schmidt", "SNAD"},    {"macdonald", "MCDANA"},
      {"mcgee", "MCGY"},     {"shawnee", "SANY"},    {"haugh", "HAG"},
      {"bradt", "BRAD"},     {"hart", "HAD"},        {"ford", "FAD"},
      {"grant", "GRAD"},     {"bond", "BAD"},        {"agnes", "AGN"},
      {"free", "FRY"},       {"maggie", "MAGY"},     {"holiday", "HALADY"},
      {"banks", "BANC"},     {"Daisy MAY", "DASYNY"},
  };
  for (const auto& [word, code] : pins) {
    EXPECT_EQ(Nysiis(word), code) << word;
  }
}

TEST(NysiisTest, BoundedLength) {
  for (const char* name :
       {"wolstenholme", "ramsbottom", "butterworth", "x", "macdonald"}) {
    EXPECT_LE(Nysiis(name).size(), 6u) << name;
    EXPECT_FALSE(Nysiis(name).empty()) << name;
  }
}

TEST(NysiisTest, MoreDiscriminatingThanSoundexOnPool) {
  // On a surname pool, NYSIIS should produce at least as many distinct codes
  // as Soundex (it keeps more structure).
  const char* pool[] = {"ashworth", "smith",   "taylor",  "holt",
                        "hargreaves", "pickup", "nuttall", "rothwell",
                        "haworth",  "duckworth", "ormerod", "kershaw"};
  std::set<std::string> soundex_codes, nysiis_codes;
  for (const char* name : pool) {
    soundex_codes.insert(Soundex(name));
    nysiis_codes.insert(Nysiis(name));
  }
  EXPECT_GE(nysiis_codes.size(), soundex_codes.size());
}

}  // namespace
}  // namespace tglink
