#include "tglink/obs/run_report.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tests/paper_example.h"

namespace tglink {
namespace obs {
namespace {

TEST(RunReportTest, SerializesAllSectionsAgainstExplicitState) {
  RunReportBuilder report("unit_test");
  report.AddOption("scale", 0.25)
      .AddOption("seed", static_cast<uint64_t>(42))
      .AddOption("mode", std::string("fast"))
      .AddScalar("link_seconds", 1.5);
  PrecisionRecall pr;
  pr.true_positives = 8;
  pr.false_positives = 2;
  pr.false_negatives = 4;
  report.AddQuality("record.verified", pr);
  IterationStats iter;
  iter.delta = 0.5;  // exactly representable -> stable "%.17g" rendering
  iter.scored_pairs = 10;
  iter.accepted_subgraphs = 3;
  report.AddIterations({iter});

  MetricsSnapshot metrics;
  metrics.counters.push_back({"x.events", 7});
  std::vector<TraceEvent> spans;
  TraceEvent ev;
  ev.name = "phase";
  ev.path = "phase";
  ev.dur_ns = 1000;
  spans.push_back(ev);

  const std::string json = report.ToJson(metrics, spans);
  EXPECT_NE(json.find("\"schema\":\"tglink.run_report/2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"unit_test\""), std::string::npos);
  // /2 provenance + memory blocks are always present, even in a unit test
  // with no instrumented run behind it.
  EXPECT_NE(json.find("\"build\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
  EXPECT_NE(json.find("\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"allocator\""), std::string::npos);
  EXPECT_NE(json.find("\"hooks_compiled\""), std::string::npos);
  EXPECT_NE(json.find("\"arenas\""), std::string::npos);
  EXPECT_NE(json.find("\"rss_kb\""), std::string::npos);
  EXPECT_NE(json.find("\"vm_hwm_kb\""), std::string::npos);
  EXPECT_NE(json.find("\"scale\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"fast\""), std::string::npos);
  EXPECT_NE(json.find("\"link_seconds\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"record.verified\""), std::string::npos);
  EXPECT_NE(json.find("\"precision\""), std::string::npos);
  EXPECT_NE(json.find("\"iterations\""), std::string::npos);
  EXPECT_NE(json.find("\"delta\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"x.events\":7"), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"phase\""), std::string::npos);
  // /2 spans carry allocation deltas (zero here: the explicit TraceEvent
  // was never routed through the allocator hooks).
  EXPECT_NE(json.find("\"alloc_bytes\":0"), std::string::npos);
  EXPECT_NE(json.find("\"free_bytes\":0"), std::string::npos);
  EXPECT_NE(json.find("\"live_delta_bytes\":0"), std::string::npos);
}

TEST(RunReportTest, WriteFileRoundTrips) {
  RunReportBuilder report("file_test");
  const std::string path = ::testing::TempDir() + "/run_report_test.json";
  ASSERT_TRUE(report.WriteFile(path).ok());
  // Written file is the serialized report (spot-check the header).
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const size_t n = fread(buf, 1, sizeof(buf) - 1, f);
  fclose(f);
  ASSERT_GT(n, 0u);
  EXPECT_NE(std::string(buf).find("tglink.run_report/2"), std::string::npos);
}

// Golden-shape test: a real (tiny) LinkCensusPair run emits a report whose
// span tree contains the pipeline's phase names. Pins the instrumentation
// against silent removal.
TEST(RunReportTest, LinkCensusPairEmitsExpectedSpans) {
  GlobalMetrics().ResetAllForTesting();
  GlobalTracer().Clear();
  GlobalTracer().SetEnabled(true);

  LinkageConfig config = configs::DefaultConfig();
  config.blocking = BlockingConfig::MakeExhaustive();
  const LinkageResult result =
      LinkCensusPair(testing_example::MakeCensus1871(),
                     testing_example::MakeCensus1881(), config);
  GlobalTracer().SetEnabled(false);

  RunReportBuilder report("golden_shape");
  report.AddIterations(result.iterations);
  const std::string json = report.ToJson();

  for (const char* span : {"linkage.link_census_pair",
                           "linkage.complete_groups",
                           "linkage.iteration",
                           "prematch.score_candidates",
                           "prematch.cluster",
                           "subgraph.build_score",
                           "selection.greedy",
                           "residual.global"}) {
    EXPECT_NE(json.find(span), std::string::npos) << "missing span " << span;
  }
  for (const char* counter : {"linkage.iterations",
                              "linkage.record_links",
                              "prematch.pairs_scored",
                              "selection.accepted_subgraphs",
                              "similarity.agg_calls"}) {
    EXPECT_NE(json.find(counter), std::string::npos)
        << "missing counter " << counter;
  }
  EXPECT_NE(json.find("\"schema\":\"tglink.run_report/2\""),
            std::string::npos);

  GlobalTracer().Clear();
  GlobalMetrics().ResetAllForTesting();
}

}  // namespace
}  // namespace obs
}  // namespace tglink
