// Edge-case and invariant tests for the inverted candidate index: the list
// primitives (galloping intersection, k-way union), empty posting lists,
// single-record blocks, duplicate keys per record, the all-keys-pruned
// regime, the sorted-neighborhood fallback window boundary, and the debug
// DCHECK contracts on the primitives.

#include "tglink/blocking/candidate_index.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tglink/util/random.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using testing_example::MakeRecord;

std::set<std::pair<RecordId, RecordId>> PairSet(
    const std::vector<CandidatePair>& pairs) {
  std::set<std::pair<RecordId, RecordId>> set;
  for (const CandidatePair& p : pairs) set.emplace(p.old_id, p.new_id);
  return set;
}

/// One household per record keeps group structure out of the way.
CensusDataset SingleRecordCensus(
    int year, const std::vector<std::pair<std::string, std::string>>& names) {
  CensusDataset d(year);
  int i = 0;
  for (const auto& [first, last] : names) {
    const std::string id = std::to_string(year) + "_" + std::to_string(++i);
    d.AddHousehold("g" + id, {MakeRecord(id, first, last, Sex::kMale, 30,
                                         Role::kHead, "", "")});
  }
  return d;
}

TEST(GallopingIntersectTest, EmptyAndDisjointLists) {
  EXPECT_TRUE(GallopingIntersect({}, {}).empty());
  EXPECT_TRUE(GallopingIntersect({}, {1, 2, 3}).empty());
  EXPECT_TRUE(GallopingIntersect({1, 2, 3}, {}).empty());
  EXPECT_TRUE(GallopingIntersect({1, 3, 5}, {0, 2, 4}).empty());
}

TEST(GallopingIntersectTest, SubsetAndBoundaryElements) {
  const std::vector<RecordId> a = {2, 5, 9};
  const std::vector<RecordId> b = {0, 2, 3, 5, 7, 9, 11};
  EXPECT_EQ(GallopingIntersect(a, b), a);
  EXPECT_EQ(GallopingIntersect(b, a), a);  // order of arguments is immaterial
  EXPECT_EQ(GallopingIntersect({0}, {0}), std::vector<RecordId>{0});
  EXPECT_EQ(GallopingIntersect({11}, b), std::vector<RecordId>{11});
}

TEST(GallopingIntersectTest, AgreesWithSetIntersectionOnRandomLists) {
  Rng rng(2026);
  for (int round = 0; round < 50; ++round) {
    std::vector<RecordId> a, b;
    for (RecordId v = 0; v < 400; ++v) {
      if (rng.NextBounded(10) == 0) a.push_back(v);
      if (rng.NextBounded(3) == 0) b.push_back(v);  // skewed sizes on purpose
    }
    std::vector<RecordId> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    EXPECT_EQ(GallopingIntersect(a, b), expected) << "round " << round;
  }
}

TEST(UnionSortedPostingsTest, DedupsAcrossLists) {
  EXPECT_TRUE(UnionSortedPostings({}).empty());
  const std::vector<RecordId> a = {1, 4, 7};
  const std::vector<RecordId> empty;
  const std::vector<RecordId> b = {2, 4, 9};
  const std::vector<RecordId> expected = {1, 2, 4, 7, 9};
  EXPECT_EQ(UnionSortedPostings({&a, &empty, &b}), expected);
  EXPECT_EQ(UnionSortedPostings({&a, &a, &a}), a);
}

TEST(CandidateIndexTest, EmptyDatasetsProduceNoPairs) {
  const CensusDataset empty_old(1871);
  const CensusDataset empty_new(1881);
  const CensusDataset some = SingleRecordCensus(1881, {{"john", "ashworth"}});
  const CandidateIndexConfig config = CandidateIndexConfig::MakeDefault();
  EXPECT_TRUE(
      CandidateIndex(empty_old, empty_new, config).GeneratePairs().empty());
  EXPECT_TRUE(CandidateIndex(empty_old, some, config).GeneratePairs().empty());
  int batches = 0;
  CandidateIndex(empty_old, some, config)
      .EmitBatches([&batches](const std::vector<CandidatePair>&) { ++batches; });
  EXPECT_EQ(batches, 0);
}

// Records whose names produce only empty blocking keys never enter any
// posting list: they can't pair with anything, including each other.
TEST(CandidateIndexTest, EmptyKeysMeanEmptyPostingLists) {
  const CensusDataset old_d = SingleRecordCensus(1871, {{"", ""}});
  const CensusDataset new_d =
      SingleRecordCensus(1881, {{"", ""}, {"john", "ashworth"}});
  const CandidateIndex index(old_d, new_d,
                             CandidateIndexConfig::MakeDefault());
  EXPECT_EQ(index.num_tokens(), 3u);  // john ashworth's three passes only
  EXPECT_TRUE(index.GeneratePairs().empty());
}

TEST(CandidateIndexTest, SingleRecordBlockEmitsExactlyOnePair) {
  const CensusDataset old_d = SingleRecordCensus(1871, {{"john", "ashworth"}});
  const CensusDataset new_d = SingleRecordCensus(
      1881, {{"john", "ashworth"}, {"peter", "greenwood"}});
  const std::vector<CandidatePair> pairs =
      CandidateIndex(old_d, new_d, CandidateIndexConfig::MakeDefault())
          .GeneratePairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].old_id, 0u);
  EXPECT_EQ(pairs[0].new_id, 0u);
}

// A record whose first name equals its surname produces the same key string
// from two passes; those are distinct tokens (per-pass key spaces, exactly
// like hash blocking), and the pair is still emitted exactly once.
TEST(CandidateIndexTest, DuplicateKeysPerRecordEmitOnce) {
  const CensusDataset old_d = SingleRecordCensus(1871, {{"smith", "smith"}});
  const CensusDataset new_d = SingleRecordCensus(1881, {{"smith", "smith"}});
  const CandidateIndex index(old_d, new_d,
                             CandidateIndexConfig::MakeDefault());
  const std::vector<CandidatePair> pairs = index.GeneratePairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].old_id, 0u);
  EXPECT_EQ(pairs[0].new_id, 0u);
  // "smith|smith" from pass 1 and pass 2 plus the first-name+sex pass.
  EXPECT_EQ(index.num_tokens(), 3u);
}

TEST(CandidateIndexTest, AllKeysPrunedWithoutFallbackEmitsNothing) {
  const CensusDataset old_d = testing_example::MakeCensus1871();
  const CensusDataset new_d = testing_example::MakeCensus1881();
  CandidateIndexConfig config = CandidateIndexConfig::MakeDefault();
  config.max_posting_len = 1;  // every shared token is oversized
  config.fallback_window = 0;  // and the recall net is off
  const CandidateIndex index(old_d, new_d, config);
  EXPECT_GT(index.num_pruned_tokens(), 0u);
  // Tokens carried by a single record survive (posting length 1) but have an
  // empty opposite side, so nothing is emitted.
  EXPECT_TRUE(index.GeneratePairs().empty());
}

TEST(CandidateIndexTest, AllKeysPrunedFallbackRecoversNamesakes) {
  const CensusDataset old_d = testing_example::MakeCensus1871();
  const CensusDataset new_d = testing_example::MakeCensus1881();
  CandidateIndexConfig config = CandidateIndexConfig::MakeDefault();
  config.max_posting_len = 1;
  config.fallback_window = 8;
  const std::vector<CandidatePair> pairs =
      CandidateIndex(old_d, new_d, config).GeneratePairs();
  ASSERT_FALSE(pairs.empty());
  // John Ashworth 1871 (record 0) sorts next to John Ashworth 1881
  // (record 0) under the surname+first-name roster key.
  EXPECT_TRUE(PairSet(pairs).count({0, 0}));
  for (size_t i = 1; i < pairs.size(); ++i) {
    const auto prev = std::make_pair(pairs[i - 1].old_id, pairs[i - 1].new_id);
    const auto cur = std::make_pair(pairs[i].old_id, pairs[i].new_id);
    EXPECT_LT(prev, cur) << "fallback merge broke (old,new) ordering";
  }
}

// Window boundary of the sorted-neighborhood fallback: with a constant
// custom pass (one giant pruned token), the fallback sees all records
// sorted "surname first_name"; a window of w pairs each entry with the
// w-1 entries after it and no more.
TEST(CandidateIndexTest, FallbackWindowBoundaryIsExclusive) {
  const CensusDataset old_d = SingleRecordCensus(1871, {{"x", "aaa"}});
  const CensusDataset new_d = SingleRecordCensus(
      1881, {{"x", "aab"}, {"x", "aac"}, {"x", "aad"}});
  CandidateIndexConfig config;
  config.passes = {[](const PersonRecord&) { return std::string("k"); }};
  config.max_posting_len = 1;  // the constant token (length 4) is pruned

  config.fallback_window = 2;  // only the immediate sorted neighbor
  auto narrow = PairSet(
      CandidateIndex(old_d, new_d, config).GeneratePairs());
  EXPECT_EQ(narrow, (std::set<std::pair<RecordId, RecordId>>{{0, 0}}));

  config.fallback_window = 3;  // reaches "aac", still not "aad"
  auto wider = PairSet(CandidateIndex(old_d, new_d, config).GeneratePairs());
  EXPECT_EQ(wider, (std::set<std::pair<RecordId, RecordId>>{{0, 0}, {0, 1}}));

  config.fallback_window = 4;  // the whole roster
  auto widest = PairSet(CandidateIndex(old_d, new_d, config).GeneratePairs());
  EXPECT_EQ(widest, (std::set<std::pair<RecordId, RecordId>>{
                        {0, 0}, {0, 1}, {0, 2}}));
}

TEST(CandidateIndexTest, CountersReflectPaperExample) {
  const CensusDataset old_d = testing_example::MakeCensus1871();
  const CensusDataset new_d = testing_example::MakeCensus1881();
  const CandidateIndex index(old_d, new_d,
                             CandidateIndexConfig::MakeDefault());
  EXPECT_GT(index.num_tokens(), 0u);
  // Every record contributes one posting per pass (all names non-empty).
  EXPECT_EQ(index.num_postings(),
            3 * (old_d.num_records() + new_d.num_records()));
  EXPECT_EQ(index.num_pruned_tokens(), 0u);
}

TEST(CandidateIndexDeathTest, PrimitivesRejectUnsortedInputInDebug) {
#ifndef NDEBUG
  EXPECT_DEATH(GallopingIntersect({3, 1}, {1, 2}), "not ascending");
  EXPECT_DEATH(GallopingIntersect({1, 2}, {5, 4}), "not ascending");
  const std::vector<RecordId> unsorted = {9, 1};
  EXPECT_DEATH(UnionSortedPostings({&unsorted}), "not ascending");
  EXPECT_DEATH(UnionSortedPostings({nullptr}), "null list");
#else
  GTEST_SKIP() << "DCHECK contracts compile out under NDEBUG";
#endif
}

}  // namespace
}  // namespace tglink
