// Differential verification of the inverted candidate index against the
// multi-pass hash blocking it replaces (satellite of the candidate-index
// tentpole; see DESIGN.md §9):
//
//   * equivalence: with pruning disabled, GeneratePairs() emits EXACTLY the
//     candidate-pair set of blocking.cc hash blocking, across >= 50 seeded
//     synthetic datasets covering every corruption preset AND every
//     scenario-registry profile (the adversarial regimes produce token
//     distributions — duplicated records, dissolved households, mass
//     renames — the friendly presets never do);
//   * batching: the concatenation of EmitBatches() batches is the same
//     stream GeneratePairs() returns;
//   * pruning: a token is pruned under exactly the condition hash blocking
//     skips an oversized block (old + new > cap), so at an equal cap the
//     pruned index plus its sorted-neighborhood fallback emits a superset
//     of the capped hash baseline — gold-pair recall is never worse, and
//     the set stays below the uncapped candidate count.
//
// Runs serially by default; TGLINK_TEST_THREADS=0 (a second ctest entry)
// reruns everything on one worker per hardware thread — outputs must be
// bit-identical, so every property holds under both.

#include "tglink/blocking/candidate_index.h"

#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tglink/blocking/blocking.h"
#include "tglink/eval/gold.h"
#include "tglink/util/parallel.h"
#include "tests/proptest.h"

namespace tglink {
namespace {

class CandidateIndexPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* threads = std::getenv("TGLINK_TEST_THREADS");
    SetParallelThreadCount(threads != nullptr ? std::atoi(threads) : 1);
  }
  void TearDown() override { SetParallelThreadCount(1); }
};

std::string DescribePair(const SyntheticPair& pair) {
  return std::to_string(pair.old_dataset.num_records()) + "x" +
         std::to_string(pair.new_dataset.num_records()) + " records";
}

/// Every corruption regime the generator can produce: the five classic
/// presets plus every scenario-registry profile, labelled for reports.
std::vector<proptest::NamedScenarioConfig> AllRegimes() {
  std::vector<proptest::NamedScenarioConfig> regimes;
  const std::vector<GeneratorConfig> presets = proptest::AllPresets();
  for (size_t i = 0; i < presets.size(); ++i) {
    regimes.push_back({"preset" + std::to_string(i), presets[i]});
  }
  for (proptest::NamedScenarioConfig& sc : proptest::AllScenarioConfigs()) {
    regimes.push_back(std::move(sc));
  }
  return regimes;
}

bool SamePairs(const std::vector<CandidatePair>& a,
               const std::vector<CandidatePair>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].old_id != b[i].old_id || a[i].new_id != b[i].new_id) {
      return false;
    }
  }
  return true;
}

/// Share of resolved gold record links contained in the candidate set.
double GoldRecall(const std::vector<CandidatePair>& candidates,
                  const ResolvedGold& gold) {
  if (gold.record_links.empty()) return 1.0;
  std::set<std::pair<RecordId, RecordId>> set;
  for (const CandidatePair& c : candidates) set.emplace(c.old_id, c.new_id);
  size_t found = 0;
  for (const auto& link : gold.record_links) {
    if (set.count(link) > 0) ++found;
  }
  return static_cast<double>(found) / gold.record_links.size();
}

// Pruning-disabled index output == hash blocking output, exactly, for 60
// datasets: every corruption regime — classic presets and scenario
// profiles — x 5 seeds (regime coverage is deterministic, not sampled).
TEST_F(CandidateIndexPropertyTest, ExactEquivalenceWithHashBlocking) {
  for (const proptest::NamedScenarioConfig& regime : AllRegimes()) {
    proptest::Runner runner("candidate_index.equivalence." + regime.name,
                            /*iterations=*/5);
    runner.Run([&regime](proptest::Case& c) {
      GeneratorConfig gen = regime.config;
      gen.seed = c.rng().Next();
      gen.scale = c.scale();
      gen.num_censuses = 2;
      const SyntheticPair pair = GenerateCensusPair(gen, 0);

      const BlockingConfig hash = BlockingConfig::MakeDefault();
      const std::vector<CandidatePair> expected =
          GenerateCandidatePairs(pair.old_dataset, pair.new_dataset, hash);

      const std::vector<CandidatePair> actual = GenerateCandidatePairs(
          pair.old_dataset, pair.new_dataset,
          BlockingConfig::MakeInvertedIndex());
      c.ExpectTrue(SamePairs(expected, actual),
                   "index pairs != hash pairs (" + DescribePair(pair) +
                       ": hash " + std::to_string(expected.size()) +
                       ", index " + std::to_string(actual.size()) + ")");
    });
    EXPECT_TRUE(runner.AllPassed()) << runner.Report();
    EXPECT_GE(runner.iterations_ran(), 5);
  }
}

// EmitBatches is the same stream as GeneratePairs, batch-concatenated —
// with and without pruning (the fallback merge must respect batch order).
TEST_F(CandidateIndexPropertyTest, BatchedEmissionMatchesGeneratePairs) {
  proptest::Runner runner("candidate_index.batching", /*iterations=*/15);
  runner.Run([](proptest::Case& c) {
    const SyntheticPair pair = proptest::RandomCensusPair(&c);
    for (const size_t max_posting_len : {size_t{0}, size_t{48}}) {
      CandidateIndexConfig config = CandidateIndexConfig::MakeDefault();
      config.max_posting_len = max_posting_len;
      // Odd shard sizes probe batch-boundary handling.
      config.batch_records = 1 + c.rng().NextBounded(257);
      const CandidateIndex index(pair.old_dataset, pair.new_dataset, config);
      const std::vector<CandidatePair> whole = index.GeneratePairs();
      std::vector<CandidatePair> streamed;
      index.EmitBatches([&streamed](const std::vector<CandidatePair>& batch) {
        streamed.insert(streamed.end(), batch.begin(), batch.end());
      });
      c.ExpectTrue(SamePairs(whole, streamed),
                   "EmitBatches stream != GeneratePairs (max_posting_len=" +
                       std::to_string(max_posting_len) + ", batch=" +
                       std::to_string(config.batch_records) + ")");
    }
  });
  EXPECT_TRUE(runner.AllPassed()) << runner.Report();
}

// Frequency pruning + sorted-neighborhood fallback vs hash blocking at the
// SAME oversize cap (the apples-to-apples baseline: both drop blocks with
// old + new > cap): the index's candidate set is a superset — the fallback
// only adds pairs back — so gold recall is never worse, for every
// corruption regime (classic presets and scenario profiles alike).
TEST_F(CandidateIndexPropertyTest, PrunedRecallNoWorseThanBaseline) {
  constexpr size_t kCap = 96;
  for (const proptest::NamedScenarioConfig& regime : AllRegimes()) {
    proptest::Runner runner("candidate_index.pruned_recall." + regime.name,
                            /*iterations=*/5);
    runner.Run([&regime](proptest::Case& c) {
      GeneratorConfig gen = regime.config;
      gen.seed = c.rng().Next();
      gen.scale = c.scale();
      gen.num_censuses = 2;
      const SyntheticPair pair = GenerateCensusPair(gen, 0);
      auto resolved =
          ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
      ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();

      BlockingConfig capped_hash = BlockingConfig::MakeDefault();
      capped_hash.max_block_size = kCap;
      const std::vector<CandidatePair> baseline = GenerateCandidatePairs(
          pair.old_dataset, pair.new_dataset, capped_hash);

      BlockingConfig pruned = BlockingConfig::MakeInvertedIndex();
      pruned.max_posting_len = kCap;
      pruned.fallback_window = 12;
      const std::vector<CandidatePair> candidates = GenerateCandidatePairs(
          pair.old_dataset, pair.new_dataset, pruned);

      std::set<std::pair<RecordId, RecordId>> candidate_set;
      for (const CandidatePair& p : candidates) {
        candidate_set.emplace(p.old_id, p.new_id);
      }
      bool superset = true;
      for (const CandidatePair& p : baseline) {
        superset = superset && candidate_set.count({p.old_id, p.new_id}) > 0;
      }
      c.ExpectTrue(superset,
                   "pruned index lost a capped-hash pair (" +
                       DescribePair(pair) + ")");

      const double base_recall = GoldRecall(baseline, resolved.value());
      const double pruned_recall = GoldRecall(candidates, resolved.value());
      c.ExpectTrue(pruned_recall >= base_recall,
                   "pruned recall " + std::to_string(pruned_recall) +
                       " < baseline " + std::to_string(base_recall) + " (" +
                       DescribePair(pair) + ")");

      // Pruning must still be a reduction relative to no cap at all.
      const std::vector<CandidatePair> uncapped = GenerateCandidatePairs(
          pair.old_dataset, pair.new_dataset,
          BlockingConfig::MakeInvertedIndex());
      c.ExpectTrue(candidates.size() <= uncapped.size(),
                   "pruning + fallback grew the candidate set: " +
                       std::to_string(candidates.size()) + " > " +
                       std::to_string(uncapped.size()));
    });
    EXPECT_TRUE(runner.AllPassed()) << runner.Report();
  }
}

// The conjunctive >=2-shared-keys mode is a strict subset of the union mode
// and agrees with a set-based reference intersection.
TEST_F(CandidateIndexPropertyTest, ConjunctiveModeIsSubsetOfUnion) {
  proptest::Runner runner("candidate_index.conjunctive", /*iterations=*/15);
  runner.Run([](proptest::Case& c) {
    const SyntheticPair pair = proptest::RandomCensusPair(&c);
    const std::vector<CandidatePair> unioned = GenerateCandidatePairs(
        pair.old_dataset, pair.new_dataset,
        BlockingConfig::MakeInvertedIndex());
    BlockingConfig conj = BlockingConfig::MakeInvertedIndex();
    conj.min_shared_passes = 2;
    const std::vector<CandidatePair> intersected =
        GenerateCandidatePairs(pair.old_dataset, pair.new_dataset, conj);
    std::set<std::pair<RecordId, RecordId>> union_set;
    for (const CandidatePair& p : unioned) {
      union_set.emplace(p.old_id, p.new_id);
    }
    bool subset = intersected.size() <= unioned.size();
    for (const CandidatePair& p : intersected) {
      subset = subset && union_set.count({p.old_id, p.new_id}) > 0;
    }
    c.ExpectTrue(subset, "conjunctive pairs not a subset of union pairs");
  });
  EXPECT_TRUE(runner.AllPassed()) << runner.Report();
}

}  // namespace
}  // namespace tglink
