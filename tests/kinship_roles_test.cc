// Kinship-consistency properties of the population simulator's snapshots:
// the roles the census-taker writes down must be derivable from the true
// family links, across several simulated decades and seeds.

#include <memory>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "tglink/synth/population.h"

namespace tglink {
namespace {

class KinshipRolesTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  KinshipRolesTest() : rng_(GetParam()) {
    PopulationConfig config;
    config.household_targets = {150, 190, 230};
    population_ = std::make_unique<Population>(config, &rng_);
    population_->AdvanceDecade(&rng_);
    population_->AdvanceDecade(&rng_);
    CorruptionConfig clean;
    clean.noise_scale = 0.0;
    snapshot_ = population_->TakeSnapshot(CorruptionModel(clean), &rng_);
  }

  const SimPerson& PersonOf(RecordId r) const {
    return population_->persons().at(snapshot_.record_pids[r]);
  }

  Rng rng_;
  std::unique_ptr<Population> population_;
  Population::Snapshot snapshot_;
};

TEST_P(KinshipRolesTest, WivesAreFemaleSpousesOfTheHead) {
  for (const Household& hh : snapshot_.dataset.households()) {
    // Identify the head's pid.
    uint64_t head_pid = 0;
    for (RecordId r : hh.members) {
      if (snapshot_.dataset.record(r).role == Role::kHead) {
        head_pid = snapshot_.record_pids[r];
      }
    }
    ASSERT_NE(head_pid, 0u);
    for (RecordId r : hh.members) {
      if (snapshot_.dataset.record(r).role != Role::kWife) continue;
      const SimPerson& wife = PersonOf(r);
      EXPECT_EQ(wife.sex, Sex::kFemale);
      EXPECT_EQ(wife.spouse, head_pid);
    }
  }
}

TEST_P(KinshipRolesTest, ChildRolesImplyParentage) {
  for (const Household& hh : snapshot_.dataset.households()) {
    uint64_t head_pid = 0, spouse_pid = 0;
    for (RecordId r : hh.members) {
      if (snapshot_.dataset.record(r).role == Role::kHead) {
        head_pid = snapshot_.record_pids[r];
        spouse_pid = PersonOf(r).spouse;
      }
    }
    for (RecordId r : hh.members) {
      const Role role = snapshot_.dataset.record(r).role;
      if (role != Role::kSon && role != Role::kDaughter) continue;
      const SimPerson& child = PersonOf(r);
      const bool child_of_head =
          child.father == head_pid || child.mother == head_pid ||
          (spouse_pid != 0 &&
           (child.father == spouse_pid || child.mother == spouse_pid));
      EXPECT_TRUE(child_of_head) << "record " << r;
      // Sex agrees with the gendered role.
      EXPECT_EQ(child.sex,
                role == Role::kDaughter ? Sex::kFemale : Sex::kMale);
    }
  }
}

TEST_P(KinshipRolesTest, ServantsAndLodgersAreNotFamily) {
  for (RecordId r = 0; r < snapshot_.dataset.num_records(); ++r) {
    const Role role = snapshot_.dataset.record(r).role;
    if (role == Role::kServant) EXPECT_TRUE(PersonOf(r).is_servant);
    if (role == Role::kLodger) {
      // Lodger role is also the fallback for non-kin; at minimum the person
      // must not be the head's spouse or child.
      const SimPerson& person = PersonOf(r);
      EXPECT_FALSE(person.is_servant);
    }
  }
}

TEST_P(KinshipRolesTest, SpouseLinksAreSymmetricAndCrossSex) {
  for (const auto& [pid, person] : population_->persons()) {
    if (!person.present || person.spouse == 0) continue;
    const SimPerson& partner = population_->persons().at(person.spouse);
    EXPECT_EQ(partner.spouse, pid);
    EXPECT_NE(partner.sex, person.sex);
  }
}

TEST_P(KinshipRolesTest, ParentsAreOlderThanChildren) {
  for (const auto& [pid, person] : population_->persons()) {
    for (uint64_t parent_pid : {person.father, person.mother}) {
      if (parent_pid == 0) continue;
      const SimPerson& parent = population_->persons().at(parent_pid);
      EXPECT_LT(parent.birth_year, person.birth_year)
          << "parent " << parent_pid << " born after child " << pid;
    }
  }
}

TEST_P(KinshipRolesTest, GrandchildRolesImplyTwoGenerations) {
  for (const Household& hh : snapshot_.dataset.households()) {
    uint64_t head_pid = 0;
    for (RecordId r : hh.members) {
      if (snapshot_.dataset.record(r).role == Role::kHead) {
        head_pid = snapshot_.record_pids[r];
      }
    }
    for (RecordId r : hh.members) {
      const Role role = snapshot_.dataset.record(r).role;
      if (role != Role::kGrandson && role != Role::kGranddaughter) continue;
      const SimPerson& grandchild = PersonOf(r);
      bool grandparent_is_head = false;
      for (uint64_t parent_pid : {grandchild.father, grandchild.mother}) {
        if (parent_pid == 0) continue;
        const SimPerson& parent = population_->persons().at(parent_pid);
        if (parent.father == head_pid || parent.mother == head_pid) {
          grandparent_is_head = true;
        }
      }
      EXPECT_TRUE(grandparent_is_head);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KinshipRolesTest,
                         ::testing::Values(3u, 21u, 77u));

}  // namespace
}  // namespace tglink
