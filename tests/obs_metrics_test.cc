#include "tglink/obs/metrics.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tglink/obs/json_writer.h"

namespace tglink {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndAdd) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.ResetForTesting();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, LastWriteWinsAndAdd) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.Value(), -0.5);
}

TEST(AtomicDoubleTest, MinMaxConverge) {
  AtomicDouble min(std::numeric_limits<double>::infinity());
  AtomicDouble max(-std::numeric_limits<double>::infinity());
  for (double v : {3.0, -2.0, 7.0, 0.0}) {
    min.Min(v);
    max.Max(v);
  }
  EXPECT_DOUBLE_EQ(min.Load(), -2.0);
  EXPECT_DOUBLE_EQ(max.Load(), 7.0);
}

TEST(HistogramTest, InclusiveUpperBoundsAndOverflow) {
  Histogram h({1.0, 4.0, 16.0});
  h.Observe(0.5);   // bucket 0: (-inf, 1]
  h.Observe(1.0);   // bucket 0: exactly on the bound
  h.Observe(2.0);   // bucket 1: (1, 4]
  h.Observe(4.0);   // bucket 1: exactly on the bound
  h.Observe(5.0);   // bucket 2: (4, 16]
  h.Observe(100.0); // overflow bucket 3
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 112.5);
  EXPECT_DOUBLE_EQ(h.MinValue(), 0.5);
  EXPECT_DOUBLE_EQ(h.MaxValue(), 100.0);
  h.ResetForTesting();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.BucketCount(3), 0u);
}

TEST(HistogramTest, ExponentialBoundsShape) {
  const std::vector<double> bounds = Histogram::ExponentialBounds(1.0, 4.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[4], 256.0);
  // Stock bound sets are sorted and non-empty (the Histogram ctor checks
  // sortedness; this guards the generators themselves).
  for (auto gen : {&Histogram::LatencyBoundsNs, &Histogram::SizeBounds,
                   &Histogram::UnitIntervalBounds}) {
    const std::vector<double> b = gen();
    ASSERT_FALSE(b.empty());
    for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  }
}

TEST(RegistryTest, SameNameSameObject) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.events");
  Counter& b = registry.GetCounter("x.events");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3u);

  Histogram& h1 = registry.GetHistogram("x.sizes", {1.0, 2.0});
  // A second call site with drifted bounds gets the original histogram:
  // bounds are part of the metric's identity.
  Histogram& h2 = registry.GetHistogram("x.sizes", {10.0, 20.0, 30.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotIsSortedAndResetKeepsReferences) {
  MetricsRegistry registry;
  registry.GetCounter("b.second").Add(2);
  registry.GetCounter("a.first").Add(1);
  registry.GetGauge("g.level").Set(0.5);
  registry.GetHistogram("h.sizes", {1.0}).Observe(7.0);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "b.second");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  ASSERT_EQ(snap.histograms[0].bucket_counts.size(), 2u);
  EXPECT_EQ(snap.histograms[0].bucket_counts[1], 1u);  // 7.0 overflows {1}

  Counter& ref = registry.GetCounter("a.first");
  registry.ResetAllForTesting();
  EXPECT_EQ(ref.Value(), 0u);  // same object, zeroed
  ref.Add(5);
  EXPECT_EQ(registry.Snapshot().counters[0].value, 5u);
}

TEST(SnapshotJsonTest, ContainsAllSectionsAndValues) {
  MetricsRegistry registry;
  registry.GetCounter("pipeline.runs").Add(3);
  registry.GetGauge("pipeline.load").Set(1.5);
  Histogram& h = registry.GetHistogram("pipeline.sizes", {1.0, 4.0});
  h.Observe(2.0);
  h.Observe(9.0);

  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"pipeline.runs\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"pipeline.load\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);
}

TEST(SnapshotJsonTest, EmptyRegistrySerializesToEmptySections) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Snapshot().ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(JsonWriterTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string("nul\x01", 4)), "nul\\u0001");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(2.5), "2.5");
}

TEST(JsonWriterTest, NestedStructure) {
  JsonWriter w;
  w.BeginObject();
  w.Key("list").BeginArray().Double(1.0).String("two").EndArray();
  w.Key("flag").Bool(true);
  w.EndObject();
  EXPECT_EQ(w.Take(), "{\"list\":[1,\"two\"],\"flag\":true}");
}

TEST(MacrosTest, UpdateTheGlobalRegistry) {
  GlobalMetrics().ResetAllForTesting();
  TGLINK_COUNTER_INC("obs_test.macro_events");
  TGLINK_COUNTER_ADD("obs_test.macro_events", 2);
  TGLINK_GAUGE_SET("obs_test.macro_gauge", 4.0);
  TGLINK_HISTOGRAM_SIZE("obs_test.macro_sizes", 10);
  EXPECT_EQ(GlobalMetrics().GetCounter("obs_test.macro_events").Value(), 3u);
  const MetricsSnapshot snap = GlobalMetrics().Snapshot();
  bool found = false;
  for (const auto& hist : snap.histograms) {
    if (hist.name == "obs_test.macro_sizes") {
      found = true;
      EXPECT_EQ(hist.count, 1u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace obs
}  // namespace tglink
