#include "tglink/eval/report.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table;
  table.SetHeader({"a", "long-header", "x"});
  table.AddRow({"wide-cell", "b", "y"});
  const std::string out = table.ToString();
  // Every line has the same length (aligned columns).
  size_t line_length = std::string::npos;
  size_t start = 0;
  int lines = 0;
  while (start < out.size()) {
    const size_t end = out.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    if (line_length == std::string::npos) line_length = end - start;
    EXPECT_EQ(end - start, line_length);
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 3);  // header + rule + row
}

TEST(TextTableTest, TitlePrintedFirst) {
  TextTable table("My Title");
  table.SetHeader({"h"});
  table.AddRow({"v"});
  EXPECT_EQ(table.ToString().rfind("My Title\n", 0), 0u);
}

TEST(TextTableTest, HandlesRaggedRows) {
  TextTable table;
  table.SetHeader({"a", "b"});
  table.AddRow({"1"});
  table.AddRow({"1", "2", "3"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| 3"), std::string::npos);
}

TEST(TextTableTest, NoHeaderNoRule) {
  TextTable table;
  table.AddRow({"only", "row"});
  const std::string out = table.ToString();
  EXPECT_EQ(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextTableTest, PercentAndFixedFormatting) {
  EXPECT_EQ(TextTable::Percent(0.956), "95.6");
  EXPECT_EQ(TextTable::Percent(0.95649, 2), "95.65");
  EXPECT_EQ(TextTable::Percent(1.0, 0), "100");
  EXPECT_EQ(TextTable::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Fixed(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace tglink
