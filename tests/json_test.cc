// Unit tests for the strict JSON parser (util/json.h) feeding the scenario
// engine: accepted documents round into the expected DOM shape, and every
// strictness rule — trailing content, duplicate keys, control characters,
// unpaired surrogates, depth cap, out-of-range numbers — rejects with a
// ParseError rather than a silent fix-up.

#include "tglink/util/json.h"

#include <string>

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(JsonTest, ParsesScalars) {
  auto null_value = ParseJson("null");
  ASSERT_TRUE(null_value.ok());
  EXPECT_TRUE(null_value.value().is_null());

  auto true_value = ParseJson("true");
  ASSERT_TRUE(true_value.ok());
  ASSERT_TRUE(true_value.value().is_bool());
  EXPECT_TRUE(true_value.value().bool_value);

  auto false_value = ParseJson(" false ");
  ASSERT_TRUE(false_value.ok());
  ASSERT_TRUE(false_value.value().is_bool());
  EXPECT_FALSE(false_value.value().bool_value);

  auto number = ParseJson("-12.5e2");
  ASSERT_TRUE(number.ok());
  ASSERT_TRUE(number.value().is_number());
  EXPECT_DOUBLE_EQ(number.value().number_value, -1250.0);

  auto str = ParseJson("\"hello\"");
  ASSERT_TRUE(str.ok());
  ASSERT_TRUE(str.value().is_string());
  EXPECT_EQ(str.value().string_value, "hello");
}

TEST(JsonTest, ParsesNestedContainersInDocumentOrder) {
  auto doc = ParseJson(R"({"b": [1, 2, 3], "a": {"x": true}, "c": null})");
  ASSERT_TRUE(doc.ok());
  const JsonValue& root = doc.value();
  ASSERT_TRUE(root.is_object());
  ASSERT_EQ(root.members.size(), 3u);
  // Members keep document order — "b" first, despite sorting after "a".
  EXPECT_EQ(root.members[0].first, "b");
  EXPECT_EQ(root.members[1].first, "a");
  EXPECT_EQ(root.members[2].first, "c");

  const JsonValue* b = root.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_DOUBLE_EQ(b->items[2].number_value, 3.0);

  const JsonValue* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_object());
  const JsonValue* x = a->Find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->is_bool());

  EXPECT_EQ(root.Find("missing"), nullptr);
  // Find on a non-object is a safe nullptr, not UB.
  EXPECT_EQ(b->Find("anything"), nullptr);
}

TEST(JsonTest, DecodesEscapesAndSurrogatePairs) {
  auto doc = ParseJson(R"("a\"b\\c\/d\n\t\u0041\u00e9")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().string_value, "a\"b\\c/d\n\tA\xc3\xa9");

  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  auto emoji = ParseJson(R"("\ud83d\ude00")");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji.value().string_value, "\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                      // empty input
      "   ",                   // whitespace only
      "{",                     // unterminated object
      "[1, 2",                 // unterminated array
      "[1, ]",                 // trailing comma
      "{\"a\": 1,}",           // trailing comma in object
      "{\"a\" 1}",             // missing colon
      "{'a': 1}",              // single quotes
      "nul",                   // truncated literal
      "TRUE",                  // wrong case
      "+1",                    // leading plus
      "01",                    // leading zero
      "1.",                    // bare trailing dot
      ".5",                    // bare leading dot
      "1e",                    // empty exponent
      "\"abc",                 // unterminated string
      "\"\\q\"",               // unknown escape
      "\"\\u12\"",             // short unicode escape
      "// comment\n1",         // comments are not JSON
      "{\"a\": 1} {\"b\": 2}",  // two documents
      "1 2",                   // trailing content
  };
  for (const char* text : bad) {
    auto doc = ParseJson(text);
    EXPECT_FALSE(doc.ok()) << "accepted: " << text;
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kParseError) << text;
    }
  }
}

TEST(JsonTest, RejectsDuplicateObjectKeys) {
  auto doc = ParseJson(R"({"a": 1, "a": 2})");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("duplicate"), std::string::npos)
      << doc.status().ToString();
}

TEST(JsonTest, RejectsRawControlCharactersInStrings) {
  auto doc = ParseJson("\"a\tb\"");  // literal tab must be escaped
  EXPECT_FALSE(doc.ok());
  // The escaped form is fine.
  EXPECT_TRUE(ParseJson(R"("a\tb")").ok());
}

TEST(JsonTest, RejectsUnpairedSurrogates) {
  EXPECT_FALSE(ParseJson(R"("\ud83d")").ok());          // high, no low
  EXPECT_FALSE(ParseJson(R"("\ude00")").ok());          // lone low
  EXPECT_FALSE(ParseJson(R"("\ud83d\u0041")").ok());    // high + non-low
}

TEST(JsonTest, RejectsNumbersOutsideDoubleRange) {
  EXPECT_FALSE(ParseJson("1e400").ok());
  EXPECT_FALSE(ParseJson("-1e400").ok());
  EXPECT_TRUE(ParseJson("1e-300").ok());
  EXPECT_TRUE(ParseJson("1.7976931348623157e308").ok());
}

TEST(JsonTest, EnforcesDepthCap) {
  std::string deep_ok, deep_bad;
  for (int i = 0; i < kJsonMaxDepth; ++i) deep_ok += "[";
  deep_ok += "1";
  for (int i = 0; i < kJsonMaxDepth; ++i) deep_ok += "]";
  EXPECT_TRUE(ParseJson(deep_ok).ok());

  for (int i = 0; i < kJsonMaxDepth + 1; ++i) deep_bad += "[";
  deep_bad += "1";
  for (int i = 0; i < kJsonMaxDepth + 1; ++i) deep_bad += "]";
  auto doc = ParseJson(deep_bad);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(JsonTest, ErrorsCarryByteOffsets) {
  auto doc = ParseJson("{\"a\": 1, \"a\": 2}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("offset"), std::string::npos)
      << doc.status().ToString();
}

}  // namespace
}  // namespace tglink
