// Standalone driver for the fuzz targets when the toolchain has no
// libFuzzer (GCC): replays every corpus input through
// LLVMFuzzerTestOneInput, then runs a deterministic seeded mutation loop
// (bit flips, byte writes, truncations, insertions, cross-splices of two
// corpus inputs) until a run or wall-clock budget is exhausted. Under
// -fsanitize=address;undefined this is a genuine, reproducible fuzz smoke;
// with clang the same targets link against the real libFuzzer instead and
// this file is not compiled.
//
//   ./fuzz_csv [--runs=N] [--time_budget_s=S] [--seed=K] [--max_len=L]
//              corpus_dir_or_file...

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "tglink/util/random.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using Input = std::vector<uint8_t>;

bool ReadFile(const std::filesystem::path& path, Input* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

/// One random edit; composed edits approximate libFuzzer's mutators.
void MutateOnce(tglink::Rng* rng, size_t max_len, Input* input) {
  switch (rng->NextBounded(5)) {
    case 0:  // bit flip
      if (!input->empty()) {
        (*input)[rng->NextBounded(input->size())] ^=
            static_cast<uint8_t>(1u << rng->NextBounded(8));
      }
      break;
    case 1:  // overwrite with an interesting byte
      if (!input->empty()) {
        static const uint8_t kBytes[] = {0, 1, '\n', '\r', '"', ',', 0x7F,
                                         0xFF};
        (*input)[rng->NextBounded(input->size())] =
            kBytes[rng->NextBounded(std::size(kBytes))];
      }
      break;
    case 2:  // truncate a tail
      if (!input->empty()) {
        input->resize(rng->NextBounded(input->size()));
      }
      break;
    case 3:  // insert a random byte
      if (input->size() < max_len) {
        input->insert(input->begin() + rng->NextBounded(input->size() + 1),
                      static_cast<uint8_t>(rng->NextBounded(256)));
      }
      break;
    case 4:  // duplicate a random slice in place
      if (!input->empty() && input->size() < max_len) {
        const size_t from = rng->NextBounded(input->size());
        const size_t len =
            1 + rng->NextBounded(std::min<size_t>(32, input->size() - from));
        Input slice(input->begin() + from, input->begin() + from + len);
        input->insert(input->begin() + rng->NextBounded(input->size() + 1),
                      slice.begin(), slice.end());
      }
      break;
  }
  if (input->size() > max_len) input->resize(max_len);
}

/// Splice: head of one corpus input + tail of another.
Input Splice(tglink::Rng* rng, const Input& a, const Input& b) {
  Input out(a.begin(), a.begin() + rng->NextBounded(a.size() + 1));
  out.insert(out.end(), b.begin() + rng->NextBounded(b.size() + 1), b.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 20000;
  uint64_t seed = 42;
  size_t max_len = 1 << 16;
  double time_budget_s = 0.0;  // 0 = no wall-clock budget
  std::vector<std::filesystem::path> corpus_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--runs=", 0) == 0) {
      runs = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--max_len=", 0) == 0) {
      max_len = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--time_budget_s=", 0) == 0) {
      time_budget_s = std::atof(arg.c_str() + 16);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      corpus_paths.emplace_back(arg);
    }
  }

  // Load the corpus: files, or every regular file inside a directory.
  std::vector<Input> corpus;
  for (const std::filesystem::path& path : corpus_paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const auto& file : files) {
        Input input;
        if (ReadFile(file, &input)) corpus.push_back(std::move(input));
      }
    } else {
      Input input;
      if (!ReadFile(path, &input)) {
        std::fprintf(stderr, "cannot read corpus input: %s\n",
                     path.c_str());
        return 2;
      }
      corpus.push_back(std::move(input));
    }
  }
  if (corpus.empty()) corpus.push_back({});  // always have a mutation base

  for (const Input& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::fprintf(stderr, "replayed %zu corpus inputs\n", corpus.size());

  tglink::Rng rng(seed);
  const auto start = std::chrono::steady_clock::now();
  uint64_t executed = 0;
  for (; executed < runs; ++executed) {
    if (time_budget_s > 0 && (executed & 0xFF) == 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= time_budget_s) break;
    }
    Input input = corpus[rng.NextBounded(corpus.size())];
    if (rng.NextBounded(4) == 0) {
      input = Splice(&rng, input, corpus[rng.NextBounded(corpus.size())]);
    }
    const uint64_t edits = 1 + rng.NextBounded(8);
    for (uint64_t e = 0; e < edits; ++e) MutateOnce(&rng, max_len, &input);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::fprintf(stderr, "executed %llu mutated runs (seed %llu): OK\n",
               static_cast<unsigned long long>(executed),
               static_cast<unsigned long long>(seed));
  return 0;
}
