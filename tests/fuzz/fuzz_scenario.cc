// Fuzz target for the scenario-profile ingestion path (util/json +
// synth/scenario): ParseScenario must never crash, leak, overflow the
// stack on deep nesting, or trip a sanitizer on arbitrary bytes — it is
// the one parser that feeds attacker-controllable files straight into
// generator configuration. On accepted documents the resolved config must
// actually satisfy the validator (acceptance implies validity), and the
// content hash must be stable.

#include "tglink/synth/scenario.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto scenario = tglink::ParseScenario(text);
  if (!scenario.ok()) return 0;  // rejection is fine; crashing is not

  // Acceptance means the config passed validation — re-validating must
  // agree, or parse and validate have diverged.
  const tglink::Status valid =
      tglink::ValidateGeneratorConfig(scenario.value().config);
  if (!valid.ok()) std::abort();

  // The recorded content hash is a pure function of the input text.
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(tglink::Fnv1a64(text)));
  if (scenario.value().content_hash != hex) std::abort();
  return 0;
}
