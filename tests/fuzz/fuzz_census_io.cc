// Fuzz target for census CSV ingestion (census/io): DatasetFromCsv over
// arbitrary bytes must either fail with a Status or produce a dataset whose
// own serialization loads back with identical shape (values are normalized
// on the first parse, so the second round is exact).

#include "tglink/census/io.h"

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto dataset = tglink::DatasetFromCsv(text, 1871);
  if (!dataset.ok()) return 0;

  const std::string csv = tglink::DatasetToCsv(dataset.value());
  auto reloaded = tglink::DatasetFromCsv(csv, 1871);
  if (!reloaded.ok()) std::abort();  // our own output must always load
  if (reloaded.value().num_records() != dataset.value().num_records() ||
      reloaded.value().num_households() != dataset.value().num_households()) {
    std::abort();
  }
  return 0;
}
