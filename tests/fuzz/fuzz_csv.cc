// Fuzz target for the RFC-4180 CSV layer (util/csv): ParseCsv must never
// crash, leak, or trip a sanitizer on arbitrary bytes, and
// serialize(parse(.)) must reach a fixed point after one normalization
// round (degenerate rows dropped, line endings normalized).

#include "tglink/util/csv.h"

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

namespace {

std::string Serialize(const std::vector<tglink::CsvRow>& rows) {
  std::string out;
  for (const tglink::CsvRow& row : rows) out += tglink::FormatCsvRow(row);
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto rows = tglink::ParseCsv(text);
  if (!rows.ok()) return 0;  // parse errors are a valid outcome, crashes not

  // One round of parse+serialize normalizes; the result must round-trip
  // losslessly from then on.
  const std::string once = Serialize(rows.value());
  auto reparsed = tglink::ParseCsv(once);
  if (!reparsed.ok()) std::abort();  // our own output must always parse
  const std::string twice = Serialize(reparsed.value());
  auto again = tglink::ParseCsv(twice);
  if (!again.ok() || Serialize(again.value()) != twice) std::abort();
  return 0;
}
