// Fuzz target for linkage-result CSV loading (linkage/result_io):
// MappingsFromCsv resolves external ids against two fixed datasets (the
// paper's running example) and enforces 1:1-ness; arbitrary bytes must
// produce a Status or a mapping that round-trips through MappingsToCsv.

#include "tglink/linkage/result_io.h"

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "tests/paper_example.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const tglink::CensusDataset& old_d =
      *new tglink::CensusDataset(tglink::testing_example::MakeCensus1871());
  static const tglink::CensusDataset& new_d =
      *new tglink::CensusDataset(tglink::testing_example::MakeCensus1881());

  const std::string text(reinterpret_cast<const char*>(data), size);
  auto loaded = tglink::MappingsFromCsv(text, old_d, new_d);
  if (!loaded.ok()) return 0;

  const std::string csv = tglink::MappingsToCsv(
      loaded.value().records, loaded.value().groups, old_d, new_d);
  auto reloaded = tglink::MappingsFromCsv(csv, old_d, new_d);
  if (!reloaded.ok()) std::abort();  // our own output must always load
  if (reloaded.value().records.size() != loaded.value().records.size() ||
      reloaded.value().groups.size() != loaded.value().groups.size()) {
    std::abort();
  }
  return 0;
}
