// Golden quality-regression gate: the full LinkCensusPair pipeline on the
// deterministic synthetic pair (--scale=0.125 --seed=42) must reproduce the
// checked-in metrics byte-for-byte — exact-match precision/recall/F for
// records and groups, per-δ iteration counts, and residual-phase counts.
// Any change to blocking, similarity, subgraph scoring, selection, or the
// residual matcher that shifts quality shows up as a one-line JSON diff.
//
// The same run is repeated with inverted-index blocking; it must produce
// the identical mapping (the index's equivalence guarantee, end to end).
//
// Every scenario preset carries its own fingerprint under tests/golden/
// (scenario_<name>.json) at a smaller grid scale, and the rawtenstall
// preset is additionally pinned BYTE-identical to the default generator —
// the scenario engine may never perturb the historical event stream.
//
// To regenerate after an intentional quality change:
//   TGLINK_REGEN_GOLDEN=1 ./golden_regression_test

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "tglink/blocking/blocking.h"
#include "tglink/census/io.h"
#include "tglink/eval/metrics.h"
#include "tglink/similarity/sim_batch.h"
#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"
#include "tglink/synth/scenario.h"
#include "tglink/util/csv.h"

namespace tglink {
namespace {

constexpr double kScale = 0.125;
constexpr uint64_t kSeed = 42;

std::string GoldenPath() {
  return std::string(TGLINK_SOURCE_DIR) +
         "/tests/golden/link_scale0125_seed42.json";
}

void AppendCounts(const std::string& name, const PrecisionRecall& pr,
                  std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"tp\": %zu, \"fp\": %zu, \"fn\": %zu, "
                "\"precision\": %.6f, \"recall\": %.6f, \"f\": %.6f},\n",
                name.c_str(), pr.true_positives, pr.false_positives,
                pr.false_negatives, pr.precision(), pr.recall(),
                pr.f_measure());
  *out += buf;
}

/// The quality fingerprint of one linkage run, serialized deterministically.
std::string QualityJson(const LinkageResult& result, const ResolvedGold& gold,
                        double scale = kScale, uint64_t seed = kSeed) {
  std::string out = "{\n  \"schema\": \"tglink.golden_link/1\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  \"scale\": %.6f,\n  \"seed\": %llu,\n",
                scale, static_cast<unsigned long long>(seed));
  out += buf;
  AppendCounts("records", EvaluateRecordMapping(result.record_mapping, gold),
               &out);
  AppendCounts("groups", EvaluateGroupMapping(result.group_mapping, gold),
               &out);
  out += "  \"iterations\": [\n";
  for (size_t i = 0; i < result.iterations.size(); ++i) {
    const IterationStats& it = result.iterations[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"delta\": %.6f, \"scored_pairs\": %zu, "
                  "\"candidate_subgraphs\": %zu, \"accepted_subgraphs\": %zu, "
                  "\"new_group_links\": %zu, \"new_record_links\": %zu}%s\n",
                  it.delta, it.scored_pairs, it.candidate_subgraphs,
                  it.accepted_subgraphs, it.new_group_links,
                  it.new_record_links,
                  i + 1 < result.iterations.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"context_record_links\": %zu,\n"
                "  \"residual_record_links\": %zu\n}\n",
                result.context_record_links, result.residual_record_links);
  out += buf;
  return out;
}

TEST(GoldenRegressionTest, FullLinkageMatchesCheckedInGolden) {
  GeneratorConfig gen;
  gen.seed = kSeed;
  gen.scale = kScale;
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  auto gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
  ASSERT_TRUE(gold.ok()) << gold.status().ToString();

  const LinkageConfig config = configs::DefaultConfig();
  const LinkageResult result =
      LinkCensusPair(pair.old_dataset, pair.new_dataset, config);
  const std::string actual = QualityJson(result, gold.value());

  if (std::getenv("TGLINK_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(WriteStringToFile(GoldenPath(), actual).ok());
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }

  auto expected = ReadFileToString(GoldenPath());
  ASSERT_TRUE(expected.ok())
      << "missing golden file — run with TGLINK_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(expected.value(), actual)
      << "linkage quality drifted from the golden fingerprint; if the "
         "change is intentional, regenerate with TGLINK_REGEN_GOLDEN=1";

  // End-to-end equivalence: the inverted-index blocking path must yield the
  // byte-identical quality fingerprint.
  LinkageConfig index_config = config;
  index_config.blocking = BlockingConfig::MakeInvertedIndex();
  const LinkageResult index_result =
      LinkCensusPair(pair.old_dataset, pair.new_dataset, index_config);
  EXPECT_EQ(QualityJson(index_result, gold.value()), actual)
      << "inverted-index blocking changed end-to-end linkage output";
}

// The scenario grid's coordinates: small enough to keep the whole preset
// sweep in test time, pair 2 so migration_shock's decade-3 shock lands in
// the measured transition.
constexpr double kScenarioScale = 0.05;
constexpr int kScenarioPair = 2;

TEST(GoldenRegressionTest, EveryScenarioPresetMatchesItsGolden) {
  const bool regen = std::getenv("TGLINK_REGEN_GOLDEN") != nullptr;
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    SCOPED_TRACE(std::string(preset.name));
    auto scenario = ParseScenario(preset.json);
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();

    GeneratorConfig gen = scenario.value().config;
    gen.seed = kSeed;
    gen.scale = kScenarioScale;
    gen.num_censuses = kScenarioPair + 2;
    const SyntheticPair pair = GenerateCensusPair(gen, kScenarioPair);
    auto gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
    ASSERT_TRUE(gold.ok()) << gold.status().ToString();

    const LinkageResult result = LinkCensusPair(
        pair.old_dataset, pair.new_dataset, configs::DefaultConfig());
    const std::string actual =
        QualityJson(result, gold.value(), kScenarioScale, kSeed);
    const std::string path = std::string(TGLINK_SOURCE_DIR) +
                             "/tests/golden/scenario_" +
                             std::string(preset.name) + ".json";
    if (regen) {
      ASSERT_TRUE(WriteStringToFile(path, actual).ok());
      continue;
    }
    auto expected = ReadFileToString(path);
    ASSERT_TRUE(expected.ok())
        << "missing " << path << " — run with TGLINK_REGEN_GOLDEN=1";
    EXPECT_EQ(expected.value(), actual)
        << "scenario " << preset.name
        << " drifted; regenerate with TGLINK_REGEN_GOLDEN=1 if intentional";
  }
  if (regen) GTEST_SKIP() << "regenerated scenario goldens";
}

TEST(GoldenRegressionTest, RawtenstallScenarioIsByteIdenticalToDefaults) {
  // THE load-bearing guarantee of the scenario engine: resolving the
  // rawtenstall preset yields a GeneratorConfig whose output is
  // byte-identical to a default-constructed one — i.e. the new dynamics
  // consume zero randomness when disabled. Compare full CSV serializations
  // of every snapshot and gold mapping, not just quality counts.
  auto scenario = ResolveScenario("rawtenstall");
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();

  GeneratorConfig from_scenario = scenario.value().config;
  from_scenario.scale = kScenarioScale;
  GeneratorConfig defaults;
  defaults.scale = kScenarioScale;

  const SyntheticSeries a = GenerateCensusSeries(from_scenario);
  const SyntheticSeries b = GenerateCensusSeries(defaults);
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  for (size_t i = 0; i < a.snapshots.size(); ++i) {
    EXPECT_EQ(DatasetToCsv(a.snapshots[i]), DatasetToCsv(b.snapshots[i]))
        << "snapshot " << i << " diverged";
  }
  ASSERT_EQ(a.gold.size(), b.gold.size());
  for (size_t i = 0; i < a.gold.size(); ++i) {
    EXPECT_EQ(GoldToCsv(a.gold[i]), GoldToCsv(b.gold[i]))
        << "gold mapping " << i << " diverged";
  }
}

TEST(GoldenRegressionTest, BatchedAndScalarKernelsMatchTheSameGolden) {
  // The kernel-mode twin of the main gate: the scale-0.125 fingerprint
  // (P/R/F and per-δ iteration stats) must be byte-identical whether the
  // pipeline scores pairs through the batched pruning kernels (the
  // default) or the scalar reference path — end-to-end proof that pruning
  // never changes the keep-set and the kernels never change a bit.
  GeneratorConfig gen;
  gen.seed = kSeed;
  gen.scale = kScale;
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  auto gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
  ASSERT_TRUE(gold.ok()) << gold.status().ToString();
  const LinkageConfig config = configs::DefaultConfig();

  std::string fingerprints[2];
  for (const bool batched : {true, false}) {
    ScopedBatchKernels mode(batched);
    const LinkageResult result =
        LinkCensusPair(pair.old_dataset, pair.new_dataset, config);
    fingerprints[batched ? 0 : 1] = QualityJson(result, gold.value());
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1])
      << "batched kernels changed end-to-end linkage output";

  auto expected = ReadFileToString(GoldenPath());
  if (expected.ok()) {
    EXPECT_EQ(fingerprints[0], expected.value())
        << "batched-kernel fingerprint drifted from the golden file";
  }
}

}  // namespace
}  // namespace tglink
