// The published configuration presets must match the paper's Table 2 and
// Section 5.2 settings exactly — they are part of the reproduction surface.

#include "tglink/linkage/config.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(ConfigTest, Omega1MatchesTable2) {
  const SimilarityFunction f = configs::Omega1();
  ASSERT_EQ(f.specs().size(), 5u);
  const AttributeSpec expected[] = {
      {Field::kFirstName, Measure::kQGramDice, 0.2},
      {Field::kSex, Measure::kExact, 0.2},
      {Field::kSurname, Measure::kQGramDice, 0.2},
      {Field::kAddress, Measure::kQGramDice, 0.2},
      {Field::kOccupation, Measure::kQGramDice, 0.2},
  };
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(f.specs()[i].field, expected[i].field) << i;
    EXPECT_EQ(f.specs()[i].measure, expected[i].measure) << i;
    EXPECT_DOUBLE_EQ(f.specs()[i].weight, expected[i].weight) << i;
  }
}

TEST(ConfigTest, Omega2MatchesTable2) {
  const SimilarityFunction f = configs::Omega2();
  ASSERT_EQ(f.specs().size(), 5u);
  EXPECT_DOUBLE_EQ(f.specs()[0].weight, 0.4);  // first name boosted
  EXPECT_DOUBLE_EQ(f.specs()[1].weight, 0.2);  // sex
  EXPECT_DOUBLE_EQ(f.specs()[2].weight, 0.2);  // surname
  EXPECT_DOUBLE_EQ(f.specs()[3].weight, 0.1);  // address reduced
  EXPECT_DOUBLE_EQ(f.specs()[4].weight, 0.1);  // occupation reduced
  double total = 0;
  for (const AttributeSpec& spec : f.specs()) total += spec.weight;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(ConfigTest, DefaultConfigMatchesSection5Settings) {
  const LinkageConfig config = configs::DefaultConfig();
  // δ_high = 0.7, Δ = 0.05, δ_low = 0.5 (Section 5.2.1).
  EXPECT_DOUBLE_EQ(config.delta_high, 0.70);
  EXPECT_DOUBLE_EQ(config.delta_step, 0.05);
  EXPECT_DOUBLE_EQ(config.delta_low, 0.50);
  // (α, β) = (0.2, 0.7), uniqueness weight 0.1 (Section 5.2.2).
  EXPECT_DOUBLE_EQ(config.group_weights.alpha, 0.2);
  EXPECT_DOUBLE_EQ(config.group_weights.beta, 0.7);
  EXPECT_NEAR(config.group_weights.uniqueness_weight(), 0.1, 1e-12);
  // Structural defaults.
  EXPECT_TRUE(config.enrich_groups);
  EXPECT_TRUE(config.context_residual);
  EXPECT_GT(config.edge_age_tolerance, 0);
}

TEST(ConfigTest, GroupScoreWeightsArithmetic) {
  const GroupScoreWeights w{0.33, 0.33};
  EXPECT_NEAR(w.uniqueness_weight(), 0.34, 1e-12);
  const GroupScoreWeights all_record{1.0, 0.0};
  EXPECT_DOUBLE_EQ(all_record.uniqueness_weight(), 0.0);
}

TEST(ConfigTest, ResidualSimFuncIncludesTemporalAge) {
  const SimilarityFunction f = configs::ResidualSimFunc();
  bool has_age = false;
  double total = 0;
  for (const AttributeSpec& spec : f.specs()) {
    has_age |= spec.field == Field::kAge;
    total += spec.weight;
  }
  EXPECT_TRUE(has_age);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(f.threshold(), configs::DefaultConfig().delta_high);
}

TEST(ConfigTest, ThresholdParameterPropagates) {
  EXPECT_DOUBLE_EQ(configs::Omega1(0.42).threshold(), 0.42);
  EXPECT_DOUBLE_EQ(configs::Omega2(0.9).threshold(), 0.9);
  EXPECT_DOUBLE_EQ(configs::ResidualSimFunc(0.6).threshold(), 0.6);
}

}  // namespace
}  // namespace tglink
