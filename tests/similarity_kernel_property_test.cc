// Differential verification of the batched similarity kernels against the
// scalar reference measures (satellite of the batched-kernel tentpole; see
// DESIGN.md §10):
//
//   * bit-identity: with pruning disabled, BatchMeasure(m, a, b, 0) returns
//     EXACTLY ComputeMeasure(m, a, b) — same bits, not approximately — over
//     50 seeded random-byte corpora (non-ASCII bytes, embedded NULs,
//     sentinel '#'/'$' characters, empties, and the 63/64/65-char Myers
//     word-size boundary);
//   * pruning soundness: with any min_sim, a kernel either returns the
//     exact scalar value or the kBelowMinSim sentinel, and the sentinel is
//     only ever returned when the true similarity is < min_sim;
//   * aggregate identity: SimCache in batched mode reproduces the scalar
//     mode bit-for-bit on full synthetic census pairs from every corruption
//     preset, and AggregateWithThreshold keeps exactly the scalar keep-set.
//
// Runs serially by default; TGLINK_TEST_THREADS=0 (a second ctest entry)
// reruns everything on one worker per hardware thread — outputs must be
// bit-identical, so every property holds under both.

#include "tglink/similarity/batch_kernels.h"

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tglink/blocking/blocking.h"
#include "tglink/linkage/config.h"
#include "tglink/similarity/sim_batch.h"
#include "tglink/similarity/sim_cache.h"
#include "tglink/util/parallel.h"
#include "tests/proptest.h"

namespace tglink {
namespace {

class SimilarityKernelPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* threads = std::getenv("TGLINK_TEST_THREADS");
    SetParallelThreadCount(threads != nullptr ? std::atoi(threads) : 1);
  }
  void TearDown() override { SetParallelThreadCount(1); }
};

const std::vector<Measure>& BatchedMeasures() {
  static const std::vector<Measure> measures = {
      Measure::kExact,       Measure::kQGramDice,  Measure::kTrigramDice,
      Measure::kLevenshtein, Measure::kDamerau,    Measure::kJaro,
      Measure::kJaroWinkler, Measure::kSoundexEqual};
  return measures;
}

/// One random corpus: empties, short names, arbitrary-byte strings (any
/// value 0..255, so NULs, sentinels, and non-ASCII are all exercised), and
/// strings pinned to the 63/64/65-char Myers boundary.
std::vector<std::string> RandomCorpus(proptest::Case& c) {
  std::vector<std::string> corpus = {"", "a", "smith", "ashworth"};
  for (const size_t boundary : {size_t{63}, size_t{64}, size_t{65}}) {
    std::string s(boundary, 'x');
    // A couple of random edits so boundary pairs are near-but-not-equal.
    s[c.rng().NextBounded(boundary)] =
        static_cast<char>(c.rng().NextBounded(256));
    corpus.push_back(std::move(s));
  }
  for (int i = 0; i < 9; ++i) {
    const size_t len = 1 + c.rng().NextBounded(80);
    std::string s(len, '\0');
    for (size_t k = 0; k < len; ++k) {
      s[k] = static_cast<char>(c.rng().NextBounded(256));
    }
    corpus.push_back(std::move(s));
  }
  // Mutated copies make near-duplicates likely, which is where kernel bugs
  // (off-by-one windows, transposition terms) actually hide.
  const size_t base = corpus.size();
  for (int i = 0; i < 4; ++i) {
    std::string s = corpus[c.rng().NextBounded(base)];
    if (s.empty()) continue;
    s[c.rng().NextBounded(s.size())] =
        static_cast<char>(c.rng().NextBounded(256));
    corpus.push_back(std::move(s));
  }
  return corpus;
}

// 50 corpora x all batched measures x all pairs: exact equality with the
// scalar oracle when pruning is off.
TEST_F(SimilarityKernelPropertyTest, BitIdenticalToScalarWithoutPruning) {
  proptest::Runner runner("simkernel.bit_identity", /*iterations=*/50);
  runner.Run([](proptest::Case& c) {
    const std::vector<std::string> corpus = RandomCorpus(c);
    for (const Measure measure : BatchedMeasures()) {
      ASSERT_TRUE(simkernel::HasBatchKernel(measure));
      for (const std::string& a : corpus) {
        for (const std::string& b : corpus) {
          const double expected = ComputeMeasure(measure, a, b);
          const double got = simkernel::BatchMeasure(measure, a, b, 0.0);
          c.ExpectTrue(got == expected,
                       std::string(MeasureName(measure)) + "(" +
                           std::to_string(a.size()) + "B, " +
                           std::to_string(b.size()) + "B) batched " +
                           std::to_string(got) + " != scalar " +
                           std::to_string(expected));
        }
      }
    }
  });
  EXPECT_TRUE(runner.AllPassed()) << runner.Report();
  EXPECT_GE(runner.iterations_ran(), 50);
}

// Threshold-aware kernels: exact value or sentinel, sentinel only below
// min_sim — at cutoffs spanning lenient to impossible (1.0 prunes hardest;
// a cutoff > 1 must prune everything non-identical and still never break
// the contract).
TEST_F(SimilarityKernelPropertyTest, PruningIsSoundAtEveryCutoff) {
  proptest::Runner runner("simkernel.pruning_soundness", /*iterations=*/50);
  runner.Run([](proptest::Case& c) {
    const std::vector<std::string> corpus = RandomCorpus(c);
    const double cutoffs[] = {0.3, 0.5, 0.7, 0.9, 0.99, 1.0};
    for (const Measure measure : BatchedMeasures()) {
      for (const std::string& a : corpus) {
        for (const std::string& b : corpus) {
          const double min_sim =
              cutoffs[c.rng().NextBounded(std::size(cutoffs))];
          const double expected = ComputeMeasure(measure, a, b);
          const double got = simkernel::BatchMeasure(measure, a, b, min_sim);
          if (got == simkernel::kBelowMinSim) {
            c.ExpectTrue(expected < min_sim,
                         std::string(MeasureName(measure)) +
                             " pruned a pair with sim " +
                             std::to_string(expected) + " >= min_sim " +
                             std::to_string(min_sim));
          } else {
            c.ExpectTrue(got == expected,
                         std::string(MeasureName(measure)) +
                             " under threshold returned " +
                             std::to_string(got) + " != exact " +
                             std::to_string(expected));
          }
        }
      }
    }
  });
  EXPECT_TRUE(runner.AllPassed()) << runner.Report();
}

// Full-pipeline identity on synthetic censuses: every corruption preset x
// 10 seeds (preset coverage is deterministic, not sampled). The batched
// SimCache must reproduce the scalar one bit-for-bit, and the threshold
// path must keep exactly the scalar keep-set.
TEST_F(SimilarityKernelPropertyTest, AggregateIdentityAcrossPresets) {
  for (const GeneratorConfig& preset : proptest::AllPresets()) {
    proptest::Runner runner("simkernel.aggregate_identity",
                            /*iterations=*/10);
    runner.Run([&preset](proptest::Case& c) {
      GeneratorConfig gen = preset;
      gen.seed = c.rng().Next();
      gen.scale = c.scale();
      gen.num_censuses = 2;
      const SyntheticPair pair = GenerateCensusPair(gen, 0);
      SimilarityFunction fn = configs::DefaultConfig().sim_func;
      fn.set_year_gap(pair.new_dataset.year() - pair.old_dataset.year());

      const std::vector<CandidatePair> candidates = GenerateCandidatePairs(
          pair.old_dataset, pair.new_dataset, BlockingConfig::MakeDefault());

      ScopedBatchKernels scalar_mode(false);
      const SimCache scalar(fn, pair.old_dataset, pair.new_dataset);
      SetBatchKernelsEnabled(true);
      const SimCache batched(fn, pair.old_dataset, pair.new_dataset);
      const double min_sim = 0.5 + 0.4 * (c.rng().NextBounded(5) / 5.0);

      const std::vector<double> scalar_sims = ParallelMap<double>(
          candidates.size(), "proptest.scalar_chunk", [&](size_t i) {
            return scalar.Aggregate(candidates[i].old_id,
                                    candidates[i].new_id);
          });
      const std::vector<double> batched_sims = ParallelMap<double>(
          candidates.size(), "proptest.batched_chunk", [&](size_t i) {
            return batched.Aggregate(candidates[i].old_id,
                                     candidates[i].new_id);
          });
      const std::vector<double> pruned_sims = ParallelMap<double>(
          candidates.size(), "proptest.pruned_chunk", [&](size_t i) {
            return batched.AggregateWithThreshold(candidates[i].old_id,
                                                  candidates[i].new_id,
                                                  min_sim);
          });
      for (size_t i = 0; i < candidates.size(); ++i) {
        c.ExpectTrue(batched_sims[i] == scalar_sims[i],
                     "pair " + std::to_string(i) + ": batched " +
                         std::to_string(batched_sims[i]) + " != scalar " +
                         std::to_string(scalar_sims[i]));
        if (pruned_sims[i] == SimCache::kPruned) {
          c.ExpectTrue(scalar_sims[i] < min_sim,
                       "pair " + std::to_string(i) +
                           " pruned at min_sim " + std::to_string(min_sim) +
                           " but scalar sim is " +
                           std::to_string(scalar_sims[i]));
        } else {
          c.ExpectTrue(pruned_sims[i] == scalar_sims[i],
                       "pair " + std::to_string(i) +
                           ": threshold path " +
                           std::to_string(pruned_sims[i]) + " != scalar " +
                           std::to_string(scalar_sims[i]));
        }
      }
    });
    EXPECT_TRUE(runner.AllPassed()) << runner.Report();
    EXPECT_GE(runner.iterations_ran(), 10);
  }
}

/// A composite function touching every SimBatch plan: both Dice gram sizes,
/// the full edit/Jaro family, Soundex, exact sex, the temporal age
/// component, and a fallback measure (Monge-Elkan) that batched mode must
/// route through the memoized scalar path. Several specs share a field so
/// the per-field table reuse is exercised too.
SimilarityFunction AllPlanFunction() {
  return SimilarityFunction(
      {
          {Field::kFirstName, Measure::kJaroWinkler, 0.20},
          {Field::kFirstName, Measure::kSoundexEqual, 0.05},
          {Field::kFirstName, Measure::kQGramDice, 0.05},
          {Field::kSurname, Measure::kTrigramDice, 0.15},
          {Field::kSurname, Measure::kJaro, 0.05},
          {Field::kSex, Measure::kExact, 0.10},
          {Field::kAddress, Measure::kLevenshtein, 0.15},
          {Field::kOccupation, Measure::kDamerau, 0.10},
          {Field::kOccupation, Measure::kMongeElkan, 0.05},
          {Field::kAge, Measure::kExact, 0.10},
      },
      /*threshold=*/0.7);
}

// The Omega2 pipeline only exercises the Dice/exact plans; this property
// pins batched-vs-scalar bit-identity and threshold soundness for EVERY
// plan the batch layer implements, under all three missing policies (the
// policy changes the Eq. 3 denominator and the pruning bound arithmetic).
TEST_F(SimilarityKernelPropertyTest, AllPlansAllPoliciesAggregateIdentity) {
  proptest::Runner runner("simkernel.all_plans_identity", /*iterations=*/10);
  runner.Run([](proptest::Case& c) {
    const GeneratorConfig gen = proptest::RandomGeneratorConfig(&c);
    const SyntheticPair pair = GenerateCensusPair(gen, 0);
    const std::vector<CandidatePair> candidates = GenerateCandidatePairs(
        pair.old_dataset, pair.new_dataset, BlockingConfig::MakeDefault());
    for (const MissingPolicy policy :
         {MissingPolicy::kRedistribute, MissingPolicy::kZero,
          MissingPolicy::kNeutral}) {
      SimilarityFunction fn = AllPlanFunction();
      fn.set_missing_policy(policy);
      fn.set_year_gap(pair.new_dataset.year() - pair.old_dataset.year());

      ScopedBatchKernels scalar_mode(false);
      const SimCache scalar(fn, pair.old_dataset, pair.new_dataset);
      SetBatchKernelsEnabled(true);
      const SimCache batched(fn, pair.old_dataset, pair.new_dataset);
      // High cutoffs force the running-cutoff path to hand every kernel a
      // nonzero kernel_min, so the in-kernel bound rejects fire too.
      const double min_sim = 0.5 + 0.1 * c.rng().NextBounded(5);
      for (const CandidatePair& cand : candidates) {
        const double expected = scalar.Aggregate(cand.old_id, cand.new_id);
        const double got = batched.Aggregate(cand.old_id, cand.new_id);
        c.ExpectTrue(got == expected,
                     "policy " + std::to_string(static_cast<int>(policy)) +
                         ": batched " + std::to_string(got) + " != scalar " +
                         std::to_string(expected));
        const double pruned =
            batched.AggregateWithThreshold(cand.old_id, cand.new_id, min_sim);
        if (pruned == SimCache::kPruned) {
          c.ExpectTrue(expected < min_sim,
                       "pruned at min_sim " + std::to_string(min_sim) +
                           " but exact sim is " + std::to_string(expected));
        } else {
          c.ExpectTrue(pruned == expected,
                       "threshold path " + std::to_string(pruned) +
                           " != exact " + std::to_string(expected));
        }
      }
    }
    // The interning invariant the arenas rely on: distinct values per field
    // can never exceed the number of records contributing them.
    const SimBatch batch(AllPlanFunction(), pair.old_dataset,
                         pair.new_dataset);
    const size_t total_records =
        pair.old_dataset.num_records() + pair.new_dataset.num_records();
    c.ExpectTrue(batch.num_interned_values() <= 5 * total_records,
                 "interned " + std::to_string(batch.num_interned_values()) +
                     " values from " + std::to_string(total_records) +
                     " records across 5 string fields");
  });
  EXPECT_TRUE(runner.AllPassed()) << runner.Report();
  EXPECT_GE(runner.iterations_ran(), 10);
}

// Deterministic Myers word-size boundary pins: 64-char patterns take the
// bit-parallel path, 65-char pairs the banded fallback; both must agree
// with the scalar DP exactly, including at distance-0 and heavy-edit ends.
TEST_F(SimilarityKernelPropertyTest, MyersBoundaryMatchesScalar) {
  const std::string a63(63, 'a');
  const std::string a64(64, 'a');
  const std::string a65(65, 'a');
  std::string b64 = a64;
  b64[10] = 'z';
  b64[40] = 'q';
  std::string b65 = a65;
  b65[0] = 'z';
  b65[64] = 'q';
  const std::string disjoint(70, 'y');
  const std::vector<std::string> corpus = {a63, a64,      a65, b64,
                                           b65, disjoint, ""};
  for (const Measure measure : {Measure::kLevenshtein, Measure::kDamerau}) {
    for (const std::string& x : corpus) {
      for (const std::string& y : corpus) {
        EXPECT_EQ(simkernel::BatchMeasure(measure, x, y, 0.0),
                  ComputeMeasure(measure, x, y))
            << MeasureName(measure) << " lengths " << x.size() << "/"
            << y.size();
        // And under a cutoff: exact or provably below.
        const double got = simkernel::BatchMeasure(measure, x, y, 0.9);
        const double expected = ComputeMeasure(measure, x, y);
        if (got == simkernel::kBelowMinSim) {
          EXPECT_LT(expected, 0.9);
        } else {
          EXPECT_EQ(got, expected);
        }
      }
    }
  }
}

}  // namespace
}  // namespace tglink
