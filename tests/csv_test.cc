#include "tglink/util/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(CsvTest, ParseSimpleLine) {
  auto row = ParseCsvLine("a,b,c");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"a", "b", "c"}));
}

TEST(CsvTest, ParseQuotedFieldWithSeparator) {
  auto row = ParseCsvLine(R"(a,"b,c",d)");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"a", "b,c", "d"}));
}

TEST(CsvTest, ParseEscapedQuotes) {
  auto row = ParseCsvLine(R"("say ""hi""",x)");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"say \"hi\"", "x"}));
}

TEST(CsvTest, ParseEmptyFields) {
  auto row = ParseCsvLine(",,");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"", "", ""}));
}

TEST(CsvTest, UnterminatedQuoteIsParseError) {
  auto row = ParseCsvLine(R"(a,"unclosed)");
  EXPECT_FALSE(row.ok());
  EXPECT_EQ(row.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, ParseDocumentSkipsEmptyLinesAndHandlesCrLf) {
  auto rows = ParseCsv("a,b\r\n\r\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows.value()[1], (CsvRow{"c", "d"}));
}

TEST(CsvTest, QuotedNewlineStaysInField) {
  auto rows = ParseCsv("a,\"x\ny\"\nb,c\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][1], "x\ny");
}

TEST(CsvTest, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(EscapeCsvField("n\nn"), "\"n\nn\"");
}

TEST(CsvTest, FormatParseRoundTrip) {
  const CsvRow original = {"a", "with,comma", "with\"quote", "with\nnewline",
                           ""};
  const std::string text = FormatCsvRow(original);
  auto rows = ParseCsv(text);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0], original);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tglink_csv_test.csv";
  const std::vector<CsvRow> rows = {{"h1", "h2"}, {"a,b", "c"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto readback = ReadCsvFile(path);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback.value(), rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  auto result = ReadCsvFile("/nonexistent/definitely/absent.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace tglink
