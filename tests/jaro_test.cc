#include "tglink/similarity/jaro.h"

#include <gtest/gtest.h>

namespace tglink {
namespace {

TEST(JaroTest, KnownValues) {
  // Classic textbook examples.
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
  EXPECT_NEAR(JaroSimilarity("jellyfish", "smellyfish"), 0.8963, 1e-3);
}

TEST(JaroTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", "a"), 1.0);
}

TEST(JaroWinklerTest, PrefixBoostsButNeverExceedsOne) {
  const double jaro = JaroSimilarity("ashworth", "ashword");
  const double jw = JaroWinklerSimilarity("ashworth", "ashword");
  EXPECT_GT(jw, jaro);
  EXPECT_LE(jw, 1.0);
}

TEST(JaroWinklerTest, KnownValue) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611, 1e-3);
}

TEST(JaroWinklerTest, NoCommonPrefixEqualsJaro) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("xanthe", "anthex"),
                   JaroSimilarity("xanthe", "anthex"));
}

TEST(JaroWinklerTest, PrefixScaleClamped) {
  // A scale > 0.25 would push results past 1; the implementation clamps.
  const double jw = JaroWinklerSimilarity("aaaa", "aaab", 5.0);
  EXPECT_LE(jw, 1.0);
  EXPECT_GE(jw, JaroSimilarity("aaaa", "aaab"));
}

class JaroPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(JaroPropertyTest, SymmetricBoundedAndReflexive) {
  const auto& [a, b] = GetParam();
  const double ab = JaroSimilarity(a, b);
  EXPECT_DOUBLE_EQ(ab, JaroSimilarity(b, a));
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity(a, a), 1.0);
  const double jw = JaroWinklerSimilarity(a, b);
  EXPECT_DOUBLE_EQ(jw, JaroWinklerSimilarity(b, a));
  EXPECT_GE(jw + 1e-12, ab);
  EXPECT_LE(jw, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    NamePairs, JaroPropertyTest,
    ::testing::Values(std::make_pair("ashworth", "ashword"),
                      std::make_pair("elizabeth", "elisabeth"),
                      std::make_pair("john", "jhon"),
                      std::make_pair("steve", "stephen"),
                      std::make_pair("", "x"),
                      std::make_pair("riley", "reilly"),
                      std::make_pair("ab", "ba"),
                      std::make_pair("smith", "smyth")));

}  // namespace
}  // namespace tglink
