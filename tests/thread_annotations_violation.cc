// Deliberate thread-safety violation: writes a TGLINK_GUARDED_BY member
// without holding its mutex. Under the analyze preset (clang++ with
// -Werror=thread-safety-analysis) this file MUST NOT compile — the ctest
// entry that builds it is registered WILL_FAIL, so the analysis being
// silently off (wrong flags, macros expanding empty under clang, a broken
// capability declaration on Mutex) turns into a test failure instead of a
// green run that checks nothing.
//
// Never added to any default build: the target is EXCLUDE_FROM_ALL and only
// the analyze-gated ctest entry builds it.

#include "tglink/util/thread_annotations.h"

namespace {

class Account {
 public:
  void UnlockedDeposit(int amount) {
    balance_ += amount;  // BAD: mu_ not held — the analysis must reject this.
  }

 private:
  tglink::Mutex mu_;
  int balance_ TGLINK_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.UnlockedDeposit(1);
  return 0;
}
