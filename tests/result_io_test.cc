#include "tglink/linkage/result_io.h"

#include <gtest/gtest.h>

#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

TEST(ResultIoTest, RoundTripPreservesMappings) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  LinkageConfig config = configs::DefaultConfig();
  config.blocking = BlockingConfig::MakeExhaustive();
  const LinkageResult result = LinkCensusPair(old_d, new_d, config);

  const std::string csv = MappingsToCsv(result.record_mapping,
                                        result.group_mapping, old_d, new_d);
  auto loaded = MappingsFromCsv(csv, old_d, new_d);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().records.links(), result.record_mapping.links());
  EXPECT_EQ(loaded.value().groups.SortedLinks(),
            result.group_mapping.SortedLinks());
}

TEST(ResultIoTest, RejectsUnknownIds) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const std::string csv =
      "kind,old_id,new_id\nrecord,nope,1881_1\n";
  EXPECT_FALSE(MappingsFromCsv(csv, old_d, new_d).ok());
  const std::string csv2 = "kind,old_id,new_id\ngroup,g1871_a,nope\n";
  EXPECT_FALSE(MappingsFromCsv(csv2, old_d, new_d).ok());
}

TEST(ResultIoTest, RejectsOneToOneViolations) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const std::string csv =
      "kind,old_id,new_id\n"
      "record,1871_1,1881_1\n"
      "record,1871_1,1881_9\n";  // old record linked twice
  EXPECT_FALSE(MappingsFromCsv(csv, old_d, new_d).ok());
}

TEST(ResultIoTest, RejectsMalformedInput) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  EXPECT_FALSE(MappingsFromCsv("", old_d, new_d).ok());
  EXPECT_FALSE(MappingsFromCsv("x,y\n", old_d, new_d).ok());
  EXPECT_FALSE(
      MappingsFromCsv("kind,old_id,new_id\nalien,a,b\n", old_d, new_d).ok());
  EXPECT_FALSE(
      MappingsFromCsv("kind,old_id,new_id\nrecord,a\n", old_d, new_d).ok());
}

TEST(ResultIoTest, FileRoundTrip) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  RecordMapping records(old_d.num_records(), new_d.num_records());
  ASSERT_TRUE(records.Add(0, 0).ok());
  GroupMapping groups;
  groups.Add(0, 0);
  const std::string path = ::testing::TempDir() + "/tglink_mappings.csv";
  ASSERT_TRUE(SaveMappings(records, groups, old_d, new_d, path).ok());
  auto loaded = LoadMappings(path, old_d, new_d);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().records.size(), 1u);
  EXPECT_EQ(loaded.value().groups.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tglink
