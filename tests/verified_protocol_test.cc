// Tests of the paper-protocol evaluation helpers: SelectVerifiedSubset
// (the expert-reference analogue) and HeavyGroupLinks (its counterpart on
// the prediction side).

#include <gtest/gtest.h>

#include "tglink/eval/metrics.h"
#include "tests/paper_example.h"

namespace tglink {
namespace {

using namespace testing_example;

/// Gold for the running example: 7 person links; household pairs (a,a) and
/// (b,b) are heavy (>= 2 members), (a,c) and (b,c) are single-member moves.
ResolvedGold ExampleFullGold() {
  ResolvedGold gold;
  gold.record_links = {{0, 0}, {1, 1}, {2, 6}, {3, 2}, {5, 3}, {6, 4}, {7, 5}};
  gold.group_links = {{kG1871A, kG1881A},
                      {kG1871A, kG1881C},
                      {kG1871B, kG1881B},
                      {kG1871B, kG1881C}};
  return gold;
}

TEST(VerifiedSubsetTest, KeepsHeavyPairsAndTheirMembers) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const ResolvedGold verified =
      SelectVerifiedSubset(ExampleFullGold(), old_d, new_d);
  // Heavy household pairs only.
  EXPECT_EQ(verified.group_links,
            (std::vector<GroupLink>{{kG1871A, kG1881A}, {kG1871B, kG1881B}}));
  // Person links across those pairs only — the two movers into g_c drop out.
  EXPECT_EQ(verified.record_links,
            (std::vector<RecordLink>{{0, 0}, {1, 1}, {3, 2}, {5, 3}, {6, 4}}));
}

TEST(VerifiedSubsetTest, ThresholdThreeDropsTwoMemberHouseholds) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const ResolvedGold verified =
      SelectVerifiedSubset(ExampleFullGold(), old_d, new_d,
                           /*min_shared_members=*/3);
  // Only (a,a) carries 3 shared members.
  EXPECT_EQ(verified.group_links,
            (std::vector<GroupLink>{{kG1871A, kG1881A}}));
  EXPECT_EQ(verified.record_links.size(), 3u);
}

TEST(VerifiedSubsetTest, EmptyGoldStaysEmpty) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const ResolvedGold verified = SelectVerifiedSubset({}, old_d, new_d);
  EXPECT_TRUE(verified.record_links.empty());
  EXPECT_TRUE(verified.group_links.empty());
}

TEST(HeavyGroupLinksTest, FiltersSingleMemberPredictions) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  RecordMapping records(old_d.num_records(), new_d.num_records());
  ASSERT_TRUE(records.Add(0, 0).ok());  // a->a member 1
  ASSERT_TRUE(records.Add(1, 1).ok());  // a->a member 2
  ASSERT_TRUE(records.Add(7, 5).ok());  // b->c single mover
  GroupMapping groups;
  groups.Add(kG1871A, kG1881A);
  groups.Add(kG1871B, kG1881C);
  groups.Add(kG1871B, kG1881D);  // spurious link with no record support
  const GroupMapping heavy =
      HeavyGroupLinks(groups, records, old_d, new_d);
  EXPECT_EQ(heavy.size(), 1u);
  EXPECT_TRUE(heavy.Contains(kG1871A, kG1881A));
}

TEST(HeavyGroupLinksTest, MinSharedOneKeepsSupportedLinksOnly) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  RecordMapping records(old_d.num_records(), new_d.num_records());
  ASSERT_TRUE(records.Add(7, 5).ok());
  GroupMapping groups;
  groups.Add(kG1871B, kG1881C);
  groups.Add(kG1871B, kG1881D);
  const GroupMapping heavy =
      HeavyGroupLinks(groups, records, old_d, new_d, /*min_shared=*/1);
  EXPECT_EQ(heavy.size(), 1u);
  EXPECT_TRUE(heavy.Contains(kG1871B, kG1881C));
}

TEST(VerifiedProtocolTest, PerfectPredictionScoresPerfectly) {
  const CensusDataset old_d = MakeCensus1871();
  const CensusDataset new_d = MakeCensus1881();
  const ResolvedGold verified =
      SelectVerifiedSubset(ExampleFullGold(), old_d, new_d);
  RecordMapping records(old_d.num_records(), new_d.num_records());
  for (const RecordLink& link : ExampleFullGold().record_links) {
    ASSERT_TRUE(records.Add(link.first, link.second).ok());
  }
  GroupMapping groups;
  for (const GroupLink& link : ExampleFullGold().group_links) {
    groups.Add(link.first, link.second);
  }
  // Under the protocol: restrict predictions to the verified universe and
  // project the group mapping onto heavy links.
  const PrecisionRecall rec =
      EvaluateRecordMapping(records, verified, /*restrict=*/true);
  EXPECT_DOUBLE_EQ(rec.f_measure(), 1.0);
  const GroupMapping heavy = HeavyGroupLinks(groups, records, old_d, new_d);
  const PrecisionRecall grp =
      EvaluateGroupMapping(heavy, verified, /*restrict=*/true);
  EXPECT_DOUBLE_EQ(grp.f_measure(), 1.0);
}

}  // namespace
}  // namespace tglink
