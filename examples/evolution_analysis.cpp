// Evolution analysis over a full census series (the paper's Section 5.4
// workflow): link every successive pair, build the evolution graph, and
// report pattern frequencies, preserved-household chains and connected
// components.
//
//   ./build/examples/evolution_analysis [scale] [seed]
//
// scale 1.0 reproduces the Table 1 sizes (17k -> 31k records); the default
// 0.2 runs in a few seconds.

#include <cstdio>
#include <cstdlib>

#include "tglink/eval/report.h"
#include "tglink/evolution/evolution_graph.h"
#include "tglink/evolution/queries.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"
#include "tglink/util/timer.h"

int main(int argc, char** argv) {
  using namespace tglink;

  GeneratorConfig gen;
  gen.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  gen.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  gen.num_censuses = 6;

  Timer timer;
  const SyntheticSeries series = GenerateCensusSeries(gen);
  std::printf("generated %zu censuses (%.1fs)\n", series.snapshots.size(),
              timer.ElapsedSeconds());
  for (const CensusDataset& snapshot : series.snapshots) {
    const DatasetStats stats = snapshot.Stats();
    std::printf("  %d: %zu records, %zu households, %zu unique names, "
                "%.1f%% missing\n",
                stats.year, stats.num_records, stats.num_households,
                stats.unique_name_combinations,
                100.0 * stats.missing_value_ratio);
  }

  const LinkageConfig config = configs::DefaultConfig();
  std::vector<RecordMapping> record_mappings;
  std::vector<GroupMapping> group_mappings;
  for (size_t i = 0; i + 1 < series.snapshots.size(); ++i) {
    timer.Reset();
    LinkageResult result = LinkCensusPair(series.snapshots[i],
                                          series.snapshots[i + 1], config);
    std::printf("linked %d->%d: %s (%.1fs)\n", series.snapshots[i].year(),
                series.snapshots[i + 1].year(), result.Summary().c_str(),
                timer.ElapsedSeconds());
    record_mappings.push_back(std::move(result.record_mapping));
    group_mappings.push_back(std::move(result.group_mapping));
  }

  const EvolutionGraph graph(series.snapshots, record_mappings,
                             group_mappings);

  // Fig. 6-style pattern frequency table.
  TextTable patterns("\nGroup evolution patterns per census pair");
  patterns.SetHeader({"pair", "preserve_G", "move", "split", "merge", "add_G",
                      "remove_G"});
  for (size_t i = 0; i < graph.pair_counts().size(); ++i) {
    const EvolutionCounts& c = graph.pair_counts()[i];
    patterns.AddRow({std::to_string(series.snapshots[i].year()) + "-" +
                         std::to_string(series.snapshots[i + 1].year()),
                     std::to_string(c.preserve_groups),
                     std::to_string(c.move_groups),
                     std::to_string(c.split_groups),
                     std::to_string(c.merge_groups),
                     std::to_string(c.add_groups),
                     std::to_string(c.remove_groups)});
  }
  std::fputs(patterns.ToString().c_str(), stdout);

  // Table 8-style preserved chains.
  TextTable chains("\nHouseholds preserved over k intervals");
  chains.SetHeader({"interval (years)", "|preserve_G| chains"});
  const std::vector<size_t> profile = PreservedChainProfile(graph);
  for (size_t k = 0; k < profile.size(); ++k) {
    chains.AddRow({std::to_string(10 * (k + 1)), std::to_string(profile[k])});
  }
  std::fputs(chains.ToString().c_str(), stdout);

  const ComponentStats components = ConnectedHouseholdComponents(graph);
  std::printf("\nconnected components: %zu; largest covers %zu households "
              "(%.1f%% of all %zu)\n",
              components.num_components, components.largest_component,
              100.0 * components.largest_coverage, graph.total_households());
  return 0;
}
