// Quickstart: generate a small two-census synthetic region, link it with
// the default configuration, evaluate against ground truth, and show the
// evolution patterns — the whole public API surface in ~80 lines.
//
//   ./build/examples/quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "tglink/eval/metrics.h"
#include "tglink/evolution/patterns.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"

int main(int argc, char** argv) {
  using namespace tglink;

  // 1. Synthesize two successive census snapshots with ground truth.
  GeneratorConfig gen;
  gen.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  gen.scale = 0.1;  // ~330 households in 1851
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  std::printf("censuses: %d (%zu records, %zu households) -> %d (%zu, %zu)\n",
              pair.old_dataset.year(), pair.old_dataset.num_records(),
              pair.old_dataset.num_households(), pair.new_dataset.year(),
              pair.new_dataset.num_records(),
              pair.new_dataset.num_households());

  // 2. Link with the paper's best configuration (ω2, δ ∈ [0.5, 0.7],
  //    (α, β) = (0.2, 0.7)).
  const LinkageConfig config = configs::DefaultConfig();
  const LinkageResult result =
      LinkCensusPair(pair.old_dataset, pair.new_dataset, config);
  std::printf("linkage: %s\n", result.Summary().c_str());
  for (const IterationStats& it : result.iterations) {
    std::printf("  δ=%.2f: %zu candidate subgraphs, %zu accepted, "
                "%zu record links\n",
                it.delta, it.candidate_subgraphs, it.accepted_subgraphs,
                it.new_record_links);
  }

  // 3. Evaluate against the generator's ground truth.
  auto gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
  if (!gold.ok()) {
    std::fprintf(stderr, "gold resolution failed: %s\n",
                 gold.status().ToString().c_str());
    return 1;
  }
  const PrecisionRecall record_pr =
      EvaluateRecordMapping(result.record_mapping, gold.value());
  const PrecisionRecall group_pr =
      EvaluateGroupMapping(result.group_mapping, gold.value());
  std::printf("record mapping: %s\n", record_pr.ToString().c_str());
  std::printf("group mapping:  %s\n", group_pr.ToString().c_str());

  // 4. What happened to the households in those ten years?
  const EvolutionAnalysis evolution = AnalyzeEvolution(
      pair.old_dataset, pair.new_dataset, result.record_mapping,
      result.group_mapping);
  std::printf("evolution: %s\n", evolution.counts.ToString().c_str());

  // 5. Peek at one linked pair of person records.
  if (!result.record_mapping.links().empty()) {
    const auto& [o, n] = result.record_mapping.links().front();
    const PersonRecord& before = pair.old_dataset.record(o);
    const PersonRecord& after = pair.new_dataset.record(n);
    std::printf("example link: %s (%s, %d) -> %s (%s, %d)\n",
                before.external_id.c_str(), before.DisplayName().c_str(),
                before.age, after.external_id.c_str(),
                after.DisplayName().c_str(), after.age);
  }
  return 0;
}
