// Data-quality robustness study (beyond the paper): sweep the corruption
// model's noise scale and watch how linkage quality degrades, and how much
// the iterative schedule buys at each noise level. Also demonstrates the
// CSV persistence APIs: each noise level's snapshot pair is written to and
// reloaded from disk before linking, exercising the full I/O path.
//
//   ./build/examples/data_quality [scale] [seed]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "tglink/census/io.h"
#include "tglink/eval/metrics.h"
#include "tglink/eval/report.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"

int main(int argc, char** argv) {
  using namespace tglink;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  TextTable table("Linkage quality vs data-quality noise (noise 1.0 = the "
                  "calibrated Table 1 rates)");
  table.SetHeader({"noise", "missing %", "iter rec F%", "one-shot rec F%",
                   "iter grp F%"});

  for (double noise : {0.0, 0.5, 1.0, 1.5, 2.0, 3.0}) {
    GeneratorConfig gen;
    gen.seed = seed;
    gen.scale = scale;
    gen.num_censuses = 2;
    gen.corruption.noise_scale = noise;
    const SyntheticPair pair = GenerateCensusPair(gen, 0);

    // Round-trip both snapshots through CSV (the I/O path a real deployment
    // would use).
    const std::string dir = "/tmp";
    const std::string old_path = dir + "/tglink_dq_old.csv";
    const std::string new_path = dir + "/tglink_dq_new.csv";
    if (!SaveDataset(pair.old_dataset, old_path).ok() ||
        !SaveDataset(pair.new_dataset, new_path).ok()) {
      std::fprintf(stderr, "failed to write snapshots\n");
      return 1;
    }
    auto old_d = LoadDataset(old_path, pair.old_dataset.year());
    auto new_d = LoadDataset(new_path, pair.new_dataset.year());
    if (!old_d.ok() || !new_d.ok()) {
      std::fprintf(stderr, "failed to reload snapshots\n");
      return 1;
    }

    auto gold = ResolveGold(pair.gold, old_d.value(), new_d.value());
    if (!gold.ok()) {
      std::fprintf(stderr, "%s\n", gold.status().ToString().c_str());
      return 1;
    }

    const LinkageResult iter = LinkCensusPair(old_d.value(), new_d.value(),
                                              configs::DefaultConfig());
    LinkageConfig oneshot_config = configs::DefaultConfig();
    oneshot_config.delta_high = oneshot_config.delta_low = 0.5;
    const LinkageResult oneshot =
        LinkCensusPair(old_d.value(), new_d.value(), oneshot_config);

    const double missing = old_d.value().Stats().missing_value_ratio;
    table.AddRow(
        {TextTable::Fixed(noise, 1), TextTable::Percent(missing),
         TextTable::Percent(
             EvaluateRecordMapping(iter.record_mapping, gold.value())
                 .f_measure()),
         TextTable::Percent(
             EvaluateRecordMapping(oneshot.record_mapping, gold.value())
                 .f_measure()),
         TextTable::Percent(
             EvaluateGroupMapping(iter.group_mapping, gold.value())
                 .f_measure())});
  }

  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
