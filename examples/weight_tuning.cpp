// Learning the attribute weights from data (the alternative the paper
// points to in Section 5.2.1): start from the uniform ω1, tune by
// coordinate ascent against synthetic gold, and compare ω1 / ω2 / tuned
// both on the matcher objective and through the full linkage pipeline.
//
//   ./build/examples/weight_tuning [scale] [seed]

#include <cstdio>
#include <cstdlib>

#include "tglink/eval/metrics.h"
#include "tglink/eval/report.h"
#include "tglink/eval/tuner.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"
#include "tglink/util/timer.h"

int main(int argc, char** argv) {
  using namespace tglink;
  GeneratorConfig gen;
  gen.scale = argc > 1 ? std::atof(argv[1]) : 0.08;
  gen.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  gen.num_censuses = 2;
  const SyntheticPair pair = GenerateCensusPair(gen, 0);
  auto gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
  if (!gold.ok()) {
    std::fprintf(stderr, "%s\n", gold.status().ToString().c_str());
    return 1;
  }
  const ResolvedGold verified =
      SelectVerifiedSubset(gold.value(), pair.old_dataset, pair.new_dataset);

  // Tune starting from the uniform weights.
  Timer timer;
  TunerConfig tuner_config;
  tuner_config.max_rounds = 4;
  const TunerResult tuned = TuneAttributeWeights(
      pair.old_dataset, pair.new_dataset, gold.value(), configs::Omega1(),
      tuner_config);
  std::printf("tuned in %.1fs (%zu objective evaluations): matcher F "
              "%.3f -> %.3f\n",
              timer.ElapsedSeconds(), tuned.evaluations, tuned.initial_f,
              tuned.tuned_f);
  std::printf("tuned function: %s\n\n", tuned.tuned.ToString().c_str());

  // Feed each weighting through the full pipeline.
  TextTable table("Full-pipeline quality by weight vector");
  table.SetHeader({"ω", "rec P%", "rec R%", "rec F%"});
  struct Entry {
    const char* name;
    SimilarityFunction sim;
  };
  const Entry entries[] = {
      {"ω1 (uniform)", configs::Omega1()},
      {"ω2 (paper)", configs::Omega2()},
      {"tuned (from ω1)", tuned.tuned},
  };
  for (const Entry& entry : entries) {
    LinkageConfig config = configs::DefaultConfig();
    config.sim_func = entry.sim;
    const LinkageResult result =
        LinkCensusPair(pair.old_dataset, pair.new_dataset, config);
    const PrecisionRecall pr =
        EvaluateRecordMapping(result.record_mapping, verified, true);
    table.AddRow({entry.name, TextTable::Percent(pr.precision()),
                  TextTable::Percent(pr.recall()),
                  TextTable::Percent(pr.f_measure())});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
