// Head-to-head on one census pair: iterative subgraph linkage (this
// library's core) vs the collective linkage baseline [14] vs the GraphSim
// household matcher [8] — the comparison behind the paper's Tables 6 and 7.
//
//   ./build/examples/compare_baselines [scale] [seed]

#include <cstdio>
#include <cstdlib>

#include "tglink/baselines/collective.h"
#include "tglink/baselines/graphsim.h"
#include "tglink/baselines/temporal_decay.h"
#include "tglink/eval/metrics.h"
#include "tglink/eval/report.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"
#include "tglink/synth/generator.h"
#include "tglink/util/timer.h"

int main(int argc, char** argv) {
  using namespace tglink;

  GeneratorConfig gen;
  gen.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  gen.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  gen.num_censuses = 4;  // evaluate on the 1871->1881 pair like the paper
  const SyntheticPair pair = GenerateCensusPair(gen, 2);
  auto gold = ResolveGold(pair.gold, pair.old_dataset, pair.new_dataset);
  if (!gold.ok()) {
    std::fprintf(stderr, "%s\n", gold.status().ToString().c_str());
    return 1;
  }
  std::printf("pair %d->%d: %zu / %zu records, %zu true person links\n",
              pair.old_dataset.year(), pair.new_dataset.year(),
              pair.old_dataset.num_records(), pair.new_dataset.num_records(),
              gold.value().record_links.size());

  TextTable table("\nRecord and group mapping quality");
  table.SetHeader({"method", "rec P%", "rec R%", "rec F%", "grp P%", "grp R%",
                   "grp F%", "time s"});
  Timer timer;

  // Ours: iterative subgraph matching.
  timer.Reset();
  const LinkageResult ours = LinkCensusPair(pair.old_dataset,
                                            pair.new_dataset,
                                            configs::DefaultConfig());
  const double ours_time = timer.ElapsedSeconds();
  const PrecisionRecall ours_rec =
      EvaluateRecordMapping(ours.record_mapping, gold.value());
  const PrecisionRecall ours_grp =
      EvaluateGroupMapping(ours.group_mapping, gold.value());
  table.AddRow({"iter-sub (ours)", TextTable::Percent(ours_rec.precision()),
                TextTable::Percent(ours_rec.recall()),
                TextTable::Percent(ours_rec.f_measure()),
                TextTable::Percent(ours_grp.precision()),
                TextTable::Percent(ours_grp.recall()),
                TextTable::Percent(ours_grp.f_measure()),
                TextTable::Fixed(ours_time, 1)});

  // Baseline 1: collective linkage (records only).
  CollectiveConfig cl_config;
  cl_config.sim_func = configs::Omega2();
  timer.Reset();
  const RecordMapping cl =
      CollectiveLink(pair.old_dataset, pair.new_dataset, cl_config);
  const double cl_time = timer.ElapsedSeconds();
  const PrecisionRecall cl_rec = EvaluateRecordMapping(cl, gold.value());
  table.AddRow({"CL [14]", TextTable::Percent(cl_rec.precision()),
                TextTable::Percent(cl_rec.recall()),
                TextTable::Percent(cl_rec.f_measure()), "-", "-", "-",
                TextTable::Fixed(cl_time, 1)});

  // Baseline 2: GraphSim (records + groups, non-iterative).
  GraphSimConfig gs_config;
  gs_config.sim_func = configs::Omega2();
  timer.Reset();
  const GraphSimResult gs =
      GraphSimLink(pair.old_dataset, pair.new_dataset, gs_config);
  const double gs_time = timer.ElapsedSeconds();
  const PrecisionRecall gs_rec =
      EvaluateRecordMapping(gs.record_mapping, gold.value());
  const PrecisionRecall gs_grp =
      EvaluateGroupMapping(gs.group_mapping, gold.value());
  table.AddRow({"GraphSim [8]", TextTable::Percent(gs_rec.precision()),
                TextTable::Percent(gs_rec.recall()),
                TextTable::Percent(gs_rec.f_measure()),
                TextTable::Percent(gs_grp.precision()),
                TextTable::Percent(gs_grp.recall()),
                TextTable::Percent(gs_grp.f_measure()),
                TextTable::Fixed(gs_time, 1)});

  // Baseline 3: temporal-decay record matching (Li et al. [17] family).
  TemporalDecayConfig td_config;
  td_config.sim_func = configs::Omega2();
  timer.Reset();
  const RecordMapping td =
      TemporalDecayLink(pair.old_dataset, pair.new_dataset, td_config);
  const double td_time = timer.ElapsedSeconds();
  const PrecisionRecall td_rec = EvaluateRecordMapping(td, gold.value());
  table.AddRow({"temporal decay [17]", TextTable::Percent(td_rec.precision()),
                TextTable::Percent(td_rec.recall()),
                TextTable::Percent(td_rec.f_measure()), "-", "-", "-",
                TextTable::Fixed(td_time, 1)});

  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
