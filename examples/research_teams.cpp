// Domain transfer (the paper's concluding suggestion): apply temporal group
// linkage to *research teams* instead of households. Snapshots are taken of
// a lab's staff every 3 years; teams play the role of households, the PI
// the role of head, and the evolution patterns read as team continuity,
// splits (a postdoc starts their own lab) and researchers moving between
// teams. Everything runs through the exact same public API — only the
// semantic mapping of the fields changes:
//
//   first_name/surname  -> author names
//   role                -> head = PI, son/daughter = PhD student,
//                          brother/sister = co-PI, lodger = visiting
//   age                 -> academic age (years since first publication)
//   address             -> institute building
//   occupation          -> research area
//
//   ./build/examples/research_teams

#include <cstdio>

#include "tglink/evolution/patterns.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/explain.h"
#include "tglink/linkage/iterative.h"

namespace {

using namespace tglink;

PersonRecord Author(const char* id, const char* fn, const char* sn, Sex sex,
                    int academic_age, Role role, const char* institute,
                    const char* area) {
  PersonRecord r;
  r.external_id = id;
  r.first_name = fn;
  r.surname = sn;
  r.sex = sex;
  r.age = academic_age;
  r.role = role;
  r.address = institute;
  r.occupation = area;
  return r;
}

CensusDataset Snapshot2017() {
  CensusDataset d(2017);
  // Team A: databases group, PI Lehmann.
  d.AddHousehold(
      "teamA_2017",
      {
          Author("a1", "anna", "lehmann", Sex::kFemale, 18, Role::kHead,
                 "building e1", "query optimization"),
          Author("a2", "boris", "schmidt", Sex::kMale, 12, Role::kBrother,
                 "building e1", "query optimization"),  // co-PI
          Author("a3", "carla", "weber", Sex::kFemale, 4, Role::kDaughter,
                 "building e1", "cardinality estimation"),
          Author("a4", "david", "koch", Sex::kMale, 3, Role::kSon,
                 "building e1", "adaptive indexing"),
          Author("a5", "emil", "fischer", Sex::kMale, 6, Role::kLodger,
                 "building e1", "stream processing"),  // long-term visitor
      });
  // Team B: machine learning group, PI Novak.
  d.AddHousehold(
      "teamB_2017",
      {
          Author("b1", "petr", "novak", Sex::kMale, 22, Role::kHead,
                 "building c4", "representation learning"),
          Author("b2", "greta", "hoffmann", Sex::kFemale, 5, Role::kDaughter,
                 "building c4", "graph embeddings"),
          Author("b3", "henry", "braun", Sex::kMale, 2, Role::kSon,
                 "building c4", "graph embeddings"),
      });
  return d;
}

CensusDataset Snapshot2020() {
  CensusDataset d(2020);
  // Team A persists; Carla graduated and founded her own group; a new
  // student arrived.
  d.AddHousehold(
      "teamA_2020",
      {
          Author("a1n", "anna", "lehmann", Sex::kFemale, 21, Role::kHead,
                 "building e1", "query optimization"),
          Author("a2n", "boris", "schmidt", Sex::kMale, 15, Role::kBrother,
                 "building e1", "learned optimizers"),
          Author("a4n", "david", "koch", Sex::kMale, 6, Role::kSon,
                 "building e1", "adaptive indexing"),
          Author("a6n", "franz", "maier", Sex::kMale, 1, Role::kSon,
                 "building e1", "query optimization"),
      });
  // Carla's new group, with Emil who moved over from team A.
  d.AddHousehold(
      "teamC_2020",
      {
          Author("c1n", "carla", "weber", Sex::kFemale, 7, Role::kHead,
                 "building b2", "cardinality estimation"),
          Author("c2n", "emil", "fischer", Sex::kMale, 9, Role::kLodger,
                 "building b2", "stream processing"),
          Author("c3n", "ida", "vogel", Sex::kFemale, 1, Role::kDaughter,
                 "building b2", "cardinality estimation"),
      });
  // Team B persists (Henry left academia).
  d.AddHousehold(
      "teamB_2020",
      {
          Author("b1n", "petr", "novak", Sex::kMale, 25, Role::kHead,
                 "building c4", "representation learning"),
          Author("b2n", "greta", "hoffmann", Sex::kFemale, 8,
                 Role::kDaughter, "building c4", "graph embeddings"),
      });
  return d;
}

}  // namespace

int main() {
  const CensusDataset before = Snapshot2017();
  const CensusDataset after = Snapshot2020();

  LinkageConfig config = configs::DefaultConfig();
  config.blocking = BlockingConfig::MakeExhaustive();  // tiny input
  // Academic ages advance by the snapshot gap like calendar ages, so the
  // temporal age machinery applies unchanged (gap = 3 years).
  const LinkageResult result = LinkCensusPair(before, after, config);

  std::printf("linked researchers:\n");
  for (const RecordLink& link : result.record_mapping.links()) {
    const PersonRecord& o = before.record(link.first);
    const PersonRecord& n = after.record(link.second);
    std::printf("  %-18s (%s) -> %-18s (%s)\n", o.DisplayName().c_str(),
                before.household(o.group).external_id.c_str(),
                n.DisplayName().c_str(),
                after.household(n.group).external_id.c_str());
  }

  const EvolutionAnalysis analysis = AnalyzeEvolution(
      before, after, result.record_mapping, result.group_mapping);
  std::printf("\nteam evolution: %s\n", analysis.counts.ToString().c_str());
  for (const GroupPatternInstance& instance : analysis.group_patterns) {
    std::printf("  %s:", GroupPatternName(instance.pattern));
    for (GroupId g : instance.old_groups) {
      std::printf(" %s", before.household(g).external_id.c_str());
    }
    std::printf(" ->");
    for (GroupId g : instance.new_groups) {
      std::printf(" %s", after.household(g).external_id.c_str());
    }
    std::printf("\n");
  }

  // Why was Carla linked the way she was?
  std::printf("\n%s\n",
              ExplainLink(result, before, after, config, 2)
                  .ToString(before, after, config)
                  .c_str());
  return 0;
}
