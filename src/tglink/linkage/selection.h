// Selection of group links (Section 3.4, Algorithm 2): greedy over the
// scored subgraphs in descending g_sim order, accepting a subgraph only if
// none of its records has been linked yet, which both yields the N:M group
// mapping and guarantees the 1:1 record mapping.

#ifndef TGLINK_LINKAGE_SELECTION_H_
#define TGLINK_LINKAGE_SELECTION_H_

#include <vector>
#include <cstddef>

#include "tglink/linkage/mapping.h"
#include "tglink/linkage/subgraph.h"

namespace tglink {

/// [[nodiscard]] on the type: callers must consume the selection stats —
/// they carry the per-iteration progress signal Algorithm 1 terminates on.
struct [[nodiscard]] SelectionResult {
  size_t accepted_subgraphs = 0;
  size_t new_group_links = 0;
  size_t new_record_links = 0;
};

/// Runs Algorithm 2 over `subgraphs`, extending `group_mapping` and
/// `record_mapping` in place and flagging newly matched records in
/// `active_old` / `active_new` (set to false). Records already inactive
/// never occur in subgraph vertices (pre-matching excluded them).
///
/// Determinism: ties in g_sim break on (old_group, new_group).
SelectionResult SelectGroupLinks(std::vector<GroupPairSubgraph> subgraphs,
                                 GroupMapping* group_mapping,
                                 RecordMapping* record_mapping,
                                 std::vector<bool>* active_old,
                                 std::vector<bool>* active_new);

}  // namespace tglink

#endif  // TGLINK_LINKAGE_SELECTION_H_
