#include "tglink/linkage/subgraph.h"

#include <algorithm>
#include <unordered_set>

#include "tglink/obs/memprof.h"
#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"
#include "tglink/similarity/numeric.h"
#include "tglink/util/parallel.h"

namespace tglink {

namespace {

/// Relationship-property similarity of an old edge vs a new edge, oriented
/// from vertex i to vertex j on both sides. Returns a negative value when
/// the edges do not match (different type, or age differences deviating
/// beyond the tolerance).
double EdgePropertySimilarity(const HouseholdGraph& old_graph,
                              const HouseholdGraph& new_graph,
                              const SubgraphVertex& vi,
                              const SubgraphVertex& vj,
                              const LinkageConfig& config) {
  const RelEdge* old_edge = old_graph.EdgeBetween(vi.old_id, vj.old_id);
  const RelEdge* new_edge = new_graph.EdgeBetween(vi.new_id, vj.new_id);
  if (old_edge == nullptr || new_edge == nullptr) return -1.0;
  if (old_edge->type != new_edge->type) return -1.0;
  if (old_edge->age_diff_known && new_edge->age_diff_known) {
    const int d_old = old_graph.OrientedAgeDiff(*old_edge, vi.old_id, vj.old_id);
    const int d_new = new_graph.OrientedAgeDiff(*new_edge, vi.new_id, vj.new_id);
    const double rp_sim =
        AgeDiffSimilarity(d_old, d_new, config.edge_age_tolerance);
    return rp_sim > 0.0 ? rp_sim : -1.0;
  }
  // One of the age differences is unknown: the types agree, so accept the
  // edge with an agnostic property similarity.
  return 0.5;
}

}  // namespace

GroupPairSubgraph BuildGroupPairSubgraph(
    GroupId old_group, GroupId new_group, const HouseholdGraph& old_graph,
    const HouseholdGraph& new_graph, const Clustering& clustering,
    const PreMatcher& prematcher, const LinkageConfig& config,
    const CensusDataset& old_dataset, const CensusDataset& new_dataset,
    double delta) {
  GroupPairSubgraph subgraph;
  subgraph.old_group = old_group;
  subgraph.new_group = new_group;
  const int year_gap = new_dataset.year() - old_dataset.year();

  // 1. Candidate vertices: equally labeled (old, new) member pairs whose
  // recorded ages are temporally plausible (footnote 2 of the paper).
  std::vector<SubgraphVertex> candidates;
  for (RecordId o : old_graph.members()) {
    const uint32_t label = clustering.old_labels[o];
    if (label == Clustering::kNoLabel) continue;
    const PersonRecord& old_rec = old_dataset.record(o);
    for (RecordId n : new_graph.members()) {
      if (clustering.new_labels[n] != label) continue;
      const PersonRecord& new_rec = new_dataset.record(n);
      double age_sim = 0.5;
      if (old_rec.has_age() && new_rec.has_age()) {
        const int gate = config.vertex_age_tolerance;
        age_sim = TemporalAgeSimilarity(old_rec.age, new_rec.age, year_gap,
                                        gate > 0 ? gate : 7);
        if (gate > 0 && age_sim <= 0.0) continue;  // implausible ageing
      }
      const double sim = prematcher.PairSimilarity(o, n);
      if (sim + 1e-12 < delta) continue;  // label by chaining only
      candidates.push_back({o, n, sim, age_sim});
    }
  }
  if (candidates.empty()) return subgraph;

  // 2. Resolve within-pair ambiguity (two equally named brothers, say) by a
  // greedy 1:1 assignment ordered by record similarity, breaking ties on
  // the temporally stable evidence — age plausibility.
  std::sort(candidates.begin(), candidates.end(),
            [](const SubgraphVertex& a, const SubgraphVertex& b) {
              if (a.sim != b.sim) return a.sim > b.sim;
              if (a.age_sim != b.age_sim) return a.age_sim > b.age_sim;
              if (a.old_id != b.old_id) return a.old_id < b.old_id;
              return a.new_id < b.new_id;
            });
  std::unordered_set<RecordId> used_old, used_new;
  std::vector<SubgraphVertex> vertices;
  for (const SubgraphVertex& cand : candidates) {
    if (used_old.count(cand.old_id) || used_new.count(cand.new_id)) continue;
    used_old.insert(cand.old_id);
    used_new.insert(cand.new_id);
    vertices.push_back(cand);
  }

  // 3. Edges: vertex pairs whose old and new records are connected by
  // relationships agreeing in unified type and age difference.
  std::vector<SubgraphEdge> edges;
  for (uint32_t i = 0; i < vertices.size(); ++i) {
    for (uint32_t j = i + 1; j < vertices.size(); ++j) {
      const double rp_sim = EdgePropertySimilarity(
          old_graph, new_graph, vertices[i], vertices[j], config);
      if (rp_sim >= 0.0) edges.push_back({i, j, rp_sim});
    }
  }

  // 4. Prune vertices with no matching incident edge (Fig. 4), then
  // re-index the surviving edges.
  std::vector<bool> covered(vertices.size(), false);
  for (const SubgraphEdge& e : edges) {
    covered[e.v1] = covered[e.v2] = true;
  }
  std::vector<uint32_t> new_index(vertices.size(), UINT32_MAX);
  for (uint32_t i = 0; i < vertices.size(); ++i) {
    if (!covered[i]) continue;
    new_index[i] = static_cast<uint32_t>(subgraph.vertices.size());
    subgraph.vertices.push_back(vertices[i]);
  }
  subgraph.edges.reserve(edges.size());
  for (const SubgraphEdge& e : edges) {
    subgraph.edges.push_back({new_index[e.v1], new_index[e.v2], e.rp_sim});
  }
  if (subgraph.vertices.empty()) return subgraph;

  // 5. Scores (Section 3.4).
  double sim_sum = 0.0;
  size_t label_size_sum = 0;
  for (const SubgraphVertex& v : subgraph.vertices) {
    sim_sum += v.sim;
    label_size_sum += clustering.LabelSize(clustering.old_labels[v.old_id]);
  }
  subgraph.avg_sim = sim_sum / static_cast<double>(subgraph.vertices.size());

  double rp_sum = 0.0;
  for (const SubgraphEdge& e : subgraph.edges) rp_sum += e.rp_sim;
  const size_t total_edges = old_graph.num_edges() + new_graph.num_edges();
  subgraph.e_sim =
      total_edges == 0 ? 0.0 : 2.0 * rp_sum / static_cast<double>(total_edges);

  subgraph.uniqueness = 2.0 * static_cast<double>(subgraph.vertices.size()) /
                        static_cast<double>(label_size_sum);

  const GroupScoreWeights& w = config.group_weights;
  subgraph.g_sim = w.alpha * subgraph.avg_sim + w.beta * subgraph.e_sim +
                   w.uniqueness_weight() * subgraph.uniqueness;
  return subgraph;
}

std::vector<GroupPairSubgraph> BuildAllSubgraphs(
    const CensusDataset& old_dataset, const CensusDataset& new_dataset,
    const std::vector<HouseholdGraph>& old_graphs,
    const std::vector<HouseholdGraph>& new_graphs,
    const Clustering& clustering, const PreMatcher& prematcher,
    const LinkageConfig& config, double delta) {
  TGLINK_TRACE_SPAN("subgraph.build_score", delta);
  TGLINK_MEM_STAGE("subgraph.build_score");
  // Candidate group pairs: every (old household, new household) combination
  // sharing at least one cluster label.
  std::vector<uint64_t> group_pair_keys;
  for (uint32_t label = 0; label < clustering.num_labels; ++label) {
    const auto& old_members = clustering.label_old_members[label];
    const auto& new_members = clustering.label_new_members[label];
    if (old_members.empty() || new_members.empty()) continue;
    for (RecordId o : old_members) {
      const GroupId go = old_dataset.record(o).group;
      for (RecordId n : new_members) {
        const GroupId gn = new_dataset.record(n).group;
        group_pair_keys.push_back((static_cast<uint64_t>(go) << 32) | gn);
      }
    }
  }
  std::sort(group_pair_keys.begin(), group_pair_keys.end());
  group_pair_keys.erase(
      std::unique(group_pair_keys.begin(), group_pair_keys.end()),
      group_pair_keys.end());

  // Each candidate group pair builds and scores independently; results
  // come back in the sorted key order, so the kept-subgraph list below is
  // identical to the serial path for any thread count.
  std::vector<GroupPairSubgraph> built = ParallelMap<GroupPairSubgraph>(
      group_pair_keys.size(), "subgraph.build_chunk", [&](size_t i) {
        const uint64_t key = group_pair_keys[i];
        const GroupId go = static_cast<GroupId>(key >> 32);
        const GroupId gn = static_cast<GroupId>(key & 0xFFFFFFFFu);
        return BuildGroupPairSubgraph(go, gn, old_graphs[go], new_graphs[gn],
                                      clustering, prematcher, config,
                                      old_dataset, new_dataset, delta);
      });
  std::vector<GroupPairSubgraph> subgraphs;
  for (GroupPairSubgraph& subgraph : built) {
    if (!subgraph.empty()) {
      TGLINK_HISTOGRAM_SIZE("subgraph.vertices", subgraph.vertices.size());
      subgraphs.push_back(std::move(subgraph));
    }
  }
  TGLINK_COUNTER_ADD("subgraph.candidate_group_pairs", group_pair_keys.size());
  TGLINK_COUNTER_ADD("subgraph.built", subgraphs.size());
  TGLINK_COUNTER_ADD("subgraph.pruned_empty",
                     group_pair_keys.size() - subgraphs.size());
  return subgraphs;
}

}  // namespace tglink
