#include "tglink/linkage/explain.h"

#include <sstream>

namespace tglink {

LinkExplanation ExplainLink(const LinkageResult& result,
                            const CensusDataset& old_dataset,
                            const CensusDataset& new_dataset,
                            const LinkageConfig& config, RecordId old_id) {
  LinkExplanation explanation;
  explanation.old_id = old_id;
  explanation.old_household =
      old_dataset.household(old_dataset.record(old_id).group).external_id;

  const RecordId new_id = result.record_mapping.NewFor(old_id);
  if (new_id == kInvalidRecord) return explanation;

  explanation.linked = true;
  explanation.new_id = new_id;
  explanation.new_household =
      new_dataset.household(new_dataset.record(new_id).group).external_id;
  explanation.households_linked = result.group_mapping.Contains(
      old_dataset.record(old_id).group, new_dataset.record(new_id).group);

  // Find the link's position to read its provenance.
  const auto& links = result.record_mapping.links();
  for (size_t i = 0; i < links.size(); ++i) {
    if (links[i].first == old_id) {
      if (i < result.provenance.size()) {
        explanation.phase = result.provenance[i].phase;
        explanation.phase_delta = result.provenance[i].delta;
      }
      break;
    }
  }

  SimilarityFunction sim_func = config.sim_func;
  sim_func.set_year_gap(new_dataset.year() - old_dataset.year());
  explanation.attribute_similarity = sim_func.AggregateSimilarity(
      old_dataset.record(old_id), new_dataset.record(new_id));
  explanation.attribute_values =
      sim_func.Compare(old_dataset.record(old_id), new_dataset.record(new_id));
  return explanation;
}

std::string LinkExplanation::ToString(const CensusDataset& old_dataset,
                                      const CensusDataset& new_dataset,
                                      const LinkageConfig& config) const {
  std::ostringstream os;
  const PersonRecord& old_rec = old_dataset.record(old_id);
  os << old_rec.external_id << " (" << old_rec.DisplayName() << ", "
     << old_rec.age << ", " << RoleName(old_rec.role) << " of "
     << old_household << ")";
  if (!linked) {
    os << " -> UNLINKED (no candidate reached the thresholds; the person "
          "may have died, emigrated, or be too corrupted to match)";
    return os.str();
  }
  const PersonRecord& new_rec = new_dataset.record(new_id);
  os << " -> " << new_rec.external_id << " (" << new_rec.DisplayName() << ", "
     << new_rec.age << ", " << RoleName(new_rec.role) << " of "
     << new_household << ")\n";
  os << "  phase: " << LinkPhaseName(phase) << " at threshold "
     << phase_delta << "\n";
  os << "  attribute similarity (" << config.sim_func.ToString()
     << "): " << attribute_similarity << "\n";
  const auto& specs = config.sim_func.specs();
  os << "  per attribute:";
  for (size_t i = 0; i < specs.size() && i < attribute_values.size(); ++i) {
    os << " " << FieldName(specs[i].field) << "=";
    if (attribute_values[i] < 0) {
      os << "n/a";
    } else {
      os << attribute_values[i];
    }
  }
  os << "\n  households " << (households_linked ? "ARE" : "are NOT")
     << " linked in the group mapping";
  return os.str();
}

}  // namespace tglink
