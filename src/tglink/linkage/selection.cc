#include "tglink/linkage/selection.h"

#include <algorithm>
#include <cassert>

namespace tglink {

SelectionResult SelectGroupLinks(std::vector<GroupPairSubgraph> subgraphs,
                                 GroupMapping* group_mapping,
                                 RecordMapping* record_mapping,
                                 std::vector<bool>* active_old,
                                 std::vector<bool>* active_new) {
  // Descending g_sim is the priority-queue order of Algorithm 2; a total
  // order on ties keeps runs reproducible.
  std::sort(subgraphs.begin(), subgraphs.end(),
            [](const GroupPairSubgraph& a, const GroupPairSubgraph& b) {
              if (a.g_sim != b.g_sim) return a.g_sim > b.g_sim;
              if (a.old_group != b.old_group) return a.old_group < b.old_group;
              return a.new_group < b.new_group;
            });

  SelectionResult result;
  // `linked` of Algorithm 2: records claimed by an accepted subgraph during
  // this selection round. Because each record belongs to exactly one
  // household, global per-record flags are equivalent to the per-group
  // lookup sets in the paper's formulation.
  std::vector<bool> linked_old(active_old->size(), false);
  std::vector<bool> linked_new(active_new->size(), false);

  for (const GroupPairSubgraph& subgraph : subgraphs) {
    bool disjoint = true;
    for (const SubgraphVertex& v : subgraph.vertices) {
      if (linked_old[v.old_id] || linked_new[v.new_id]) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;

    ++result.accepted_subgraphs;
    if (group_mapping->Add(subgraph.old_group, subgraph.new_group)) {
      ++result.new_group_links;
    }
    for (const SubgraphVertex& v : subgraph.vertices) {
      linked_old[v.old_id] = true;
      linked_new[v.new_id] = true;
      const Status st = record_mapping->Add(v.old_id, v.new_id);
      assert(st.ok() && "selection produced a non-1:1 record link");
      (void)st;
      (*active_old)[v.old_id] = false;
      (*active_new)[v.new_id] = false;
      ++result.new_record_links;
    }
  }
  return result;
}

}  // namespace tglink
