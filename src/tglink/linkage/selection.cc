#include "tglink/linkage/selection.h"

#include <algorithm>

#include "tglink/obs/memprof.h"
#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"
#include "tglink/util/logging.h"

namespace tglink {

SelectionResult SelectGroupLinks(std::vector<GroupPairSubgraph> subgraphs,
                                 GroupMapping* group_mapping,
                                 RecordMapping* record_mapping,
                                 std::vector<bool>* active_old,
                                 std::vector<bool>* active_new) {
  TGLINK_TRACE_SPAN("selection.greedy");
  TGLINK_MEM_STAGE("selection.greedy");
  // Descending g_sim is the priority-queue order of Algorithm 2; a total
  // order on ties keeps runs reproducible.
  std::sort(subgraphs.begin(), subgraphs.end(),
            [](const GroupPairSubgraph& a, const GroupPairSubgraph& b) {
              if (a.g_sim != b.g_sim) return a.g_sim > b.g_sim;
              if (a.old_group != b.old_group) return a.old_group < b.old_group;
              return a.new_group < b.new_group;
            });

  SelectionResult result;
  // `linked` of Algorithm 2: records claimed by an accepted subgraph during
  // this selection round. Because each record belongs to exactly one
  // household, global per-record flags are equivalent to the per-group
  // lookup sets in the paper's formulation.
  std::vector<bool> linked_old(active_old->size(), false);
  std::vector<bool> linked_new(active_new->size(), false);

  for (const GroupPairSubgraph& subgraph : subgraphs) {
    // Scores are convex combinations of attribute similarities (Eq. 4/5),
    // so a value outside [0,1] means an upstream similarity bug.
    TGLINK_DCHECK(subgraph.g_sim >= 0.0 && subgraph.g_sim <= 1.0)
        << "g_sim out of range: " << subgraph.g_sim;

    bool disjoint = true;
    for (const SubgraphVertex& v : subgraph.vertices) {
      if (linked_old[v.old_id] || linked_new[v.new_id]) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;

    ++result.accepted_subgraphs;
    if (group_mapping->Add(subgraph.old_group, subgraph.new_group)) {
      ++result.new_group_links;
    }
    for (const SubgraphVertex& v : subgraph.vertices) {
      // Pre-matching must only offer still-active records; a stale vertex
      // here would break the 1:1 guarantee silently.
      TGLINK_DCHECK((*active_old)[v.old_id] && (*active_new)[v.new_id])
          << "subgraph vertex (" << v.old_id << "," << v.new_id
          << ") references an inactive record";
      linked_old[v.old_id] = true;
      linked_new[v.new_id] = true;
      TGLINK_CHECK_OK(record_mapping->Add(v.old_id, v.new_id));
      (*active_old)[v.old_id] = false;
      (*active_new)[v.new_id] = false;
      ++result.new_record_links;
    }
  }
  TGLINK_COUNTER_ADD("selection.accepted_subgraphs",
                     result.accepted_subgraphs);
  TGLINK_COUNTER_ADD("selection.rejected_overlap",
                     subgraphs.size() - result.accepted_subgraphs);
  TGLINK_COUNTER_ADD("selection.record_links", result.new_record_links);
  return result;
}

}  // namespace tglink
