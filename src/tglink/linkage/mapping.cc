#include "tglink/linkage/mapping.h"

#include <algorithm>

namespace tglink {

RecordMapping::RecordMapping(size_t num_old, size_t num_new)
    : old_to_new_(num_old, kInvalidRecord),
      new_to_old_(num_new, kInvalidRecord) {}

Status RecordMapping::Add(RecordId old_id, RecordId new_id) {
  if (old_id >= old_to_new_.size() || new_id >= new_to_old_.size()) {
    return Status::InvalidArgument("record link endpoint out of range");
  }
  if (old_to_new_[old_id] != kInvalidRecord) {
    return Status::InvalidArgument("old record already linked");
  }
  if (new_to_old_[new_id] != kInvalidRecord) {
    return Status::InvalidArgument("new record already linked");
  }
  old_to_new_[old_id] = new_id;
  new_to_old_[new_id] = old_id;
  links_.emplace_back(old_id, new_id);
  // Injectivity: both directions were unlinked above, so each accepted link
  // grows the link list by exactly one in lockstep with both index maps.
  TGLINK_DCHECK(old_to_new_[old_id] == new_id &&
                new_to_old_[new_id] == old_id);
  return Status::OK();
}

bool GroupMapping::Add(GroupId old_id, GroupId new_id) {
  if (!present_.insert(Key(old_id, new_id)).second) return false;
  links_.emplace_back(old_id, new_id);
  TGLINK_DCHECK(links_.size() == present_.size())
      << "group link list diverged from membership set";
  return true;
}

bool GroupMapping::Contains(GroupId old_id, GroupId new_id) const {
  return present_.count(Key(old_id, new_id)) > 0;
}

std::vector<GroupLink> GroupMapping::SortedLinks() const {
  std::vector<GroupLink> sorted = links_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::vector<GroupId> GroupMapping::NewPartners(GroupId old_id) const {
  std::vector<GroupId> out;
  for (const GroupLink& link : links_) {
    if (link.first == old_id) out.push_back(link.second);
  }
  return out;
}

std::vector<GroupId> GroupMapping::OldPartners(GroupId new_id) const {
  std::vector<GroupId> out;
  for (const GroupLink& link : links_) {
    if (link.second == new_id) out.push_back(link.first);
  }
  return out;
}

}  // namespace tglink
