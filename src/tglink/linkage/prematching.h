// Pre-matching (Section 3.2): scores candidate record pairs with the
// composite similarity function, then clusters records whose similarity
// exceeds the current threshold δ via transitive closure, assigning the
// cluster labels that drive subgraph matching.
//
// Because attribute similarities do not change across the iterations of
// Algorithm 1 (only δ and the set of still-unmatched records do), PreMatcher
// scores each candidate pair exactly once — at the lowest threshold the
// schedule will ever use — and each iteration's clustering is a cheap filter
// over the cached scores. Scoring fans out over the shared thread pool
// (util/parallel.h) with an ordered merge, and individual string-measure
// results are memoized in a SimCache, so the output is bit-identical to a
// serial, uncached run. The kept pairs are then sorted by descending
// similarity once, so each δ round touches only the prefix of pairs at or
// above its threshold instead of rescanning everything.

#ifndef TGLINK_LINKAGE_PREMATCHING_H_
#define TGLINK_LINKAGE_PREMATCHING_H_

#include <unordered_map>
#include <cstddef>
#include <vector>

#include "tglink/blocking/blocking.h"
#include "tglink/census/dataset.h"
#include "tglink/similarity/composite.h"
#include "tglink/similarity/sim_cache.h"

namespace tglink {

struct ScoredPair {
  RecordId old_id;
  RecordId new_id;
  double sim;
};

/// The result of one clustering round: per-record cluster labels over both
/// snapshots. Records marked inactive (already matched in an earlier
/// iteration) carry kNoLabel and are absent from the member lists.
struct Clustering {
  static constexpr uint32_t kNoLabel = UINT32_MAX;

  std::vector<uint32_t> old_labels;  // per old record
  std::vector<uint32_t> new_labels;  // per new record
  size_t num_labels = 0;

  /// Active records per label, per side. Indexed by label.
  std::vector<std::vector<RecordId>> label_old_members;
  std::vector<std::vector<RecordId>> label_new_members;

  /// |label(r)| of Eq. 7: number of active records (both snapshots) that
  /// carry this label.
  size_t LabelSize(uint32_t label) const {
    return label_old_members[label].size() + label_new_members[label].size();
  }
};

class PreMatcher {
 public:
  /// Scores all blocking candidates once (in parallel over the shared
  /// pool); pairs below `min_threshold` (normally δ_low) are discarded.
  /// The datasets and similarity function must outlive the PreMatcher.
  PreMatcher(const CensusDataset& old_dataset, const CensusDataset& new_dataset,
             const SimilarityFunction& sim_func, const BlockingConfig& blocking,
             double min_threshold);

  /// Cached pairs with sim >= min_threshold, sorted by descending sim
  /// (ties by ascending (old, new)) so that the pairs admissible at any δ
  /// form a prefix — see PrefixAtDelta.
  const std::vector<ScoredPair>& scored_pairs() const { return scored_pairs_; }

  /// Number of leading scored_pairs() entries with sim >= delta (within
  /// the usual 1e-12 tolerance). O(log n).
  [[nodiscard]] size_t PrefixAtDelta(double delta) const;

  /// Pairs admissible at `delta` between still-active records — the
  /// per-iteration "scored pairs" diagnostic. Walks only the δ prefix.
  [[nodiscard]] size_t CountPairsAtDelta(
      double delta, const std::vector<bool>& active_old,
      const std::vector<bool>& active_new) const;

  /// agg_sim for any record pair: cached when above min_threshold, computed
  /// on demand otherwise (needed for transitively-clustered pairs). Misses
  /// route through the similarity memo layer and are counted as
  /// "simcache.prematch_miss". Safe to call concurrently.
  double PairSimilarity(RecordId old_id, RecordId new_id) const;

  /// Clusters active records using pairs with sim >= delta (the
  /// `prematching` step of one Algorithm 1 iteration). `active_*[r]` is
  /// false for records already matched.
  Clustering Cluster(double delta, const std::vector<bool>& active_old,
                     const std::vector<bool>& active_new) const;

 private:
  static uint64_t Key(RecordId o, RecordId n) {
    return (static_cast<uint64_t>(o) << 32) | n;
  }

  const CensusDataset& old_dataset_;
  const CensusDataset& new_dataset_;
  SimCache sim_cache_;
  std::vector<ScoredPair> scored_pairs_;  // descending sim
  std::unordered_map<uint64_t, double> pair_sim_;
};

}  // namespace tglink

#endif  // TGLINK_LINKAGE_PREMATCHING_H_
