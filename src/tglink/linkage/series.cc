#include "tglink/linkage/series.h"

#include <cassert>

namespace tglink {

EvolutionGraph SeriesLinkageResult::BuildEvolutionGraph(
    const std::vector<CensusDataset>& datasets) const {
  return EvolutionGraph(datasets, record_mappings, group_mappings);
}

SeriesLinkageResult LinkCensusSeries(
    const std::vector<CensusDataset>& datasets, const LinkageConfig& config) {
  assert(datasets.size() >= 2);
  SeriesLinkageResult series;
  series.pair_results.reserve(datasets.size() - 1);
  for (size_t i = 0; i + 1 < datasets.size(); ++i) {
    assert(datasets[i].year() < datasets[i + 1].year());
    series.pair_results.push_back(
        LinkCensusPair(datasets[i], datasets[i + 1], config));
    series.record_mappings.push_back(
        series.pair_results.back().record_mapping);
    series.group_mappings.push_back(series.pair_results.back().group_mapping);
  }
  return series;
}

}  // namespace tglink
