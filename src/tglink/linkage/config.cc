#include "tglink/linkage/config.h"

namespace tglink {
namespace configs {

SimilarityFunction Omega1(double delta) {
  return SimilarityFunction(
      {
          {Field::kFirstName, Measure::kQGramDice, 0.2},
          {Field::kSex, Measure::kExact, 0.2},
          {Field::kSurname, Measure::kQGramDice, 0.2},
          {Field::kAddress, Measure::kQGramDice, 0.2},
          {Field::kOccupation, Measure::kQGramDice, 0.2},
      },
      delta);
}

SimilarityFunction Omega2(double delta) {
  return SimilarityFunction(
      {
          {Field::kFirstName, Measure::kQGramDice, 0.4},
          {Field::kSex, Measure::kExact, 0.2},
          {Field::kSurname, Measure::kQGramDice, 0.2},
          {Field::kAddress, Measure::kQGramDice, 0.1},
          {Field::kOccupation, Measure::kQGramDice, 0.1},
      },
      delta);
}

SimilarityFunction ResidualSimFunc(double delta) {
  // ω2 attributes plus a temporal age component. The age term substitutes
  // for the structural evidence that subgraph matching would otherwise
  // contribute, keeping residual matching precise.
  return SimilarityFunction(
      {
          {Field::kFirstName, Measure::kQGramDice, 0.35},
          {Field::kSex, Measure::kExact, 0.15},
          {Field::kSurname, Measure::kQGramDice, 0.2},
          {Field::kAddress, Measure::kQGramDice, 0.05},
          {Field::kOccupation, Measure::kQGramDice, 0.05},
          {Field::kAge, Measure::kExact, 0.2},  // measure ignored for kAge
      },
      delta);
}

LinkageConfig DefaultConfig() {
  LinkageConfig config;
  config.sim_func = Omega2();
  config.sim_func_rem = ResidualSimFunc();
  return config;
}

}  // namespace configs
}  // namespace tglink
