// Graphviz rendering of one candidate group pair and its common subgraph —
// a faithful rendering of the paper's Fig. 4 for any pair, used to inspect
// why a household match was (or wasn't) accepted.

#ifndef TGLINK_LINKAGE_SUBGRAPH_EXPORT_H_
#define TGLINK_LINKAGE_SUBGRAPH_EXPORT_H_

#include <string>

#include "tglink/census/dataset.h"
#include "tglink/graph/household_graph.h"
#include "tglink/linkage/subgraph.h"

namespace tglink {

/// Renders the two enriched household graphs side by side: person vertices
/// labeled with name/age/role, relationship edges labeled with unified type
/// and age difference. Matched vertex pairs (the common subgraph) are
/// connected by bold dashed cross edges; matching relationship edges are
/// drawn solid, unmatched ones gray. The subgraph's scores are printed in
/// the graph label.
std::string GroupPairSubgraphToDot(const GroupPairSubgraph& subgraph,
                                   const CensusDataset& old_dataset,
                                   const CensusDataset& new_dataset,
                                   const HouseholdGraph& old_graph,
                                   const HouseholdGraph& new_graph);

}  // namespace tglink

#endif  // TGLINK_LINKAGE_SUBGRAPH_EXPORT_H_
