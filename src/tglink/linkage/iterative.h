// The core contribution: iterative temporal record and group linkage
// (Algorithm 1 of the paper). Each round pre-matches the still-unmatched
// records at the current threshold δ, builds and scores common household
// subgraphs, greedily selects group links, and extracts the record links
// they imply; δ is then relaxed by Δ until δ_low is reached or no group
// links are found. Remaining records go through the residual matcher.

#ifndef TGLINK_LINKAGE_ITERATIVE_H_
#define TGLINK_LINKAGE_ITERATIVE_H_

#include <string>
#include <cstddef>
#include <vector>

#include "tglink/census/dataset.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/mapping.h"

namespace tglink {

/// Per-iteration diagnostics, one per δ round.
struct IterationStats {
  double delta = 0.0;
  size_t scored_pairs = 0;          // pre-match pairs accepted at this δ
  size_t candidate_subgraphs = 0;   // non-empty common subgraphs built
  size_t accepted_subgraphs = 0;    // subgraphs accepted by Algorithm 2
  size_t new_group_links = 0;
  size_t new_record_links = 0;
};

/// Which phase of the pipeline produced a record link.
enum class LinkPhase : uint8_t {
  kSubgraph,         // accepted as part of a common-subgraph group match
  kContextResidual,  // placed within an already-linked household pair
  kGlobalResidual,   // attribute-only residual matching (line 17 of Alg. 1)
};

const char* LinkPhaseName(LinkPhase phase);

/// Provenance of one record link, parallel to
/// LinkageResult::record_mapping.links().
struct LinkProvenance {
  LinkPhase phase = LinkPhase::kSubgraph;
  /// The iteration threshold that produced the link (subgraph phase), or
  /// the matcher threshold (residual phases).
  double delta = 0.0;
};

struct LinkageResult {
  RecordMapping record_mapping;
  GroupMapping group_mapping;
  std::vector<IterationStats> iterations;
  /// Per-link provenance, index-parallel to record_mapping.links().
  std::vector<LinkProvenance> provenance;
  size_t context_record_links = 0;  // household-context residual (extension)
  size_t residual_record_links = 0;

  [[nodiscard]] std::string Summary() const;
};

/// Links two successive census snapshots. `config.sim_func.year_gap` is set
/// from the dataset years automatically. Deterministic for fixed inputs.
[[nodiscard]] LinkageResult LinkCensusPair(const CensusDataset& old_dataset,
                                           const CensusDataset& new_dataset,
                                           const LinkageConfig& config);

}  // namespace tglink

#endif  // TGLINK_LINKAGE_ITERATIVE_H_
