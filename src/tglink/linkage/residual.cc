#include "tglink/linkage/residual.h"

#include <algorithm>
#include <cassert>

#include "tglink/obs/memprof.h"
#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"
#include "tglink/similarity/sim_cache.h"
#include "tglink/util/parallel.h"

namespace tglink {

std::vector<ScoredPair> GreedyOneToOneMatch(
    const CensusDataset& old_dataset, const CensusDataset& new_dataset,
    const SimilarityFunction& sim_func, const BlockingConfig& blocking,
    const std::vector<bool>& active_old, const std::vector<bool>& active_new) {
  // Filter to active candidates serially, fan the scoring out over the
  // shared pool, then keep threshold survivors in candidate order — the
  // same list the serial loop builds, for any thread count. Scoring goes
  // through the batched kernel substrate with the accept threshold as the
  // pruning cutoff; kPruned (-1) never survives the keep filter and
  // pruning is sound, so the kept set equals the exact one.
  std::vector<CandidatePair> candidates;
  for (const CandidatePair& cand :
       GenerateCandidatePairs(old_dataset, new_dataset, blocking)) {
    if (!active_old[cand.old_id] || !active_new[cand.new_id]) continue;
    candidates.push_back(cand);
  }
  const SimCache sim_cache(sim_func, old_dataset, new_dataset);
  const std::vector<double> sims = ParallelMap<double>(
      candidates.size(), "residual.score_chunk", [&](size_t i) {
        return sim_cache.AggregateWithThreshold(candidates[i].old_id,
                                                candidates[i].new_id,
                                                sim_func.threshold());
      });
  std::vector<ScoredPair> scored;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (sims[i] >= sim_func.threshold()) {
      scored.push_back({candidates[i].old_id, candidates[i].new_id, sims[i]});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              if (a.sim != b.sim) return a.sim > b.sim;
              if (a.old_id != b.old_id) return a.old_id < b.old_id;
              return a.new_id < b.new_id;
            });
  std::vector<bool> used_old(old_dataset.num_records(), false);
  std::vector<bool> used_new(new_dataset.num_records(), false);
  std::vector<ScoredPair> accepted;
  for (const ScoredPair& pair : scored) {
    if (used_old[pair.old_id] || used_new[pair.new_id]) continue;
    used_old[pair.old_id] = true;
    used_new[pair.new_id] = true;
    accepted.push_back(pair);
  }
  return accepted;
}

size_t MatchWithinLinkedHouseholds(const CensusDataset& old_dataset,
                                   const CensusDataset& new_dataset,
                                   const SimilarityFunction& sim_func,
                                   double threshold,
                                   const GroupMapping& group_mapping,
                                   RecordMapping* record_mapping,
                                   std::vector<bool>* active_old,
                                   std::vector<bool>* active_new) {
  TGLINK_TRACE_SPAN("residual.context");
  TGLINK_MEM_STAGE("residual.context");
  std::vector<ScoredPair> scored;
  for (const GroupLink& link : group_mapping.SortedLinks()) {
    const Household& old_hh = old_dataset.household(link.first);
    const Household& new_hh = new_dataset.household(link.second);
    for (RecordId o : old_hh.members) {
      if (!(*active_old)[o]) continue;
      for (RecordId n : new_hh.members) {
        if (!(*active_new)[n]) continue;
        const double sim = sim_func.AggregateSimilarity(
            old_dataset.record(o), new_dataset.record(n));
        if (sim >= threshold) scored.push_back({o, n, sim});
      }
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              if (a.sim != b.sim) return a.sim > b.sim;
              if (a.old_id != b.old_id) return a.old_id < b.old_id;
              return a.new_id < b.new_id;
            });
  size_t added = 0;
  for (const ScoredPair& pair : scored) {
    if (!(*active_old)[pair.old_id] || !(*active_new)[pair.new_id]) continue;
    const Status st = record_mapping->Add(pair.old_id, pair.new_id);
    assert(st.ok());
    (void)st;
    (*active_old)[pair.old_id] = false;
    (*active_new)[pair.new_id] = false;
    ++added;
  }
  TGLINK_COUNTER_ADD("residual.context_links", added);
  return added;
}

size_t MatchResidualRecords(const CensusDataset& old_dataset,
                            const CensusDataset& new_dataset,
                            const SimilarityFunction& sim_func,
                            const BlockingConfig& blocking,
                            RecordMapping* record_mapping,
                            GroupMapping* group_mapping,
                            std::vector<bool>* active_old,
                            std::vector<bool>* active_new) {
  TGLINK_TRACE_SPAN("residual.global");
  TGLINK_MEM_STAGE("residual.global");
  const std::vector<ScoredPair> links = GreedyOneToOneMatch(
      old_dataset, new_dataset, sim_func, blocking, *active_old, *active_new);
  for (const ScoredPair& link : links) {
    const Status st = record_mapping->Add(link.old_id, link.new_id);
    assert(st.ok());
    (void)st;
    (*active_old)[link.old_id] = false;
    (*active_new)[link.new_id] = false;
    group_mapping->Add(old_dataset.record(link.old_id).group,
                       new_dataset.record(link.new_id).group);
  }
  TGLINK_COUNTER_ADD("residual.global_links", links.size());
  return links.size();
}

}  // namespace tglink
