#include "tglink/linkage/prematching.h"

#include <cassert>

#include "tglink/graph/union_find.h"
#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"

namespace tglink {

PreMatcher::PreMatcher(const CensusDataset& old_dataset,
                       const CensusDataset& new_dataset,
                       const SimilarityFunction& sim_func,
                       const BlockingConfig& blocking, double min_threshold)
    : old_dataset_(old_dataset),
      new_dataset_(new_dataset),
      sim_func_(sim_func) {
  TGLINK_TRACE_SPAN("prematch.score_candidates");
  const std::vector<CandidatePair> candidates =
      GenerateCandidatePairs(old_dataset, new_dataset, blocking);
  scored_pairs_.reserve(candidates.size() / 8);
  for (const CandidatePair& cand : candidates) {
    const double sim = sim_func.AggregateSimilarity(
        old_dataset.record(cand.old_id), new_dataset.record(cand.new_id));
    if (sim >= min_threshold) {
      TGLINK_HISTOGRAM_SCORE("prematch.kept_pair_sim", sim);
      scored_pairs_.push_back({cand.old_id, cand.new_id, sim});
      pair_sim_.emplace(Key(cand.old_id, cand.new_id), sim);
    }
  }
  TGLINK_COUNTER_ADD("prematch.pairs_scored", candidates.size());
  TGLINK_COUNTER_ADD("prematch.pairs_kept", scored_pairs_.size());
}

double PreMatcher::PairSimilarity(RecordId old_id, RecordId new_id) const {
  auto it = pair_sim_.find(Key(old_id, new_id));
  if (it != pair_sim_.end()) return it->second;
  return sim_func_.AggregateSimilarity(old_dataset_.record(old_id),
                                       new_dataset_.record(new_id));
}

Clustering PreMatcher::Cluster(double delta,
                               const std::vector<bool>& active_old,
                               const std::vector<bool>& active_new) const {
  TGLINK_TRACE_SPAN("prematch.cluster", delta);
  const size_t n_old = old_dataset_.num_records();
  const size_t n_new = new_dataset_.num_records();
  assert(active_old.size() == n_old && active_new.size() == n_new);

  // Transitive closure over accepted pairs; node space is old records
  // followed by new records.
  UnionFind uf(n_old + n_new);
  for (const ScoredPair& pair : scored_pairs_) {
    if (pair.sim + 1e-12 < delta) continue;
    if (!active_old[pair.old_id] || !active_new[pair.new_id]) continue;
    uf.Union(pair.old_id, n_old + pair.new_id);
  }
  std::vector<uint32_t> labels = uf.ComponentLabels();

  Clustering clustering;
  clustering.old_labels.assign(n_old, Clustering::kNoLabel);
  clustering.new_labels.assign(n_new, Clustering::kNoLabel);
  clustering.num_labels = uf.num_components();
  clustering.label_old_members.resize(clustering.num_labels);
  clustering.label_new_members.resize(clustering.num_labels);
  for (size_t r = 0; r < n_old; ++r) {
    if (!active_old[r]) continue;
    const uint32_t label = labels[r];
    clustering.old_labels[r] = label;
    clustering.label_old_members[label].push_back(static_cast<RecordId>(r));
  }
  for (size_t r = 0; r < n_new; ++r) {
    if (!active_new[r]) continue;
    const uint32_t label = labels[n_old + r];
    clustering.new_labels[r] = label;
    clustering.label_new_members[label].push_back(static_cast<RecordId>(r));
  }
  return clustering;
}

}  // namespace tglink
