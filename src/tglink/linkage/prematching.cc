#include "tglink/linkage/prematching.h"

#include <algorithm>
#include <cassert>

#include "tglink/graph/union_find.h"
#include "tglink/obs/memprof.h"
#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"
#include "tglink/util/parallel.h"

namespace tglink {

PreMatcher::PreMatcher(const CensusDataset& old_dataset,
                       const CensusDataset& new_dataset,
                       const SimilarityFunction& sim_func,
                       const BlockingConfig& blocking, double min_threshold)
    : old_dataset_(old_dataset),
      new_dataset_(new_dataset),
      sim_cache_(sim_func, old_dataset, new_dataset) {
  TGLINK_TRACE_SPAN("prematch.score_candidates");
  TGLINK_MEM_STAGE("prematch.score_candidates");
  const std::vector<CandidatePair> candidates =
      GenerateCandidatePairs(old_dataset, new_dataset, blocking);
  // Score chunks in parallel; the per-candidate results come back in
  // candidate order, so the serial keep/merge below is bit-identical to
  // the single-threaded path. Passing min_threshold down lets the batched
  // kernels reject provably-losing pairs in O(1); the SimCache::kPruned
  // sentinel (-1) is below every admissible threshold, so the keep filter
  // needs no extra branch and the kept set equals the exact one.
  const std::vector<double> sims = ParallelMap<double>(
      candidates.size(), "prematch.score_chunk",
      [this, &candidates, min_threshold](size_t i) {
        const CandidatePair& cand = candidates[i];
        return sim_cache_.AggregateWithThreshold(cand.old_id, cand.new_id,
                                                 min_threshold);
      });
  scored_pairs_.reserve(candidates.size() / 8);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double sim = sims[i];
    if (sim >= min_threshold) {
      TGLINK_HISTOGRAM_SCORE("prematch.kept_pair_sim", sim);
      scored_pairs_.push_back({candidates[i].old_id, candidates[i].new_id, sim});
      pair_sim_.emplace(Key(candidates[i].old_id, candidates[i].new_id), sim);
    }
  }
  // Descending-sim order makes the pairs admissible at any δ a prefix, so
  // the per-iteration Cluster/CountPairsAtDelta never rescan pairs the
  // current threshold already excludes. Ties break on (old, new) for
  // deterministic union-find label assignment.
  std::sort(scored_pairs_.begin(), scored_pairs_.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              if (a.sim != b.sim) return a.sim > b.sim;
              if (a.old_id != b.old_id) return a.old_id < b.old_id;
              return a.new_id < b.new_id;
            });
  TGLINK_COUNTER_ADD("prematch.pairs_scored", candidates.size());
  TGLINK_COUNTER_ADD("prematch.pairs_kept", scored_pairs_.size());
}

size_t PreMatcher::PrefixAtDelta(double delta) const {
  const auto it = std::partition_point(
      scored_pairs_.begin(), scored_pairs_.end(),
      [delta](const ScoredPair& p) { return p.sim + 1e-12 >= delta; });
  return static_cast<size_t>(it - scored_pairs_.begin());
}

size_t PreMatcher::CountPairsAtDelta(double delta,
                                     const std::vector<bool>& active_old,
                                     const std::vector<bool>& active_new)
    const {
  const size_t prefix = PrefixAtDelta(delta);
  size_t count = 0;
  for (size_t i = 0; i < prefix; ++i) {
    const ScoredPair& p = scored_pairs_[i];
    if (active_old[p.old_id] && active_new[p.new_id]) ++count;
  }
  return count;
}

double PreMatcher::PairSimilarity(RecordId old_id, RecordId new_id) const {
  auto it = pair_sim_.find(Key(old_id, new_id));
  if (it != pair_sim_.end()) return it->second;
  TGLINK_COUNTER_INC("simcache.prematch_miss");
  return sim_cache_.Aggregate(old_id, new_id);
}

Clustering PreMatcher::Cluster(double delta,
                               const std::vector<bool>& active_old,
                               const std::vector<bool>& active_new) const {
  TGLINK_TRACE_SPAN("prematch.cluster", delta);
  const size_t n_old = old_dataset_.num_records();
  const size_t n_new = new_dataset_.num_records();
  assert(active_old.size() == n_old && active_new.size() == n_new);

  // Transitive closure over accepted pairs; node space is old records
  // followed by new records. Only the δ prefix of the descending-sim
  // order can contribute unions.
  const size_t prefix = PrefixAtDelta(delta);
  UnionFind uf(n_old + n_new);
  for (size_t i = 0; i < prefix; ++i) {
    const ScoredPair& pair = scored_pairs_[i];
    if (!active_old[pair.old_id] || !active_new[pair.new_id]) continue;
    uf.Union(pair.old_id, n_old + pair.new_id);
  }
  std::vector<uint32_t> labels = uf.ComponentLabels();

  Clustering clustering;
  clustering.old_labels.assign(n_old, Clustering::kNoLabel);
  clustering.new_labels.assign(n_new, Clustering::kNoLabel);
  clustering.num_labels = uf.num_components();
  clustering.label_old_members.resize(clustering.num_labels);
  clustering.label_new_members.resize(clustering.num_labels);
  for (size_t r = 0; r < n_old; ++r) {
    if (!active_old[r]) continue;
    const uint32_t label = labels[r];
    clustering.old_labels[r] = label;
    clustering.label_old_members[label].push_back(static_cast<RecordId>(r));
  }
  for (size_t r = 0; r < n_new; ++r) {
    if (!active_new[r]) continue;
    const uint32_t label = labels[n_old + r];
    clustering.new_labels[r] = label;
    clustering.label_new_members[label].push_back(static_cast<RecordId>(r));
  }
  return clustering;
}

}  // namespace tglink
