// Configuration of the iterative temporal group linkage algorithm
// (inputs of Algorithm 1) plus the paper's published presets.

#ifndef TGLINK_LINKAGE_CONFIG_H_
#define TGLINK_LINKAGE_CONFIG_H_

#include "tglink/blocking/blocking.h"
#include "tglink/similarity/composite.h"

namespace tglink {

/// Weights of the aggregated group similarity (Eq. 4):
///   g_sim = alpha * avg_sim + beta * e_sim + (1 - alpha - beta) * unique.
struct GroupScoreWeights {
  double alpha = 0.2;  // record similarity weight
  double beta = 0.7;   // edge similarity weight — the paper's best config

  double uniqueness_weight() const { return 1.0 - alpha - beta; }
};

struct LinkageConfig {
  /// Sim_func: initial record matching (pre-matching). Its threshold field
  /// is ignored — the iterative schedule below controls δ.
  SimilarityFunction sim_func;

  /// δ_high / δ_low / Δ of Algorithm 1. Defaults follow Section 5.2.1.
  double delta_high = 0.70;
  double delta_low = 0.50;
  double delta_step = 0.05;

  /// Sim_func_rem: matcher for records left over after subgraph-based
  /// linkage (line 17 of Algorithm 1). Uses its own threshold.
  SimilarityFunction sim_func_rem;

  /// Extension beyond the paper: before the global residual matching, try
  /// to place leftover records *within already-linked household pairs* at a
  /// relaxed threshold. Once a household's other members are matched and
  /// removed, a leftover corrupted member has no relationship context left,
  /// so Algorithm 1's subgraph rounds can never recover it — but the linked
  /// households themselves are strong evidence. Disabled -> strictly
  /// Algorithm 1; the ablation bench quantifies the recall this buys.
  bool context_residual = true;
  double context_residual_threshold = 0.55;

  /// Weights for selecting group links (Eq. 4).
  GroupScoreWeights group_weights;

  /// Maximum deviation (years) between the old and the new age difference
  /// for an edge to be part of a common subgraph (Section 3.3).
  int edge_age_tolerance = 2;

  /// Absolute temporal plausibility gate on subgraph vertices: a vertex
  /// pair whose recorded ages deviate from the expected ageing by more than
  /// this many years is never considered. Footnote 2 of the paper states
  /// that implausible age differences "are not accepted" by its subgraph
  /// matching; this gate realizes that claim at the vertex level (edges
  /// additionally constrain *relative* age differences). Tolerance is wider
  /// than the footnote's 3 years because both records carry independent
  /// misstatement. 0 disables the gate (used by the ablation bench and by
  /// tests reproducing Fig. 4 literally).
  int vertex_age_tolerance = 6;

  /// Candidate-pair generation for pre-matching.
  BlockingConfig blocking = BlockingConfig::MakeDefault();

  /// Ablation switch: when false, households are compared on the raw
  /// head-relative role edges without enrichment (no implicit edges between
  /// non-head members, head-relative types kept). Default on, as the paper.
  bool enrich_groups = true;
};

namespace configs {

/// The paper's Table 2 weight vectors. `delta` initializes the Sim_func
/// threshold (overridden by the iterative schedule when used as sim_func).
SimilarityFunction Omega1(double delta = 0.7);
SimilarityFunction Omega2(double delta = 0.7);

/// Default full configuration: ω2 pre-matching, δ ∈ [0.5, 0.7] with Δ=0.05,
/// (α, β) = (0.2, 0.7), residual matcher ω2 + age at threshold 0.78 — the
/// paper's best setting throughout Section 5.
LinkageConfig DefaultConfig();

/// Residual matcher used by DefaultConfig: ω2 attributes extended with a
/// temporal age component, strict threshold.
SimilarityFunction ResidualSimFunc(double delta = 0.78);

}  // namespace configs
}  // namespace tglink

#endif  // TGLINK_LINKAGE_CONFIG_H_
