#include "tglink/linkage/subgraph_export.h"

#include <set>
#include <sstream>

namespace tglink {

namespace {
std::string PersonLabel(const PersonRecord& record) {
  std::ostringstream os;
  os << record.DisplayName() << "\\n";
  if (record.has_age()) os << record.age << ", ";
  os << RoleName(record.role);
  return os.str();
}

std::string EdgeLabel(const RelEdge& edge) {
  std::ostringstream os;
  os << RelTypeName(edge.type);
  if (edge.age_diff_known) os << "\\nΔ" << edge.age_diff;
  return os.str();
}
}  // namespace

std::string GroupPairSubgraphToDot(const GroupPairSubgraph& subgraph,
                                   const CensusDataset& old_dataset,
                                   const CensusDataset& new_dataset,
                                   const HouseholdGraph& old_graph,
                                   const HouseholdGraph& new_graph) {
  std::ostringstream os;
  os << "graph subgraph_match {\n";
  os << "  label=\"" << old_dataset.household(subgraph.old_group).external_id
     << " vs " << new_dataset.household(subgraph.new_group).external_id
     << "\\navg_sim=" << subgraph.avg_sim << " e_sim=" << subgraph.e_sim
     << " unique=" << subgraph.uniqueness << " g_sim=" << subgraph.g_sim
     << "\";\n";
  os << "  node [shape=ellipse, fontsize=10];\n";

  // Which relationship edges participate in the common subgraph?
  std::set<std::pair<RecordId, RecordId>> matched_old_edges, matched_new_edges;
  for (const SubgraphEdge& edge : subgraph.edges) {
    const SubgraphVertex& v1 = subgraph.vertices[edge.v1];
    const SubgraphVertex& v2 = subgraph.vertices[edge.v2];
    matched_old_edges.emplace(std::min(v1.old_id, v2.old_id),
                              std::max(v1.old_id, v2.old_id));
    matched_new_edges.emplace(std::min(v1.new_id, v2.new_id),
                              std::max(v1.new_id, v2.new_id));
  }

  auto emit_household = [&os](const char* cluster, const char* prefix,
                              const CensusDataset& dataset,
                              const HouseholdGraph& graph,
                              const std::set<std::pair<RecordId, RecordId>>&
                                  matched_edges) {
    os << "  subgraph cluster_" << cluster << " {\n    label=\""
       << dataset.household(graph.group()).external_id << "\";\n";
    for (RecordId member : graph.members()) {
      os << "    " << prefix << member << " [label=\""
         << PersonLabel(dataset.record(member)) << "\"];\n";
    }
    for (const RelEdge& edge : graph.edges()) {
      const bool matched = matched_edges.count({edge.a, edge.b}) > 0;
      os << "    " << prefix << edge.a << " -- " << prefix << edge.b
         << " [label=\"" << EdgeLabel(edge) << "\", fontsize=8, "
         << (matched ? "color=black, penwidth=2" : "color=gray70") << "];\n";
    }
    os << "  }\n";
  };
  emit_household("old", "o", old_dataset, old_graph, matched_old_edges);
  emit_household("new", "n", new_dataset, new_graph, matched_new_edges);

  // Cross edges: the matched vertex pairs.
  for (const SubgraphVertex& vertex : subgraph.vertices) {
    os << "  o" << vertex.old_id << " -- n" << vertex.new_id
       << " [style=dashed, penwidth=2, color=blue, label=\"" << vertex.sim
       << "\", fontsize=8];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace tglink
