// Link explanation: human-readable provenance for a linkage decision —
// which phase produced a link, at what threshold, with which attribute
// evidence, and between which households. A production linkage system has
// to answer "why did you link these two records?" for manual review.

#ifndef TGLINK_LINKAGE_EXPLAIN_H_
#define TGLINK_LINKAGE_EXPLAIN_H_

#include <string>

#include "tglink/census/dataset.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"

namespace tglink {

struct LinkExplanation {
  bool linked = false;
  RecordId old_id = kInvalidRecord;
  RecordId new_id = kInvalidRecord;
  LinkPhase phase = LinkPhase::kSubgraph;
  double phase_delta = 0.0;
  double attribute_similarity = 0.0;  // under config.sim_func
  /// Per-attribute similarity values, ordered as config.sim_func.specs().
  std::vector<double> attribute_values;
  std::string old_household;
  std::string new_household;
  bool households_linked = false;

  /// Multi-line human-readable rendering.
  std::string ToString(const CensusDataset& old_dataset,
                       const CensusDataset& new_dataset,
                       const LinkageConfig& config) const;
};

/// Explains the link (or non-link) of `old_id` in a finished result.
LinkExplanation ExplainLink(const LinkageResult& result,
                            const CensusDataset& old_dataset,
                            const CensusDataset& new_dataset,
                            const LinkageConfig& config, RecordId old_id);

}  // namespace tglink

#endif  // TGLINK_LINKAGE_EXPLAIN_H_
