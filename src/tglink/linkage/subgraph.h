// Subgraph matching (Section 3.3): for every pair of households that share
// at least one cluster label, construct the common subgraph of equally
// labeled record pairs whose relationships agree in unified type and age
// difference, and score it with the three criteria of Section 3.4.

#ifndef TGLINK_LINKAGE_SUBGRAPH_H_
#define TGLINK_LINKAGE_SUBGRAPH_H_

#include <vector>

#include "tglink/census/dataset.h"
#include "tglink/graph/household_graph.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/prematching.h"

namespace tglink {

/// A vertex of a common subgraph: a pair of equally labeled records.
struct SubgraphVertex {
  RecordId old_id;
  RecordId new_id;
  double sim;  // agg_sim(old, new) from pre-matching
  /// Temporal age plausibility (ordering aid for the within-pair 1:1
  /// assignment; 0.5 when either age is unknown). Not part of Eq. 5.
  double age_sim = 0.5;
};

/// An edge of a common subgraph connecting vertices `v1` and `v2` (indices
/// into GroupPairSubgraph::vertices); rp_sim is the relationship-property
/// similarity of the underlying old and new edges (age-difference agreement).
struct SubgraphEdge {
  uint32_t v1;
  uint32_t v2;
  double rp_sim;
};

/// The common subgraph of one candidate group pair, with its selection
/// scores (Equations 4-7).
struct GroupPairSubgraph {
  GroupId old_group = kInvalidGroup;
  GroupId new_group = kInvalidGroup;
  std::vector<SubgraphVertex> vertices;
  std::vector<SubgraphEdge> edges;

  double avg_sim = 0.0;     // Eq. 5
  double e_sim = 0.0;       // Eq. 6
  double uniqueness = 0.0;  // Eq. 7
  double g_sim = 0.0;       // Eq. 4

  bool empty() const { return vertices.empty(); }
};

/// Builds and scores the common subgraph for one group pair. Only active
/// records participate (inactive ones carry kNoLabel in the clustering).
/// A vertex additionally requires the pair's *direct* aggregated similarity
/// to reach `delta`, the current iteration's threshold — equal labels alone
/// can be the product of transitive chaining through intermediate records
/// and would otherwise let dissimilar records into the mapping. Records
/// appearing in several equally-labeled pairs within the group pair are
/// resolved greedily 1:1 by descending record similarity. Vertices without
/// any matching incident edge are pruned (cf. Fig. 4 of the paper); a
/// pruned-empty subgraph means the group pair yields no candidate —
/// single-record overlaps are recovered later by residual matching.
GroupPairSubgraph BuildGroupPairSubgraph(
    GroupId old_group, GroupId new_group, const HouseholdGraph& old_graph,
    const HouseholdGraph& new_graph, const Clustering& clustering,
    const PreMatcher& prematcher, const LinkageConfig& config,
    const CensusDataset& old_dataset, const CensusDataset& new_dataset,
    double delta);

/// Enumerates candidate group pairs (pairs sharing >= 1 cluster label) and
/// returns the non-empty scored subgraphs, deterministically ordered.
std::vector<GroupPairSubgraph> BuildAllSubgraphs(
    const CensusDataset& old_dataset, const CensusDataset& new_dataset,
    const std::vector<HouseholdGraph>& old_graphs,
    const std::vector<HouseholdGraph>& new_graphs,
    const Clustering& clustering, const PreMatcher& prematcher,
    const LinkageConfig& config, double delta);

}  // namespace tglink

#endif  // TGLINK_LINKAGE_SUBGRAPH_H_
