// CSV persistence for linkage results: record and group mappings on
// external ids, so that a linkage run's output can be stored, diffed and
// re-loaded against re-parsed datasets — the artifact a downstream
// demographic study actually consumes.

#ifndef TGLINK_LINKAGE_RESULT_IO_H_
#define TGLINK_LINKAGE_RESULT_IO_H_

#include <string>

#include "tglink/census/dataset.h"
#include "tglink/linkage/mapping.h"
#include "tglink/util/status.h"

namespace tglink {

/// Serializes both mappings as CSV rows
/// (`kind,old_id,new_id` with kind in {record, group}), using external ids.
std::string MappingsToCsv(const RecordMapping& records,
                          const GroupMapping& groups,
                          const CensusDataset& old_dataset,
                          const CensusDataset& new_dataset);

struct LoadedMappings {
  RecordMapping records;
  GroupMapping groups;
};

/// Parses mappings back against the two datasets. Unknown external ids or
/// 1:1 violations are errors.
Result<LoadedMappings> MappingsFromCsv(const std::string& text,
                                       const CensusDataset& old_dataset,
                                       const CensusDataset& new_dataset);

/// File convenience wrappers.
Status SaveMappings(const RecordMapping& records, const GroupMapping& groups,
                    const CensusDataset& old_dataset,
                    const CensusDataset& new_dataset, const std::string& path);
Result<LoadedMappings> LoadMappings(const std::string& path,
                                    const CensusDataset& old_dataset,
                                    const CensusDataset& new_dataset);

}  // namespace tglink

#endif  // TGLINK_LINKAGE_RESULT_IO_H_
