// Residual record matching (line 17 of Algorithm 1): a greedy 1:1
// attribute-only matcher applied to records left unmatched after the
// iterative subgraph rounds — typically singletons, movers whose households
// dissolved, and records whose relationship evidence was too corrupted.
// Also reused as the seed / one-shot matcher by the baselines.

#ifndef TGLINK_LINKAGE_RESIDUAL_H_
#define TGLINK_LINKAGE_RESIDUAL_H_

#include <vector>
#include <cstddef>

#include "tglink/blocking/blocking.h"
#include "tglink/census/dataset.h"
#include "tglink/linkage/mapping.h"
#include "tglink/linkage/prematching.h"
#include "tglink/similarity/composite.h"

namespace tglink {

/// Greedy 1:1 matching: scores every candidate pair of active records with
/// `sim_func`, keeps pairs at or above its threshold, and accepts them in
/// descending similarity order while both endpoints are free. Returns the
/// accepted links (old, new, sim), deterministically ordered.
std::vector<ScoredPair> GreedyOneToOneMatch(
    const CensusDataset& old_dataset, const CensusDataset& new_dataset,
    const SimilarityFunction& sim_func, const BlockingConfig& blocking,
    const std::vector<bool>& active_old, const std::vector<bool>& active_new);

/// Applies GreedyOneToOneMatch and folds the result into the record and
/// group mappings (lines 17-19 of Algorithm 1): each accepted record link
/// also links the owning households. Newly matched records are deactivated.
/// Returns the number of record links added.
size_t MatchResidualRecords(const CensusDataset& old_dataset,
                            const CensusDataset& new_dataset,
                            const SimilarityFunction& sim_func,
                            const BlockingConfig& blocking,
                            RecordMapping* record_mapping,
                            GroupMapping* group_mapping,
                            std::vector<bool>* active_old,
                            std::vector<bool>* active_new);

/// Household-context residual matching (extension; see
/// LinkageConfig::context_residual): for every already-linked household
/// pair, greedily 1:1-matches its still-unmatched members against each
/// other when their attribute similarity reaches `threshold` — a relaxed
/// bar justified by the surrounding matched household. Extends the record
/// mapping only (the group pair is already linked). Returns links added.
size_t MatchWithinLinkedHouseholds(const CensusDataset& old_dataset,
                                   const CensusDataset& new_dataset,
                                   const SimilarityFunction& sim_func,
                                   double threshold,
                                   const GroupMapping& group_mapping,
                                   RecordMapping* record_mapping,
                                   std::vector<bool>* active_old,
                                   std::vector<bool>* active_new);

}  // namespace tglink

#endif  // TGLINK_LINKAGE_RESIDUAL_H_
