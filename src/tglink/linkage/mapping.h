// Record and group mappings — the two outputs of temporal linkage
// (Equations 1 and 2 of the paper). RecordMapping is strictly 1:1;
// GroupMapping is N:M.

#ifndef TGLINK_LINKAGE_MAPPING_H_
#define TGLINK_LINKAGE_MAPPING_H_

#include <unordered_set>
#include <cstddef>
#include <utility>
#include <vector>

#include "tglink/census/record.h"
#include "tglink/util/logging.h"
#include "tglink/util/status.h"

namespace tglink {

using RecordLink = std::pair<RecordId, RecordId>;  // (old, new)
using GroupLink = std::pair<GroupId, GroupId>;     // (old, new)

/// 1:1 mapping between the records of two successive snapshots, with O(1)
/// bidirectional lookup.
class RecordMapping {
 public:
  RecordMapping() = default;
  RecordMapping(size_t num_old, size_t num_new);

  /// Adds a link. Returns InvalidArgument if either endpoint is already
  /// linked (1:1 violation) or out of range. (Status itself is [[nodiscard]],
  /// so dropping the result warns.)
  Status Add(RecordId old_id, RecordId new_id);

  [[nodiscard]] bool IsOldLinked(RecordId old_id) const {
    TGLINK_DCHECK(old_id < old_to_new_.size());
    return old_to_new_[old_id] != kInvalidRecord;
  }
  [[nodiscard]] bool IsNewLinked(RecordId new_id) const {
    TGLINK_DCHECK(new_id < new_to_old_.size());
    return new_to_old_[new_id] != kInvalidRecord;
  }

  /// kInvalidRecord when unlinked.
  [[nodiscard]] RecordId NewFor(RecordId old_id) const {
    TGLINK_DCHECK(old_id < old_to_new_.size());
    return old_to_new_[old_id];
  }
  [[nodiscard]] RecordId OldFor(RecordId new_id) const {
    TGLINK_DCHECK(new_id < new_to_old_.size());
    return new_to_old_[new_id];
  }

  const std::vector<RecordLink>& links() const { return links_; }
  size_t size() const { return links_.size(); }

  size_t num_old() const { return old_to_new_.size(); }
  size_t num_new() const { return new_to_old_.size(); }

 private:
  std::vector<RecordLink> links_;
  std::vector<RecordId> old_to_new_;
  std::vector<RecordId> new_to_old_;
};

/// N:M mapping between households; duplicate links are ignored.
class GroupMapping {
 public:
  /// Adds a link if not already present; returns true when inserted.
  bool Add(GroupId old_id, GroupId new_id);

  [[nodiscard]] bool Contains(GroupId old_id, GroupId new_id) const;

  [[nodiscard]] const std::vector<GroupLink>& links() const { return links_; }
  [[nodiscard]] size_t size() const { return links_.size(); }

  /// Links sorted by (old, new) for deterministic output.
  [[nodiscard]] std::vector<GroupLink> SortedLinks() const;

  /// New-side partners of an old group (unsorted).
  [[nodiscard]] std::vector<GroupId> NewPartners(GroupId old_id) const;
  /// Old-side partners of a new group (unsorted).
  [[nodiscard]] std::vector<GroupId> OldPartners(GroupId new_id) const;

 private:
  static uint64_t Key(GroupId a, GroupId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }
  std::vector<GroupLink> links_;
  // Membership test; kept flat-sorted lazily would complicate Add, so use a
  // sorted-vector-free approach: linear structures are too slow at 10^4
  // links, hence a hash set keyed by packed pair.
  struct Hash {
    size_t operator()(uint64_t v) const {
      v ^= v >> 33;
      v *= 0xFF51AFD7ED558CCDULL;
      v ^= v >> 33;
      return static_cast<size_t>(v);
    }
  };
  std::unordered_set<uint64_t, Hash> present_;
};

}  // namespace tglink

#endif  // TGLINK_LINKAGE_MAPPING_H_
