#include "tglink/linkage/result_io.h"

#include <unordered_map>

#include "tglink/util/csv.h"

namespace tglink {

namespace {
std::unordered_map<std::string, uint32_t> IndexRecords(
    const CensusDataset& dataset) {
  std::unordered_map<std::string, uint32_t> index;
  index.reserve(dataset.num_records());
  for (uint32_t r = 0; r < dataset.num_records(); ++r) {
    index.emplace(dataset.record(r).external_id, r);
  }
  return index;
}

std::unordered_map<std::string, uint32_t> IndexHouseholds(
    const CensusDataset& dataset) {
  std::unordered_map<std::string, uint32_t> index;
  index.reserve(dataset.num_households());
  for (uint32_t g = 0; g < dataset.num_households(); ++g) {
    index.emplace(dataset.household(g).external_id, g);
  }
  return index;
}
}  // namespace

std::string MappingsToCsv(const RecordMapping& records,
                          const GroupMapping& groups,
                          const CensusDataset& old_dataset,
                          const CensusDataset& new_dataset) {
  std::string out = FormatCsvRow({"kind", "old_id", "new_id"});
  for (const RecordLink& link : records.links()) {
    out += FormatCsvRow({"record", old_dataset.record(link.first).external_id,
                         new_dataset.record(link.second).external_id});
  }
  for (const GroupLink& link : groups.SortedLinks()) {
    out += FormatCsvRow({"group",
                         old_dataset.household(link.first).external_id,
                         new_dataset.household(link.second).external_id});
  }
  return out;
}

Result<LoadedMappings> MappingsFromCsv(const std::string& text,
                                       const CensusDataset& old_dataset,
                                       const CensusDataset& new_dataset) {
  auto parsed = ParseCsv(text);
  if (!parsed.ok()) return parsed.status();
  const auto& rows = parsed.value();
  if (rows.empty() || rows[0].size() != 3 || rows[0][0] != "kind") {
    return Status::ParseError("unexpected mappings CSV header");
  }
  const auto old_records = IndexRecords(old_dataset);
  const auto new_records = IndexRecords(new_dataset);
  const auto old_groups = IndexHouseholds(old_dataset);
  const auto new_groups = IndexHouseholds(new_dataset);

  LoadedMappings loaded;
  loaded.records =
      RecordMapping(old_dataset.num_records(), new_dataset.num_records());
  for (size_t i = 1; i < rows.size(); ++i) {
    const CsvRow& row = rows[i];
    if (row.size() != 3) {
      return Status::ParseError("mapping row " + std::to_string(i) +
                                " has wrong arity");
    }
    if (row[0] == "record") {
      auto io = old_records.find(row[1]);
      auto in = new_records.find(row[2]);
      if (io == old_records.end() || in == new_records.end()) {
        return Status::NotFound("unknown record id in mapping: " + row[1] +
                                " / " + row[2]);
      }
      TGLINK_RETURN_IF_ERROR(loaded.records.Add(io->second, in->second));
    } else if (row[0] == "group") {
      auto io = old_groups.find(row[1]);
      auto in = new_groups.find(row[2]);
      if (io == old_groups.end() || in == new_groups.end()) {
        return Status::NotFound("unknown household id in mapping: " + row[1] +
                                " / " + row[2]);
      }
      loaded.groups.Add(io->second, in->second);
    } else {
      return Status::ParseError("unknown mapping kind: " + row[0]);
    }
  }
  return loaded;
}

Status SaveMappings(const RecordMapping& records, const GroupMapping& groups,
                    const CensusDataset& old_dataset,
                    const CensusDataset& new_dataset,
                    const std::string& path) {
  return WriteStringToFile(
      path, MappingsToCsv(records, groups, old_dataset, new_dataset));
}

Result<LoadedMappings> LoadMappings(const std::string& path,
                                    const CensusDataset& old_dataset,
                                    const CensusDataset& new_dataset) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return MappingsFromCsv(text.value(), old_dataset, new_dataset);
}

}  // namespace tglink
