#include "tglink/linkage/iterative.h"

#include <sstream>

#include "tglink/graph/enrichment.h"
#include "tglink/linkage/prematching.h"
#include "tglink/linkage/residual.h"
#include "tglink/linkage/selection.h"
#include "tglink/linkage/subgraph.h"
#include "tglink/obs/memprof.h"
#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"
#include "tglink/util/logging.h"

namespace tglink {

namespace {

/// Ablation variant of enrichment: only the head-relative star of explicit
/// role edges, no implicit member-member relationships (enrich_groups=false).
std::vector<HouseholdGraph> BuildStarGraphs(const CensusDataset& dataset) {
  std::vector<HouseholdGraph> graphs;
  graphs.reserve(dataset.num_households());
  for (GroupId g = 0; g < dataset.num_households(); ++g) {
    const Household& hh = dataset.household(g);
    HouseholdGraph graph(g, hh.members);
    RecordId head = kInvalidRecord;
    for (RecordId r : hh.members) {
      if (dataset.record(r).role == Role::kHead) {
        head = r;
        break;
      }
    }
    if (head == kInvalidRecord && !hh.members.empty()) head = hh.members[0];
    for (RecordId r : hh.members) {
      if (r == head) continue;
      const PersonRecord& a = dataset.record(head);
      const PersonRecord& b = dataset.record(r);
      const bool ages = a.has_age() && b.has_age();
      graph.AddEdge(head, r, DeriveRelType(a.role, b.role),
                    ages ? a.age - b.age : 0, ages);
    }
    graphs.push_back(std::move(graph));
  }
  return graphs;
}

#ifndef NDEBUG
size_t CountActive(const std::vector<bool>& active) {
  size_t count = 0;
  for (bool b : active) count += b ? 1 : 0;
  return count;
}
#endif

}  // namespace

const char* LinkPhaseName(LinkPhase phase) {
  switch (phase) {
    case LinkPhase::kSubgraph:
      return "subgraph";
    case LinkPhase::kContextResidual:
      return "context-residual";
    case LinkPhase::kGlobalResidual:
      return "global-residual";
  }
  return "?";
}

std::string LinkageResult::Summary() const {
  std::ostringstream os;
  os << "record links: " << record_mapping.size()
     << " (context: " << context_record_links
     << ", residual: " << residual_record_links << "), group links: "
     << group_mapping.size() << ", iterations: " << iterations.size();
  return os.str();
}

LinkageResult LinkCensusPair(const CensusDataset& old_dataset,
                             const CensusDataset& new_dataset,
                             const LinkageConfig& config) {
  TGLINK_TRACE_SPAN("linkage.link_census_pair");
  TGLINK_MEM_STAGE("linkage.link_census_pair");
  TGLINK_CHECK(config.delta_step > 0.0)
      << "delta_step must be positive or the iteration cannot terminate";
  // δ_high above 1 is legal (an unreachable threshold disables subgraph
  // matching — see edge_cases_test), but an inverted or negative schedule
  // is always a configuration bug.
  TGLINK_DCHECK(config.delta_high >= config.delta_low &&
                config.delta_low >= 0.0)
      << "inverted/negative δ schedule: high=" << config.delta_high
      << " low=" << config.delta_low;

  LinkageResult result;
  result.record_mapping =
      RecordMapping(old_dataset.num_records(), new_dataset.num_records());

  // Initialization: completeGroups — enrich the household graphs once; the
  // groups themselves never change during linkage.
  std::vector<HouseholdGraph> old_graphs;
  std::vector<HouseholdGraph> new_graphs;
  {
    TGLINK_TRACE_SPAN("linkage.complete_groups");
    TGLINK_MEM_STAGE("linkage.complete_groups");
    old_graphs = config.enrich_groups ? EnrichAllHouseholds(old_dataset)
                                      : BuildStarGraphs(old_dataset);
    new_graphs = config.enrich_groups ? EnrichAllHouseholds(new_dataset)
                                      : BuildStarGraphs(new_dataset);
  }

  // Pre-score all candidate pairs once at the loosest threshold the
  // schedule can reach (see PreMatcher docs).
  SimilarityFunction sim_func = config.sim_func;
  sim_func.set_year_gap(new_dataset.year() - old_dataset.year());
  PreMatcher prematcher(old_dataset, new_dataset, sim_func, config.blocking,
                        config.delta_low);

  std::vector<bool> active_old(old_dataset.num_records(), true);
  std::vector<bool> active_new(new_dataset.num_records(), true);

  // Iterative subgraph matching: δ_high down to δ_low in steps of Δ.
  double delta = config.delta_high;
  while (delta + 1e-9 >= config.delta_low) {
    TGLINK_TRACE_SPAN("linkage.iteration", delta);
    TGLINK_COUNTER_INC("linkage.iterations");
    const Clustering clustering =
        prematcher.Cluster(delta, active_old, active_new);
    std::vector<GroupPairSubgraph> subgraphs =
        BuildAllSubgraphs(old_dataset, new_dataset, old_graphs, new_graphs,
                          clustering, prematcher, config, delta);

    IterationStats stats;
    stats.delta = delta;
    stats.scored_pairs =
        prematcher.CountPairsAtDelta(delta, active_old, active_new);
    stats.candidate_subgraphs = subgraphs.size();

#ifndef NDEBUG
    const size_t active_before =
        CountActive(active_old) + CountActive(active_new);
#endif
    const SelectionResult selection = SelectGroupLinks(
        std::move(subgraphs), &result.group_mapping, &result.record_mapping,
        &active_old, &active_new);
#ifndef NDEBUG
    // Every record link claims exactly one old and one new record, so the
    // residual must shrink by exactly two records per link — the strict
    // monotone progress that guarantees Algorithm 1 terminates.
    const size_t active_after =
        CountActive(active_old) + CountActive(active_new);
    TGLINK_CHECK(active_before - active_after ==
                 2 * selection.new_record_links)
        << "residual shrank by " << (active_before - active_after)
        << " records but selection reported " << selection.new_record_links
        << " links";
#endif
    result.provenance.resize(result.record_mapping.size(),
                             {LinkPhase::kSubgraph, delta});
    TGLINK_DCHECK(result.provenance.size() == result.record_mapping.size());
    stats.accepted_subgraphs = selection.accepted_subgraphs;
    stats.new_group_links = selection.new_group_links;
    stats.new_record_links = selection.new_record_links;
    result.iterations.push_back(stats);

    TGLINK_LOG(kInfo) << "iteration δ=" << delta << ": "
                      << stats.accepted_subgraphs << " subgraphs, "
                      << stats.new_record_links << " record links";

    if (selection.accepted_subgraphs == 0) break;  // M_G^p = ∅
    delta -= config.delta_step;
  }

  SimilarityFunction sim_func_rem = config.sim_func_rem;
  sim_func_rem.set_year_gap(new_dataset.year() - old_dataset.year());

  // Extension: place leftovers within already-linked household pairs first
  // (see LinkageConfig::context_residual).
  if (config.context_residual) {
    result.context_record_links = MatchWithinLinkedHouseholds(
        old_dataset, new_dataset, sim_func_rem,
        config.context_residual_threshold, result.group_mapping,
        &result.record_mapping, &active_old, &active_new);
    result.provenance.resize(
        result.record_mapping.size(),
        {LinkPhase::kContextResidual, config.context_residual_threshold});
  }

  // Residual attribute-only matching for the leftovers (lines 17-19).
  result.residual_record_links = MatchResidualRecords(
      old_dataset, new_dataset, sim_func_rem, config.blocking,
      &result.record_mapping, &result.group_mapping, &active_old, &active_new);
  result.provenance.resize(result.record_mapping.size(),
                           {LinkPhase::kGlobalResidual,
                            sim_func_rem.threshold()});

  TGLINK_DCHECK(result.provenance.size() == result.record_mapping.size());
  TGLINK_COUNTER_ADD("linkage.record_links", result.record_mapping.size());
  TGLINK_COUNTER_ADD("linkage.group_links", result.group_mapping.size());
  return result;
}

}  // namespace tglink
