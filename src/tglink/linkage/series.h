// Series-level driver: link every successive pair of a census series and
// assemble the evolution graph — the workflow of the paper's Section 5.4
// as a single call.

#ifndef TGLINK_LINKAGE_SERIES_H_
#define TGLINK_LINKAGE_SERIES_H_

#include <vector>

#include "tglink/census/dataset.h"
#include "tglink/evolution/evolution_graph.h"
#include "tglink/linkage/config.h"
#include "tglink/linkage/iterative.h"

namespace tglink {

struct SeriesLinkageResult {
  std::vector<LinkageResult> pair_results;  // one per successive pair
  std::vector<RecordMapping> record_mappings;
  std::vector<GroupMapping> group_mappings;

  /// Builds the evolution graph over `datasets` (which must be the same
  /// series this result was computed from).
  EvolutionGraph BuildEvolutionGraph(
      const std::vector<CensusDataset>& datasets) const;
};

/// Links datasets[i] -> datasets[i+1] for every i with the same
/// configuration. Requires at least two snapshots in ascending year order.
SeriesLinkageResult LinkCensusSeries(
    const std::vector<CensusDataset>& datasets, const LinkageConfig& config);

}  // namespace tglink

#endif  // TGLINK_LINKAGE_SERIES_H_
