#include "tglink/baselines/graphsim.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "tglink/graph/enrichment.h"
#include "tglink/linkage/residual.h"
#include "tglink/similarity/numeric.h"
#include "tglink/util/parallel.h"

namespace tglink {

GraphSimResult GraphSimLink(const CensusDataset& old_dataset,
                            const CensusDataset& new_dataset,
                            const GraphSimConfig& config) {
  GraphSimResult result;
  result.record_mapping =
      RecordMapping(old_dataset.num_records(), new_dataset.num_records());

  SimilarityFunction sim_func = config.sim_func;
  sim_func.set_year_gap(new_dataset.year() - old_dataset.year());
  sim_func.set_threshold(config.record_threshold);

  // Step 1: highly selective one-shot 1:1 record mapping.
  std::vector<bool> active_old(old_dataset.num_records(), true);
  std::vector<bool> active_new(new_dataset.num_records(), true);
  std::unordered_map<uint64_t, double> link_sim;
  for (const ScoredPair& link :
       GreedyOneToOneMatch(old_dataset, new_dataset, sim_func,
                           config.blocking, active_old, active_new)) {
    const Status st = result.record_mapping.Add(link.old_id, link.new_id);
    assert(st.ok());
    (void)st;
    link_sim.emplace(
        (static_cast<uint64_t>(link.old_id) << 32) | link.new_id, link.sim);
  }

  // Step 2: household pair scoring over the fixed record mapping.
  const std::vector<HouseholdGraph> old_graphs =
      EnrichAllHouseholds(old_dataset);
  const std::vector<HouseholdGraph> new_graphs =
      EnrichAllHouseholds(new_dataset);

  // Collect the record links feeding each candidate household pair.
  std::unordered_map<uint64_t, std::vector<RecordLink>> pair_links;
  for (const RecordLink& link : result.record_mapping.links()) {
    const GroupId go = old_dataset.record(link.first).group;
    const GroupId gn = new_dataset.record(link.second).group;
    pair_links[(static_cast<uint64_t>(go) << 32) | gn].push_back(link);
  }

  std::vector<uint64_t> keys;
  keys.reserve(pair_links.size());
  // tglink-lint: nondeterministic-iteration-ok(keys sorted on next line)
  for (const auto& [key, links] : pair_links) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  // Household pairs score independently over the fixed record mapping, so
  // the scoring fans out over the shared pool; the accept loop below walks
  // the combined scores in the sorted key order the serial code used.
  const std::vector<double> combined_scores = ParallelMap<double>(
      keys.size(), "graphsim.household_chunk", [&](size_t key_index) {
        const uint64_t key = keys[key_index];
        const GroupId go = static_cast<GroupId>(key >> 32);
        const GroupId gn = static_cast<GroupId>(key & 0xFFFFFFFFu);
        const std::vector<RecordLink>& links = pair_links.at(key);

        double sim_sum = 0.0;
        for (const RecordLink& link : links) {
          sim_sum +=
              link_sim.at((static_cast<uint64_t>(link.first) << 32) | link.second);
        }
        const double avg_sim = sim_sum / static_cast<double>(links.size());

        // Edge similarity over the linked member pairs, Dice-normalized by the
        // households' total (enriched) relationship counts, as in Eq. 6.
        const HouseholdGraph& old_graph = old_graphs[go];
        const HouseholdGraph& new_graph = new_graphs[gn];
        double rp_sum = 0.0;
        for (size_t i = 0; i < links.size(); ++i) {
          for (size_t j = i + 1; j < links.size(); ++j) {
            const RelEdge* old_edge =
                old_graph.EdgeBetween(links[i].first, links[j].first);
            const RelEdge* new_edge =
                new_graph.EdgeBetween(links[i].second, links[j].second);
            if (old_edge == nullptr || new_edge == nullptr) continue;
            if (old_edge->type != new_edge->type) continue;
            if (old_edge->age_diff_known && new_edge->age_diff_known) {
              const int d_old = old_graph.OrientedAgeDiff(*old_edge, links[i].first,
                                                          links[j].first);
              const int d_new = new_graph.OrientedAgeDiff(
                  *new_edge, links[i].second, links[j].second);
              const double rp =
                  AgeDiffSimilarity(d_old, d_new, config.edge_age_tolerance);
              if (rp > 0.0) rp_sum += rp;
            } else {
              rp_sum += 0.5;
            }
          }
        }
        const size_t total_edges = old_graph.num_edges() + new_graph.num_edges();
        const double e_sim =
            total_edges == 0 ? 0.0
                             : 2.0 * rp_sum / static_cast<double>(total_edges);

        return config.record_weight * avg_sim +
               (1.0 - config.record_weight) * e_sim;
      });
  for (size_t i = 0; i < keys.size(); ++i) {
    if (combined_scores[i] >= config.group_threshold) {
      result.group_mapping.Add(static_cast<GroupId>(keys[i] >> 32),
                               static_cast<GroupId>(keys[i] & 0xFFFFFFFFu));
    }
  }

  return result;
}

}  // namespace tglink
