// Baseline: collective record linkage in the style of SiGMa
// (Lacoste-Julien et al., KDD 2013 — reference [14] of the paper), as the
// paper describes its reimplementation in Section 5.3:
//
//   * candidate record pairs are filtered by a normalized age difference of
//     at most 3 years;
//   * seed links are pairs with attribute similarity >= 0.9;
//   * the algorithm then greedily pops the highest-scoring pair, where the
//     score combines attribute similarity with a relational similarity (the
//     fraction of household neighbours already matched to each other), and
//     accepting a pair raises the relational score of its neighbouring
//     candidate pairs.
//
// Produces a 1:1 record mapping only (no group mapping) — Table 6.

#ifndef TGLINK_BASELINES_COLLECTIVE_H_
#define TGLINK_BASELINES_COLLECTIVE_H_

#include <vector>

#include "tglink/blocking/blocking.h"
#include "tglink/census/dataset.h"
#include "tglink/linkage/mapping.h"
#include "tglink/similarity/composite.h"

namespace tglink {

struct CollectiveConfig {
  /// Attribute similarity (the paper uses the same function as iter-sub,
  /// i.e. Table 2's ω2).
  SimilarityFunction sim_func;

  /// Seed pairs require attribute similarity >= this value.
  double seed_threshold = 0.9;

  /// Pairs below this attribute similarity are never considered.
  double min_similarity = 0.5;

  /// Maximum |(age_old + year_gap) - age_new| for a candidate pair.
  int max_age_difference = 3;

  /// Combined score = (1 - relational_weight) * attr + relational_weight *
  /// relational. SiGMa's suggested weighting is moderate.
  double relational_weight = 0.4;

  /// Accept a non-seed pair only if its combined score reaches this value.
  double accept_threshold = 0.7;

  BlockingConfig blocking = BlockingConfig::MakeDefault();
};

/// Runs the collective matcher and returns the 1:1 record mapping.
RecordMapping CollectiveLink(const CensusDataset& old_dataset,
                             const CensusDataset& new_dataset,
                             const CollectiveConfig& config);

}  // namespace tglink

#endif  // TGLINK_BASELINES_COLLECTIVE_H_
