#include "tglink/baselines/collective.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>

#include "tglink/linkage/prematching.h"
#include "tglink/similarity/sim_cache.h"
#include "tglink/util/parallel.h"

namespace tglink {

namespace {

struct QueueEntry {
  double score;
  RecordId old_id;
  RecordId new_id;

  bool operator<(const QueueEntry& other) const {
    // std::priority_queue is a max-heap on operator<; break score ties on
    // ids for determinism.
    if (score != other.score) return score < other.score;
    if (old_id != other.old_id) return old_id > other.old_id;
    return new_id > other.new_id;
  }
};

class CollectiveState {
 public:
  CollectiveState(const CensusDataset& old_dataset,
                  const CensusDataset& new_dataset,
                  const CollectiveConfig& config)
      : old_dataset_(old_dataset),
        new_dataset_(new_dataset),
        config_(config),
        mapping_(old_dataset.num_records(), new_dataset.num_records()) {}

  /// Relational similarity: fraction of the pair's household neighbours
  /// already matched across the two households.
  double RelationalSimilarity(RecordId o, RecordId n) const {
    const Household& old_hh =
        old_dataset_.household(old_dataset_.record(o).group);
    const Household& new_hh =
        new_dataset_.household(new_dataset_.record(n).group);
    const size_t deg_old = old_hh.members.size() - 1;
    const size_t deg_new = new_hh.members.size() - 1;
    const size_t denom = std::max(deg_old, deg_new);
    if (denom == 0) return 0.0;
    size_t matched_neighbours = 0;
    const GroupId new_group = new_dataset_.record(n).group;
    for (RecordId co : old_hh.members) {
      if (co == o) continue;
      const RecordId partner = mapping_.NewFor(co);
      if (partner != kInvalidRecord && partner != n &&
          new_dataset_.record(partner).group == new_group) {
        ++matched_neighbours;
      }
    }
    return static_cast<double>(matched_neighbours) /
           static_cast<double>(denom);
  }

  double CombinedScore(RecordId o, RecordId n, double attr_sim) const {
    return (1.0 - config_.relational_weight) * attr_sim +
           config_.relational_weight * RelationalSimilarity(o, n);
  }

  RecordMapping& mapping() { return mapping_; }

 private:
  const CensusDataset& old_dataset_;
  const CensusDataset& new_dataset_;
  const CollectiveConfig& config_;
  RecordMapping mapping_;
};

}  // namespace

RecordMapping CollectiveLink(const CensusDataset& old_dataset,
                             const CensusDataset& new_dataset,
                             const CollectiveConfig& config) {
  SimilarityFunction sim_func = config.sim_func;
  const int year_gap = new_dataset.year() - old_dataset.year();
  sim_func.set_year_gap(year_gap);

  // Score candidates once; apply the age filter and the similarity floor.
  // Scoring fans out over the shared pool through the batched kernels with
  // the similarity floor passed down as the pruning cutoff; the -1
  // sentinel marks both age-filtered and bound-pruned pairs (kPruned is
  // also -1 and pruning is sound), so the serial merge below keeps exactly
  // what the exact serial loop kept, in the same order.
  const std::vector<CandidatePair> raw_candidates =
      GenerateCandidatePairs(old_dataset, new_dataset, config.blocking);
  const SimCache sim_cache(sim_func, old_dataset, new_dataset);
  const std::vector<double> sims = ParallelMap<double>(
      raw_candidates.size(), "collective.score_chunk", [&](size_t i) {
        const CandidatePair& cand = raw_candidates[i];
        const PersonRecord& ro = old_dataset.record(cand.old_id);
        const PersonRecord& rn = new_dataset.record(cand.new_id);
        if (ro.has_age() && rn.has_age() &&
            std::abs(ro.age + year_gap - rn.age) > config.max_age_difference) {
          return -1.0;
        }
        return sim_cache.AggregateWithThreshold(cand.old_id, cand.new_id,
                                                config.min_similarity);
      });
  std::unordered_map<uint64_t, double> attr_sim;
  std::vector<ScoredPair> candidates;
  for (size_t i = 0; i < raw_candidates.size(); ++i) {
    const CandidatePair& cand = raw_candidates[i];
    const double sim = sims[i];
    if (sim < config.min_similarity) continue;
    candidates.push_back({cand.old_id, cand.new_id, sim});
    attr_sim.emplace(
        (static_cast<uint64_t>(cand.old_id) << 32) | cand.new_id, sim);
  }

  CollectiveState state(old_dataset, new_dataset, config);

  // Seed phase: greedy 1:1 on attribute similarity alone at the seed
  // threshold.
  std::vector<ScoredPair> seeds;
  for (const ScoredPair& pair : candidates) {
    if (pair.sim >= config.seed_threshold) seeds.push_back(pair);
  }
  std::sort(seeds.begin(), seeds.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              if (a.sim != b.sim) return a.sim > b.sim;
              if (a.old_id != b.old_id) return a.old_id < b.old_id;
              return a.new_id < b.new_id;
            });
  for (const ScoredPair& seed : seeds) {
    if (state.mapping().IsOldLinked(seed.old_id) ||
        state.mapping().IsNewLinked(seed.new_id)) {
      continue;
    }
    const Status st = state.mapping().Add(seed.old_id, seed.new_id);
    assert(st.ok());
    (void)st;
  }

  // Greedy collective phase with a lazily updated max-heap. Relational
  // similarity only grows as links accumulate, so a popped entry whose
  // recomputed score increased is re-pushed; otherwise its stored score was
  // current and the pop order is correct.
  std::priority_queue<QueueEntry> queue;
  for (const ScoredPair& pair : candidates) {
    if (state.mapping().IsOldLinked(pair.old_id) ||
        state.mapping().IsNewLinked(pair.new_id)) {
      continue;
    }
    queue.push({state.CombinedScore(pair.old_id, pair.new_id, pair.sim),
                pair.old_id, pair.new_id});
  }
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (state.mapping().IsOldLinked(top.old_id) ||
        state.mapping().IsNewLinked(top.new_id)) {
      continue;
    }
    const double attr =
        attr_sim.at((static_cast<uint64_t>(top.old_id) << 32) | top.new_id);
    const double current = state.CombinedScore(top.old_id, top.new_id, attr);
    if (current > top.score + 1e-12) {
      queue.push({current, top.old_id, top.new_id});
      continue;
    }
    if (current < config.accept_threshold) break;  // no acceptable pair left
    const Status st = state.mapping().Add(top.old_id, top.new_id);
    assert(st.ok());
    (void)st;
    // Accepting this pair can only raise scores of neighbouring pairs; they
    // are re-evaluated lazily when popped (scores in the queue are lower
    // bounds, so no eager re-push is needed for correctness of order — but
    // entries below the accept threshold at push time would never fire.
    // Re-push the affected neighbour pairs with fresh scores.)
    const Household& old_hh =
        old_dataset.household(old_dataset.record(top.old_id).group);
    const Household& new_hh =
        new_dataset.household(new_dataset.record(top.new_id).group);
    for (RecordId o : old_hh.members) {
      if (state.mapping().IsOldLinked(o)) continue;
      for (RecordId n : new_hh.members) {
        if (state.mapping().IsNewLinked(n)) continue;
        auto it =
            attr_sim.find((static_cast<uint64_t>(o) << 32) | n);
        if (it == attr_sim.end()) continue;
        queue.push({state.CombinedScore(o, n, it->second), o, n});
      }
    }
  }

  return std::move(state.mapping());
}

}  // namespace tglink
