// Baseline: temporal record linkage with decay, after Li, Dong, Maurino
// and Srivastava, "Linking temporal records" (VLDB 2011 — reference [17] of
// the paper's related work). The core idea: the longer the time gap, the
// less an attribute *agreement* proves identity (other people reuse the
// value) and the less a *disagreement* disproves it (people legitimately
// change address, occupation, even surname). Each attribute gets two decay
// rates; the pairwise similarity interpolates between the observed
// attribute similarity and the agnostic 0.5 as evidence decays.
//
// This is a record-only temporal matcher (no group evidence), representing
// the "temporal record linkage" family the paper positions itself against:
// it handles attribute change gracefully but, lacking household structure,
// cannot disambiguate frequent names — the contrast the evaluation shows.

#ifndef TGLINK_BASELINES_TEMPORAL_DECAY_H_
#define TGLINK_BASELINES_TEMPORAL_DECAY_H_

#include <vector>

#include "tglink/blocking/blocking.h"
#include "tglink/census/dataset.h"
#include "tglink/linkage/mapping.h"
#include "tglink/similarity/composite.h"

namespace tglink {

/// Per-attribute decay rates (per year). `agreement_decay` erodes the
/// evidential value of a match; `disagreement_decay` erodes the evidential
/// value of a mismatch. Both pull the attribute similarity toward the
/// agnostic 0.5 as the gap grows.
struct AttributeDecay {
  Field field = Field::kFirstName;
  double agreement_decay = 0.0;     // stable attributes: ~0
  double disagreement_decay = 0.0;  // volatile attributes: high
};

struct TemporalDecayConfig {
  /// Base attribute similarity (measures + weights); ω2 by default.
  SimilarityFunction sim_func;

  /// Decay rates; attributes not listed decay with `default_decay`.
  std::vector<AttributeDecay> decays = {
      {Field::kFirstName, 0.002, 0.010},
      {Field::kSex, 0.000, 0.002},
      {Field::kSurname, 0.002, 0.020},   // marriage changes surnames
      {Field::kAddress, 0.005, 0.060},   // households move often
      {Field::kOccupation, 0.005, 0.050},
  };
  AttributeDecay default_decay = {Field::kFirstName, 0.005, 0.02};

  /// Pairs below this decayed similarity are never matched.
  double threshold = 0.78;

  /// Maximum |expected - observed| ageing deviation, as in the CL baseline.
  int max_age_difference = 3;

  BlockingConfig blocking = BlockingConfig::MakeDefault();
};

/// Decay-adjusted similarity of one record pair across `year_gap` years.
double DecayedSimilarity(const PersonRecord& old_record,
                         const PersonRecord& new_record, int year_gap,
                         const TemporalDecayConfig& config);

/// Greedy 1:1 record linkage under the decay model.
RecordMapping TemporalDecayLink(const CensusDataset& old_dataset,
                                const CensusDataset& new_dataset,
                                const TemporalDecayConfig& config);

}  // namespace tglink

#endif  // TGLINK_BASELINES_TEMPORAL_DECAY_H_
