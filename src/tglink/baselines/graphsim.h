// Baseline: household linkage after Fu, Christen and Zhou, "A graph
// matching method for historical census household linkage" (PAKDD 2014 —
// reference [8] of the paper), as characterized in Section 5.3:
//
//   * a highly selective, non-iterative 1:1 record mapping is produced
//     first, purely from attribute similarity;
//   * per household pair connected by at least one of these links, an
//     average record similarity and an edge similarity over the household
//     graphs are computed;
//   * household pairs whose combined similarity reaches a threshold are
//     linked (no iteration, no record-link revision).
//
// Its recall ceiling is the point of Table 7: record pairs eliminated by
// the initial 1:1 filter can never contribute group links.

#ifndef TGLINK_BASELINES_GRAPHSIM_H_
#define TGLINK_BASELINES_GRAPHSIM_H_

#include "tglink/blocking/blocking.h"
#include "tglink/census/dataset.h"
#include "tglink/linkage/mapping.h"
#include "tglink/similarity/composite.h"

namespace tglink {

struct GraphSimConfig {
  /// Attribute similarity for the initial record mapping.
  SimilarityFunction sim_func;

  /// Threshold of the initial highly selective 1:1 matching.
  double record_threshold = 0.8;

  /// Weight of the average record similarity vs the edge similarity in the
  /// combined household score.
  double record_weight = 0.5;

  /// Household pairs at or above this combined score are linked.
  double group_threshold = 0.3;

  /// Age-difference agreement tolerance for edge similarity, in years.
  int edge_age_tolerance = 2;

  BlockingConfig blocking = BlockingConfig::MakeDefault();
};

struct GraphSimResult {
  RecordMapping record_mapping;
  GroupMapping group_mapping;
};

GraphSimResult GraphSimLink(const CensusDataset& old_dataset,
                            const CensusDataset& new_dataset,
                            const GraphSimConfig& config);

}  // namespace tglink

#endif  // TGLINK_BASELINES_GRAPHSIM_H_
