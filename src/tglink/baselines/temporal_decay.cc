#include "tglink/baselines/temporal_decay.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tglink/linkage/prematching.h"

namespace tglink {

namespace {
const AttributeDecay& DecayFor(const TemporalDecayConfig& config,
                               Field field) {
  for (const AttributeDecay& decay : config.decays) {
    if (decay.field == field) return decay;
  }
  return config.default_decay;
}
}  // namespace

double DecayedSimilarity(const PersonRecord& old_record,
                         const PersonRecord& new_record, int year_gap,
                         const TemporalDecayConfig& config) {
  const std::vector<AttributeSpec>& specs = config.sim_func.specs();
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const AttributeSpec& spec : specs) {
    if (IsFieldMissing(old_record, spec.field) ||
        IsFieldMissing(new_record, spec.field)) {
      continue;  // redistribute over observed attributes
    }
    const double raw =
        spec.field == Field::kAge
            ? 0.5  // handled by the hard age filter, not the similarity
            : ComputeMeasure(spec.measure,
                             GetFieldValue(old_record, spec.field),
                             GetFieldValue(new_record, spec.field));
    const AttributeDecay& decay = DecayFor(config, spec.field);
    // Agreement evidence (raw above 0.5) decays with agreement_decay;
    // disagreement evidence (raw below 0.5) decays with disagreement_decay.
    // Both interpolate the similarity toward the agnostic midpoint.
    const double rate = raw >= 0.5 ? decay.agreement_decay
                                   : decay.disagreement_decay;
    const double keep = std::exp(-rate * static_cast<double>(year_gap));
    const double decayed = 0.5 + (raw - 0.5) * keep;
    weighted_sum += spec.weight * decayed;
    weight_total += spec.weight;
  }
  if (weight_total <= 0.0) return 0.0;
  return weighted_sum / weight_total;
}

RecordMapping TemporalDecayLink(const CensusDataset& old_dataset,
                                const CensusDataset& new_dataset,
                                const TemporalDecayConfig& config) {
  const int year_gap = new_dataset.year() - old_dataset.year();
  std::vector<ScoredPair> scored;
  for (const CandidatePair& cand :
       GenerateCandidatePairs(old_dataset, new_dataset, config.blocking)) {
    const PersonRecord& old_record = old_dataset.record(cand.old_id);
    const PersonRecord& new_record = new_dataset.record(cand.new_id);
    if (old_record.has_age() && new_record.has_age() &&
        std::abs(old_record.age + year_gap - new_record.age) >
            config.max_age_difference) {
      continue;
    }
    const double sim =
        DecayedSimilarity(old_record, new_record, year_gap, config);
    if (sim >= config.threshold) scored.push_back({cand.old_id, cand.new_id, sim});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              if (a.sim != b.sim) return a.sim > b.sim;
              if (a.old_id != b.old_id) return a.old_id < b.old_id;
              return a.new_id < b.new_id;
            });
  RecordMapping mapping(old_dataset.num_records(), new_dataset.num_records());
  for (const ScoredPair& pair : scored) {
    if (mapping.IsOldLinked(pair.old_id) || mapping.IsNewLinked(pair.new_id)) {
      continue;
    }
    const Status st = mapping.Add(pair.old_id, pair.new_id);
    assert(st.ok());
    (void)st;
  }
  return mapping;
}

}  // namespace tglink
