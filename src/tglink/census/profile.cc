#include "tglink/census/profile.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace tglink {

const char* WarningKindName(ConsistencyWarning::Kind kind) {
  switch (kind) {
    case ConsistencyWarning::Kind::kNoHead:
      return "no-head";
    case ConsistencyWarning::Kind::kMultipleHeads:
      return "multiple-heads";
    case ConsistencyWarning::Kind::kMaleWife:
      return "male-wife";
    case ConsistencyWarning::Kind::kImplausibleParent:
      return "implausible-parent-age";
    case ConsistencyWarning::Kind::kSpouseAgeGap:
      return "spouse-age-gap";
    case ConsistencyWarning::Kind::kImplausibleAge:
      return "implausible-age";
  }
  return "?";
}

DatasetProfile ProfileDataset(const CensusDataset& dataset,
                              size_t max_warnings) {
  DatasetProfile profile;
  profile.stats = dataset.Stats();

  constexpr Field kFields[] = {Field::kFirstName, Field::kSurname,
                               Field::kSex,       Field::kAddress,
                               Field::kOccupation, Field::kAge};
  for (Field field : kFields) {
    AttributeProfile ap;
    ap.field = field;
    std::unordered_set<std::string> distinct;
    for (const PersonRecord& record : dataset.records()) {
      if (IsFieldMissing(record, field)) {
        ++ap.missing;
      } else {
        ++ap.present;
        distinct.insert(GetFieldValue(record, field));
      }
    }
    ap.distinct = distinct.size();
    profile.attributes.push_back(ap);
  }

  for (const PersonRecord& record : dataset.records()) {
    if (record.has_age()) {
      const size_t bucket =
          std::min<size_t>(9, static_cast<size_t>(record.age) / 10);
      ++profile.age_histogram[bucket];
    }
  }

  auto warn = [&profile, max_warnings](ConsistencyWarning::Kind kind,
                                       const std::string& household,
                                       std::string detail) {
    if (max_warnings != 0 && profile.warnings.size() >= max_warnings) return;
    profile.warnings.push_back({kind, household, std::move(detail)});
  };

  for (const Household& household : dataset.households()) {
    const size_t bucket = std::min<size_t>(15, household.members.size());
    ++profile.household_size_histogram[bucket];

    const PersonRecord* head = nullptr;
    size_t head_count = 0;
    for (RecordId rid : household.members) {
      const PersonRecord& record = dataset.record(rid);
      if (record.role == Role::kHead) {
        ++head_count;
        head = &record;
      }
      if (record.has_age() && record.age > 105) {
        warn(ConsistencyWarning::Kind::kImplausibleAge, household.external_id,
             record.external_id + " has age " + std::to_string(record.age));
      }
      if (record.role == Role::kWife && record.sex == Sex::kMale) {
        warn(ConsistencyWarning::Kind::kMaleWife, household.external_id,
             record.external_id + " is a male wife");
      }
    }
    if (head_count == 0) {
      warn(ConsistencyWarning::Kind::kNoHead, household.external_id,
           "household has no head record");
    } else if (head_count > 1) {
      warn(ConsistencyWarning::Kind::kMultipleHeads, household.external_id,
           std::to_string(head_count) + " head records");
    }
    if (head != nullptr && head->has_age()) {
      for (RecordId rid : household.members) {
        const PersonRecord& record = dataset.record(rid);
        if (!record.has_age()) continue;
        if (record.role == Role::kWife &&
            std::abs(record.age - head->age) > 30) {
          warn(ConsistencyWarning::Kind::kSpouseAgeGap, household.external_id,
               "head/wife age gap " +
                   std::to_string(std::abs(record.age - head->age)));
        }
        if ((record.role == Role::kSon || record.role == Role::kDaughter)) {
          const int gap = head->age - record.age;
          if (gap < 13 || gap > 60) {
            warn(ConsistencyWarning::Kind::kImplausibleParent,
                 household.external_id,
                 record.external_id + " is " + std::to_string(gap) +
                     " years younger than the head");
          }
        }
      }
    }
  }
  return profile;
}

std::string DatasetProfile::ToString() const {
  std::ostringstream os;
  os << "census " << stats.year << ": " << stats.num_records << " records, "
     << stats.num_households << " households, "
     << stats.unique_name_combinations << " unique names, "
     << 100.0 * stats.missing_value_ratio << "% missing\n";
  os << "attributes:\n";
  for (const AttributeProfile& ap : attributes) {
    os << "  " << FieldName(ap.field) << ": fill "
       << 100.0 * ap.fill_rate() << "%, " << ap.distinct << " distinct\n";
  }
  os << "household sizes:";
  for (size_t s = 1; s < household_size_histogram.size(); ++s) {
    if (household_size_histogram[s] == 0) continue;
    os << " " << s << (s == 15 ? "+" : "") << ":"
       << household_size_histogram[s];
  }
  os << "\nage decades:";
  for (size_t d = 0; d < age_histogram.size(); ++d) {
    os << " " << 10 * d << "s:" << age_histogram[d];
  }
  os << "\nwarnings: " << warnings.size();
  for (const ConsistencyWarning& warning : warnings) {
    os << "\n  [" << WarningKindName(warning.kind) << "] "
       << warning.household << ": " << warning.detail;
  }
  return os.str();
}

}  // namespace tglink
