#include "tglink/census/io.h"

#include <map>
#include <unordered_map>

#include "tglink/obs/memprof.h"
#include "tglink/obs/trace.h"
#include "tglink/util/csv.h"
#include "tglink/util/strings.h"

namespace tglink {

namespace {
const char* const kHeader[] = {"record_id",  "household_id", "first_name",
                               "surname",    "sex",          "age",
                               "role",       "address",      "occupation"};
constexpr size_t kNumColumns = std::size(kHeader);
}  // namespace

std::string DatasetToCsv(const CensusDataset& dataset) {
  std::string out;
  CsvRow header(kHeader, kHeader + kNumColumns);
  out += FormatCsvRow(header);
  for (const Household& hh : dataset.households()) {
    for (RecordId rid : hh.members) {
      const PersonRecord& rec = dataset.record(rid);
      CsvRow row = {
          rec.external_id,
          hh.external_id,
          rec.first_name,
          rec.surname,
          SexName(rec.sex),
          rec.has_age() ? std::to_string(rec.age) : "",
          RoleName(rec.role),
          rec.address,
          rec.occupation,
      };
      out += FormatCsvRow(row);
    }
  }
  return out;
}

Result<CensusDataset> DatasetFromCsv(const std::string& text, int year) {
  auto parsed = ParseCsv(text);
  if (!parsed.ok()) return parsed.status();
  const std::vector<CsvRow>& rows = parsed.value();
  if (rows.empty()) return Status::ParseError("empty census CSV");
  if (rows[0].size() != kNumColumns || rows[0][0] != "record_id") {
    return Status::ParseError("unexpected census CSV header");
  }

  // Group rows by household id, preserving first-appearance order.
  std::vector<std::string> household_order;
  std::unordered_map<std::string, std::vector<PersonRecord>> by_household;
  for (size_t i = 1; i < rows.size(); ++i) {
    const CsvRow& row = rows[i];
    if (row.size() != kNumColumns) {
      return Status::ParseError("row " + std::to_string(i) + " has " +
                                std::to_string(row.size()) + " columns");
    }
    PersonRecord rec;
    rec.external_id = row[0];
    rec.first_name = NormalizeValue(row[2]);
    rec.surname = NormalizeValue(row[3]);
    rec.sex = ParseSex(row[4]);
    rec.age = IsMissing(row[5]) ? -1 : ParseNonNegativeInt(row[5]);
    rec.role = ParseRole(row[6]);
    rec.address = IsMissing(row[7]) ? "" : NormalizeValue(row[7]);
    rec.occupation = IsMissing(row[8]) ? "" : NormalizeValue(row[8]);
    const std::string& hh_id = row[1];
    if (by_household.find(hh_id) == by_household.end()) {
      household_order.push_back(hh_id);
    }
    by_household[hh_id].push_back(std::move(rec));
  }

  CensusDataset dataset(year);
  for (const std::string& hh_id : household_order) {
    dataset.AddHousehold(hh_id, std::move(by_household[hh_id]));
  }
  TGLINK_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

Status SaveDataset(const CensusDataset& dataset, const std::string& path) {
  TGLINK_TRACE_SPAN("census.save");
  TGLINK_MEM_STAGE("census.save");
  return WriteStringToFile(path, DatasetToCsv(dataset));
}

Result<CensusDataset> LoadDataset(const std::string& path, int year) {
  TGLINK_TRACE_SPAN("census.load");
  TGLINK_MEM_STAGE("census.load");
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return DatasetFromCsv(text.value(), year);
}

}  // namespace tglink
