#include "tglink/census/dataset.h"

#include <unordered_set>

namespace tglink {

GroupId CensusDataset::AddHousehold(std::string external_id,
                                    std::vector<PersonRecord> members) {
  const GroupId gid = static_cast<GroupId>(households_.size());
  Household household;
  household.external_id = std::move(external_id);
  household.members.reserve(members.size());
  for (PersonRecord& member : members) {
    const RecordId rid = static_cast<RecordId>(records_.size());
    member.group = gid;
    household.members.push_back(rid);
    records_.push_back(std::move(member));
  }
  households_.push_back(std::move(household));
  return gid;
}

Status CensusDataset::Validate() const {
  std::vector<bool> seen(records_.size(), false);
  for (size_t g = 0; g < households_.size(); ++g) {
    for (RecordId rid : households_[g].members) {
      if (rid >= records_.size()) {
        return Status::Internal("household " + households_[g].external_id +
                                " references out-of-range record");
      }
      if (seen[rid]) {
        return Status::Internal("record " + records_[rid].external_id +
                                " appears in multiple households");
      }
      seen[rid] = true;
      if (records_[rid].group != static_cast<GroupId>(g)) {
        return Status::Internal("record " + records_[rid].external_id +
                                " has inconsistent group id");
      }
    }
  }
  for (size_t r = 0; r < records_.size(); ++r) {
    if (!seen[r]) {
      return Status::Internal("record " + records_[r].external_id +
                              " belongs to no household");
    }
  }
  std::unordered_set<std::string> ids;
  for (const PersonRecord& rec : records_) {
    if (!ids.insert(rec.external_id).second) {
      return Status::Internal("duplicate record external id: " +
                              rec.external_id);
    }
  }
  return Status::OK();
}

DatasetStats CensusDataset::Stats() const {
  DatasetStats stats;
  stats.year = year_;
  stats.num_records = records_.size();
  stats.num_households = households_.size();
  std::unordered_set<std::string> names;
  size_t missing = 0;
  constexpr Field kCounted[] = {Field::kFirstName, Field::kSurname,
                                Field::kSex, Field::kAddress,
                                Field::kOccupation};
  for (const PersonRecord& rec : records_) {
    names.insert(rec.first_name + "|" + rec.surname);
    for (Field f : kCounted) {
      if (IsFieldMissing(rec, f)) ++missing;
    }
  }
  stats.unique_name_combinations = names.size();
  const size_t cells = records_.size() * std::size(kCounted);
  stats.missing_value_ratio =
      cells == 0 ? 0.0 : static_cast<double>(missing) / cells;
  stats.avg_household_size =
      households_.empty()
          ? 0.0
          : static_cast<double>(records_.size()) / households_.size();
  return stats;
}

}  // namespace tglink
