// Household: a non-overlapping group of person records from one snapshot.

#ifndef TGLINK_CENSUS_HOUSEHOLD_H_
#define TGLINK_CENSUS_HOUSEHOLD_H_

#include <string>
#include <cstddef>
#include <vector>

#include "tglink/census/record.h"

namespace tglink {

struct Household {
  std::string external_id;
  std::vector<RecordId> members;  // indices into CensusDataset::records

  size_t size() const { return members.size(); }
};

}  // namespace tglink

#endif  // TGLINK_CENSUS_HOUSEHOLD_H_
