#include "tglink/census/household.h"

// Household is a plain aggregate; implementation intentionally empty.
