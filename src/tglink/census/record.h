// PersonRecord: one row of a census snapshot. Identifiers are dense
// uint32_t indices into the owning CensusDataset's vectors, so downstream
// algorithms use flat arrays instead of hash maps on the hot path; the
// human-readable external id (e.g. "1871_3") is kept for I/O and debugging.

#ifndef TGLINK_CENSUS_RECORD_H_
#define TGLINK_CENSUS_RECORD_H_

#include <cstdint>
#include <limits>
#include <string>

#include "tglink/census/roles.h"

namespace tglink {

using RecordId = uint32_t;
using GroupId = uint32_t;

inline constexpr RecordId kInvalidRecord =
    std::numeric_limits<RecordId>::max();
inline constexpr GroupId kInvalidGroup = std::numeric_limits<GroupId>::max();

/// A single person entry in one census snapshot. String attributes are
/// stored in normalized form (lower-case, punctuation stripped; see
/// NormalizeValue); missing values are empty strings / age -1.
struct PersonRecord {
  std::string external_id;
  std::string first_name;
  std::string surname;
  std::string address;
  std::string occupation;
  Sex sex = Sex::kUnknown;
  int age = -1;  // -1 = missing
  Role role = Role::kUnknown;
  GroupId group = kInvalidGroup;

  bool has_age() const { return age >= 0; }

  /// "first_name surname" for diagnostics.
  std::string DisplayName() const;
};

/// The record attributes a similarity function can address.
enum class Field : uint8_t {
  kFirstName,
  kSurname,
  kSex,
  kAddress,
  kOccupation,
  kAge,
};

const char* FieldName(Field field);

/// The string value of a (string-typed) field; Sex is rendered "m"/"f"/"";
/// Age is rendered as decimal or "" when missing.
std::string GetFieldValue(const PersonRecord& record, Field field);

/// True when the field value is missing on this record.
bool IsFieldMissing(const PersonRecord& record, Field field);

}  // namespace tglink

#endif  // TGLINK_CENSUS_RECORD_H_
