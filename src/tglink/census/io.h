// CSV persistence for census snapshots.
//
// Column layout (with header row):
//   record_id,household_id,first_name,surname,sex,age,role,address,occupation
// Rows belonging to one household must be contiguous is NOT required —
// households are reassembled by household_id in order of first appearance.

#ifndef TGLINK_CENSUS_IO_H_
#define TGLINK_CENSUS_IO_H_

#include <string>

#include "tglink/census/dataset.h"
#include "tglink/util/status.h"

namespace tglink {

/// Serializes a dataset to CSV text (including the header row).
std::string DatasetToCsv(const CensusDataset& dataset);

/// Parses CSV text (produced by DatasetToCsv or hand-written with the same
/// header) into a dataset with the given census year. String attributes are
/// normalized via NormalizeValue; placeholder values become missing.
Result<CensusDataset> DatasetFromCsv(const std::string& text, int year);

/// File convenience wrappers.
Status SaveDataset(const CensusDataset& dataset, const std::string& path);
Result<CensusDataset> LoadDataset(const std::string& path, int year);

}  // namespace tglink

#endif  // TGLINK_CENSUS_IO_H_
