// Data-quality profiling and consistency checking for census snapshots —
// the pre-flight a practitioner runs before linking real transcribed data:
// per-attribute fill rates, age and household-size distributions, and
// structural role-consistency warnings (no head, several heads, a wife
// recorded as male, implausible parent-child age gaps, ...).

#ifndef TGLINK_CENSUS_PROFILE_H_
#define TGLINK_CENSUS_PROFILE_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "tglink/census/dataset.h"

namespace tglink {

struct AttributeProfile {
  Field field = Field::kFirstName;
  size_t present = 0;
  size_t missing = 0;
  size_t distinct = 0;  // distinct non-missing values

  double fill_rate() const {
    const size_t total = present + missing;
    return total == 0 ? 0.0 : static_cast<double>(present) / total;
  }
};

struct ConsistencyWarning {
  enum class Kind : uint8_t {
    kNoHead,             // household without a head record
    kMultipleHeads,      // more than one head
    kMaleWife,           // role wife with sex male
    kImplausibleParent,  // parent-child age gap < 13 or > 60 years
    kSpouseAgeGap,       // |head - wife| age gap > 30 years
    kImplausibleAge,     // age > 105
  };
  Kind kind;
  std::string household;  // external id
  std::string detail;
};

const char* WarningKindName(ConsistencyWarning::Kind kind);

struct DatasetProfile {
  DatasetStats stats;
  std::vector<AttributeProfile> attributes;  // one per Field
  /// Histogram of household sizes; index = size (0 unused), capped at 15+.
  std::array<size_t, 16> household_size_histogram = {};
  /// Decade age histogram: [0-9], [10-19], ..., [90+].
  std::array<size_t, 10> age_histogram = {};
  std::vector<ConsistencyWarning> warnings;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Profiles a snapshot; `max_warnings` caps the warning list (0 = all).
DatasetProfile ProfileDataset(const CensusDataset& dataset,
                              size_t max_warnings = 100);

}  // namespace tglink

#endif  // TGLINK_CENSUS_PROFILE_H_
