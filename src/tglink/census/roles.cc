#include "tglink/census/roles.h"

#include "tglink/util/strings.h"

namespace tglink {

const char* SexName(Sex sex) {
  switch (sex) {
    case Sex::kMale:
      return "m";
    case Sex::kFemale:
      return "f";
    case Sex::kUnknown:
      return "";
  }
  return "";
}

Sex ParseSex(std::string_view s) {
  const std::string v = ToLower(std::string(Trim(s)));
  if (v == "m" || v == "male") return Sex::kMale;
  if (v == "f" || v == "female") return Sex::kFemale;
  return Sex::kUnknown;
}

const char* RoleName(Role role) {
  switch (role) {
    case Role::kHead:
      return "head";
    case Role::kWife:
      return "wife";
    case Role::kSon:
      return "son";
    case Role::kDaughter:
      return "daughter";
    case Role::kFather:
      return "father";
    case Role::kMother:
      return "mother";
    case Role::kBrother:
      return "brother";
    case Role::kSister:
      return "sister";
    case Role::kGrandson:
      return "grandson";
    case Role::kGranddaughter:
      return "granddaughter";
    case Role::kNephew:
      return "nephew";
    case Role::kNiece:
      return "niece";
    case Role::kServant:
      return "servant";
    case Role::kLodger:
      return "lodger";
    case Role::kBoarder:
      return "boarder";
    case Role::kVisitor:
      return "visitor";
    case Role::kUnknown:
      return "unknown";
  }
  return "unknown";
}

Role ParseRole(std::string_view s) {
  const std::string v = ToLower(std::string(Trim(s)));
  if (v == "head") return Role::kHead;
  if (v == "wife") return Role::kWife;
  if (v == "son") return Role::kSon;
  if (v == "daughter") return Role::kDaughter;
  if (v == "father") return Role::kFather;
  if (v == "mother") return Role::kMother;
  if (v == "brother") return Role::kBrother;
  if (v == "sister") return Role::kSister;
  if (v == "grandson") return Role::kGrandson;
  if (v == "granddaughter") return Role::kGranddaughter;
  if (v == "nephew") return Role::kNephew;
  if (v == "niece") return Role::kNiece;
  if (v == "servant") return Role::kServant;
  if (v == "lodger") return Role::kLodger;
  if (v == "boarder") return Role::kBoarder;
  if (v == "visitor") return Role::kVisitor;
  return Role::kUnknown;
}

bool IsFamilyRole(Role role) {
  switch (role) {
    case Role::kHead:
    case Role::kWife:
    case Role::kSon:
    case Role::kDaughter:
    case Role::kFather:
    case Role::kMother:
    case Role::kBrother:
    case Role::kSister:
    case Role::kGrandson:
    case Role::kGranddaughter:
    case Role::kNephew:
    case Role::kNiece:
      return true;
    default:
      return false;
  }
}

int GenerationOffset(Role role) {
  switch (role) {
    case Role::kFather:
    case Role::kMother:
      return -1;
    case Role::kSon:
    case Role::kDaughter:
    case Role::kNephew:
    case Role::kNiece:
      return 1;
    case Role::kGrandson:
    case Role::kGranddaughter:
      return 2;
    default:
      return 0;
  }
}

}  // namespace tglink
