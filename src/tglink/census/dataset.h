// CensusDataset: one census snapshot D_i = (R_i, G_i) — all person records
// plus the partition of records into households.

#ifndef TGLINK_CENSUS_DATASET_H_
#define TGLINK_CENSUS_DATASET_H_

#include <string>
#include <cstddef>
#include <vector>

#include "tglink/census/household.h"
#include "tglink/census/record.h"
#include "tglink/util/status.h"

namespace tglink {

/// Summary statistics in the shape of the paper's Table 1.
struct DatasetStats {
  int year = 0;
  size_t num_records = 0;
  size_t num_households = 0;
  size_t unique_name_combinations = 0;  // distinct (first name, surname)
  double missing_value_ratio = 0.0;     // over the five string/sex attributes
  double avg_household_size = 0.0;
};

class CensusDataset {
 public:
  CensusDataset() = default;
  explicit CensusDataset(int year) : year_(year) {}

  int year() const { return year_; }
  void set_year(int year) { year_ = year; }

  const std::vector<PersonRecord>& records() const { return records_; }
  const std::vector<Household>& households() const { return households_; }

  const PersonRecord& record(RecordId id) const { return records_[id]; }
  const Household& household(GroupId id) const { return households_[id]; }

  size_t num_records() const { return records_.size(); }
  size_t num_households() const { return households_.size(); }

  /// Appends a household with the given member records; assigns dense ids
  /// and sets each member's `group` field. Returns the new household's id.
  GroupId AddHousehold(std::string external_id,
                       std::vector<PersonRecord> members);

  /// Mutable record access for in-place normalization / corruption.
  PersonRecord* mutable_record(RecordId id) { return &records_[id]; }

  /// Checks structural invariants: every record belongs to exactly one
  /// household, membership lists are consistent with records' group fields,
  /// external ids are unique.
  Status Validate() const;

  /// Computes Table-1-style statistics.
  DatasetStats Stats() const;

 private:
  int year_ = 0;
  std::vector<PersonRecord> records_;
  std::vector<Household> households_;
};

}  // namespace tglink

#endif  // TGLINK_CENSUS_DATASET_H_
