// Vocabulary for person sex and household roles. Roles in historical census
// data are recorded relative to the head of household ("daughter" means
// daughter *of the head*), which is why group enrichment (graph/enrichment.h)
// later replaces them with head-independent relationship types.

#ifndef TGLINK_CENSUS_ROLES_H_
#define TGLINK_CENSUS_ROLES_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace tglink {

enum class Sex : uint8_t { kUnknown = 0, kMale, kFemale };

/// Household role relative to the head of household.
enum class Role : uint8_t {
  kUnknown = 0,
  kHead,
  kWife,
  kSon,
  kDaughter,
  kFather,
  kMother,
  kBrother,
  kSister,
  kGrandson,
  kGranddaughter,
  kNephew,
  kNiece,
  kServant,
  kLodger,
  kBoarder,
  kVisitor,
};

const char* SexName(Sex sex);
Sex ParseSex(std::string_view s);

const char* RoleName(Role role);
Role ParseRole(std::string_view s);

/// True for roles in the head's nuclear/extended family; false for
/// co-residents (servants, lodgers, boarders, visitors, unknown).
bool IsFamilyRole(Role role);

/// Generation offset of the role-holder relative to the head:
/// parents -1, head/spouse/siblings 0, children/nephews +1, grandchildren +2.
/// Non-family roles return 0. Used to derive pairwise relationship types.
int GenerationOffset(Role role);

}  // namespace tglink

#endif  // TGLINK_CENSUS_ROLES_H_
