#include "tglink/census/record.h"

namespace tglink {

std::string PersonRecord::DisplayName() const {
  if (first_name.empty()) return surname;
  if (surname.empty()) return first_name;
  return first_name + " " + surname;
}

const char* FieldName(Field field) {
  switch (field) {
    case Field::kFirstName:
      return "first_name";
    case Field::kSurname:
      return "surname";
    case Field::kSex:
      return "sex";
    case Field::kAddress:
      return "address";
    case Field::kOccupation:
      return "occupation";
    case Field::kAge:
      return "age";
  }
  return "?";
}

std::string GetFieldValue(const PersonRecord& record, Field field) {
  switch (field) {
    case Field::kFirstName:
      return record.first_name;
    case Field::kSurname:
      return record.surname;
    case Field::kSex:
      return SexName(record.sex);
    case Field::kAddress:
      return record.address;
    case Field::kOccupation:
      return record.occupation;
    case Field::kAge:
      return record.has_age() ? std::to_string(record.age) : std::string();
  }
  return {};
}

bool IsFieldMissing(const PersonRecord& record, Field field) {
  switch (field) {
    case Field::kFirstName:
      return record.first_name.empty();
    case Field::kSurname:
      return record.surname.empty();
    case Field::kSex:
      return record.sex == Sex::kUnknown;
    case Field::kAddress:
      return record.address.empty();
    case Field::kOccupation:
      return record.occupation.empty();
    case Field::kAge:
      return !record.has_age();
  }
  return true;
}

}  // namespace tglink
