// Parallel-execution layer: a lazily-started, size-configurable thread pool
// with ParallelFor / ParallelMap primitives.
//
// Determinism contract: both primitives use static chunking of the index
// space and an ordered merge — ParallelMap stores fn(i) at index i, and
// ParallelFor hands each chunk a disjoint [begin, end) range — so as long as
// the per-index work is independent (no shared mutable state beyond the
// thread-safe obs layer), the output is bit-identical to the serial path
// regardless of thread count. Every caller in the linkage pipeline relies on
// this: floating-point results are computed per index, never reduced across
// chunk boundaries.
//
// Thread count policy (SetParallelThreadCount): 0 = hardware concurrency,
// 1 = fully serial (no pool is started, the body runs inline on the calling
// thread — exactly the pre-parallelism behavior), N = exactly N workers.
// The setting is process-wide and read at the start of each parallel
// section; calling it concurrently with a running section is unsupported.
//
// Nested sections degrade gracefully: a ParallelFor issued from inside a
// pool worker runs inline (serial) instead of deadlocking on the pool.
//
// Observability: each section reports its chunk count to the
// "parallel.tasks" counter and the live pool size to the "parallel.threads"
// gauge; chunks run under a caller-supplied span label, so worker activity
// shows up per thread in the Perfetto export.
//
// Static checking: the pool's internal lock discipline is expressed with
// the capability annotations from tglink/util/thread_annotations.h and
// verified under the `analyze` CMake preset (-Werror=thread-safety-analysis
// on Clang); see DESIGN.md §11.

#ifndef TGLINK_UTIL_PARALLEL_H_
#define TGLINK_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <string_view>
#include <vector>

namespace tglink {

/// Sets the process-wide worker count target: 0 = hardware concurrency,
/// 1 = serial, N = exactly N threads. Takes effect on the next parallel
/// section; an already-running pool of a different size is drained and
/// restarted lazily. Not thread-safe against in-flight sections.
void SetParallelThreadCount(int count);

/// The resolved worker count the next parallel section will use (>= 1).
[[nodiscard]] int ParallelThreadCount();

/// True while the calling thread is a pool worker (used to run nested
/// sections inline; exposed for tests and debug checks).
[[nodiscard]] bool InParallelWorker();

/// Invokes `body(begin, end)` over disjoint statically-chunked ranges
/// covering [0, n), in parallel on the shared pool. Blocks until every
/// chunk finished; rethrows the first exception a chunk raised. Chunks are
/// traced as spans named `span_name` on their worker thread. Runs inline
/// (serially, in index order) when n is small, the configured thread count
/// is 1, or the caller is itself a pool worker.
void ParallelFor(size_t n, std::string_view span_name,
                 const std::function<void(size_t, size_t)>& body);

/// Applies `fn(i)` to every index of [0, n) in parallel and returns the
/// results in index order — the ordered-merge primitive the determinism
/// guarantee is built on. T must be default-constructible and movable.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> ParallelMap(size_t n, std::string_view span_name,
                                         Fn&& fn) {
  std::vector<T> results(n);
  ParallelFor(n, span_name, [&results, &fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) results[i] = fn(i);
  });
  return results;
}

}  // namespace tglink

#endif  // TGLINK_UTIL_PARALLEL_H_
