// Minimal leveled logging to stderr. Off by default above kWarning so that
// library users and benchmarks control verbosity explicitly.

#ifndef TGLINK_UTIL_LOGGING_H_
#define TGLINK_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace tglink {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const std::string& message);

/// Stream-style one-shot logger; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tglink

#define TGLINK_LOG(level) \
  ::tglink::internal::LogMessage(::tglink::LogLevel::level)

#endif  // TGLINK_UTIL_LOGGING_H_
