// Minimal leveled logging to stderr. Off by default above kWarning so that
// library users and benchmarks control verbosity explicitly.
//
// Also home of the debug invariant layer: TGLINK_CHECK aborts with a
// diagnostic when its condition fails in every build type; TGLINK_DCHECK
// does the same in debug builds and compiles to nothing (the condition is
// not even evaluated) under NDEBUG. Both accept trailing stream output:
//
//   TGLINK_CHECK(st.ok()) << "mapping rejected link: " << st.ToString();
//   TGLINK_DCHECK(sim >= 0.0 && sim <= 1.0) << "sim out of range: " << sim;

#ifndef TGLINK_UTIL_LOGGING_H_
#define TGLINK_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace tglink {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Small sequential id of the calling thread (1 = first thread to ask).
/// Stable for the thread's lifetime; shared by log lines and trace events
/// so the two can be correlated.
uint32_t ThreadId();

namespace internal {

void EmitLog(LogLevel level, const std::string& message);

/// Stream-style one-shot logger; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process after emitting `message`. Overridable for death tests
/// is deliberately NOT supported: invariant failures must never be swallowed.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* condition,
                              const std::string& message);

/// Collects the streamed diagnostic for a failed check and aborts on
/// destruction. Only ever constructed on the failure path, so the hot path
/// of a passing check is a single branch.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}
  [[noreturn]] ~CheckMessage() {
    CheckFailed(file_, line_, condition_, stream_.str());
  }

  CheckMessage(const CheckMessage&) = delete;
  CheckMessage& operator=(const CheckMessage&) = delete;

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

/// Lets the ternary in TGLINK_CHECK discard the CheckMessage stream chain
/// while keeping `void` type on both arms (operator& binds looser than <<).
struct CheckVoidify {
  void operator&(const CheckMessage&) {}
};

}  // namespace internal
}  // namespace tglink

#define TGLINK_LOG(level) \
  ::tglink::internal::LogMessage(::tglink::LogLevel::level)

/// Fatal invariant check, active in ALL build types. Streams extra context:
///   TGLINK_CHECK(x < n) << "index " << x << " out of range " << n;
#define TGLINK_CHECK(condition)                                    \
  (condition) ? (void)0                                            \
              : ::tglink::internal::CheckVoidify() &               \
                    ::tglink::internal::CheckMessage(__FILE__, __LINE__, \
                                                     #condition)

/// Convenience form for Status-returning calls whose failure is a bug.
/// `auto` keeps logging.h free of a status.h dependency.
#define TGLINK_CHECK_OK(expr)                                 \
  do {                                                        \
    const auto& _tglink_st = (expr);                          \
    TGLINK_CHECK(_tglink_st.ok()) << _tglink_st.ToString();   \
  } while (0)

/// Debug-only invariant check. Under NDEBUG the condition is not evaluated
/// and the whole statement folds away (the dead `while (false)` body keeps
/// the operands syntactically checked so debug-only breakage is impossible).
#ifndef NDEBUG
#define TGLINK_DCHECK(condition) TGLINK_CHECK(condition)
#else
#define TGLINK_DCHECK(condition) \
  while (false) TGLINK_CHECK(true || (condition))
#endif

#endif  // TGLINK_UTIL_LOGGING_H_
