#include "tglink/util/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tglink {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box–Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

int Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off due to rounding
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[NextBounded(i)]);
  }
  return perm;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = sum;
  }
  for (double& c : cdf_) c /= sum;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace tglink
