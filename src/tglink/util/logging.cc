#include "tglink/util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "tglink/util/thread_annotations.h"

namespace tglink {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

/// Serializes whole formatted lines onto the stderr sink so concurrent
/// emitters (pool workers log too) never interleave mid-line. The fatal
/// path in CheckFailed deliberately does NOT take this lock: an abort must
/// never block on a logger that crashed while holding it.
Mutex& SinkMutex() {
  static Mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// "2026-08-06T12:34:56.789Z" — ISO-8601 UTC with millisecond precision.
void FormatUtcTimestamp(char* buf, size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &utc);
  std::snprintf(buf, size, "%s.%03dZ", date, static_cast<int>(millis));
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

uint32_t ThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local const uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal {

void EmitLog(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  char timestamp[48];
  FormatUtcTimestamp(timestamp, sizeof(timestamp));
  MutexLock lock(SinkMutex());
  std::fprintf(stderr, "[tglink %s %s t%u] %s\n", timestamp, LevelName(level),
               ThreadId(), message.c_str());
}

void CheckFailed(const char* file, int line, const char* condition,
                 const std::string& message) {
  std::fprintf(stderr, "[tglink FATAL] %s:%d: check failed: %s%s%s\n", file,
               line, condition, message.empty() ? "" : " — ",
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace tglink
