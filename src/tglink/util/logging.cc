#include "tglink/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace tglink {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

void EmitLog(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[tglink %s] %s\n", LevelName(level), message.c_str());
}

void CheckFailed(const char* file, int line, const char* condition,
                 const std::string& message) {
  std::fprintf(stderr, "[tglink FATAL] %s:%d: check failed: %s%s%s\n", file,
               line, condition, message.empty() ? "" : " — ",
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace tglink
