// Clang Thread Safety Annotations and capability-annotated lock wrappers.
//
// Every piece of mutable shared state in the library declares its lock
// discipline with these macros, and every mutex in library code is one of
// the wrappers below — the tglink_lint `raw-mutex` rule bans std::mutex /
// std::shared_mutex / std::lock_guard spelled raw outside this header, so
// the discipline is total: there is no unannotated lock to hide behind.
//
// Under Clang with -Wthread-safety (the `analyze` CMake preset promotes it
// to -Werror=thread-safety-analysis) a forgotten lock, a read of a
// TGLINK_GUARDED_BY member outside its mutex, or an unbalanced
// Lock()/Unlock() pair is a compile error. Under GCC (and any compiler
// without the attributes) every macro expands to nothing and the wrappers
// compile down to the plain standard-library primitives:
// sizeof(Mutex) == sizeof(std::mutex), all methods are inline one-liners —
// thread_annotations_test pins both properties.
//
// Conventions (see DESIGN.md §11):
//   - Data members:   int count_ TGLINK_GUARDED_BY(mu_);
//   - Internal helpers that assume the lock:  void F() TGLINK_REQUIRES(mu_);
//   - Public entry points that take the lock: void G() TGLINK_EXCLUDES(mu_);
//   - Scoped locking is the default (MutexLock / ReaderMutexLock /
//     WriterMutexLock); manual Lock()/Unlock() is reserved for the thread
//     pool's worker loop, where the lock is dropped around user code.
//
// The macro set mirrors Abseil's (capability model, not the older
// lockable model) so the names read the same as in upstream documentation:
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef TGLINK_UTIL_THREAD_ANNOTATIONS_H_
#define TGLINK_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(x)  // expands to nothing
#endif

/// Marks a type as a capability ("mutex"-like); lock functions name it.
#define TGLINK_CAPABILITY(x) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define TGLINK_SCOPED_CAPABILITY \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Data member readable/writable only while holding the named capability
/// (shared hold suffices for reads, exclusive for writes).
#define TGLINK_GUARDED_BY(x) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named capability.
#define TGLINK_PT_GUARDED_BY(x) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// The function may only be called while holding the capability exclusively.
#define TGLINK_REQUIRES(...) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// The function may only be called while holding the capability (shared).
#define TGLINK_REQUIRES_SHARED(...) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability exclusively and does not release it.
#define TGLINK_ACQUIRE(...) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// The function acquires the capability shared and does not release it.
#define TGLINK_ACQUIRE_SHARED(...) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the (exclusive or scoped) capability.
#define TGLINK_RELEASE(...) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The function releases the shared capability.
#define TGLINK_RELEASE_SHARED(...) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

/// The function tries to acquire; first argument is the success value.
#define TGLINK_TRY_ACQUIRE(...) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (deadlock / re-entrancy guard).
#define TGLINK_EXCLUDES(...) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define TGLINK_RETURN_CAPABILITY(x) \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: the function is deliberately outside the analysis. Every
/// use must carry a comment justifying why the analysis cannot see it.
#define TGLINK_NO_THREAD_SAFETY_ANALYSIS \
  TGLINK_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace tglink {

class CondVar;

/// std::mutex with the "mutex" capability. Zero-cost: no extra state, all
/// methods inline forwards (thread_annotations_test pins the sizeof).
class TGLINK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TGLINK_ACQUIRE() { mu_.lock(); }
  void Unlock() TGLINK_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TGLINK_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex with the "shared_mutex" capability: exclusive
/// Lock/Unlock for writers, LockShared/UnlockShared for readers.
class TGLINK_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() TGLINK_ACQUIRE() { mu_.lock(); }
  void Unlock() TGLINK_RELEASE() { mu_.unlock(); }
  void LockShared() TGLINK_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() TGLINK_RELEASE_SHARED() { mu_.unlock_shared(); }
  [[nodiscard]] bool TryLock() TGLINK_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive hold of a Mutex — the default way to lock.
class TGLINK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TGLINK_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() TGLINK_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive (writer) hold of a SharedMutex.
class TGLINK_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) TGLINK_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() TGLINK_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) hold of a SharedMutex.
class TGLINK_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) TGLINK_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() TGLINK_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with Mutex. Wait atomically releases the held
/// Mutex and reacquires it before returning, exactly like
/// std::condition_variable on std::unique_lock — the adopt/release dance
/// below reuses the caller's hold instead of a second ownership wrapper,
/// so the capability stays held across the call from the analysis's (and
/// the caller's) point of view.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. The caller must hold `mu`; it is released for
  /// the duration of the block and reacquired before returning. Callers
  /// loop over their predicate as with any condition variable.
  void Wait(Mutex& mu) TGLINK_REQUIRES(mu) {
    // The one sanctioned bridge to the std wait protocol: adopt the
    // caller's hold, hand it to the wait, then release ownership back.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Wait, but give up after `timeout`. Returns true when notified, false
  /// on timeout; either way the Mutex is reacquired before returning.
  /// Subject to spurious wakeups like Wait — callers loop on a predicate
  /// (or, for periodic work like the obs heartbeat, on a deadline).
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout)
      TGLINK_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool notified =
        cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // tglink-lint: disable=raw-mutex
};

}  // namespace tglink

#endif  // TGLINK_UTIL_THREAD_ANNOTATIONS_H_
