#include "tglink/util/csv.h"

#include <fstream>
#include <sstream>

namespace tglink {

Result<CsvRow> ParseCsvLine(std::string_view line, char sep) {
  CsvRow fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else {
      if (c == '"' && current.empty()) {
        in_quotes = true;
      } else if (c == sep) {
        fields.push_back(std::move(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::vector<CsvRow>> ParseCsv(std::string_view text, char sep) {
  std::vector<CsvRow> rows;
  size_t start = 0;
  bool in_quotes = false;
  // Split on newlines, but only outside quoted fields (quoted fields may
  // contain newlines).
  for (size_t i = 0; i <= text.size(); ++i) {
    const bool at_end = (i == text.size());
    const char c = at_end ? '\n' : text[i];
    if (!at_end && c == '"') in_quotes = !in_quotes;
    if ((c == '\n' && !in_quotes) || at_end) {
      std::string_view line = text.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = i + 1;
      if (line.empty()) continue;
      auto row = ParseCsvLine(line, sep);
      if (!row.ok()) return row.status();
      rows.push_back(std::move(row).value());
    }
  }
  return rows;
}

std::string EscapeCsvField(std::string_view field, char sep) {
  const bool needs_quotes =
      field.find(sep) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string FormatCsvRow(const CsvRow& row, char sep) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += EscapeCsvField(row[i], sep);
  }
  out.push_back('\n');
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return ss.str();
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path, char sep) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ParseCsv(text.value(), sep);
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char sep) {
  std::string out;
  for (const CsvRow& row : rows) out += FormatCsvRow(row, sep);
  return WriteStringToFile(path, out);
}

}  // namespace tglink
