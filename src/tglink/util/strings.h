// String helpers used across the library: ASCII case folding, trimming,
// splitting/joining, and the normalization applied to census attribute
// values before any similarity computation.

#ifndef TGLINK_UTIL_STRINGS_H_
#define TGLINK_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tglink {

/// ASCII lower-casing (census data in scope is Latin-script).
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on `sep`; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; no empty tokens are produced.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Canonical form used for matching: lower-cased, punctuation mapped to
/// spaces, whitespace runs collapsed to single spaces, trimmed.
/// "  O'Brien-Smith " -> "o brien smith".
std::string NormalizeValue(std::string_view s);

/// True if the value is semantically missing: empty after trimming, or one
/// of the conventional census placeholders ("-", "n/a", "na", "unknown",
/// "nk", "?") case-insensitively.
bool IsMissing(std::string_view s);

/// Parses a non-negative integer; returns -1 on any malformed input.
int ParseNonNegativeInt(std::string_view s);

}  // namespace tglink

#endif  // TGLINK_UTIL_STRINGS_H_
