#include "tglink/util/status.h"

namespace tglink {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace tglink
