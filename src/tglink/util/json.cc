#include "tglink/util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace tglink {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view. Positions are byte offsets
/// into the original input, reported in every error message.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    TGLINK_RETURN_IF_ERROR(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& reason) const {
    return Status::ParseError("json: " + reason + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kJsonMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        return ParseLiteral("true", out, JsonValue::Kind::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonValue::Kind::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonValue::Kind::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view word, JsonValue* out,
                      JsonValue::Kind kind, bool bool_value) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    out->kind = kind;
    out->bool_value = bool_value;
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      TGLINK_RETURN_IF_ERROR(ParseString(&key));
      for (const auto& [existing, unused] : out->members) {
        if (existing == key) return Error("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      JsonValue member;
      TGLINK_RETURN_IF_ERROR(ParseValue(&member, depth + 1));
      out->members.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWhitespace();
      JsonValue item;
      TGLINK_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          TGLINK_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            TGLINK_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // fallthrough to digits
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // a leading zero must not be followed by more digits
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // The grammar above accepted exactly a JSON number; strtod on that
    // substring cannot consume more or less than it.
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(value)) {
      return Error("number out of range");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace tglink
