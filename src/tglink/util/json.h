// Minimal strict JSON parser for configuration ingestion (scenario
// profiles; see synth/scenario.h). The counterpart of obs/json_writer.h:
// that side serializes, this side parses. Deliberately small — a DOM of
// JsonValue nodes, no streaming, no comments, no extensions — and strict:
// the full input must be one valid RFC 8259 document, objects preserve key
// order (so round-trips and error messages are deterministic), and nesting
// depth is capped so adversarial inputs cannot overflow the stack.

#ifndef TGLINK_UTIL_JSON_H_
#define TGLINK_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tglink/util/status.h"

namespace tglink {

/// One parsed JSON value. A tagged aggregate rather than a std::variant so
/// the accessors can stay trivial and the recursive members need no
/// indirection tricks.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;  // kArray elements
  /// kObject members in document order. Duplicate keys are rejected at
  /// parse time, so lookups are unambiguous.
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* Find(std::string_view key) const;
};

/// Maximum container nesting accepted by ParseJson. Configuration documents
/// are a handful of levels deep; anything deeper is hostile input.
inline constexpr int kJsonMaxDepth = 64;

/// Parses exactly one JSON document from `text` (leading/trailing
/// whitespace allowed, nothing else). Returns ParseError with a byte offset
/// and reason on malformed input, including: trailing garbage, duplicate
/// object keys, unpaired surrogates, control characters in strings,
/// numbers outside double range, and nesting beyond kJsonMaxDepth.
[[nodiscard]] Result<JsonValue> ParseJson(std::string_view text);

}  // namespace tglink

#endif  // TGLINK_UTIL_JSON_H_
