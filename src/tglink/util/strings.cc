#include "tglink/util/strings.h"

#include <algorithm>
#include <cctype>

namespace tglink {

namespace {
inline char LowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
inline char UpperChar(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}
inline bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), LowerChar);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), UpperChar);
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpaceChar(s[b])) ++b;
  while (e > b && IsSpaceChar(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpaceChar(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsSpaceChar(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string NormalizeValue(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool pending_space = false;
  for (char raw : s) {
    char c = LowerChar(raw);
    const bool keep = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
    if (keep) {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(c);
    } else {
      pending_space = true;  // punctuation and whitespace both separate
    }
  }
  return out;
}

bool IsMissing(std::string_view s) {
  std::string v = ToLower(std::string(Trim(s)));
  return v.empty() || v == "-" || v == "n/a" || v == "na" || v == "unknown" ||
         v == "nk" || v == "?";
}

int ParseNonNegativeInt(std::string_view s) {
  std::string_view t = Trim(s);
  if (t.empty() || t.size() > 9) return -1;
  long value = 0;
  for (char c : t) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return static_cast<int>(value);
}

}  // namespace tglink
