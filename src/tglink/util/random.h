// Deterministic pseudo-random number generation for the synthetic census
// generator and the corruption model.
//
// All stochastic behaviour in tglink flows through Rng so that a single
// 64-bit seed reproduces an entire experiment bit-for-bit. The engine is
// xoshiro256** seeded via splitmix64, which is fast, has a 2^256-1 period and
// passes BigCrush — more than adequate for data synthesis.

#ifndef TGLINK_UTIL_RANDOM_H_
#define TGLINK_UTIL_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tglink {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t* state);

/// Deterministic random engine (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (no cached spare; call cost is 2 draws).
  double NextGaussian();

  /// Poisson-distributed count with the given mean (Knuth's algorithm; mean
  /// is expected to be small, < ~30, as used for event counts per decade).
  int NextPoisson(double mean);

  /// Returns an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffles the index range [0, n) and returns it.
  std::vector<size_t> Permutation(size_t n);

  /// Forks an independent stream; children of distinct calls do not collide.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^exponent.
/// Used for skewed name-frequency distributions (the paper's census data has
/// an average of ~2.2 persons per first-name+surname combination with a
/// heavily skewed tail — Zipf reproduces that shape).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  size_t Sample(Rng* rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
};

}  // namespace tglink

#endif  // TGLINK_UTIL_RANDOM_H_
