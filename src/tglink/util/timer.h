// Wall-clock stopwatch for experiment harness timing output.

#ifndef TGLINK_UTIL_TIMER_H_
#define TGLINK_UTIL_TIMER_H_

#include <chrono>

namespace tglink {

/// Starts on construction; ElapsedSeconds/Millis read without stopping.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tglink

#endif  // TGLINK_UTIL_TIMER_H_
