// RFC-4180-style CSV reading and writing, used to persist census snapshots
// and linkage results. Handles quoted fields, embedded separators, embedded
// quotes ("" escaping) and both \n and \r\n line endings.

#ifndef TGLINK_UTIL_CSV_H_
#define TGLINK_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "tglink/util/status.h"

namespace tglink {

using CsvRow = std::vector<std::string>;

/// Parses one CSV line (no trailing newline) into fields.
/// Returns ParseError on an unterminated quoted field.
Result<CsvRow> ParseCsvLine(std::string_view line, char sep = ',');

/// Parses a whole CSV document. Empty lines are skipped.
Result<std::vector<CsvRow>> ParseCsv(std::string_view text, char sep = ',');

/// Quotes a field if it contains the separator, a quote, or a newline.
std::string EscapeCsvField(std::string_view field, char sep = ',');

/// Serializes one row (with trailing '\n').
std::string FormatCsvRow(const CsvRow& row, char sep = ',');

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes (truncating) a string to a file.
Status WriteStringToFile(const std::string& path, std::string_view contents);

/// Convenience: reads and parses a CSV file.
Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path,
                                        char sep = ',');

/// Convenience: serializes and writes rows to a CSV file.
Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char sep = ',');

}  // namespace tglink

#endif  // TGLINK_UTIL_CSV_H_
