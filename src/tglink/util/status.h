// Minimal Status / Result error-handling primitives.
//
// Library code in tglink never throws across module boundaries. Fallible
// operations (mostly I/O and parsing) return Status or Result<T>; pure
// algorithmic code takes validated inputs and returns values directly.

#ifndef TGLINK_UTIL_STATUS_H_
#define TGLINK_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace tglink {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kParseError,
  kOutOfRange,
  kInternal,
};

/// Returns a short human-readable name for a status code ("OK", "IoError"...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. The OK state carries no
/// allocation; error states carry a code and a message.
///
/// [[nodiscard]] on the class makes every Status-returning call warn when
/// the result is silently dropped — ignored error paths are the classic way
/// linkage pipelines go quietly wrong.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status::OK() for success");
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-Status union. `ok()` implies the value is present.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result from Status requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace tglink

/// Propagates a non-OK Status from the evaluated expression.
#define TGLINK_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::tglink::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

#endif  // TGLINK_UTIL_STATUS_H_
