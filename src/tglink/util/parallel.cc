#include "tglink/util/parallel.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <string>
#include <thread>  // tglink-lint: disable=raw-thread

#include "tglink/obs/memprof.h"
#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"
#include "tglink/util/logging.h"
#include "tglink/util/thread_annotations.h"

namespace tglink {

namespace {

thread_local bool t_in_worker = false;

/// Fixed-size worker pool executing one batch of indexed tasks at a time.
/// Batches are issued from a single controller thread (the pipeline driver);
/// workers pull task indices from a shared cursor under the batch mutex, so
/// scheduling is dynamic but the task *results* are merged by index by the
/// caller, keeping output deterministic.
///
/// Lock discipline (statically checked under the `analyze` preset): every
/// batch field is TGLINK_GUARDED_BY(mu_); the worker loop is the only place
/// in the library that uses manual Lock()/Unlock(), because it must drop
/// the lock around user task code — the paired calls keep the capability
/// balanced on every path, which is exactly what the analysis verifies.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    TGLINK_CHECK(num_threads >= 1) << "pool needs at least one worker";
    threads_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
    // Deterministic bookkeeping bytes (pool object + thread handles); the
    // workers' stacks live outside the allocator and are not counted.
    obs::ReportArenaBytes(
        "pool", sizeof(ThreadPool) +
                    static_cast<uint64_t>(num_threads) * sizeof(std::thread));
  }

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    work_cv_.NotifyAll();
    for (std::thread& t : threads_) t.join();
  }

  [[nodiscard]] int size() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(0) .. fn(num_tasks - 1) on the workers; blocks until all
  /// completed. Rethrows the first task exception. Only one batch may be
  /// in flight (single controller thread).
  void Execute(size_t num_tasks, const std::function<void(size_t)>& fn)
      TGLINK_EXCLUDES(mu_) {
    std::exception_ptr error;
    {
      MutexLock lock(mu_);
      TGLINK_CHECK(task_fn_ == nullptr)
          << "nested ThreadPool::Execute from the controller thread";
      task_fn_ = &fn;
      next_task_ = 0;
      tasks_done_ = 0;
      total_tasks_ = num_tasks;
      first_error_ = nullptr;
      work_cv_.NotifyAll();
      while (tasks_done_ != total_tasks_) done_cv_.Wait(mu_);
      task_fn_ = nullptr;
      error = first_error_;
      first_error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void WorkerLoop() TGLINK_EXCLUDES(mu_) {
    t_in_worker = true;
    mu_.Lock();
    for (;;) {
      while (!shutdown_ &&
             !(task_fn_ != nullptr && next_task_ < total_tasks_)) {
        work_cv_.Wait(mu_);
      }
      if (shutdown_) {
        mu_.Unlock();
        return;
      }
      while (task_fn_ != nullptr && next_task_ < total_tasks_) {
        const size_t index = next_task_++;
        const std::function<void(size_t)>* fn = task_fn_;
        mu_.Unlock();
        // The lock is dropped for the duration of user code; capability
        // operations stay outside the try block so every control path —
        // including the exceptional one — reacquires exactly once.
        std::exception_ptr task_error;
        try {
          (*fn)(index);
        } catch (...) {
          task_error = std::current_exception();
        }
        mu_.Lock();
        if (task_error && !first_error_) first_error_ = task_error;
        FinishTask();
      }
    }
  }

  /// Marks one task complete; wakes the controller on the last one.
  void FinishTask() TGLINK_REQUIRES(mu_) {
    if (++tasks_done_ == total_tasks_) done_cv_.NotifyAll();
  }

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  const std::function<void(size_t)>* task_fn_ TGLINK_GUARDED_BY(mu_) = nullptr;
  size_t next_task_ TGLINK_GUARDED_BY(mu_) = 0;
  size_t total_tasks_ TGLINK_GUARDED_BY(mu_) = 0;
  size_t tasks_done_ TGLINK_GUARDED_BY(mu_) = 0;
  std::exception_ptr first_error_ TGLINK_GUARDED_BY(mu_);
  bool shutdown_ TGLINK_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // tglink-lint: disable=raw-thread
};

struct PoolState {
  Mutex mu;
  int target TGLINK_GUARDED_BY(mu) = 1;  // resolved: >= 1
  // Lazily started; joined at exit. The pointer is guarded; the pool object
  // itself is internally synchronized once published.
  std::unique_ptr<ThreadPool> pool TGLINK_GUARDED_BY(mu);
};

PoolState& GlobalPoolState() {
  static PoolState state;
  return state;
}

int ResolveThreadCount(int count) {
  if (count > 0) return count;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Returns the shared pool sized to the current target, (re)starting it if
/// needed. nullptr when the target is serial.
ThreadPool* AcquirePool() {
  PoolState& state = GlobalPoolState();
  MutexLock lock(state.mu);
  if (state.target <= 1) return nullptr;
  if (state.pool == nullptr || state.pool->size() != state.target) {
    state.pool.reset();  // join a stale-sized pool before replacing it
    state.pool = std::make_unique<ThreadPool>(state.target);
  }
  return state.pool.get();
}

void RunChunksSerially(size_t n, size_t num_chunks, size_t chunk_size,
                       const std::function<void(size_t, size_t)>& body) {
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    body(begin, end);
  }
}

}  // namespace

void SetParallelThreadCount(int count) {
  TGLINK_CHECK(count >= 0) << "thread count must be >= 0, got " << count;
  PoolState& state = GlobalPoolState();
  MutexLock lock(state.mu);
  state.target = ResolveThreadCount(count);
  // An existing pool of the wrong size is replaced lazily by AcquirePool;
  // a pool that is no longer wanted at all is drained right away.
  if (state.target <= 1) state.pool.reset();
}

int ParallelThreadCount() {
  PoolState& state = GlobalPoolState();
  MutexLock lock(state.mu);
  return state.target;
}

bool InParallelWorker() { return t_in_worker; }

void ParallelFor(size_t n, std::string_view span_name,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  // Static chunking: a fixed split computed up front from n and the worker
  // count. A small over-decomposition (4 chunks per worker) smooths load
  // imbalance between heterogeneous chunks without giving up the fixed
  // chunk boundaries the serial fallback shares.
  ThreadPool* pool = t_in_worker ? nullptr : AcquirePool();
  const size_t workers = pool == nullptr ? 1 : static_cast<size_t>(pool->size());
  const size_t max_chunks = std::min(n, workers * 4);
  const size_t chunk_size = (n + max_chunks - 1) / max_chunks;
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  TGLINK_COUNTER_ADD("parallel.tasks", num_chunks);
  TGLINK_GAUGE_SET("parallel.threads", workers);
  if (pool == nullptr) {
    RunChunksSerially(n, num_chunks, chunk_size, body);
    return;
  }
  const std::string span(span_name);
  pool->Execute(num_chunks, [&body, &span, n, chunk_size](size_t c) {
    obs::ScopedSpan chunk_span(span);
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    body(begin, end);
  });
}

}  // namespace tglink
