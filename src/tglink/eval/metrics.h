// Pairwise linkage-quality metrics: precision, recall, F-measure over link
// sets, as used throughout the paper's Section 5.

#ifndef TGLINK_EVAL_METRICS_H_
#define TGLINK_EVAL_METRICS_H_

#include <cstdint>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "tglink/eval/gold.h"
#include "tglink/linkage/mapping.h"

namespace tglink {

struct PrecisionRecall {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  double precision() const {
    const size_t denom = true_positives + false_positives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double recall() const {
    const size_t denom = true_positives + false_negatives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double f_measure() const {
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  /// "P=97.3% R=94.8% F=96.0%"
  std::string ToString() const;
};

/// Generic link-set comparison; both vectors are treated as sets (duplicates
/// collapsed). Works for RecordLink and GroupLink alike.
PrecisionRecall EvaluateLinks(std::vector<std::pair<uint32_t, uint32_t>> predicted,
                              std::vector<std::pair<uint32_t, uint32_t>> gold);

/// Scores a predicted record mapping against resolved gold. When
/// `restrict_to_gold_universe` is set, predicted links whose old record does
/// not appear on the old side of any gold link are ignored — mirroring the
/// paper's evaluation against a verified subset (predictions outside the
/// expert universe can't be judged).
PrecisionRecall EvaluateRecordMapping(const RecordMapping& predicted,
                                      const ResolvedGold& gold,
                                      bool restrict_to_gold_universe = false);

/// Scores a predicted group mapping against resolved gold, with the same
/// optional universe restriction (on old-side households).
PrecisionRecall EvaluateGroupMapping(const GroupMapping& predicted,
                                     const ResolvedGold& gold,
                                     bool restrict_to_gold_universe = false);

/// Projects a predicted group mapping onto its *household match* links:
/// pairs supported by at least `min_shared` predicted record links. The
/// counterpart of SelectVerifiedSubset on the prediction side — together
/// they reproduce the paper's household-level evaluation protocol, where
/// single-member moves are not part of the reference.
GroupMapping HeavyGroupLinks(const GroupMapping& groups,
                             const RecordMapping& records,
                             const CensusDataset& old_dataset,
                             const CensusDataset& new_dataset,
                             size_t min_shared = 2);

}  // namespace tglink

#endif  // TGLINK_EVAL_METRICS_H_
