// Fixed-width text tables for the experiment harnesses, so that every bench
// binary prints rows in the same shape as the paper's tables.

#ifndef TGLINK_EVAL_REPORT_H_
#define TGLINK_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace tglink {

/// Column-aligned plain-text table with a header row and optional title.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  /// Renders with column separators and a rule under the header.
  std::string ToString() const;

  /// Convenience: "96.0" style fixed-precision formatting.
  static std::string Percent(double fraction, int decimals = 1);
  static std::string Fixed(double value, int decimals = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tglink

#endif  // TGLINK_EVAL_REPORT_H_
