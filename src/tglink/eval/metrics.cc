#include "tglink/eval/metrics.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace tglink {

std::string PrecisionRecall::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "P=%.1f%% R=%.1f%% F=%.1f%%",
                100.0 * precision(), 100.0 * recall(), 100.0 * f_measure());
  return buf;
}

PrecisionRecall EvaluateLinks(
    std::vector<std::pair<uint32_t, uint32_t>> predicted,
    std::vector<std::pair<uint32_t, uint32_t>> gold) {
  std::sort(predicted.begin(), predicted.end());
  predicted.erase(std::unique(predicted.begin(), predicted.end()),
                  predicted.end());
  std::sort(gold.begin(), gold.end());
  gold.erase(std::unique(gold.begin(), gold.end()), gold.end());

  PrecisionRecall pr;
  size_t i = 0, j = 0;
  while (i < predicted.size() && j < gold.size()) {
    if (predicted[i] < gold[j]) {
      ++pr.false_positives;
      ++i;
    } else if (gold[j] < predicted[i]) {
      ++pr.false_negatives;
      ++j;
    } else {
      ++pr.true_positives;
      ++i;
      ++j;
    }
  }
  pr.false_positives += predicted.size() - i;
  pr.false_negatives += gold.size() - j;
  return pr;
}

PrecisionRecall EvaluateRecordMapping(const RecordMapping& predicted,
                                      const ResolvedGold& gold,
                                      bool restrict_to_gold_universe) {
  std::vector<std::pair<uint32_t, uint32_t>> pred_links;
  if (restrict_to_gold_universe) {
    std::unordered_set<uint32_t> universe;
    for (const RecordLink& link : gold.record_links) {
      universe.insert(link.first);
    }
    for (const RecordLink& link : predicted.links()) {
      if (universe.count(link.first)) pred_links.push_back(link);
    }
  } else {
    pred_links = predicted.links();
  }
  return EvaluateLinks(std::move(pred_links), gold.record_links);
}

GroupMapping HeavyGroupLinks(const GroupMapping& groups,
                             const RecordMapping& records,
                             const CensusDataset& old_dataset,
                             const CensusDataset& new_dataset,
                             size_t min_shared) {
  std::unordered_map<uint64_t, size_t> shared;
  auto key = [](uint32_t a, uint32_t b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  for (const RecordLink& link : records.links()) {
    ++shared[key(old_dataset.record(link.first).group,
                 new_dataset.record(link.second).group)];
  }
  GroupMapping heavy;
  for (const GroupLink& link : groups.SortedLinks()) {
    auto it = shared.find(key(link.first, link.second));
    if (it != shared.end() && it->second >= min_shared) {
      // SortedLinks() is duplicate-free: the inserted-indicator from
      // GroupMapping::Add carries no information here.
      heavy.Add(link.first, link.second);  // tglink-lint: disable=ignored-status
    }
  }
  return heavy;
}

PrecisionRecall EvaluateGroupMapping(const GroupMapping& predicted,
                                     const ResolvedGold& gold,
                                     bool restrict_to_gold_universe) {
  std::vector<std::pair<uint32_t, uint32_t>> pred_links;
  if (restrict_to_gold_universe) {
    std::unordered_set<uint32_t> universe;
    for (const GroupLink& link : gold.group_links) {
      universe.insert(link.first);
    }
    for (const GroupLink& link : predicted.links()) {
      if (universe.count(link.first)) pred_links.push_back(link);
    }
  } else {
    pred_links = predicted.links();
  }
  return EvaluateLinks(std::move(pred_links), gold.group_links);
}

}  // namespace tglink
