// Ground-truth (gold) mappings for a pair of successive census snapshots.
// The synthetic generator emits these; the metrics module scores predicted
// mappings against them. Links are stored on external ids so that gold
// survives serialization round trips; Resolve() turns them into dense-id
// link sets aligned with two loaded datasets.

#ifndef TGLINK_EVAL_GOLD_H_
#define TGLINK_EVAL_GOLD_H_

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "tglink/census/dataset.h"
#include "tglink/linkage/mapping.h"
#include "tglink/util/status.h"

namespace tglink {

/// Gold mapping between snapshot i and i+1 on external ids.
struct GoldMapping {
  /// True person links: (old record external id, new record external id).
  std::vector<std::pair<std::string, std::string>> record_links;
  /// True household links: every (old household, new household) pair that
  /// shares at least one true person link (Eq. 2's "completely or
  /// partially corresponding" semantics).
  std::vector<std::pair<std::string, std::string>> group_links;
};

/// Gold resolved to the dense ids of two concrete datasets.
struct ResolvedGold {
  std::vector<RecordLink> record_links;  // sorted
  std::vector<GroupLink> group_links;    // sorted
};

/// Resolves external ids against the two datasets. Unknown ids are an
/// error (the gold must describe exactly these snapshots).
Result<ResolvedGold> ResolveGold(const GoldMapping& gold,
                                 const CensusDataset& old_dataset,
                                 const CensusDataset& new_dataset);

/// Restricts resolved gold to links whose old-side household is in
/// `old_households` — mirrors the paper's expert-verified household subset
/// protocol (1,250 households of the 1871/1881 pair). Group links keep only
/// pairs whose old group is in the set; record links keep only pairs whose
/// old record belongs to such a group.
ResolvedGold RestrictGoldToHouseholds(
    const ResolvedGold& gold, const CensusDataset& old_dataset,
    const std::unordered_set<GroupId>& old_households);

/// The paper's evaluation protocol: its reference mapping covers 1,250
/// expert-matched households (with ~5.5 members each) rather than every
/// true link in the region. This selects the equivalent subset from
/// synthetic gold: household pairs sharing at least `min_shared_members`
/// true person links, all record links between such pairs, and the group
/// links among them. Use together with the `restrict_to_gold_universe`
/// option of the metrics to reproduce the paper's measurement conditions.
ResolvedGold SelectVerifiedSubset(const ResolvedGold& gold,
                                  const CensusDataset& old_dataset,
                                  const CensusDataset& new_dataset,
                                  size_t min_shared_members = 2);

/// CSV persistence (two files' worth of rows in one: a `kind` column with
/// "record" / "group").
std::string GoldToCsv(const GoldMapping& gold);
Result<GoldMapping> GoldFromCsv(const std::string& text);

}  // namespace tglink

#endif  // TGLINK_EVAL_GOLD_H_
