// Attribute-weight tuning by coordinate ascent — the paper notes that
// "we could also apply learning-based methods to find a near-optimal
// weight vector" (Section 5.2.1, citing Richards et al.). This module
// implements that alternative: given gold record links, it optimizes the
// attribute weights of a SimilarityFunction against the F-measure of a
// greedy one-to-one attribute matching (a fast, faithful proxy for
// pre-matching quality), producing a data-driven ω to feed the full
// iterative algorithm.

#ifndef TGLINK_EVAL_TUNER_H_
#define TGLINK_EVAL_TUNER_H_

#include <vector>

#include "tglink/blocking/blocking.h"
#include "tglink/census/dataset.h"
#include "tglink/eval/gold.h"
#include "tglink/eval/metrics.h"
#include "tglink/similarity/composite.h"

namespace tglink {

struct TunerConfig {
  /// Granularity of the per-coordinate grid over [min_weight, max_weight]
  /// (weights are renormalized to sum 1 for evaluation).
  double step = 0.1;
  /// Full sweeps over all attributes.
  int max_rounds = 3;
  /// Weight bounds before renormalization.
  double min_weight = 0.0;
  double max_weight = 0.8;
  /// Threshold used by the greedy-matching objective.
  double threshold = 0.7;
  BlockingConfig blocking = BlockingConfig::MakeDefault();
};

struct TunerResult {
  SimilarityFunction tuned;
  double initial_f = 0.0;
  double tuned_f = 0.0;
  size_t evaluations = 0;
};

/// Objective: F-measure of greedy 1:1 matching with `sim_func` at
/// `threshold` against the gold record links.
double GreedyMatchObjective(const CensusDataset& old_dataset,
                            const CensusDataset& new_dataset,
                            const ResolvedGold& gold,
                            const SimilarityFunction& sim_func,
                            double threshold,
                            const BlockingConfig& blocking);

/// Coordinate-ascent tuning of the attribute weights of `base`. The spec
/// list (fields + measures) is kept; only weights change. Deterministic.
TunerResult TuneAttributeWeights(const CensusDataset& old_dataset,
                                 const CensusDataset& new_dataset,
                                 const ResolvedGold& gold,
                                 const SimilarityFunction& base,
                                 const TunerConfig& config = {});

}  // namespace tglink

#endif  // TGLINK_EVAL_TUNER_H_
