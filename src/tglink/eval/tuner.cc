#include "tglink/eval/tuner.h"

#include <algorithm>

#include "tglink/linkage/residual.h"

namespace tglink {

namespace {
SimilarityFunction WithWeights(const SimilarityFunction& base,
                               const std::vector<double>& weights,
                               double threshold) {
  std::vector<AttributeSpec> specs = base.specs();
  double total = 0.0;
  for (double w : weights) total += w;
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].weight = total > 0.0 ? weights[i] / total : 0.0;
  }
  SimilarityFunction tuned(specs, threshold);
  tuned.set_missing_policy(base.missing_policy());
  tuned.set_year_gap(base.year_gap());
  tuned.set_age_tolerance(base.age_tolerance());
  return tuned;
}
}  // namespace

double GreedyMatchObjective(const CensusDataset& old_dataset,
                            const CensusDataset& new_dataset,
                            const ResolvedGold& gold,
                            const SimilarityFunction& sim_func,
                            double threshold,
                            const BlockingConfig& blocking) {
  SimilarityFunction scored = sim_func;
  scored.set_threshold(threshold);
  scored.set_year_gap(new_dataset.year() - old_dataset.year());
  const std::vector<bool> all_old(old_dataset.num_records(), true);
  const std::vector<bool> all_new(new_dataset.num_records(), true);
  const std::vector<ScoredPair> links = GreedyOneToOneMatch(
      old_dataset, new_dataset, scored, blocking, all_old, all_new);
  std::vector<std::pair<uint32_t, uint32_t>> predicted;
  predicted.reserve(links.size());
  for (const ScoredPair& link : links) {
    predicted.emplace_back(link.old_id, link.new_id);
  }
  return EvaluateLinks(std::move(predicted), gold.record_links).f_measure();
}

TunerResult TuneAttributeWeights(const CensusDataset& old_dataset,
                                 const CensusDataset& new_dataset,
                                 const ResolvedGold& gold,
                                 const SimilarityFunction& base,
                                 const TunerConfig& config) {
  std::vector<double> weights;
  weights.reserve(base.specs().size());
  for (const AttributeSpec& spec : base.specs()) {
    weights.push_back(spec.weight);
  }

  TunerResult result;
  auto evaluate = [&](const std::vector<double>& w) {
    ++result.evaluations;
    return GreedyMatchObjective(old_dataset, new_dataset, gold,
                                WithWeights(base, w, config.threshold),
                                config.threshold, config.blocking);
  };

  double best = evaluate(weights);
  result.initial_f = best;
  for (int round = 0; round < config.max_rounds; ++round) {
    bool improved = false;
    for (size_t i = 0; i < weights.size(); ++i) {
      // Per-coordinate grid search: unlike small relative moves, a grid
      // jump can take a badly mis-calibrated weight (say 0.8 on a volatile
      // attribute) straight to a sensible value in one accepted move.
      for (double value = config.min_weight;
           value <= config.max_weight + 1e-9; value += config.step) {
        std::vector<double> candidate = weights;
        candidate[i] = value;
        if (candidate[i] == weights[i]) continue;
        const double f = evaluate(candidate);
        if (f > best + 1e-9) {
          best = f;
          weights = candidate;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  result.tuned = WithWeights(base, weights, config.threshold);
  result.tuned_f = best;
  return result;
}

}  // namespace tglink
