#include "tglink/eval/report.h"

#include <algorithm>
#include <cstdio>

namespace tglink {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += "| ";
      line += cell;
      line.append(widths[i] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  if (!header_.empty()) {
    out += render_row(header_);
    std::string rule;
    for (size_t w : widths) rule += "|" + std::string(w + 2, '-');
    out += rule + "|\n";
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::Percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, 100.0 * fraction);
  return buf;
}

std::string TextTable::Fixed(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace tglink
