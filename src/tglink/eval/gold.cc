#include "tglink/eval/gold.h"

#include <algorithm>
#include <unordered_map>

#include "tglink/util/csv.h"

namespace tglink {

namespace {
std::unordered_map<std::string, uint32_t> IndexRecords(
    const CensusDataset& dataset) {
  std::unordered_map<std::string, uint32_t> index;
  index.reserve(dataset.num_records());
  for (uint32_t r = 0; r < dataset.num_records(); ++r) {
    index.emplace(dataset.record(r).external_id, r);
  }
  return index;
}

std::unordered_map<std::string, uint32_t> IndexHouseholds(
    const CensusDataset& dataset) {
  std::unordered_map<std::string, uint32_t> index;
  index.reserve(dataset.num_households());
  for (uint32_t g = 0; g < dataset.num_households(); ++g) {
    index.emplace(dataset.household(g).external_id, g);
  }
  return index;
}
}  // namespace

Result<ResolvedGold> ResolveGold(const GoldMapping& gold,
                                 const CensusDataset& old_dataset,
                                 const CensusDataset& new_dataset) {
  const auto old_records = IndexRecords(old_dataset);
  const auto new_records = IndexRecords(new_dataset);
  const auto old_groups = IndexHouseholds(old_dataset);
  const auto new_groups = IndexHouseholds(new_dataset);

  ResolvedGold resolved;
  resolved.record_links.reserve(gold.record_links.size());
  for (const auto& [o, n] : gold.record_links) {
    auto io = old_records.find(o);
    auto in = new_records.find(n);
    if (io == old_records.end() || in == new_records.end()) {
      return Status::NotFound("gold record link references unknown id: " + o +
                              " / " + n);
    }
    resolved.record_links.emplace_back(io->second, in->second);
  }
  resolved.group_links.reserve(gold.group_links.size());
  for (const auto& [o, n] : gold.group_links) {
    auto io = old_groups.find(o);
    auto in = new_groups.find(n);
    if (io == old_groups.end() || in == new_groups.end()) {
      return Status::NotFound("gold group link references unknown id: " + o +
                              " / " + n);
    }
    resolved.group_links.emplace_back(io->second, in->second);
  }
  std::sort(resolved.record_links.begin(), resolved.record_links.end());
  std::sort(resolved.group_links.begin(), resolved.group_links.end());
  return resolved;
}

ResolvedGold RestrictGoldToHouseholds(
    const ResolvedGold& gold, const CensusDataset& old_dataset,
    const std::unordered_set<GroupId>& old_households) {
  ResolvedGold restricted;
  for (const RecordLink& link : gold.record_links) {
    if (old_households.count(old_dataset.record(link.first).group)) {
      restricted.record_links.push_back(link);
    }
  }
  for (const GroupLink& link : gold.group_links) {
    if (old_households.count(link.first)) {
      restricted.group_links.push_back(link);
    }
  }
  return restricted;
}

ResolvedGold SelectVerifiedSubset(const ResolvedGold& gold,
                                  const CensusDataset& old_dataset,
                                  const CensusDataset& new_dataset,
                                  size_t min_shared_members) {
  // Count true person links per (old household, new household) pair.
  std::unordered_map<uint64_t, size_t> shared;
  auto key = [](GroupId a, GroupId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  for (const RecordLink& link : gold.record_links) {
    ++shared[key(old_dataset.record(link.first).group,
                 new_dataset.record(link.second).group)];
  }
  // The expert reference consists of *matched households*: group links
  // carrying >= min_shared_members true person links, and the person links
  // flowing across exactly those household pairs. Single-member moves out
  // of a verified household are not part of the reference (the experts
  // linked households, not emigrating individuals).
  ResolvedGold verified;
  std::unordered_set<uint64_t> heavy;
  for (const GroupLink& link : gold.group_links) {
    auto it = shared.find(key(link.first, link.second));
    if (it != shared.end() && it->second >= min_shared_members) {
      heavy.insert(key(link.first, link.second));
      verified.group_links.push_back(link);
    }
  }
  for (const RecordLink& link : gold.record_links) {
    if (heavy.count(key(old_dataset.record(link.first).group,
                        new_dataset.record(link.second).group))) {
      verified.record_links.push_back(link);
    }
  }
  return verified;
}

std::string GoldToCsv(const GoldMapping& gold) {
  std::string out = FormatCsvRow({"kind", "old_id", "new_id"});
  for (const auto& [o, n] : gold.record_links) {
    out += FormatCsvRow({"record", o, n});
  }
  for (const auto& [o, n] : gold.group_links) {
    out += FormatCsvRow({"group", o, n});
  }
  return out;
}

Result<GoldMapping> GoldFromCsv(const std::string& text) {
  auto parsed = ParseCsv(text);
  if (!parsed.ok()) return parsed.status();
  const auto& rows = parsed.value();
  if (rows.empty() || rows[0].size() != 3 || rows[0][0] != "kind") {
    return Status::ParseError("unexpected gold CSV header");
  }
  GoldMapping gold;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != 3) {
      return Status::ParseError("gold row " + std::to_string(i) +
                                " has wrong arity");
    }
    if (rows[i][0] == "record") {
      gold.record_links.emplace_back(rows[i][1], rows[i][2]);
    } else if (rows[i][0] == "group") {
      gold.group_links.emplace_back(rows[i][1], rows[i][2]);
    } else {
      return Status::ParseError("unknown gold link kind: " + rows[i][0]);
    }
  }
  return gold;
}

}  // namespace tglink
