#include "tglink/graph/enrichment.h"

#include <cstdlib>

#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"

namespace tglink {

RelType DeriveRelType(Role role_a, Role role_b) {
  if (!IsFamilyRole(role_a) || !IsFamilyRole(role_b)) {
    return RelType::kCoResident;
  }
  const bool head_wife = (role_a == Role::kHead && role_b == Role::kWife) ||
                         (role_a == Role::kWife && role_b == Role::kHead);
  if (head_wife) return RelType::kSpouse;
  const int diff =
      std::abs(GenerationOffset(role_a) - GenerationOffset(role_b));
  switch (diff) {
    case 0:
      // Wife + head's sibling / head + his sibling / two children: treat
      // all same-generation family pairs as the sibling class.
      return RelType::kSibling;
    case 1:
      return RelType::kParentChild;
    case 2:
      return RelType::kGrandparent;
    default:
      return RelType::kExtended;
  }
}

HouseholdGraph EnrichHousehold(const CensusDataset& dataset, GroupId group) {
  const Household& hh = dataset.household(group);
  HouseholdGraph graph(group, hh.members);
  const std::vector<RecordId>& members = graph.members();
  for (size_t i = 0; i < members.size(); ++i) {
    const PersonRecord& a = dataset.record(members[i]);
    for (size_t j = i + 1; j < members.size(); ++j) {
      const PersonRecord& b = dataset.record(members[j]);
      const RelType type = DeriveRelType(a.role, b.role);
      const bool ages_known = a.has_age() && b.has_age();
      const int age_diff = ages_known ? a.age - b.age : 0;
      graph.AddEdge(members[i], members[j], type, age_diff, ages_known);
    }
  }
  return graph;
}

std::vector<HouseholdGraph> EnrichAllHouseholds(const CensusDataset& dataset) {
  TGLINK_TRACE_SPAN("graph.enrich_households");
  std::vector<HouseholdGraph> graphs;
  graphs.reserve(dataset.num_households());
  for (GroupId g = 0; g < dataset.num_households(); ++g) {
    graphs.push_back(EnrichHousehold(dataset, g));
  }
  TGLINK_COUNTER_ADD("graph.enriched_households", graphs.size());
  return graphs;
}

}  // namespace tglink
