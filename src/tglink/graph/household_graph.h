// HouseholdGraph: the graph representation of one household after the
// group-enrichment phase (Section 3.1 of the paper). Vertices are the
// household's person records; edges are *head-independent* relationship
// types with the age difference attached as a time-stable edge property.

#ifndef TGLINK_GRAPH_HOUSEHOLD_GRAPH_H_
#define TGLINK_GRAPH_HOUSEHOLD_GRAPH_H_

#include <cstdint>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "tglink/census/record.h"

namespace tglink {

/// Unified (head-independent) pairwise relationship types. The original
/// census roles are relative to the head of household and do not survive a
/// person moving to another household; these derived types do.
enum class RelType : uint8_t {
  kSpouse = 0,
  kParentChild,     // one generation apart (direction carried by age sign)
  kSibling,         // same generation within the family
  kGrandparent,     // two generations apart
  kExtended,        // family, > 2 generations apart or unclassifiable
  kCoResident,      // at least one non-family member (servant, lodger, ...)
};

const char* RelTypeName(RelType type);

/// An enriched, undirected relationship edge. Endpoints are ordered
/// a < b (by RecordId); `age_diff` is age(a) - age(b) when both ages are
/// known (signed, so that parent/child orientation is preserved through the
/// vertex-pair orientation used by subgraph matching).
struct RelEdge {
  RecordId a = kInvalidRecord;
  RecordId b = kInvalidRecord;
  RelType type = RelType::kCoResident;
  int age_diff = 0;
  bool age_diff_known = false;
};

/// Enriched household graph: complete over the household's members.
class HouseholdGraph {
 public:
  HouseholdGraph() = default;
  HouseholdGraph(GroupId group, std::vector<RecordId> members);

  GroupId group() const { return group_; }
  const std::vector<RecordId>& members() const { return members_; }
  const std::vector<RelEdge>& edges() const { return edges_; }
  size_t num_edges() const { return edges_.size(); }

  /// Adds an edge; endpoints are canonicalized to a < b (flipping the sign
  /// of age_diff as needed). Both endpoints must be members.
  void AddEdge(RecordId a, RecordId b, RelType type, int age_diff,
               bool age_diff_known);

  /// Edge between two members, or nullptr. After enrichment every member
  /// pair has an edge.
  const RelEdge* EdgeBetween(RecordId a, RecordId b) const;

  /// Signed age difference age(x) - age(y) along the edge between x and y.
  /// Only meaningful when the edge exists and its age_diff_known is true.
  int OrientedAgeDiff(const RelEdge& edge, RecordId x, RecordId y) const;

 private:
  static uint64_t PairKey(RecordId a, RecordId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  GroupId group_ = kInvalidGroup;
  std::vector<RecordId> members_;
  std::vector<RelEdge> edges_;
  std::unordered_map<uint64_t, uint32_t> edge_index_;  // PairKey(a<b) -> idx
};

}  // namespace tglink

#endif  // TGLINK_GRAPH_HOUSEHOLD_GRAPH_H_
