#include "tglink/graph/household_graph.h"

#include <algorithm>
#include <cassert>

namespace tglink {

const char* RelTypeName(RelType type) {
  switch (type) {
    case RelType::kSpouse:
      return "spouse";
    case RelType::kParentChild:
      return "parent-child";
    case RelType::kSibling:
      return "sibling";
    case RelType::kGrandparent:
      return "grandparent";
    case RelType::kExtended:
      return "extended";
    case RelType::kCoResident:
      return "co-resident";
  }
  return "?";
}

HouseholdGraph::HouseholdGraph(GroupId group, std::vector<RecordId> members)
    : group_(group), members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
}

void HouseholdGraph::AddEdge(RecordId a, RecordId b, RelType type,
                             int age_diff, bool age_diff_known) {
  assert(a != b);
  if (a > b) {
    std::swap(a, b);
    age_diff = -age_diff;
  }
  assert(std::binary_search(members_.begin(), members_.end(), a));
  assert(std::binary_search(members_.begin(), members_.end(), b));
  RelEdge edge;
  edge.a = a;
  edge.b = b;
  edge.type = type;
  edge.age_diff = age_diff;
  edge.age_diff_known = age_diff_known;
  const uint32_t idx = static_cast<uint32_t>(edges_.size());
  const bool inserted = edge_index_.emplace(PairKey(a, b), idx).second;
  assert(inserted && "duplicate edge");
  (void)inserted;
  edges_.push_back(edge);
}

const RelEdge* HouseholdGraph::EdgeBetween(RecordId a, RecordId b) const {
  if (a > b) std::swap(a, b);
  auto it = edge_index_.find(PairKey(a, b));
  if (it == edge_index_.end()) return nullptr;
  return &edges_[it->second];
}

int HouseholdGraph::OrientedAgeDiff(const RelEdge& edge, RecordId x,
                                    RecordId y) const {
  assert((edge.a == x && edge.b == y) || (edge.a == y && edge.b == x));
  (void)y;
  return edge.a == x ? edge.age_diff : -edge.age_diff;
}

}  // namespace tglink
