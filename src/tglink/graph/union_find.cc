#include "tglink/graph/union_find.h"

#include <numeric>

#include "tglink/util/logging.h"

namespace tglink {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_components_(n) {
  TGLINK_CHECK(n <= UINT32_MAX) << "UnionFind capacity exceeded: " << n;
  std::iota(parent_.begin(), parent_.end(), 0u);
}

size_t UnionFind::Find(size_t x) {
  TGLINK_DCHECK(x < parent_.size())
      << "Find(" << x << ") on forest of size " << parent_.size();
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = static_cast<uint32_t>(ra);
  size_[ra] += size_[rb];
  // Acyclicity: the surviving root must still be its own parent, merging two
  // distinct components always leaves at least one component, and component
  // sizes never exceed the universe.
  TGLINK_DCHECK(parent_[ra] == ra);
  TGLINK_DCHECK(num_components_ > 1);
  TGLINK_DCHECK(size_[ra] <= parent_.size());
  --num_components_;
  return true;
}

std::vector<uint32_t> UnionFind::ComponentLabels() {
  std::vector<uint32_t> labels(parent_.size());
  std::vector<uint32_t> root_label(parent_.size(), UINT32_MAX);
  uint32_t next = 0;
  for (size_t i = 0; i < parent_.size(); ++i) {
    const size_t root = Find(i);
    if (root_label[root] == UINT32_MAX) root_label[root] = next++;
    labels[i] = root_label[root];
  }
  TGLINK_DCHECK(next == num_components_)
      << "labeled " << next << " components, tracked " << num_components_;
  return labels;
}

}  // namespace tglink
