// Group enrichment (Section 3.1): turns each household into a complete
// graph over its members, replacing head-relative census roles by unified
// pairwise relationship types and attaching the age difference as a
// time-stable edge property.

#ifndef TGLINK_GRAPH_ENRICHMENT_H_
#define TGLINK_GRAPH_ENRICHMENT_H_

#include <vector>

#include "tglink/census/dataset.h"
#include "tglink/graph/household_graph.h"

namespace tglink {

/// Derives the unified relationship type between two household members from
/// their head-relative roles:
///  * head+wife                          -> spouse
///  * same generation, both family       -> sibling (head+sibling, children
///                                          among themselves, ...)
///  * one generation apart, both family  -> parent-child
///  * two generations apart, both family -> grandparent
///  * otherwise family                   -> extended
///  * any non-family participant         -> co-resident
RelType DeriveRelType(Role role_a, Role role_b);

/// Builds the enriched graph of one household ("completeGroups" in
/// Algorithm 1): an edge for every member pair, with DeriveRelType and the
/// signed age difference.
HouseholdGraph EnrichHousehold(const CensusDataset& dataset, GroupId group);

/// Enriches every household of the dataset; result is indexed by GroupId.
std::vector<HouseholdGraph> EnrichAllHouseholds(const CensusDataset& dataset);

}  // namespace tglink

#endif  // TGLINK_GRAPH_ENRICHMENT_H_
