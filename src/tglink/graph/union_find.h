// Disjoint-set forest with union by size and path halving. Used to compute
// the transitive closure of accepted pre-match pairs (cluster labels,
// Section 3.2) and connected components of the evolution graph (Section 4.2).

#ifndef TGLINK_GRAPH_UNION_FIND_H_
#define TGLINK_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace tglink {

class UnionFind {
 public:
  explicit UnionFind(size_t n);

  /// Representative of x's component.
  [[nodiscard]] size_t Find(size_t x);

  /// Merges the components of a and b; returns true if they were distinct.
  bool Union(size_t a, size_t b);

  /// True iff a and b share a component.
  [[nodiscard]] bool Connected(size_t a, size_t b) {
    return Find(a) == Find(b);
  }

  [[nodiscard]] size_t size() const { return parent_.size(); }
  [[nodiscard]] size_t num_components() const { return num_components_; }

  /// Size of x's component.
  [[nodiscard]] size_t ComponentSize(size_t x) { return size_[Find(x)]; }

  /// Dense relabeling: returns labels[i] in [0, num_components) such that
  /// labels[i] == labels[j] iff i and j are connected. Label values are
  /// assigned in order of first appearance, so they are deterministic.
  [[nodiscard]] std::vector<uint32_t> ComponentLabels();

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t num_components_;
};

}  // namespace tglink

#endif  // TGLINK_GRAPH_UNION_FIND_H_
