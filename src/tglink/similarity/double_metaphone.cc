#include "tglink/similarity/double_metaphone.h"

#include <cctype>

#include "tglink/util/strings.h"

namespace tglink {

namespace {

/// Working state: the upper-cased input padded with sentinels, a cursor,
/// and the two output codes.
class Encoder {
 public:
  Encoder(std::string_view name, size_t max_length)
      : max_length_(max_length) {
    word_.reserve(name.size());
    for (char c : name) {
      if (std::isalpha(static_cast<unsigned char>(c))) {
        word_.push_back(
            static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
      }
    }
    length_ = word_.size();
  }

  MetaphoneCodes Run();

 private:
  char At(size_t i) const { return i < length_ ? word_[i] : '\0'; }

  bool IsVowelAt(size_t i) const {
    const char c = At(i);
    return c == 'A' || c == 'E' || c == 'I' || c == 'O' || c == 'U' ||
           c == 'Y';
  }

  /// True if word_[start..] begins with any of the given strings.
  bool StringAt(size_t start, std::initializer_list<const char*> options)
      const {
    if (start > length_) return false;
    const std::string_view rest =
        std::string_view(word_).substr(start);
    for (const char* option : options) {
      const std::string_view o(option);
      if (rest.size() >= o.size() && rest.substr(0, o.size()) == o) {
        return true;
      }
    }
    return false;
  }

  bool Contains(std::initializer_list<const char*> options) const {
    for (const char* option : options) {
      if (word_.find(option) != std::string::npos) return true;
    }
    return false;
  }

  bool IsSlavoGermanic() const {
    return Contains({"W", "K", "CZ", "WITZ"});
  }

  void Add(const char* primary, const char* secondary) {
    primary_ += primary;
    secondary_ += secondary;
  }
  void Add(const char* both) { Add(both, both); }

  bool Done() const {
    return primary_.size() >= max_length_ &&
           secondary_.size() >= max_length_;
  }

  size_t max_length_;
  std::string word_;
  size_t length_ = 0;
  size_t pos_ = 0;
  std::string primary_;
  std::string secondary_;
};

MetaphoneCodes Encoder::Run() {
  if (length_ == 0) return {};

  // Skip silent letters at the start.
  if (StringAt(0, {"GN", "KN", "PN", "WR", "PS"})) pos_ = 1;

  // Initial 'X' is pronounced 'Z' (e.g. "Xavier") which maps to 'S'.
  if (At(0) == 'X') {
    Add("S");
    pos_ = 1;
  }

  while (pos_ < length_ && !Done()) {
    const char c = At(pos_);
    switch (c) {
      case 'A':
      case 'E':
      case 'I':
      case 'O':
      case 'U':
      case 'Y':
        if (pos_ == 0) Add("A");  // initial vowels map to 'A'
        ++pos_;
        break;

      case 'B':
        Add("P");
        pos_ += (At(pos_ + 1) == 'B') ? 2 : 1;
        break;

      case 'C': {
        // Various Germanic "-ACH-" pronunciations.
        if (pos_ > 1 && !IsVowelAt(pos_ - 2) && StringAt(pos_ - 1, {"ACH"}) &&
            At(pos_ + 2) != 'I' &&
            (At(pos_ + 2) != 'E' || StringAt(pos_ - 2, {"BACHER", "MACHER"}))) {
          Add("K");
          pos_ += 2;
          break;
        }
        if (pos_ == 0 && StringAt(0, {"CAESAR"})) {
          Add("S");
          pos_ += 2;
          break;
        }
        if (StringAt(pos_, {"CHIA"})) {  // italian "chianti"
          Add("K");
          pos_ += 2;
          break;
        }
        if (StringAt(pos_, {"CH"})) {
          if (pos_ > 0 && StringAt(pos_, {"CHAE"})) {  // "michael"
            Add("K", "X");
            pos_ += 2;
            break;
          }
          // Greek roots pronounced 'K'.
          if (pos_ == 0 &&
              (StringAt(1, {"HARAC", "HARIS", "HOR", "HYM", "HIA", "HEM"})) &&
              !StringAt(0, {"CHORE"})) {
            Add("K");
            pos_ += 2;
            break;
          }
          // Germanic/Greek contexts: 'CH' as 'K'.
          if (Contains({"VAN ", "VON ", "SCH"}) ||
              StringAt(pos_ > 2 ? pos_ - 2 : 0,
                       {"ORCHES", "ARCHIT", "ORCHID"}) ||
              At(pos_ + 2) == 'T' || At(pos_ + 2) == 'S' ||
              ((pos_ == 0 || At(pos_ - 1) == 'A' || At(pos_ - 1) == 'O' ||
                At(pos_ - 1) == 'U' || At(pos_ - 1) == 'E') &&
               StringAt(pos_ + 2,
                        {"L", "R", "N", "M", "B", "H", "F", "V", "W"}))) {
            Add("K");
          } else if (pos_ > 0) {
            if (StringAt(0, {"MC"})) {
              Add("K");  // "mcHugh"
            } else {
              Add("X", "K");
            }
          } else {
            Add("X");
          }
          pos_ += 2;
          break;
        }
        if (StringAt(pos_, {"CZ"}) && !StringAt(pos_ >= 2 ? pos_ - 2 : 0,
                                                 {"WICZ"})) {
          Add("S", "X");
          pos_ += 2;
          break;
        }
        if (StringAt(pos_, {"CIA"})) {  // "focaccia"
          Add("X");
          pos_ += 3;
          break;
        }
        if (StringAt(pos_, {"CC"}) && !(pos_ == 1 && At(0) == 'M')) {
          // "bellocchio" vs "bacchus"
          if (StringAt(pos_ + 2, {"I", "E", "H"}) &&
              !StringAt(pos_ + 2, {"HU"})) {
            if ((pos_ == 1 && At(0) == 'A') ||
                StringAt(pos_ >= 1 ? pos_ - 1 : 0, {"UCCEE", "UCCES"})) {
              Add("KS");
            } else {
              Add("X");
            }
            pos_ += 3;
            break;
          }
          Add("K");
          pos_ += 2;
          break;
        }
        if (StringAt(pos_, {"CK", "CG", "CQ"})) {
          Add("K");
          pos_ += 2;
          break;
        }
        if (StringAt(pos_, {"CI", "CE", "CY"})) {
          if (StringAt(pos_, {"CIO", "CIE", "CIA"})) {
            Add("S", "X");
          } else {
            Add("S");
          }
          pos_ += 2;
          break;
        }
        Add("K");
        if (StringAt(pos_ + 1, {" C", " Q", " G"})) {
          pos_ += 3;
        } else if (StringAt(pos_ + 1, {"C", "K", "Q"}) &&
                   !StringAt(pos_ + 1, {"CE", "CI"})) {
          pos_ += 2;
        } else {
          ++pos_;
        }
        break;
      }

      case 'D':
        if (StringAt(pos_, {"DG"})) {
          if (StringAt(pos_ + 2, {"I", "E", "Y"})) {  // "edge"
            Add("J");
            pos_ += 3;
          } else {  // "edgar"
            Add("TK");
            pos_ += 2;
          }
          break;
        }
        Add("T");
        pos_ += StringAt(pos_, {"DT", "DD"}) ? 2 : 1;
        break;

      case 'F':
        Add("F");
        pos_ += (At(pos_ + 1) == 'F') ? 2 : 1;
        break;

      case 'G': {
        if (At(pos_ + 1) == 'H') {
          if (pos_ > 0 && !IsVowelAt(pos_ - 1)) {
            Add("K");
            pos_ += 2;
            break;
          }
          if (pos_ == 0) {
            if (At(pos_ + 2) == 'I') {  // "ghislane"
              Add("J");
            } else {  // "ghoul"
              Add("K");
            }
            pos_ += 2;
            break;
          }
          // Silent GH ("light", "brough").
          if ((pos_ > 1 && StringAt(pos_ - 2, {"B", "H", "D"})) ||
              (pos_ > 2 && StringAt(pos_ - 3, {"B", "H", "D"})) ||
              (pos_ > 3 && StringAt(pos_ - 4, {"B", "H"}))) {
            pos_ += 2;
            break;
          }
          if (pos_ > 2 && At(pos_ - 1) == 'U' &&
              StringAt(pos_ - 3, {"C", "G", "L", "R", "T"})) {
            Add("F");  // "laugh", "cough"
          } else if (pos_ > 0 && At(pos_ - 1) != 'I') {
            Add("K");
          }
          pos_ += 2;
          break;
        }
        if (At(pos_ + 1) == 'N') {
          if (pos_ == 1 && IsVowelAt(0) && !IsSlavoGermanic()) {
            Add("KN", "N");
          } else if (!StringAt(pos_ + 2, {"EY"}) && At(pos_ + 1) != 'Y' &&
                     !IsSlavoGermanic()) {
            Add("N", "KN");
          } else {
            Add("KN");
          }
          pos_ += 2;
          break;
        }
        if (StringAt(pos_ + 1, {"LI"}) && !IsSlavoGermanic()) {
          Add("KL", "L");  // "tagliaro"
          pos_ += 2;
          break;
        }
        // -ges-, -gep-, etc. at the start.
        if (pos_ == 0 &&
            (At(pos_ + 1) == 'Y' ||
             StringAt(pos_ + 1, {"ES", "EP", "EB", "EL", "EY", "IB", "IL",
                                 "IN", "IE", "EI", "ER"}))) {
          Add("K", "J");
          pos_ += 2;
          break;
        }
        if ((StringAt(pos_ + 1, {"ER"}) || At(pos_ + 1) == 'Y') &&
            !StringAt(0, {"DANGER", "RANGER", "MANGER"}) &&
            !(pos_ > 0 && (At(pos_ - 1) == 'E' || At(pos_ - 1) == 'I')) &&
            !(pos_ > 0 && StringAt(pos_ - 1, {"RGY", "OGY"}))) {
          Add("K", "J");
          pos_ += 2;
          break;
        }
        if (StringAt(pos_ + 1, {"E", "I", "Y"}) ||
            (pos_ > 0 && StringAt(pos_ - 1, {"AGGI", "OGGI"}))) {
          if (Contains({"VAN ", "VON ", "SCH"}) ||
              StringAt(pos_ + 1, {"ET"})) {
            Add("K");
          } else if (StringAt(pos_ + 1, {"IER "}) ||
                     (pos_ + 4 == length_ && StringAt(pos_ + 1, {"IER"}))) {
            Add("J");
          } else {
            Add("J", "K");
          }
          pos_ += 2;
          break;
        }
        Add("K");
        pos_ += (At(pos_ + 1) == 'G') ? 2 : 1;
        break;
      }

      case 'H':
        // Only keep H between vowels or at the start before a vowel.
        if ((pos_ == 0 || IsVowelAt(pos_ - 1)) && IsVowelAt(pos_ + 1)) {
          Add("H");
          pos_ += 2;
        } else {
          ++pos_;
        }
        break;

      case 'J': {
        if (StringAt(pos_, {"JOSE"}) || Contains({"SAN "})) {
          if ((pos_ == 0 && At(pos_ + 4) == ' ') || Contains({"SAN "})) {
            Add("H");
          } else {
            Add("J", "H");
          }
          ++pos_;
          break;
        }
        if (pos_ == 0 && !StringAt(pos_, {"JOSE"})) {
          Add("J", "A");  // "Yankelovich" / "Jankelowicz"
        } else if (IsVowelAt(pos_ - 1) && !IsSlavoGermanic() &&
                   (At(pos_ + 1) == 'A' || At(pos_ + 1) == 'O')) {
          Add("J", "H");
        } else if (pos_ + 1 == length_) {
          Add("J", "");
        } else if (!StringAt(pos_ + 1,
                             {"L", "T", "K", "S", "N", "M", "B", "Z"}) &&
                   !(pos_ > 0 &&
                     StringAt(pos_ - 1, {"S", "K", "L"}))) {
          Add("J");
        }
        pos_ += (At(pos_ + 1) == 'J') ? 2 : 1;
        break;
      }

      case 'K':
        Add("K");
        pos_ += (At(pos_ + 1) == 'K') ? 2 : 1;
        break;

      case 'L':
        if (At(pos_ + 1) == 'L') {
          // Spanish "-illo/-illa" endings: L is dropped in the secondary.
          if ((pos_ + 3 == length_ &&
               (StringAt(pos_ >= 1 ? pos_ - 1 : 0, {"ILLO", "ILLA", "ALLE"}))) ||
              ((StringAt(length_ >= 2 ? length_ - 2 : 0, {"AS", "OS"}) ||
                StringAt(length_ >= 1 ? length_ - 1 : 0, {"A", "O"})) &&
               StringAt(pos_ >= 1 ? pos_ - 1 : 0, {"ALLE"}))) {
            Add("L", "");
            pos_ += 2;
            break;
          }
          Add("L");
          pos_ += 2;
          break;
        }
        Add("L");
        ++pos_;
        break;

      case 'M':
        Add("M");
        if ((StringAt(pos_ >= 1 ? pos_ - 1 : 0, {"UMB"}) &&
             (pos_ + 2 == length_ || StringAt(pos_ + 2, {"ER"}))) ||
            At(pos_ + 1) == 'M') {
          pos_ += 2;  // "dumb", "thumb"
        } else {
          ++pos_;
        }
        break;

      case 'N':
        Add("N");
        pos_ += (At(pos_ + 1) == 'N') ? 2 : 1;
        break;

      case 'P':
        if (At(pos_ + 1) == 'H') {
          Add("F");
          pos_ += 2;
          break;
        }
        Add("P");
        pos_ += (At(pos_ + 1) == 'P' || At(pos_ + 1) == 'B') ? 2 : 1;
        break;

      case 'Q':
        Add("K");
        pos_ += (At(pos_ + 1) == 'Q') ? 2 : 1;
        break;

      case 'R':
        // French "-rier" endings: R silent in primary.
        if (pos_ + 1 == length_ && !IsSlavoGermanic() &&
            StringAt(pos_ >= 2 ? pos_ - 2 : 0, {"IER"}) &&
            !StringAt(pos_ >= 4 ? pos_ - 4 : 0, {"MEYER", "MAIER"})) {
          Add("", "R");
        } else {
          Add("R");
        }
        pos_ += (At(pos_ + 1) == 'R') ? 2 : 1;
        break;

      case 'S': {
        // Silent S in "isle", "carlisle".
        if (pos_ > 0 && StringAt(pos_ - 1, {"ISL", "YSL"})) {
          ++pos_;
          break;
        }
        if (pos_ == 0 && StringAt(pos_, {"SUGAR"})) {
          Add("X", "S");
          ++pos_;
          break;
        }
        if (StringAt(pos_, {"SH"})) {
          if (StringAt(pos_ + 1, {"HEIM", "HOEK", "HOLM", "HOLZ"})) {
            Add("S");  // Germanic
          } else {
            Add("X");
          }
          pos_ += 2;
          break;
        }
        if (StringAt(pos_, {"SIO", "SIA"}) || StringAt(pos_, {"SIAN"})) {
          if (!IsSlavoGermanic()) {
            Add("S", "X");
          } else {
            Add("S");
          }
          pos_ += 3;
          break;
        }
        if ((pos_ == 0 && StringAt(pos_ + 1, {"M", "N", "L", "W"})) ||
            StringAt(pos_ + 1, {"Z"})) {
          Add("S", "X");  // "smith" -> SM(X)
          pos_ += StringAt(pos_ + 1, {"Z"}) ? 2 : 1;
          break;
        }
        if (StringAt(pos_, {"SC"})) {
          if (At(pos_ + 2) == 'H') {
            if (StringAt(pos_ + 3,
                         {"OO", "ER", "EN", "UY", "ED", "EM"})) {
              // "school", "schooner"
              if (StringAt(pos_ + 3, {"ER", "EN"})) {
                Add("X", "SK");
              } else {
                Add("SK");
              }
            } else if (pos_ == 0 && !IsVowelAt(3) && At(3) != 'W') {
              Add("X", "S");
            } else {
              Add("X");
            }
            pos_ += 3;
            break;
          }
          if (StringAt(pos_ + 2, {"I", "E", "Y"})) {
            Add("S");
          } else {
            Add("SK");
          }
          pos_ += 3;
          break;
        }
        // French "-ais", "-ois" endings.
        if (pos_ + 1 == length_ &&
            StringAt(pos_ >= 2 ? pos_ - 2 : 0, {"AIS", "OIS"})) {
          Add("", "S");
        } else {
          Add("S");
        }
        pos_ += (At(pos_ + 1) == 'S' || At(pos_ + 1) == 'Z') ? 2 : 1;
        break;
      }

      case 'T':
        if (StringAt(pos_, {"TION", "TIA", "TCH"})) {
          Add("X");
          pos_ += 3;
          break;
        }
        if (StringAt(pos_, {"TH"}) || StringAt(pos_, {"TTH"})) {
          if (StringAt(pos_ + 2, {"OM", "AM"}) ||
              Contains({"VAN ", "VON ", "SCH"})) {
            Add("T");  // "thomas"
          } else {
            Add("0", "T");  // '0' encodes the th sound
          }
          pos_ += 2;
          break;
        }
        Add("T");
        pos_ += (At(pos_ + 1) == 'T' || At(pos_ + 1) == 'D') ? 2 : 1;
        break;

      case 'V':
        Add("F");
        pos_ += (At(pos_ + 1) == 'V') ? 2 : 1;
        break;

      case 'W': {
        if (StringAt(pos_, {"WR"})) {
          Add("R");
          pos_ += 2;
          break;
        }
        if (pos_ == 0 && (IsVowelAt(1) || StringAt(pos_, {"WH"}))) {
          if (IsVowelAt(1)) {
            Add("A", "F");  // "Wasserman" / "Vasserman"
          } else {
            Add("A");
          }
        }
        // "-owski" etc.: W -> F in the secondary.
        if ((pos_ + 1 == length_ && pos_ > 0 && IsVowelAt(pos_ - 1)) ||
            (pos_ > 0 && StringAt(pos_ - 1, {"EWSKI", "EWSKY", "OWSKI",
                                             "OWSKY"})) ||
            StringAt(0, {"SCH"})) {
          Add("", "F");
          ++pos_;
          break;
        }
        if (StringAt(pos_, {"WICZ", "WITZ"})) {
          Add("TS", "FX");
          pos_ += 4;
          break;
        }
        ++pos_;  // otherwise silent
        break;
      }

      case 'X':
        // French "-aux", "-eux": silent.
        if (!(pos_ + 1 == length_ &&
              (StringAt(pos_ >= 3 ? pos_ - 3 : 0, {"IAU", "EAU"}) ||
               StringAt(pos_ >= 2 ? pos_ - 2 : 0, {"AU", "OU"})))) {
          Add("KS");
        }
        pos_ += (At(pos_ + 1) == 'C' || At(pos_ + 1) == 'X') ? 2 : 1;
        break;

      case 'Z':
        if (At(pos_ + 1) == 'H') {  // Chinese pinyin "zh"
          Add("J");
          pos_ += 2;
          break;
        }
        if (StringAt(pos_ + 1, {"ZO", "ZI", "ZA"}) ||
            (IsSlavoGermanic() && pos_ > 0 && At(pos_ - 1) != 'T')) {
          Add("S", "TS");
        } else {
          Add("S");
        }
        pos_ += (At(pos_ + 1) == 'Z') ? 2 : 1;
        break;

      default:
        ++pos_;
        break;
    }
  }

  if (primary_.size() > max_length_) primary_.resize(max_length_);
  if (secondary_.size() > max_length_) secondary_.resize(max_length_);
  if (secondary_.empty()) secondary_ = primary_;
  return {primary_, secondary_};
}

}  // namespace

MetaphoneCodes DoubleMetaphone(std::string_view name, size_t max_length) {
  return Encoder(name, max_length).Run();
}

double DoubleMetaphoneSimilarity(std::string_view a, std::string_view b) {
  const MetaphoneCodes ca = DoubleMetaphone(a);
  const MetaphoneCodes cb = DoubleMetaphone(b);
  if (ca.primary.empty() || cb.primary.empty()) return 0.0;
  if (ca.primary == cb.primary) return 1.0;
  if (ca.primary == cb.secondary || ca.secondary == cb.primary ||
      ca.secondary == cb.secondary) {
    return 0.8;
  }
  return 0.0;
}

}  // namespace tglink
