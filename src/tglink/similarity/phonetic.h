// Phonetic encodings used as blocking keys: two names that sound alike get
// the same code even when spelled differently ("smith"/"smyth" -> S530),
// which is exactly the property blocking needs so that transcription noise
// does not separate true matches into different blocks.

#ifndef TGLINK_SIMILARITY_PHONETIC_H_
#define TGLINK_SIMILARITY_PHONETIC_H_

#include <string>
#include <string_view>

namespace tglink {

/// American Soundex: first letter + 3 digits (e.g. "ashworth" -> "A263").
/// Non-alphabetic characters are ignored; an empty / all-symbol input yields
/// the empty string.
[[nodiscard]] std::string Soundex(std::string_view name);

/// NYSIIS (New York State Identification and Intelligence System) code,
/// truncated to 6 characters as is conventional. More discriminating than
/// Soundex for Anglo-Saxon surnames.
[[nodiscard]] std::string Nysiis(std::string_view name);

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_PHONETIC_H_
