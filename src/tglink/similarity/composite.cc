#include "tglink/similarity/composite.h"

#include <sstream>

#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"
#include "tglink/similarity/numeric.h"
#include "tglink/util/logging.h"

namespace tglink {

namespace {

/// Counts every AggregateSimilarity call and samples the latency of one in
/// 256 into the "similarity.agg_call_ns" histogram — dense enough for a
/// faithful distribution over the millions of calls a linkage run makes,
/// sparse enough that the two clock reads never show up in a profile.
class SimCallSample {
 public:
  SimCallSample() {
    TGLINK_COUNTER_INC("similarity.agg_calls");
    thread_local uint32_t call_index = 0;
    if ((++call_index & 0xFFu) == 0) start_ns_ = obs::Tracer::NowNs();
  }
  ~SimCallSample() {
    if (start_ns_ != 0) {
      TGLINK_HISTOGRAM_LATENCY_NS("similarity.agg_call_ns",
                                  obs::Tracer::NowNs() - start_ns_);
    }
  }
  SimCallSample(const SimCallSample&) = delete;
  SimCallSample& operator=(const SimCallSample&) = delete;

 private:
  uint64_t start_ns_ = 0;
};

}  // namespace

SimilarityFunction::SimilarityFunction(std::vector<AttributeSpec> specs,
                                       double threshold)
    : specs_(std::move(specs)), threshold_(threshold) {
  TGLINK_CHECK(!specs_.empty())
      << "SimilarityFunction needs at least one attribute component";
  for (const AttributeSpec& spec : specs_) {
    TGLINK_CHECK(spec.weight >= 0.0)
        << "negative weight " << spec.weight << " for attribute "
        << FieldName(spec.field);
  }
}

double SimilarityFunction::ComponentSimilarity(const AttributeSpec& spec,
                                               const PersonRecord& a,
                                               const PersonRecord& b,
                                               bool* missing_one,
                                               bool* missing_both) const {
  const bool ma = IsFieldMissing(a, spec.field);
  const bool mb = IsFieldMissing(b, spec.field);
  *missing_both = ma && mb;
  *missing_one = (ma || mb) && !*missing_both;
  if (ma || mb) return 0.0;
  const double s =
      spec.field == Field::kAge
          ? TemporalAgeSimilarity(a.age, b.age, year_gap_, age_tolerance_)
          : ComputeMeasure(spec.measure, GetFieldValue(a, spec.field),
                           GetFieldValue(b, spec.field));
  TGLINK_DCHECK(s >= 0.0 && s <= 1.0)
      << "measure " << MeasureName(spec.measure) << " on "
      << FieldName(spec.field) << " returned " << s;
  return s;
}

std::vector<double> SimilarityFunction::Compare(const PersonRecord& a,
                                                const PersonRecord& b) const {
  std::vector<double> sims;
  sims.reserve(specs_.size());
  for (const AttributeSpec& spec : specs_) {
    bool missing_one = false, missing_both = false;
    const double s = ComponentSimilarity(spec, a, b, &missing_one,
                                         &missing_both);
    if (missing_one || missing_both) {
      switch (missing_policy_) {
        case MissingPolicy::kRedistribute:
          // Both missing: excluded (sentinel); one-sided: scored 0.
          sims.push_back(missing_both ? -1.0 : 0.0);
          break;
        case MissingPolicy::kZero:
          sims.push_back(0.0);
          break;
        case MissingPolicy::kNeutral:
          sims.push_back(0.5);
          break;
      }
    } else {
      sims.push_back(s);
    }
  }
  return sims;
}

double SimilarityFunction::AggregateSimilarity(const PersonRecord& a,
                                               const PersonRecord& b) const {
  SimCallSample sample;
  return AggregateWith(
      [this, &a, &b](size_t i, bool* missing_one, bool* missing_both) {
        return ComponentSimilarity(specs_[i], a, b, missing_one, missing_both);
      });
}

bool SimilarityFunction::Matches(const PersonRecord& a,
                                 const PersonRecord& b) const {
  return AggregateSimilarity(a, b) >= threshold_;
}

std::string SimilarityFunction::ToString() const {
  std::ostringstream os;
  os << "SimFunc(δ=" << threshold_ << ", ";
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (i > 0) os << ", ";
    os << FieldName(specs_[i].field) << ":" << MeasureName(specs_[i].measure)
       << "*" << specs_[i].weight;
  }
  os << ")";
  return os.str();
}

}  // namespace tglink
