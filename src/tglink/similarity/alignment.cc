#include "tglink/similarity/alignment.h"

#include <algorithm>
#include <vector>

namespace tglink {

double SmithWatermanScore(std::string_view a, std::string_view b,
                          const SmithWatermanParams& params) {
  if (a.empty() || b.empty()) return 0.0;
  // Rolling single row; track the global maximum (local alignment).
  std::vector<double> row(b.size() + 1, 0.0);
  double best = 0.0;
  for (size_t i = 1; i <= a.size(); ++i) {
    double diag = 0.0;  // row[i-1][j-1]
    for (size_t j = 1; j <= b.size(); ++j) {
      const double up = row[j];
      const double score =
          diag + (a[i - 1] == b[j - 1] ? params.match : params.mismatch);
      double cell = std::max(0.0, score);
      cell = std::max(cell, up + params.gap);
      cell = std::max(cell, row[j - 1] + params.gap);
      row[j] = cell;
      best = std::max(best, cell);
      diag = up;
    }
  }
  return best;
}

double SmithWatermanSimilarity(std::string_view a, std::string_view b,
                               const SmithWatermanParams& params) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const double denom =
      params.match * static_cast<double>(std::min(a.size(), b.size()));
  if (denom <= 0.0) return 0.0;
  return SmithWatermanScore(a, b, params) / denom;
}

size_t LongestCommonSubstring(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<size_t> row(b.size() + 1, 0);
  size_t best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = 0;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      row[j] = (a[i - 1] == b[j - 1]) ? diag + 1 : 0;
      best = std::max(best, row[j]);
      diag = up;
    }
  }
  return best;
}

size_t LongestCommonSubsequence(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<size_t> row(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = 0;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      row[j] = (a[i - 1] == b[j - 1]) ? diag + 1
                                      : std::max(row[j], row[j - 1]);
      diag = up;
    }
  }
  return row[b.size()];
}

namespace {
double Normalize2(size_t common, size_t la, size_t lb) {
  if (la + lb == 0) return 1.0;
  return 2.0 * static_cast<double>(common) / static_cast<double>(la + lb);
}
}  // namespace

double LcsSubstringSimilarity(std::string_view a, std::string_view b) {
  return Normalize2(LongestCommonSubstring(a, b), a.size(), b.size());
}

double LcsSubsequenceSimilarity(std::string_view a, std::string_view b) {
  return Normalize2(LongestCommonSubsequence(a, b), a.size(), b.size());
}

}  // namespace tglink
