#include "tglink/similarity/field_similarity.h"

#include "tglink/similarity/alignment.h"
#include "tglink/similarity/double_metaphone.h"
#include "tglink/similarity/edit_distance.h"
#include "tglink/similarity/jaro.h"
#include "tglink/similarity/phonetic.h"
#include "tglink/similarity/qgram.h"
#include "tglink/similarity/token.h"

namespace tglink {

const char* MeasureName(Measure measure) {
  switch (measure) {
    case Measure::kExact:
      return "exact";
    case Measure::kQGramDice:
      return "q-gram";
    case Measure::kTrigramDice:
      return "trigram";
    case Measure::kLevenshtein:
      return "levenshtein";
    case Measure::kDamerau:
      return "damerau";
    case Measure::kJaro:
      return "jaro";
    case Measure::kJaroWinkler:
      return "jaro-winkler";
    case Measure::kMongeElkan:
      return "monge-elkan";
    case Measure::kSoundexEqual:
      return "soundex";
    case Measure::kDoubleMetaphone:
      return "double-metaphone";
    case Measure::kSmithWaterman:
      return "smith-waterman";
    case Measure::kLcsSubstring:
      return "lcs";
  }
  return "?";
}

double ComputeMeasure(Measure measure, std::string_view a,
                      std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  switch (measure) {
    case Measure::kExact:
      return a == b ? 1.0 : 0.0;
    case Measure::kQGramDice:
      return BigramDice(a, b);
    case Measure::kTrigramDice: {
      QGramOptions opts;
      opts.q = 3;
      return QGramSimilarity(a, b, opts);
    }
    case Measure::kLevenshtein:
      return LevenshteinSimilarity(a, b);
    case Measure::kDamerau:
      return DamerauSimilarity(a, b);
    case Measure::kJaro:
      return JaroSimilarity(a, b);
    case Measure::kJaroWinkler:
      return JaroWinklerSimilarity(a, b);
    case Measure::kMongeElkan:
      return MongeElkanJaroWinkler(a, b);
    case Measure::kSoundexEqual:
      return Soundex(a) == Soundex(b) ? 1.0 : 0.0;
    case Measure::kDoubleMetaphone:
      return DoubleMetaphoneSimilarity(a, b);
    case Measure::kSmithWaterman:
      return SmithWatermanSimilarity(a, b);
    case Measure::kLcsSubstring:
      return LcsSubstringSimilarity(a, b);
  }
  return 0.0;
}

}  // namespace tglink
