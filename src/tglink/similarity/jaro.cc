#include "tglink/similarity/jaro.h"

#include <algorithm>
#include <vector>

namespace tglink {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  const int window = std::max(0, std::max(la, lb) / 2 - 1);

  std::vector<bool> matched_a(a.size(), false), matched_b(b.size(), false);
  int matches = 0;
  for (int i = 0; i < la; ++i) {
    const int lo = std::max(0, i - window);
    const int hi = std::min(lb - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!matched_b[j] && a[i] == b[j]) {
        matched_a[i] = matched_b[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among the matched characters in order.
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < la; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = matches;
  return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  prefix_scale = std::clamp(prefix_scale, 0.0, 0.25);
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

}  // namespace tglink
