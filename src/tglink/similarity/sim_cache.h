// Similarity memoization for the pre-matching hot path. Census name pools
// are heavily skewed (the paper's Table 1: a few thousand distinct
// first-name/surname values over tens of thousands of records), so the same
// (value, value) string comparisons recur constantly across candidate
// pairs. SimCache interns the string values each similarity component
// reads — one dense id space per field, covering both snapshots — and
// memoizes per-component measure results in a sharded, read-mostly
// concurrent table keyed on the interned id pair, so repeated comparisons
// hit a hash lookup instead of re-running q-gram/Jaro/metaphone.
//
// Correctness: the memoized value is the exact ComputeMeasure result (a
// pure function of the two strings), and the aggregation arithmetic is
// SimilarityFunction::AggregateWith — the same code path the direct
// AggregateSimilarity uses — so Aggregate(o, n) is bit-identical to
// fn.AggregateSimilarity(old.record(o), new.record(n)) and independent of
// thread count or lookup order.
//
// Thread safety: construction is single-threaded; Aggregate is safe to
// call concurrently from pool workers (shared locks on hit, one exclusive
// insert per distinct value pair). Hits/misses report to the
// "simcache.hits" / "simcache.misses" counters.

#ifndef TGLINK_SIMILARITY_SIM_CACHE_H_
#define TGLINK_SIMILARITY_SIM_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "tglink/census/dataset.h"
#include "tglink/similarity/composite.h"

namespace tglink {

class SimCache {
 public:
  /// Interns the field values of every cacheable component of `fn` over
  /// both datasets. All three arguments must outlive the cache.
  SimCache(const SimilarityFunction& fn, const CensusDataset& old_dataset,
           const CensusDataset& new_dataset);

  SimCache(const SimCache&) = delete;
  SimCache& operator=(const SimCache&) = delete;

  /// Memoized agg_sim; bit-identical to
  /// fn.AggregateSimilarity(old.record(old_id), new.record(new_id)).
  [[nodiscard]] double Aggregate(RecordId old_id, RecordId new_id) const;

  [[nodiscard]] const SimilarityFunction& fn() const { return fn_; }

  /// Component-level lookup statistics for this cache instance (the global
  /// "simcache.*" counters aggregate across instances).
  [[nodiscard]] uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  // 16 shards keep exclusive inserts from serializing concurrent scoring;
  // the tables are read-mostly once the distinct value pairs are seen.
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<uint64_t, double> memo;
  };

  /// Interned value ids for one field, dense over both snapshots (a value
  /// appearing in either snapshot gets one id).
  struct FieldIds {
    std::vector<uint32_t> old_ids;  // per old record
    std::vector<uint32_t> new_ids;  // per new record
  };

  /// Memo state of one component of fn.specs(). Non-cacheable components
  /// (age: cheap arithmetic, exact: cheaper than a hash lookup) fall
  /// through to the direct ComponentSimilarity.
  struct SpecCache {
    bool enabled = false;
    const FieldIds* ids = nullptr;
    std::unique_ptr<Shard[]> shards;
  };

  static size_t ShardIndex(uint64_t key) {
    key ^= key >> 33;
    key *= 0xFF51AFD7ED558CCDULL;
    key ^= key >> 33;
    return static_cast<size_t>(key) & (kNumShards - 1);
  }

  const SimilarityFunction& fn_;
  const CensusDataset& old_dataset_;
  const CensusDataset& new_dataset_;
  std::map<Field, FieldIds> field_ids_;  // stable addresses for SpecCache
  std::vector<SpecCache> spec_caches_;   // parallel to fn.specs()
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_SIM_CACHE_H_
