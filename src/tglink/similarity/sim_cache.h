// Similarity evaluation for the pre-matching hot path, in one of two modes
// chosen at construction from the process-wide BatchKernelsEnabled() toggle
// (see sim_batch.h). Both modes aggregate through
// SimilarityFunction::AggregateWith, so Aggregate(o, n) is bit-identical to
// fn.AggregateSimilarity(old.record(o), new.record(n)) either way.
//
// Batched mode (default): components with an allocation-free kernel
// (exact, q-gram Dice, edit/Jaro family, Soundex — see
// simkernel::HasBatchKernel) are evaluated directly against SimBatch's
// interned arena + precomputed profiles; they are cheap enough that a memo
// lookup would cost more than the kernel. Only the heavyweight measures
// without a kernel (Monge-Elkan, double-metaphone, Smith-Waterman, LCS) go
// through the sharded memo. AggregateWithThreshold additionally applies the
// bound-pruning screen and returns kPruned for pairs provably below the
// cutoff.
//
// Scalar mode: the pre-batch behavior, kept verbatim as the reference
// oracle — every non-age, non-exact component is memoized on its interned
// (value, value) id pair, with ComputeMeasure filling misses. Census name
// pools are heavily skewed (the paper's Table 1: a few thousand distinct
// first-name/surname values over tens of thousands of records), so repeated
// comparisons hit a hash lookup instead of re-running q-gram/Jaro/metaphone.
// AggregateWithThreshold never prunes in scalar mode — it returns the exact
// aggregate and callers apply their >= threshold filter as before, so the
// keep-set is identical across modes.
//
// Correctness: memoized values are exact ComputeMeasure results — pure
// functions of the two strings, independent of any threshold — so results
// do not depend on thread count, lookup order, or the min_sim a pair was
// first scored with.
//
// Thread safety: construction is single-threaded; Aggregate and
// AggregateWithThreshold are safe to call concurrently from pool workers
// (shared locks on memo hit, one exclusive insert per distinct value pair).
// Memo traffic reports to the "simcache.hits" / "simcache.misses" counters.

#ifndef TGLINK_SIMILARITY_SIM_CACHE_H_
#define TGLINK_SIMILARITY_SIM_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tglink/census/dataset.h"
#include "tglink/similarity/composite.h"
#include "tglink/similarity/sim_batch.h"
#include "tglink/util/thread_annotations.h"

namespace tglink {

class SimCache {
 public:
  /// Sentinel returned by AggregateWithThreshold for pairs provably below
  /// min_sim (batched mode only); real aggregates are in [0, 1].
  static constexpr double kPruned = SimBatch::kPruned;

  /// Interns the field values of every component of `fn` over both
  /// datasets. All three arguments must outlive the cache. The kernel mode
  /// is captured here from BatchKernelsEnabled().
  SimCache(const SimilarityFunction& fn, const CensusDataset& old_dataset,
           const CensusDataset& new_dataset);

  /// Reports the memo's final logical footprint to the "simcache" arena
  /// (obs/memprof.h) — the entry counts are deterministic, the destructor
  /// is the one point where they are final.
  ~SimCache();

  SimCache(const SimCache&) = delete;
  SimCache& operator=(const SimCache&) = delete;

  /// Exact agg_sim; bit-identical to
  /// fn.AggregateSimilarity(old.record(old_id), new.record(new_id)).
  [[nodiscard]] double Aggregate(RecordId old_id, RecordId new_id) const;

  /// Exact agg_sim, or kPruned when the batched bounds prove it is below
  /// min_sim. Callers keeping pairs with sim >= min_sim can treat kPruned
  /// as any below-threshold value; the keep-set equals the exact one.
  /// Scalar mode (and min_sim <= 0) always returns the exact aggregate.
  [[nodiscard]] double AggregateWithThreshold(RecordId old_id,
                                              RecordId new_id,
                                              double min_sim) const;

  [[nodiscard]] const SimilarityFunction& fn() const { return fn_; }

  /// True when this instance routes through the batched kernels.
  [[nodiscard]] bool batched() const { return use_batch_; }

  /// Memo lookup statistics for this cache instance (the global
  /// "simcache.*" counters aggregate across instances). In batched mode
  /// only fallback-measure components generate memo traffic.
  [[nodiscard]] uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  // 16 shards keep exclusive inserts from serializing concurrent scoring;
  // the tables are read-mostly once the distinct value pairs are seen.
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable SharedMutex mu;
    // Key: (old value id << 32) | new value id. Never iterated — lookup
    // only — so the unordered layout cannot leak into any output order.
    std::unordered_map<uint64_t, double> memo TGLINK_GUARDED_BY(mu);
  };

  /// Memo state of one component of fn.specs(). Which components get a
  /// memo depends on the mode: scalar memoizes every non-age, non-exact
  /// measure; batched memoizes only the measures without a kernel.
  struct SpecCache {
    bool enabled = false;
    std::unique_ptr<Shard[]> shards;
  };

  static size_t ShardIndex(uint64_t key) {
    key ^= key >> 33;
    key *= 0xFF51AFD7ED558CCDULL;
    key ^= key >> 33;
    return static_cast<size_t>(key) & (kNumShards - 1);
  }

  /// ComputeMeasure of spec i on two interned values, through the memo.
  [[nodiscard]] double MemoizedMeasure(size_t spec_index, uint32_t old_vid,
                                       uint32_t new_vid, std::string_view a,
                                       std::string_view b) const;

  const SimilarityFunction& fn_;
  const CensusDataset& old_dataset_;
  const CensusDataset& new_dataset_;
  bool use_batch_;
  SimBatch batch_;  // interning substrate for both modes
  std::vector<SpecCache> spec_caches_;  // parallel to fn.specs()
  SimBatch::FallbackFn fallback_;       // routes into MemoizedMeasure
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_SIM_CACHE_H_
