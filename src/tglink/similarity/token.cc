#include "tglink/similarity/token.h"

#include <algorithm>
#include <string>
#include <vector>

#include "tglink/similarity/jaro.h"
#include "tglink/util/strings.h"

namespace tglink {

namespace {
double DirectedMongeElkan(const std::vector<std::string>& from,
                          const std::vector<std::string>& to,
                          const CharSimilarityFn& inner) {
  double sum = 0.0;
  for (const std::string& f : from) {
    double best = 0.0;
    for (const std::string& t : to) best = std::max(best, inner(f, t));
    sum += best;
  }
  return sum / static_cast<double>(from.size());
}
}  // namespace

double MongeElkanSimilarity(std::string_view a, std::string_view b,
                            const CharSimilarityFn& inner) {
  const std::vector<std::string> ta = SplitWhitespace(a);
  const std::vector<std::string> tb = SplitWhitespace(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  return 0.5 * (DirectedMongeElkan(ta, tb, inner) +
                DirectedMongeElkan(tb, ta, inner));
}

double MongeElkanJaroWinkler(std::string_view a, std::string_view b) {
  return MongeElkanSimilarity(a, b, [](std::string_view x, std::string_view y) {
    return JaroWinklerSimilarity(x, y);
  });
}

}  // namespace tglink
