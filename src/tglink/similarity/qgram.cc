#include "tglink/similarity/qgram.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace tglink {

std::vector<std::string> QGrams(std::string_view s, const QGramOptions& opts) {
  assert(opts.q >= 1);
  std::string padded;
  std::string_view src = s;
  if (opts.padded && opts.q > 1) {
    padded.reserve(s.size() + 2 * (opts.q - 1));
    padded.append(static_cast<size_t>(opts.q - 1), '#');
    padded.append(s);
    padded.append(static_cast<size_t>(opts.q - 1), '$');
    src = padded;
  }
  std::vector<std::string> grams;
  if (src.size() < static_cast<size_t>(opts.q)) {
    if (!src.empty()) grams.emplace_back(src);
    return grams;
  }
  grams.reserve(src.size() - opts.q + 1);
  for (size_t i = 0; i + opts.q <= src.size(); ++i) {
    grams.emplace_back(src.substr(i, opts.q));
  }
  std::sort(grams.begin(), grams.end());
  return grams;
}

namespace {
/// |A ∩ B| for two sorted multisets.
size_t MultisetIntersectionSize(const std::vector<std::string>& a,
                                const std::vector<std::string>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}
}  // namespace

double QGramSimilarity(std::string_view a, std::string_view b,
                       const QGramOptions& opts) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const std::vector<std::string> ga = QGrams(a, opts);
  const std::vector<std::string> gb = QGrams(b, opts);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  const double common =
      static_cast<double>(MultisetIntersectionSize(ga, gb));
  switch (opts.coefficient) {
    case QGramCoefficient::kDice:
      return 2.0 * common / static_cast<double>(ga.size() + gb.size());
    case QGramCoefficient::kJaccard:
      return common / static_cast<double>(ga.size() + gb.size() - common);
    case QGramCoefficient::kOverlap:
      return common / static_cast<double>(std::min(ga.size(), gb.size()));
  }
  return 0.0;
}

namespace {
/// Census attribute values come from a small, heavily repeated vocabulary
/// (Zipf-distributed names, a few dozen occupations, a few thousand
/// addresses), so the padded-bigram decomposition is memoized. The cache is
/// thread-local (no locking). References into the map stay valid across
/// rehashes; the capacity bound is enforced by the caller *before* taking
/// references.
using BigramCache = std::unordered_map<std::string, std::vector<std::string>>;

BigramCache& ThreadBigramCache() {
  thread_local BigramCache cache;
  return cache;
}

const std::vector<std::string>& CachedBigrams(BigramCache& cache,
                                              std::string_view s) {
  auto it = cache.find(std::string(s));
  if (it != cache.end()) return it->second;
  return cache.emplace(std::string(s), QGrams(s, QGramOptions{}))
      .first->second;
}
}  // namespace

double BigramDice(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  BigramCache& cache = ThreadBigramCache();
  // Safety valve against unbounded vocabularies; checked before taking
  // references so the two lookups below stay valid.
  if (cache.size() >= (1u << 18)) cache.clear();
  const std::vector<std::string>& ga = CachedBigrams(cache, a);
  const std::vector<std::string>& gb = CachedBigrams(cache, b);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  const double common = static_cast<double>(MultisetIntersectionSize(ga, gb));
  return 2.0 * common / static_cast<double>(ga.size() + gb.size());
}

}  // namespace tglink
