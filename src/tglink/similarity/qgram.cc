#include "tglink/similarity/qgram.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

namespace tglink {

std::vector<std::string> QGrams(std::string_view s, const QGramOptions& opts) {
  assert(opts.q >= 1);
  std::string padded;
  std::string_view src = s;
  if (opts.padded && opts.q > 1) {
    padded.reserve(s.size() + 2 * (opts.q - 1));
    padded.append(static_cast<size_t>(opts.q - 1), '#');
    padded.append(s);
    padded.append(static_cast<size_t>(opts.q - 1), '$');
    src = padded;
  }
  std::vector<std::string> grams;
  if (src.size() < static_cast<size_t>(opts.q)) {
    if (!src.empty()) grams.emplace_back(src);
    return grams;
  }
  grams.reserve(src.size() - opts.q + 1);
  for (size_t i = 0; i + opts.q <= src.size(); ++i) {
    grams.emplace_back(src.substr(i, opts.q));
  }
  std::sort(grams.begin(), grams.end());
  return grams;
}

namespace {

/// |A ∩ B| for two sorted multisets.
size_t MultisetIntersectionSize(const std::vector<std::string>& a,
                                const std::vector<std::string>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

size_t MultisetIntersectionSize(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

/// Grams of length <= 7 pack into one machine word, which covers every q
/// tglink configures (bigrams and trigrams); longer q falls back to the
/// string decomposition.
constexpr int kMaxPackedQ = 7;

/// Packs one gram (any byte values, length <= 7) into a uint64_t: bytes
/// left-aligned in the top 56 bits, length in the low byte. Injective, so
/// packed-code equality ⟺ gram-string equality and sorted-merge
/// intersection counts match the string multisets exactly.
uint64_t PackGram(const unsigned char* bytes, size_t len) {
  uint64_t code = static_cast<uint64_t>(len);
  for (size_t i = 0; i < len; ++i) {
    code |= static_cast<uint64_t>(bytes[i]) << (56 - 8 * i);
  }
  return code;
}

/// Appends the sorted packed q-gram multiset of `s` under `opts` to `*out`
/// — the same windowing as QGrams (virtual '#'/'$' padding, whole-string
/// gram for inputs shorter than q) without materializing the padded string
/// or any per-gram std::string. Requires opts.q <= kMaxPackedQ.
void PackedQGrams(std::string_view s, const QGramOptions& opts,
                  std::vector<uint64_t>* out) {
  const size_t q = static_cast<size_t>(opts.q);
  const size_t pad = (opts.padded && q > 1) ? q - 1 : 0;
  const size_t total = s.size() + 2 * pad;
  const auto at = [&](size_t v) -> unsigned char {
    if (v < pad) return '#';
    if (v < pad + s.size()) return static_cast<unsigned char>(s[v - pad]);
    return '$';
  };
  const size_t begin = out->size();
  unsigned char buf[kMaxPackedQ];
  if (total < q) {
    if (total > 0) {
      for (size_t v = 0; v < total; ++v) buf[v] = at(v);
      out->push_back(PackGram(buf, total));
    }
    return;
  }
  out->reserve(begin + (total - q + 1));
  for (size_t i = 0; i + q <= total; ++i) {
    for (size_t k = 0; k < q; ++k) buf[k] = at(i + k);
    out->push_back(PackGram(buf, q));
  }
  std::sort(out->begin() + begin, out->end());
}

struct QGramScratch {
  std::vector<uint64_t> ga, gb;
};

QGramScratch& ThreadQGramScratch() {
  thread_local QGramScratch scratch;
  return scratch;
}

}  // namespace

double QGramSimilarity(std::string_view a, std::string_view b,
                       const QGramOptions& opts) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  if (opts.q <= kMaxPackedQ) {
    // Packed fast path: identical windowing, so the gram multisets are in
    // bijection with the string decomposition and every count below — and
    // therefore the resulting double — is the same.
    QGramScratch& scratch = ThreadQGramScratch();
    scratch.ga.clear();
    scratch.gb.clear();
    PackedQGrams(a, opts, &scratch.ga);
    PackedQGrams(b, opts, &scratch.gb);
    const double common = static_cast<double>(
        MultisetIntersectionSize(scratch.ga, scratch.gb));
    switch (opts.coefficient) {
      case QGramCoefficient::kDice:
        return 2.0 * common /
               static_cast<double>(scratch.ga.size() + scratch.gb.size());
      case QGramCoefficient::kJaccard:
        return common / static_cast<double>(scratch.ga.size() +
                                            scratch.gb.size() - common);
      case QGramCoefficient::kOverlap:
        return common /
               static_cast<double>(std::min(scratch.ga.size(),
                                            scratch.gb.size()));
    }
    return 0.0;
  }
  const std::vector<std::string> ga = QGrams(a, opts);
  const std::vector<std::string> gb = QGrams(b, opts);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  const double common =
      static_cast<double>(MultisetIntersectionSize(ga, gb));
  switch (opts.coefficient) {
    case QGramCoefficient::kDice:
      return 2.0 * common / static_cast<double>(ga.size() + gb.size());
    case QGramCoefficient::kJaccard:
      return common / static_cast<double>(ga.size() + gb.size() - common);
    case QGramCoefficient::kOverlap:
      return common / static_cast<double>(std::min(ga.size(), gb.size()));
  }
  return 0.0;
}

namespace {

struct SvHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view x, std::string_view y) const {
    return x == y;
  }
};

/// Census attribute values come from a small, heavily repeated vocabulary
/// (Zipf-distributed names, a few dozen occupations, a few thousand
/// addresses), so the padded-bigram decomposition is memoized — as packed
/// profiles, not gram strings, and with heterogeneous lookup so a cache hit
/// allocates nothing. The cache is thread-local (no locking). References
/// into the map stay valid across rehashes; the capacity bound is enforced
/// by the caller *before* taking references.
using BigramCache =
    std::unordered_map<std::string, std::vector<uint64_t>, SvHash, SvEq>;

BigramCache& ThreadBigramCache() {
  thread_local BigramCache cache;
  return cache;
}

const std::vector<uint64_t>& CachedBigrams(BigramCache& cache,
                                           std::string_view s) {
  const auto it = cache.find(s);
  if (it != cache.end()) return it->second;
  std::vector<uint64_t> grams;
  PackedQGrams(s, QGramOptions{}, &grams);
  return cache.emplace(std::string(s), std::move(grams)).first->second;
}

}  // namespace

double BigramDice(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  BigramCache& cache = ThreadBigramCache();
  // Safety valve against unbounded vocabularies; checked before taking
  // references so the two lookups below stay valid.
  if (cache.size() >= (1u << 18)) cache.clear();
  const std::vector<uint64_t>& ga = CachedBigrams(cache, a);
  const std::vector<uint64_t>& gb = CachedBigrams(cache, b);
  const double common = static_cast<double>(MultisetIntersectionSize(ga, gb));
  return 2.0 * common / static_cast<double>(ga.size() + gb.size());
}

}  // namespace tglink
