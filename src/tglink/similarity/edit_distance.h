// Edit-distance family: Levenshtein and Damerau–Levenshtein (optimal string
// alignment variant), plus normalized similarities in [0,1].

#ifndef TGLINK_SIMILARITY_EDIT_DISTANCE_H_
#define TGLINK_SIMILARITY_EDIT_DISTANCE_H_

#include <string_view>

namespace tglink {

/// Classic Levenshtein distance (insert/delete/substitute, unit costs).
/// O(|a|·|b|) time, O(min(|a|,|b|)) space.
[[nodiscard]] int LevenshteinDistance(std::string_view a, std::string_view b);

/// Optimal-string-alignment Damerau–Levenshtein: additionally counts a
/// transposition of adjacent characters as one edit (no substring may be
/// edited twice).
[[nodiscard]] int DamerauDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(|a|,|b|); two empty strings score 1.
[[nodiscard]] double LevenshteinSimilarity(std::string_view a, std::string_view b);
[[nodiscard]] double DamerauSimilarity(std::string_view a, std::string_view b);

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_EDIT_DISTANCE_H_
