// SimilarityFunction — the paper's Sim_func: a set of (attribute, measure,
// weight) components, an aggregation by weighted sum (Eq. 3), and an accept
// threshold δ that the iterative algorithm relaxes round by round.

#ifndef TGLINK_SIMILARITY_COMPOSITE_H_
#define TGLINK_SIMILARITY_COMPOSITE_H_

#include <string>
#include <vector>

#include "tglink/census/record.h"
#include "tglink/similarity/field_similarity.h"

namespace tglink {

/// One component of a composite similarity function.
struct AttributeSpec {
  Field field = Field::kFirstName;
  Measure measure = Measure::kQGramDice;
  double weight = 1.0;
};

/// Policy for attributes with missing values.
enum class MissingPolicy : uint8_t {
  /// The default: an attribute missing on BOTH records carries no evidence —
  /// it is excluded and its weight redistributed; an attribute missing on
  /// exactly ONE record is weak disagreement evidence and scores 0 at full
  /// weight. A coverage floor guards the redistribution: if the attributes
  /// present on both sides carry less than half the total weight, the pair
  /// scores 0 (two near-empty records must not look identical just because
  /// their only surviving attribute agrees).
  kRedistribute,
  /// Score the attribute 0 whenever either value is missing (strictest
  /// interpretation of Eq. 3).
  kZero,
  /// Score the attribute 0.5 whenever either value is missing.
  kNeutral,
};

/// Weighted-sum record similarity with missing-value handling and (for the
/// age attribute) temporal adjustment by the census year gap.
class SimilarityFunction {
 public:
  SimilarityFunction() = default;
  SimilarityFunction(std::vector<AttributeSpec> specs, double threshold);

  const std::vector<AttributeSpec>& specs() const { return specs_; }

  double threshold() const { return threshold_; }
  void set_threshold(double threshold) { threshold_ = threshold; }

  MissingPolicy missing_policy() const { return missing_policy_; }
  void set_missing_policy(MissingPolicy policy) { missing_policy_ = policy; }

  /// Years between the two snapshots being compared; only used by a
  /// Field::kAge component (a person aged a in D_i is expected aged
  /// a + year_gap in D_{i+1}).
  int year_gap() const { return year_gap_; }
  void set_year_gap(int gap) { year_gap_ = gap; }

  /// Tolerance in years for the age component (default 3, matching the
  /// paper's age filter).
  int age_tolerance() const { return age_tolerance_; }
  void set_age_tolerance(int tolerance) { age_tolerance_ = tolerance; }

  /// Per-attribute similarity vector sim(r_i, r_{i+1}); missing attributes
  /// score according to the missing policy (kRedistribute reports -1 so that
  /// AggregateVector can exclude them).
  [[nodiscard]] std::vector<double> Compare(const PersonRecord& a,
                                            const PersonRecord& b) const;

  /// agg_sim = ω · sim (Eq. 3), with the configured missing-value handling.
  [[nodiscard]] double AggregateSimilarity(const PersonRecord& a,
                                           const PersonRecord& b) const;

  /// True iff AggregateSimilarity(a,b) >= threshold().
  [[nodiscard]] bool Matches(const PersonRecord& a,
                             const PersonRecord& b) const;

  /// Human-readable description (for experiment logs).
  [[nodiscard]] std::string ToString() const;

 private:
  double ComponentSimilarity(const AttributeSpec& spec, const PersonRecord& a,
                             const PersonRecord& b, bool* missing_one,
                             bool* missing_both) const;

  std::vector<AttributeSpec> specs_;
  double threshold_ = 0.7;
  MissingPolicy missing_policy_ = MissingPolicy::kRedistribute;
  int year_gap_ = 10;
  int age_tolerance_ = 3;
};

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_COMPOSITE_H_
