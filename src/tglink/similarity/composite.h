// SimilarityFunction — the paper's Sim_func: a set of (attribute, measure,
// weight) components, an aggregation by weighted sum (Eq. 3), and an accept
// threshold δ that the iterative algorithm relaxes round by round.

#ifndef TGLINK_SIMILARITY_COMPOSITE_H_
#define TGLINK_SIMILARITY_COMPOSITE_H_

#include <string>
#include <vector>

#include "tglink/census/record.h"
#include "tglink/similarity/field_similarity.h"
#include "tglink/util/logging.h"

namespace tglink {

/// One component of a composite similarity function.
struct AttributeSpec {
  Field field = Field::kFirstName;
  Measure measure = Measure::kQGramDice;
  double weight = 1.0;
};

/// Policy for attributes with missing values.
enum class MissingPolicy : uint8_t {
  /// The default: an attribute missing on BOTH records carries no evidence —
  /// it is excluded and its weight redistributed; an attribute missing on
  /// exactly ONE record is weak disagreement evidence and scores 0 at full
  /// weight. A coverage floor guards the redistribution: if the attributes
  /// present on both sides carry less than half the total weight, the pair
  /// scores 0 (two near-empty records must not look identical just because
  /// their only surviving attribute agrees).
  kRedistribute,
  /// Score the attribute 0 whenever either value is missing (strictest
  /// interpretation of Eq. 3).
  kZero,
  /// Score the attribute 0.5 whenever either value is missing.
  kNeutral,
};

/// Weighted-sum record similarity with missing-value handling and (for the
/// age attribute) temporal adjustment by the census year gap.
class SimilarityFunction {
 public:
  SimilarityFunction() = default;
  SimilarityFunction(std::vector<AttributeSpec> specs, double threshold);

  const std::vector<AttributeSpec>& specs() const { return specs_; }

  double threshold() const { return threshold_; }
  void set_threshold(double threshold) { threshold_ = threshold; }

  MissingPolicy missing_policy() const { return missing_policy_; }
  void set_missing_policy(MissingPolicy policy) { missing_policy_ = policy; }

  /// Years between the two snapshots being compared; only used by a
  /// Field::kAge component (a person aged a in D_i is expected aged
  /// a + year_gap in D_{i+1}).
  int year_gap() const { return year_gap_; }
  void set_year_gap(int gap) { year_gap_ = gap; }

  /// Tolerance in years for the age component (default 3, matching the
  /// paper's age filter).
  int age_tolerance() const { return age_tolerance_; }
  void set_age_tolerance(int tolerance) { age_tolerance_ = tolerance; }

  /// Per-attribute similarity vector sim(r_i, r_{i+1}); missing attributes
  /// score according to the missing policy (kRedistribute reports -1 so that
  /// AggregateVector can exclude them).
  [[nodiscard]] std::vector<double> Compare(const PersonRecord& a,
                                            const PersonRecord& b) const;

  /// agg_sim = ω · sim (Eq. 3), with the configured missing-value handling.
  [[nodiscard]] double AggregateSimilarity(const PersonRecord& a,
                                           const PersonRecord& b) const;

  /// Similarity of one component: specs()[i] evaluated on (a, b), with the
  /// missing flags ComponentSimilarity-style callers (and the memo layer in
  /// similarity/sim_cache.h) need to apply the missing policy themselves.
  [[nodiscard]] double ComponentSimilarity(const AttributeSpec& spec,
                                           const PersonRecord& a,
                                           const PersonRecord& b,
                                           bool* missing_one,
                                           bool* missing_both) const;

  /// The aggregation arithmetic of Eq. 3, shared by the direct path
  /// (AggregateSimilarity) and the memoized path (SimCache::Aggregate) so
  /// the two can never drift: `component(i, &missing_one, &missing_both)`
  /// must return ComponentSimilarity of specs()[i] — from any source that
  /// is bit-identical to it, e.g. a memo table of pure measure results.
  template <typename ComponentFn>
  [[nodiscard]] double AggregateWith(ComponentFn&& component) const {
    double weighted_sum = 0.0;
    double weight_total = 0.0;    // full weight mass, for normalization
    double weight_counted = 0.0;  // weight mass entering the denominator
    double weight_covered = 0.0;  // weight of attributes present on BOTH sides
    for (size_t i = 0; i < specs_.size(); ++i) {
      const AttributeSpec& spec = specs_[i];
      weight_total += spec.weight;
      bool missing_one = false, missing_both = false;
      const double s = component(i, &missing_one, &missing_both);
      if (missing_one || missing_both) {
        switch (missing_policy_) {
          case MissingPolicy::kRedistribute:
            if (missing_both) continue;  // no evidence either way: excluded
            weight_counted += spec.weight;  // one-sided: disagreement, s = 0
            continue;
          case MissingPolicy::kZero:
            weight_counted += spec.weight;
            continue;
          case MissingPolicy::kNeutral:
            weight_counted += spec.weight;
            weighted_sum += spec.weight * 0.5;
            continue;
        }
      }
      weight_counted += spec.weight;
      weight_covered += spec.weight;
      weighted_sum += spec.weight * s;
    }
    if (weight_counted <= 0.0) return 0.0;  // every attribute missing
    double agg = 0.0;
    if (missing_policy_ == MissingPolicy::kRedistribute) {
      // Coverage floor: refuse to call two records similar when most of the
      // weight mass was unobservable on both sides.
      if (weight_covered < 0.5 * weight_total) return 0.0;
      agg = weighted_sum / weight_counted;
    } else {
      agg = weighted_sum / weight_total;
    }
    // Eq. 3 is a convex combination of per-attribute similarities, so the
    // aggregate must stay inside [0,1] for every missing policy.
    TGLINK_DCHECK(agg >= 0.0 && agg <= 1.0)
        << "aggregate similarity out of range: " << agg;
    return agg;
  }

  /// True iff AggregateSimilarity(a,b) >= threshold().
  [[nodiscard]] bool Matches(const PersonRecord& a,
                             const PersonRecord& b) const;

  /// Human-readable description (for experiment logs).
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<AttributeSpec> specs_;
  double threshold_ = 0.7;
  MissingPolicy missing_policy_ = MissingPolicy::kRedistribute;
  int year_gap_ = 10;
  int age_tolerance_ = 3;
};

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_COMPOSITE_H_
