// Per-attribute similarity dispatch: pairs a census Field with one of the
// concrete string measures. This is the unit a SimilarityFunction (Eq. 3 of
// the paper) is assembled from.

#ifndef TGLINK_SIMILARITY_FIELD_SIMILARITY_H_
#define TGLINK_SIMILARITY_FIELD_SIMILARITY_H_

#include <cstdint>
#include <string_view>

namespace tglink {

enum class Measure : uint8_t {
  kExact,        // 1 iff equal
  kQGramDice,    // padded bigram Dice (the paper's "q-gram")
  kTrigramDice,  // padded trigram Dice
  kLevenshtein,  // normalized edit similarity
  kDamerau,      // normalized OSA similarity
  kJaro,
  kJaroWinkler,
  kMongeElkan,       // token-level with Jaro-Winkler inner (addresses)
  kSoundexEqual,     // 1 iff Soundex codes match
  kDoubleMetaphone,  // graded phonetic agreement (1 / 0.8 / 0)
  kSmithWaterman,    // local alignment, normalized
  kLcsSubstring,     // longest common substring, normalized
};

[[nodiscard]] const char* MeasureName(Measure measure);

/// Computes the chosen measure on two already-normalized values.
/// Conventions shared by all measures: both empty -> 1, one empty -> 0.
[[nodiscard]] double ComputeMeasure(Measure measure, std::string_view a, std::string_view b);

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_FIELD_SIMILARITY_H_
