// Numeric similarities: absolute-difference decay for ages and birth years,
// and the edge-property similarity over age differences used by subgraph
// matching (Section 3.3 of the paper).

#ifndef TGLINK_SIMILARITY_NUMERIC_H_
#define TGLINK_SIMILARITY_NUMERIC_H_

namespace tglink {

/// Linear-decay similarity: 1 at equality, 0 at |a-b| >= max_diff.
/// `max_diff` must be > 0.
[[nodiscard]] double AbsDiffSimilarity(double a, double b, double max_diff);

/// Similarity between two *age differences* (an edge property that is stable
/// over time for a pair of persons). The paper accepts edges whose age
/// differences agree within a small tolerance; we expose the underlying
/// linear-decay value so that edge similarity (Eq. 6) can aggregate it.
/// Defaults to tolerance 3 years (the paper filters record pairs whose
/// normalized age difference exceeds 3 years).
[[nodiscard]] double AgeDiffSimilarity(int diff_old, int diff_new, int tolerance = 3);

/// Similarity of two ages observed `year_gap` years apart: a person aged a1
/// in census t should be about a1 + year_gap in census t+1. Linear decay
/// with the given tolerance around the expected value.
[[nodiscard]] double TemporalAgeSimilarity(int age_old, int age_new, int year_gap,
                             int tolerance = 3);

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_NUMERIC_H_
