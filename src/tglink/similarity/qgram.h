// q-gram string similarity — the paper's primary attribute matcher
// (Table 2 uses "q-gram" for first name, surname, address and occupation).
//
// A string is decomposed into its multiset of overlapping substrings of
// length q (optionally padded with sentinel characters so that prefixes and
// suffixes carry extra weight, as in Christen's "Data Matching" book), and
// two strings are compared by a set-overlap coefficient over their q-gram
// multisets.

#ifndef TGLINK_SIMILARITY_QGRAM_H_
#define TGLINK_SIMILARITY_QGRAM_H_

#include <string>
#include <string_view>
#include <vector>

namespace tglink {

enum class QGramCoefficient {
  kDice,     // 2|A∩B| / (|A|+|B|)     — the default used throughout tglink
  kJaccard,  // |A∩B| / |A∪B|
  kOverlap,  // |A∩B| / min(|A|,|B|)
};

struct QGramOptions {
  int q = 2;
  /// Pad with q-1 leading '#' and trailing '$' sentinels so that the first
  /// and last characters participate in q grams, improving discrimination
  /// for short names.
  bool padded = true;
  QGramCoefficient coefficient = QGramCoefficient::kDice;
};

/// Returns the (sorted) multiset of q-grams of `s` under `opts`. A string
/// shorter than q (after padding) yields a single gram containing the whole
/// string, so that very short values still compare non-trivially.
[[nodiscard]] std::vector<std::string> QGrams(std::string_view s, const QGramOptions& opts);

/// Multiset-overlap similarity in [0,1]. Two empty strings score 1; an empty
/// vs non-empty string scores 0.
[[nodiscard]] double QGramSimilarity(std::string_view a, std::string_view b,
                       const QGramOptions& opts = {});

/// Bigram Dice convenience wrapper (the library-wide default).
[[nodiscard]] double BigramDice(std::string_view a, std::string_view b);

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_QGRAM_H_
