#include "tglink/similarity/edit_distance.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace tglink {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return static_cast<int>(a.size());
  std::vector<int> row(b.size() + 1);
  std::iota(row.begin(), row.end(), 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    int diag = row[0];  // row[i-1][j-1]
    row[0] = static_cast<int>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      const int up = row[j];
      const int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

int DamerauDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  // Three rolling rows (need i-2 for transpositions).
  std::vector<int> prev2(m + 1), prev(m + 1), cur(m + 1);
  std::iota(prev.begin(), prev.end(), 0);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

namespace {
double NormalizedSimilarity(int dist, size_t la, size_t lb) {
  const size_t longest = std::max(la, lb);
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}
}  // namespace

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  return NormalizedSimilarity(LevenshteinDistance(a, b), a.size(), b.size());
}

double DamerauSimilarity(std::string_view a, std::string_view b) {
  return NormalizedSimilarity(DamerauDistance(a, b), a.size(), b.size());
}

}  // namespace tglink
