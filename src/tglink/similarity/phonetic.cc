#include "tglink/similarity/phonetic.h"

#include <algorithm>
#include <cctype>

#include "tglink/util/strings.h"

namespace tglink {

namespace {

/// Soundex digit for a letter, or '0' for vowels/ignored letters.
char SoundexDigit(char c) {
  switch (c) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

std::string LettersOnlyLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c >= 'a' && c <= 'z') out.push_back(c);
    else if (c >= 'A' && c <= 'Z') out.push_back(static_cast<char>(c - 'A' + 'a'));
  }
  return out;
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

}  // namespace

std::string Soundex(std::string_view name) {
  const std::string letters = LettersOnlyLower(name);
  if (letters.empty()) return "";
  std::string code;
  code.push_back(static_cast<char>(letters[0] - 'a' + 'A'));
  char prev_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    const char c = letters[i];
    const char digit = SoundexDigit(c);
    // 'h' and 'w' are transparent: they do not reset the previous digit.
    if (c == 'h' || c == 'w') continue;
    if (digit != '0' && digit != prev_digit) code.push_back(digit);
    prev_digit = digit;
  }
  while (code.size() < 4) code.push_back('0');
  return code;
}

std::string Nysiis(std::string_view name) {
  std::string s = LettersOnlyLower(name);
  if (s.empty()) return "";

  // Leading transformations.
  auto replace_prefix = [&s](std::string_view from, std::string_view to) {
    if (StartsWith(s, from)) s = std::string(to) + s.substr(from.size());
  };
  replace_prefix("mac", "mcc");
  replace_prefix("kn", "nn");
  replace_prefix("k", "c");
  replace_prefix("ph", "ff");
  replace_prefix("pf", "ff");
  replace_prefix("sch", "sss");

  // Trailing transformations.
  auto replace_suffix = [&s](std::string_view from, std::string_view to) {
    if (s.size() >= from.size() &&
        std::string_view(s).substr(s.size() - from.size()) == from) {
      s = s.substr(0, s.size() - from.size()) + std::string(to);
    }
  };
  replace_suffix("ee", "y");
  replace_suffix("ie", "y");
  replace_suffix("dt", "d");
  replace_suffix("rt", "d");
  replace_suffix("rd", "d");
  replace_suffix("nt", "d");
  replace_suffix("nd", "d");

  std::string key;
  key.push_back(s[0]);
  std::string prev(1, s[0]);
  size_t i = 1;
  while (i < s.size()) {
    std::string cur;
    if (i + 1 < s.size() && s.compare(i, 2, "ev") == 0) {
      cur = "af";
      i += 2;
    } else if (IsVowel(s[i])) {
      cur = "a";
      i += 1;
    } else if (s[i] == 'q') {
      cur = "g";
      i += 1;
    } else if (s[i] == 'z') {
      cur = "s";
      i += 1;
    } else if (s[i] == 'm') {
      cur = "n";
      i += 1;
    } else if (i + 1 < s.size() && s.compare(i, 2, "kn") == 0) {
      cur = "n";
      i += 2;
    } else if (s[i] == 'k') {
      cur = "c";
      i += 1;
    } else if (i + 2 < s.size() && s.compare(i, 3, "sch") == 0) {
      cur = "sss";
      i += 3;
    } else if (i + 1 < s.size() && s.compare(i, 2, "ph") == 0) {
      cur = "ff";
      i += 2;
    } else if (s[i] == 'h' &&
               (!IsVowel(s[i - 1]) ||
                (i + 1 < s.size() && !IsVowel(s[i + 1])))) {
      cur = prev;
      i += 1;
    } else if (s[i] == 'w' && IsVowel(s[i - 1])) {
      cur = prev;
      i += 1;
    } else {
      cur = std::string(1, s[i]);
      i += 1;
    }
    if (cur != prev) key += cur;
    prev = cur;
  }

  // Trailing cleanup: drop final 's', map final "ay" -> "y", drop final 'a'.
  if (key.size() > 1 && key.back() == 's') key.pop_back();
  if (key.size() >= 2 && key.compare(key.size() - 2, 2, "ay") == 0) {
    key = key.substr(0, key.size() - 2) + "y";
  }
  if (key.size() > 1 && key.back() == 'a') key.pop_back();

  if (key.size() > 6) key = key.substr(0, 6);
  return ToUpper(key);
}

}  // namespace tglink
