// Token-level similarity for multi-word values (addresses, occupations):
// Monge–Elkan with a configurable inner character-level measure.

#ifndef TGLINK_SIMILARITY_TOKEN_H_
#define TGLINK_SIMILARITY_TOKEN_H_

#include <functional>
#include <string_view>

namespace tglink {

using CharSimilarityFn =
    std::function<double(std::string_view, std::string_view)>;

/// Symmetric Monge–Elkan: each token of one string is aligned to its best
/// counterpart in the other, averaged; the two directions are averaged to
/// make the result symmetric. Empty-vs-empty scores 1, empty-vs-non-empty 0.
[[nodiscard]] double MongeElkanSimilarity(std::string_view a, std::string_view b,
                            const CharSimilarityFn& inner);

/// Monge–Elkan with Jaro–Winkler inner similarity (the usual pairing).
[[nodiscard]] double MongeElkanJaroWinkler(std::string_view a, std::string_view b);

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_TOKEN_H_
