// SimBatch — the batched similarity substrate behind SimCache.
//
// Per field referenced by a SimilarityFunction, SimBatch interns the values
// of both snapshots into a contiguous arena (offset+length StringRef views,
// cached lengths and first chars, precomputed padded q-gram profiles and
// packed Soundex signatures), then evaluates whole-pair aggregate
// similarities by dispatching each component to an allocation-free kernel
// (batch_kernels.h) that reads those flat tables. Aggregation runs through
// SimilarityFunction::AggregateWith — the same arithmetic as the scalar
// path — so Aggregate(o, n) is bit-identical to
// fn.AggregateSimilarity(old.record(o), new.record(n)).
//
// Threshold-aware pruning (AggregateWithThreshold): before any kernel runs,
// an O(1) per-pair screen combines the per-component upper bounds (length
// difference, gram-profile counts, interned-id equality for exact/Soundex
// components, the exact age similarity) through the Eq. 3 weights: if even
// the optimistic aggregate cannot reach min_sim, the pair is rejected
// without touching a single string ("simkernel.pruned_by_length" /
// "simkernel.pruned_by_profile"). Pairs surviving the screen are evaluated
// component by component with a running cutoff — the minimum value
// component i must reach given the exact sum so far and the bounds of the
// remaining components — passed down as each kernel's min_sim, so a kernel
// can still bail in O(1) mid-aggregate ("simkernel.pruned_by_cutoff").
// Every rejection is sound: pruned ⇒ the exact aggregate is < min_sim
// (the property tests pin this), so callers that keep pairs with
// sim >= min_sim see exactly the scalar keep-set.
//
// Measures without a batched kernel (Monge-Elkan, double-metaphone,
// Smith-Waterman, LCS) are delegated to a caller-supplied fallback — in
// practice SimCache's memo — and never prune.
//
// Thread safety: construction is single-threaded; Aggregate and
// AggregateWithThreshold are lock-free over immutable tables (plus
// thread-local scratch) and safe to call concurrently from pool workers.

#ifndef TGLINK_SIMILARITY_SIM_BATCH_H_
#define TGLINK_SIMILARITY_SIM_BATCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tglink/census/dataset.h"
#include "tglink/similarity/batch_kernels.h"
#include "tglink/similarity/composite.h"

namespace tglink {

/// Process-wide switch between the batched kernels (default) and the scalar
/// reference path. Read by SimCache at construction time; flipping it does
/// not affect already-built caches. The two modes produce bit-identical
/// results — the toggle exists for A/B timing and for regression tests that
/// prove exactly that.
[[nodiscard]] bool BatchKernelsEnabled();
void SetBatchKernelsEnabled(bool enabled);

/// RAII toggle for tests/benches.
class ScopedBatchKernels {
 public:
  explicit ScopedBatchKernels(bool enabled) : prev_(BatchKernelsEnabled()) {
    SetBatchKernelsEnabled(enabled);
  }
  ~ScopedBatchKernels() { SetBatchKernelsEnabled(prev_); }
  ScopedBatchKernels(const ScopedBatchKernels&) = delete;
  ScopedBatchKernels& operator=(const ScopedBatchKernels&) = delete;

 private:
  bool prev_;
};

class SimBatch {
 public:
  /// "Provably below min_sim" sentinel returned by AggregateWithThreshold;
  /// real aggregates are in [0, 1].
  static constexpr double kPruned = simkernel::kBelowMinSim;

  /// Exact component value for specs without a batched kernel; receives the
  /// spec index, the interned value ids (stable for the lifetime of the
  /// batch) and the two value strings. Must be a pure function of the two
  /// strings, bit-identical to ComputeMeasure.
  using FallbackFn = std::function<double(
      size_t spec_index, uint32_t old_vid, uint32_t new_vid,
      std::string_view a, std::string_view b)>;

  /// Interns every string field referenced by `fn` over both datasets and
  /// precomputes the per-value signatures the kernels need. All arguments
  /// must outlive the batch.
  SimBatch(const SimilarityFunction& fn, const CensusDataset& old_dataset,
           const CensusDataset& new_dataset);

  SimBatch(const SimBatch&) = delete;
  SimBatch& operator=(const SimBatch&) = delete;

  /// Exact aggregate; bit-identical to
  /// fn.AggregateSimilarity(old.record(o), new.record(n)).
  [[nodiscard]] double Aggregate(RecordId old_id, RecordId new_id,
                                 const FallbackFn& fallback) const;

  /// Exact aggregate, or kPruned when the bounds prove it is < min_sim.
  /// min_sim <= 0 disables pruning (identical to Aggregate).
  [[nodiscard]] double AggregateWithThreshold(RecordId old_id,
                                              RecordId new_id, double min_sim,
                                              const FallbackFn& fallback) const;

  [[nodiscard]] const SimilarityFunction& fn() const { return fn_; }

  // -- Substrate introspection (scalar-mode memo, tests, benches) ----------

  /// True when specs()[i] reads an interned string table (i.e. is not an
  /// age component).
  [[nodiscard]] bool SpecUsesTable(size_t spec_index) const {
    return plans_[spec_index].table >= 0;
  }

  /// Interned value ids of a record for spec i; SpecUsesTable(i) required.
  [[nodiscard]] uint32_t OldValueId(size_t spec_index, RecordId r) const {
    return tables_[plans_[spec_index].table].old_ids[r];
  }
  [[nodiscard]] uint32_t NewValueId(size_t spec_index, RecordId r) const {
    return tables_[plans_[spec_index].table].new_ids[r];
  }

  /// Arena view of one interned value; SpecUsesTable(i) required.
  [[nodiscard]] simkernel::StringRef ValueRef(size_t spec_index,
                                              uint32_t vid) const {
    return tables_[plans_[spec_index].table].Ref(vid);
  }

  /// First byte of an interned value (0 for the empty/missing value);
  /// SpecUsesTable(i) required.
  [[nodiscard]] unsigned char FirstChar(size_t spec_index,
                                        uint32_t vid) const {
    return tables_[plans_[spec_index].table].first_char[vid];
  }

  /// Total distinct values interned across all field tables.
  [[nodiscard]] size_t num_interned_values() const;

 private:
  /// How one component of fn.specs() is evaluated.
  enum class Plan : uint8_t {
    kAge,          // TemporalAgeSimilarity on record ints
    kExactId,      // interned-id equality
    kBigramDice,   // precomputed padded bigram profiles
    kTrigramDice,  // precomputed padded trigram profiles
    kLevenshtein,
    kDamerau,
    kJaro,
    kJaroWinkler,
    kSoundex,    // packed precomputed Soundex codes
    kFallback,   // no batched kernel: caller-supplied (memoized) measure
  };

  struct SpecPlan {
    Plan plan = Plan::kFallback;
    int table = -1;  // index into tables_; -1 for age components
  };

  /// One field's interned values over both snapshots: a contiguous arena
  /// plus flat per-value signature arrays.
  struct FieldTable {
    std::string arena;
    std::vector<uint32_t> offsets;  // per value id, size num_values()+1
    std::vector<unsigned char> first_char;
    std::vector<uint32_t> old_ids;  // per old record
    std::vector<uint32_t> new_ids;  // per new record
    // Sorted packed gram profiles, concatenated; gramN_starts has
    // num_values()+1 entries. Built only when a spec on this field needs
    // them; same for soundex_codes.
    std::vector<uint32_t> gram2_data;
    std::vector<uint32_t> gram2_starts;
    std::vector<uint32_t> gram3_data;
    std::vector<uint32_t> gram3_starts;
    std::vector<uint64_t> soundex_codes;

    [[nodiscard]] size_t num_values() const { return offsets.size() - 1; }
    [[nodiscard]] simkernel::StringRef Ref(uint32_t vid) const {
      return {arena.data() + offsets[vid], offsets[vid + 1] - offsets[vid]};
    }
    /// Missing ⟺ empty holds for every non-age field (sex renders
    /// kUnknown as ""), so the arena length doubles as the missing flag.
    [[nodiscard]] bool Missing(uint32_t vid) const {
      return offsets[vid + 1] == offsets[vid];
    }
  };

  int BuildFieldTable(Field field);

  /// Value of present (both-non-missing) component i; kernel_min > 0 may
  /// yield simkernel::kBelowMinSim.
  [[nodiscard]] double PresentValue(size_t spec_index, uint32_t va,
                                    uint32_t vb, const PersonRecord& ra,
                                    const PersonRecord& rb, double kernel_min,
                                    const FallbackFn& fallback) const;

  const SimilarityFunction& fn_;
  const CensusDataset& old_dataset_;
  const CensusDataset& new_dataset_;
  std::vector<FieldTable> tables_;
  std::vector<SpecPlan> plans_;  // parallel to fn.specs()
  int field_table_[6] = {-1, -1, -1, -1, -1, -1};  // Field -> tables_ index
};

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_SIM_BATCH_H_
