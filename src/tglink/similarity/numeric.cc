#include "tglink/similarity/numeric.h"

#include <cassert>
#include <cmath>

namespace tglink {

double AbsDiffSimilarity(double a, double b, double max_diff) {
  assert(max_diff > 0.0);
  const double diff = std::fabs(a - b);
  if (diff >= max_diff) return 0.0;
  return 1.0 - diff / max_diff;
}

double AgeDiffSimilarity(int diff_old, int diff_new, int tolerance) {
  // Tolerance t means: a deviation of t+1 or more scores 0, so a deviation
  // of exactly t still scores > 0 (it is "within tolerance").
  return AbsDiffSimilarity(diff_old, diff_new,
                           static_cast<double>(tolerance + 1));
}

double TemporalAgeSimilarity(int age_old, int age_new, int year_gap,
                             int tolerance) {
  return AbsDiffSimilarity(age_old + year_gap, age_new,
                           static_cast<double>(tolerance + 1));
}

}  // namespace tglink
