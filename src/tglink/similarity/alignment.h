// Local-alignment string similarities: Smith-Waterman and longest common
// substring / subsequence. Useful for census values with embedded tokens
// ("mill st" vs "12 mill street") where edit distance over-penalizes the
// unmatched remainder.

#ifndef TGLINK_SIMILARITY_ALIGNMENT_H_
#define TGLINK_SIMILARITY_ALIGNMENT_H_

#include <string_view>

namespace tglink {

/// Scoring scheme for Smith-Waterman local alignment.
struct SmithWatermanParams {
  double match = 2.0;
  double mismatch = -1.0;
  double gap = -1.0;  // linear gap cost
};

/// Raw Smith-Waterman local-alignment score (>= 0).
[[nodiscard]] double SmithWatermanScore(std::string_view a, std::string_view b,
                          const SmithWatermanParams& params = {});

/// Smith-Waterman similarity normalized to [0,1]: score divided by the
/// best achievable score for the shorter string (full self-match).
/// Both empty -> 1, one empty -> 0.
[[nodiscard]] double SmithWatermanSimilarity(std::string_view a, std::string_view b,
                               const SmithWatermanParams& params = {});

/// Length of the longest common (contiguous) substring.
[[nodiscard]] size_t LongestCommonSubstring(std::string_view a, std::string_view b);

/// Length of the longest common subsequence (not necessarily contiguous).
[[nodiscard]] size_t LongestCommonSubsequence(std::string_view a, std::string_view b);

/// 2*LCSstr / (|a|+|b|), the common normalization. Both empty -> 1.
[[nodiscard]] double LcsSubstringSimilarity(std::string_view a, std::string_view b);

/// 2*LCSseq / (|a|+|b|).
[[nodiscard]] double LcsSubsequenceSimilarity(std::string_view a, std::string_view b);

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_ALIGNMENT_H_
