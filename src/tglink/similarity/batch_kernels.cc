#include "tglink/similarity/batch_kernels.h"

#include <algorithm>
#include <cassert>

#include "tglink/obs/metrics.h"
#include "tglink/similarity/phonetic.h"
#include "tglink/util/logging.h"

namespace tglink {
namespace simkernel {

namespace {

/// Myers' bit-parallel algorithm handles patterns up to one machine word.
constexpr uint32_t kMyersMaxPattern = 64;

/// Reusable per-thread buffers: DP rows for the banded/Damerau paths,
/// matched flags for Jaro, gram profiles for BatchMeasure. Cleared (not
/// freed) between calls, so steady-state kernel calls never touch the heap.
struct KernelScratch {
  uint64_t peq[256] = {};  // Myers pattern masks; zeroed after every use
  std::vector<int> row;
  std::vector<int> row2;
  std::vector<int> row3;
  std::vector<unsigned char> matched_a;
  std::vector<unsigned char> matched_b;
  std::vector<uint32_t> profile_a;
  std::vector<uint32_t> profile_b;
};

KernelScratch& Scratch() {
  thread_local KernelScratch scratch;
  return scratch;
}

/// Exact Levenshtein distance for patterns of 1..64 chars, O(|text|) words.
int MyersDistance(StringRef pattern, StringRef text) {
  assert(pattern.len >= 1 && pattern.len <= kMyersMaxPattern);
  uint64_t* peq = Scratch().peq;
  const auto* p = reinterpret_cast<const unsigned char*>(pattern.data);
  for (uint32_t i = 0; i < pattern.len; ++i) {
    peq[p[i]] |= uint64_t{1} << i;
  }
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  int score = static_cast<int>(pattern.len);
  const uint64_t high = uint64_t{1} << (pattern.len - 1);
  const auto* t = reinterpret_cast<const unsigned char*>(text.data);
  for (uint32_t j = 0; j < text.len; ++j) {
    const uint64_t eq = peq[t[j]];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & high) {
      ++score;
    } else if (mh & high) {
      --score;
    }
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  // Zero only the touched mask entries (O(pattern), not O(256)).
  for (uint32_t i = 0; i < pattern.len; ++i) {
    peq[p[i]] = 0;
  }
  return score;
}

/// Ukkonen-banded Levenshtein: exact distance when it is <= cap, any value
/// > cap otherwise. With cap >= max(la, lb) the band covers the full table
/// and this is a scratch-row rewrite of the scalar DP.
int BandedLevenshtein(StringRef a, StringRef b, int cap) {
  if (a.len < b.len) std::swap(a, b);  // b is the shorter string
  const int la = static_cast<int>(a.len);
  const int lb = static_cast<int>(b.len);
  if (la - lb > cap) return cap + 1;
  const int inf = cap + 1;
  std::vector<int>& row = Scratch().row;
  row.resize(static_cast<size_t>(lb) + 1);
  for (int j = 0; j <= lb; ++j) row[j] = (j <= cap) ? j : inf;
  for (int i = 1; i <= la; ++i) {
    const int lo = std::max(1, i - cap);
    const int hi = std::min(lb, i + cap);
    int diag = row[lo - 1];  // row[i-1][lo-1], inside the previous band
    // Left boundary cell row[i][lo-1]: the real column-0 value while the
    // band still touches it, out-of-band (= inf) once it has moved on.
    int left = (lo == 1 && i <= cap) ? i : inf;
    row[lo - 1] = left;
    for (int j = lo; j <= hi; ++j) {
      // Column i+cap was outside the previous row's band; its stored value
      // is stale and must read as inf.
      const int up = (j == i + cap) ? inf : row[j];
      const int cost = (a.data[i - 1] == b.data[j - 1]) ? 0 : 1;
      int v = std::min({up + 1, left + 1, diag + cost});
      if (v > inf) v = inf;
      row[j] = v;
      left = v;
      diag = up;
    }
  }
  return row[lb];
}

/// Same expression as edit_distance.cc's NormalizedSimilarity.
double NormalizedEditSimilarity(int dist, size_t la, size_t lb) {
  const size_t longest = std::max(la, lb);
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

}  // namespace

double EditUpperBound(size_t la, size_t lb) {
  const size_t longest = std::max(la, lb);
  if (longest == 0) return 1.0;
  const size_t diff = la > lb ? la - lb : lb - la;
  return 1.0 - static_cast<double>(diff) / static_cast<double>(longest);
}

double JaroUpperBound(size_t la, size_t lb) {
  if (la == 0 || lb == 0) return la == lb ? 1.0 : 0.0;
  // jaro = (m/la + m/lb + (m - t/2)/m) / 3 with m <= min(la, lb) and
  // t >= 0; every term is monotone, so evaluate at m = min, t = 0.
  const double m = static_cast<double>(std::min(la, lb));
  return (m / static_cast<double>(la) + m / static_cast<double>(lb) + 1.0) /
         3.0;
}

double JaroWinklerUpperBound(size_t la, size_t lb) {
  const double jaro = JaroUpperBound(la, lb);
  // Same expression shape as the kernel, at prefix = 4, scale = 0.1.
  return jaro + 4.0 * 0.1 * (1.0 - jaro);
}

double DiceUpperBound(size_t na, size_t nb) {
  if (na + nb == 0) return 1.0;
  const double common = static_cast<double>(std::min(na, nb));
  return 2.0 * common / static_cast<double>(na + nb);
}

double LevenshteinKernel(StringRef a, StringRef b, double min_sim) {
  if (a.len == 0 && b.len == 0) return 1.0;
  if (a.len == 0 || b.len == 0) return 0.0;
  const size_t la = a.len;
  const size_t lb = b.len;
  if (min_sim > 0.0 && EditUpperBound(la, lb) < min_sim - kPruneMargin) {
    TGLINK_COUNTER_INC("simkernel.pruned_by_length");
    return kBelowMinSim;
  }
  const size_t longest = std::max(la, lb);
  int dist = 0;
  if (std::min(la, lb) <= kMyersMaxPattern) {
    TGLINK_COUNTER_INC("simkernel.myers_hits");
    dist = la <= lb ? MyersDistance(a, b) : MyersDistance(b, a);
  } else {
    TGLINK_COUNTER_INC("simkernel.fallback_hits");
    // dist > cap proves sim < min_sim with >= 1/longest to spare: cap + 1
    // exceeds (1 - min_sim) * longest even after fp rounding of the product.
    const int cap =
        min_sim > 0.0
            ? std::min(static_cast<int>(longest),
                       static_cast<int>((1.0 - min_sim) *
                                        static_cast<double>(longest)) +
                           1)
            : static_cast<int>(longest);
    dist = BandedLevenshtein(a, b, cap);
    if (dist > cap) {
      TGLINK_COUNTER_INC("simkernel.pruned_by_length");
      return kBelowMinSim;
    }
  }
  return NormalizedEditSimilarity(dist, la, lb);
}

double DamerauKernel(StringRef a, StringRef b, double min_sim) {
  if (a.len == 0 && b.len == 0) return 1.0;
  if (a.len == 0 || b.len == 0) return 0.0;
  const size_t n = a.len;
  const size_t m = b.len;
  if (min_sim > 0.0 && EditUpperBound(n, m) < min_sim - kPruneMargin) {
    TGLINK_COUNTER_INC("simkernel.pruned_by_length");
    return kBelowMinSim;
  }
  // Same recurrence as edit_distance.cc's DamerauDistance, on thread-local
  // rolling rows.
  KernelScratch& scratch = Scratch();
  std::vector<int>& prev2 = scratch.row;
  std::vector<int>& prev = scratch.row2;
  std::vector<int>& cur = scratch.row3;
  prev2.resize(m + 1);
  prev.resize(m + 1);
  cur.resize(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = (a.data[i - 1] == b.data[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a.data[i - 1] == b.data[j - 2] &&
          a.data[i - 2] == b.data[j - 1]) {
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return NormalizedEditSimilarity(prev[m], n, m);
}

double JaroKernel(StringRef a, StringRef b, double min_sim) {
  if (a.len == 0 && b.len == 0) return 1.0;
  if (a.len == 0 || b.len == 0) return 0.0;
  if (min_sim > 0.0 &&
      JaroUpperBound(a.len, b.len) < min_sim - kPruneMargin) {
    TGLINK_COUNTER_INC("simkernel.pruned_by_length");
    return kBelowMinSim;
  }
  if (a.view() == b.view()) return 1.0;

  // Identical match/transposition loops to jaro.cc, with thread-local
  // matched-flag scratch instead of per-call std::vector<bool>.
  const int la = static_cast<int>(a.len);
  const int lb = static_cast<int>(b.len);
  const int window = std::max(0, std::max(la, lb) / 2 - 1);

  KernelScratch& scratch = Scratch();
  scratch.matched_a.assign(a.len, 0);
  scratch.matched_b.assign(b.len, 0);
  unsigned char* matched_a = scratch.matched_a.data();
  unsigned char* matched_b = scratch.matched_b.data();
  int matches = 0;
  for (int i = 0; i < la; ++i) {
    const int lo = std::max(0, i - window);
    const int hi = std::min(lb - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!matched_b[j] && a.data[i] == b.data[j]) {
        matched_a[i] = matched_b[j] = 1;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < la; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a.data[i] != b.data[j]) ++transpositions;
    ++j;
  }
  const double m = matches;
  return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerKernel(StringRef a, StringRef b, double min_sim) {
  if (a.len == 0 && b.len == 0) return 1.0;
  if (a.len == 0 || b.len == 0) return 0.0;
  if (min_sim > 0.0 &&
      JaroWinklerUpperBound(a.len, b.len) < min_sim - kPruneMargin) {
    TGLINK_COUNTER_INC("simkernel.pruned_by_length");
    return kBelowMinSim;
  }
  // Winkler boost is nonnegative, so the inner Jaro must not prune at the
  // Jaro-Winkler cutoff; pass 0 and apply the same formula as jaro.cc with
  // the default 0.1 prefix scale (the only one ComputeMeasure uses).
  const double jaro = JaroKernel(a, b, 0.0);
  constexpr double kPrefixScale = 0.1;
  size_t prefix = 0;
  const size_t limit =
      std::min({static_cast<size_t>(a.len), static_cast<size_t>(b.len),
                size_t{4}});
  while (prefix < limit && a.data[prefix] == b.data[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * kPrefixScale * (1.0 - jaro);
}

double DiceProfileKernel(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb, double min_sim) {
  TGLINK_DCHECK(na > 0 && nb > 0) << "Dice profiles must be non-empty";
  if (min_sim > 0.0 && DiceUpperBound(na, nb) < min_sim - kPruneMargin) {
    TGLINK_COUNTER_INC("simkernel.pruned_by_profile");
    return kBelowMinSim;
  }
  size_t i = 0, j = 0, common = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  // Same expression as qgram.cc: 2|A∩B| / (|A|+|B|).
  return 2.0 * static_cast<double>(common) / static_cast<double>(na + nb);
}

void BuildPaddedGramProfile(std::string_view s, int q,
                            std::vector<uint32_t>* out) {
  TGLINK_DCHECK(q == 2 || q == 3) << "packed profiles support q in {2,3}";
  // Virtual padded string (q-1)*'#' + s + (q-1)*'$', no materialization.
  const size_t pad = static_cast<size_t>(q - 1);
  const size_t num_grams = s.size() + pad;  // (|s| + 2*pad) - q + 1
  const size_t start = out->size();
  out->reserve(start + num_grams);
  const auto at = [&](size_t v) -> uint32_t {
    if (v < pad) return '#';
    if (v >= pad + s.size()) return '$';
    return static_cast<unsigned char>(s[v - pad]);
  };
  for (size_t i = 0; i < num_grams; ++i) {
    uint32_t code = 0;
    for (int k = 0; k < q; ++k) code = (code << 8) | at(i + k);
    out->push_back(code);
  }
  std::sort(out->begin() + static_cast<ptrdiff_t>(start), out->end());
}

uint64_t PackPhoneticCode(std::string_view code) {
  TGLINK_DCHECK(code.size() <= 8) << "phonetic code too long: " << code;
  uint64_t packed = 0;
  for (const char c : code) {
    packed = (packed << 8) | static_cast<unsigned char>(c);
  }
  return packed;
}

bool HasBatchKernel(Measure measure) {
  switch (measure) {
    case Measure::kExact:
    case Measure::kQGramDice:
    case Measure::kTrigramDice:
    case Measure::kLevenshtein:
    case Measure::kDamerau:
    case Measure::kJaro:
    case Measure::kJaroWinkler:
    case Measure::kSoundexEqual:
      return true;
    case Measure::kMongeElkan:
    case Measure::kDoubleMetaphone:
    case Measure::kSmithWaterman:
    case Measure::kLcsSubstring:
      return false;
  }
  return false;
}

double BatchMeasure(Measure measure, std::string_view a, std::string_view b,
                    double min_sim) {
  // ComputeMeasure's shared conventions, ahead of any dispatch.
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  switch (measure) {
    case Measure::kExact:
      return a == b ? 1.0 : 0.0;
    case Measure::kQGramDice:
    case Measure::kTrigramDice: {
      if (a == b) return 1.0;  // same early-out as BigramDice/QGramSimilarity
      KernelScratch& scratch = Scratch();
      scratch.profile_a.clear();
      scratch.profile_b.clear();
      const int q = measure == Measure::kQGramDice ? 2 : 3;
      BuildPaddedGramProfile(a, q, &scratch.profile_a);
      BuildPaddedGramProfile(b, q, &scratch.profile_b);
      return DiceProfileKernel(scratch.profile_a.data(),
                               scratch.profile_a.size(),
                               scratch.profile_b.data(),
                               scratch.profile_b.size(), min_sim);
    }
    case Measure::kLevenshtein:
      return LevenshteinKernel(MakeRef(a), MakeRef(b), min_sim);
    case Measure::kDamerau:
      return DamerauKernel(MakeRef(a), MakeRef(b), min_sim);
    case Measure::kJaro:
      return JaroKernel(MakeRef(a), MakeRef(b), min_sim);
    case Measure::kJaroWinkler:
      return JaroWinklerKernel(MakeRef(a), MakeRef(b), min_sim);
    case Measure::kSoundexEqual:
      return Soundex(a) == Soundex(b) ? 1.0 : 0.0;
    case Measure::kMongeElkan:
    case Measure::kDoubleMetaphone:
    case Measure::kSmithWaterman:
    case Measure::kLcsSubstring:
      return ComputeMeasure(measure, a, b);
  }
  return 0.0;
}

}  // namespace simkernel
}  // namespace tglink
