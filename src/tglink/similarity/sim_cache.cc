#include "tglink/similarity/sim_cache.h"

#include <mutex>
#include <string>
#include <utility>

#include "tglink/obs/metrics.h"
#include "tglink/util/logging.h"

namespace tglink {

namespace {

/// A component is worth memoizing when the measure does real string work.
/// Age components are temporal arithmetic, and exact comparisons are
/// cheaper than the hash lookup that would replace them.
bool IsCacheable(const AttributeSpec& spec) {
  return spec.field != Field::kAge && spec.measure != Measure::kExact;
}

std::vector<uint32_t> InternRecords(
    const std::vector<PersonRecord>& records, Field field,
    std::unordered_map<std::string, uint32_t>* table) {
  std::vector<uint32_t> ids;
  ids.reserve(records.size());
  for (const PersonRecord& record : records) {
    const auto [it, inserted] = table->emplace(
        GetFieldValue(record, field), static_cast<uint32_t>(table->size()));
    ids.push_back(it->second);
    (void)inserted;
  }
  return ids;
}

}  // namespace

SimCache::SimCache(const SimilarityFunction& fn,
                   const CensusDataset& old_dataset,
                   const CensusDataset& new_dataset)
    : fn_(fn), old_dataset_(old_dataset), new_dataset_(new_dataset) {
  spec_caches_.resize(fn.specs().size());
  for (size_t i = 0; i < fn.specs().size(); ++i) {
    const AttributeSpec& spec = fn.specs()[i];
    if (!IsCacheable(spec)) continue;
    auto it = field_ids_.find(spec.field);
    if (it == field_ids_.end()) {
      std::unordered_map<std::string, uint32_t> table;
      FieldIds ids;
      ids.old_ids = InternRecords(old_dataset.records(), spec.field, &table);
      ids.new_ids = InternRecords(new_dataset.records(), spec.field, &table);
      TGLINK_COUNTER_ADD("simcache.interned_values", table.size());
      it = field_ids_.emplace(spec.field, std::move(ids)).first;
    }
    SpecCache& cache = spec_caches_[i];
    cache.enabled = true;
    cache.ids = &it->second;
    cache.shards = std::make_unique<Shard[]>(kNumShards);
  }
}

double SimCache::Aggregate(RecordId old_id, RecordId new_id) const {
  const PersonRecord& a = old_dataset_.record(old_id);
  const PersonRecord& b = new_dataset_.record(new_id);
  return fn_.AggregateWith([this, old_id, new_id, &a, &b](
                               size_t i, bool* missing_one,
                               bool* missing_both) {
    const SpecCache& cache = spec_caches_[i];
    const AttributeSpec& spec = fn_.specs()[i];
    if (!cache.enabled) {
      return fn_.ComponentSimilarity(spec, a, b, missing_one, missing_both);
    }
    // Mirror ComponentSimilarity's missing-value protocol exactly; the
    // memo only ever holds both-present measure results.
    const bool ma = IsFieldMissing(a, spec.field);
    const bool mb = IsFieldMissing(b, spec.field);
    *missing_both = ma && mb;
    *missing_one = (ma || mb) && !*missing_both;
    if (ma || mb) return 0.0;
    const uint64_t key =
        (static_cast<uint64_t>(cache.ids->old_ids[old_id]) << 32) |
        cache.ids->new_ids[new_id];
    Shard& shard = cache.shards[ShardIndex(key)];
    {
      std::shared_lock<std::shared_mutex> read(shard.mu);
      const auto it = shard.memo.find(key);
      if (it != shard.memo.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        TGLINK_COUNTER_INC("simcache.hits");
        return it->second;
      }
    }
    const double s = ComputeMeasure(spec.measure, GetFieldValue(a, spec.field),
                                    GetFieldValue(b, spec.field));
    TGLINK_DCHECK(s >= 0.0 && s <= 1.0)
        << "measure " << MeasureName(spec.measure) << " on "
        << FieldName(spec.field) << " returned " << s;
    {
      std::unique_lock<std::shared_mutex> write(shard.mu);
      shard.memo.emplace(key, s);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    TGLINK_COUNTER_INC("simcache.misses");
    return s;
  });
}

}  // namespace tglink
