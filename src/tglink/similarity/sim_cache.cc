#include "tglink/similarity/sim_cache.h"

#include <string_view>

#include "tglink/obs/memprof.h"
#include "tglink/obs/metrics.h"
#include "tglink/similarity/batch_kernels.h"
#include "tglink/util/logging.h"
#include "tglink/util/thread_annotations.h"

namespace tglink {

SimCache::SimCache(const SimilarityFunction& fn,
                   const CensusDataset& old_dataset,
                   const CensusDataset& new_dataset)
    : fn_(fn),
      old_dataset_(old_dataset),
      new_dataset_(new_dataset),
      use_batch_(BatchKernelsEnabled()),
      batch_(fn, old_dataset, new_dataset) {
  spec_caches_.resize(fn.specs().size());
  for (size_t i = 0; i < fn.specs().size(); ++i) {
    const AttributeSpec& spec = fn.specs()[i];
    if (spec.field == Field::kAge) continue;  // temporal arithmetic, no memo
    // Scalar mode memoizes everything but exact equality (cheaper than the
    // lookup); batched mode memoizes only the measures without a kernel.
    const bool memoize = use_batch_ ? !simkernel::HasBatchKernel(spec.measure)
                                    : spec.measure != Measure::kExact;
    if (!memoize) continue;
    spec_caches_[i].enabled = true;
    spec_caches_[i].shards = std::make_unique<Shard[]>(kNumShards);
  }
  fallback_ = [this](size_t i, uint32_t old_vid, uint32_t new_vid,
                     std::string_view a, std::string_view b) {
    return MemoizedMeasure(i, old_vid, new_vid, a, b);
  };
}

SimCache::~SimCache() {
  // Logical footprint only — per-spec bookkeeping plus entry payloads and
  // fixed shard headers, excluding hash-table load-factor slack — so the
  // figure is deterministic and bench_diff.py can gate it exactly. The memo
  // only grows, so the destructor sees the true maximum.
  uint64_t memo_bytes = spec_caches_.size() * sizeof(SpecCache);
  for (const SpecCache& cache : spec_caches_) {
    if (!cache.enabled) continue;
    memo_bytes += kNumShards * sizeof(Shard);
    for (size_t s = 0; s < kNumShards; ++s) {
      Shard& shard = cache.shards[s];
      ReaderMutexLock read(shard.mu);
      memo_bytes +=
          shard.memo.size() * (sizeof(uint64_t) + sizeof(double));
    }
  }
  obs::ReportArenaBytes("simcache", memo_bytes);
}

double SimCache::MemoizedMeasure(size_t spec_index, uint32_t old_vid,
                                 uint32_t new_vid, std::string_view a,
                                 std::string_view b) const {
  const SpecCache& cache = spec_caches_[spec_index];
  TGLINK_DCHECK(cache.enabled);
  const uint64_t key = (static_cast<uint64_t>(old_vid) << 32) | new_vid;
  Shard& shard = cache.shards[ShardIndex(key)];
  {
    ReaderMutexLock read(shard.mu);
    const auto it = shard.memo.find(key);
    if (it != shard.memo.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      TGLINK_COUNTER_INC("simcache.hits");
      return it->second;
    }
  }
  const AttributeSpec& spec = fn_.specs()[spec_index];
  const double s = ComputeMeasure(spec.measure, a, b);
  TGLINK_DCHECK(s >= 0.0 && s <= 1.0)
      << "measure " << MeasureName(spec.measure) << " on "
      << FieldName(spec.field) << " returned " << s;
  {
    WriterMutexLock write(shard.mu);
    shard.memo.emplace(key, s);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  TGLINK_COUNTER_INC("simcache.misses");
  return s;
}

double SimCache::Aggregate(RecordId old_id, RecordId new_id) const {
  TGLINK_COUNTER_INC("similarity.agg_calls");
  if (use_batch_) return batch_.Aggregate(old_id, new_id, fallback_);
  const PersonRecord& a = old_dataset_.record(old_id);
  const PersonRecord& b = new_dataset_.record(new_id);
  return fn_.AggregateWith([this, old_id, new_id, &a, &b](
                               size_t i, bool* missing_one,
                               bool* missing_both) {
    const AttributeSpec& spec = fn_.specs()[i];
    if (!spec_caches_[i].enabled) {
      return fn_.ComponentSimilarity(spec, a, b, missing_one, missing_both);
    }
    // Mirror ComponentSimilarity's missing-value protocol exactly; the
    // memo only ever holds both-present measure results.
    const bool ma = IsFieldMissing(a, spec.field);
    const bool mb = IsFieldMissing(b, spec.field);
    *missing_both = ma && mb;
    *missing_one = (ma || mb) && !*missing_both;
    if (ma || mb) return 0.0;
    // The arena views hold the same bytes GetFieldValue returns, without
    // re-materializing the strings per pair.
    const uint32_t va = batch_.OldValueId(i, old_id);
    const uint32_t vb = batch_.NewValueId(i, new_id);
    return MemoizedMeasure(i, va, vb, batch_.ValueRef(i, va).view(),
                           batch_.ValueRef(i, vb).view());
  });
}

double SimCache::AggregateWithThreshold(RecordId old_id, RecordId new_id,
                                        double min_sim) const {
  if (!use_batch_) return Aggregate(old_id, new_id);  // counts agg_calls
  TGLINK_COUNTER_INC("similarity.agg_calls");
  return batch_.AggregateWithThreshold(old_id, new_id, min_sim, fallback_);
}

}  // namespace tglink
