#include "tglink/similarity/sim_batch.h"

#include <algorithm>
#include <atomic>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "tglink/obs/memprof.h"
#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"
#include "tglink/similarity/numeric.h"
#include "tglink/similarity/phonetic.h"
#include "tglink/util/logging.h"

namespace tglink {

namespace {

std::atomic<bool> g_batch_kernels_enabled{true};

/// Per-thread pair-evaluation scratch for AggregateWithThreshold, sized to
/// the spec count once and reused — no per-pair heap work.
struct SpecState {
  double contrib_ub = 0.0;  // this spec's weighted contribution bound
  double value = 0.0;       // exact value when `known`
  uint32_t va = 0;
  uint32_t vb = 0;
  bool present = false;
  bool known = false;
  bool missing_one = false;
  bool missing_both = false;
};

struct PairScratch {
  std::vector<SpecState> state;
  std::vector<double> rem_after;  // suffix sums of contrib_ub
};

// Concurrency contract: the scratch is thread-owned, never shared — each
// pool worker mutates only its own copy, so no capability annotation
// applies (thread_local IS the discipline). The batch tables it reads are
// frozen after single-threaded construction; any future mutable sharing
// here must move behind an annotated lock from util/thread_annotations.h.
PairScratch& ThreadPairScratch() {
  thread_local PairScratch scratch;
  return scratch;
}

}  // namespace

bool BatchKernelsEnabled() {
  return g_batch_kernels_enabled.load(std::memory_order_relaxed);
}

void SetBatchKernelsEnabled(bool enabled) {
  g_batch_kernels_enabled.store(enabled, std::memory_order_relaxed);
}

SimBatch::SimBatch(const SimilarityFunction& fn,
                   const CensusDataset& old_dataset,
                   const CensusDataset& new_dataset)
    : fn_(fn), old_dataset_(old_dataset), new_dataset_(new_dataset) {
  TGLINK_TRACE_SPAN("simkernel.build_batch");
  TGLINK_MEM_STAGE("simkernel.build_batch");
  const std::vector<AttributeSpec>& specs = fn.specs();
  plans_.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const AttributeSpec& spec = specs[i];
    if (spec.field == Field::kAge) {
      // ComponentSimilarity routes every age-field component to
      // TemporalAgeSimilarity regardless of the configured measure.
      plans_[i] = {Plan::kAge, -1};
      continue;
    }
    Plan plan = Plan::kFallback;
    switch (spec.measure) {
      case Measure::kExact:
        plan = Plan::kExactId;
        break;
      case Measure::kQGramDice:
        plan = Plan::kBigramDice;
        break;
      case Measure::kTrigramDice:
        plan = Plan::kTrigramDice;
        break;
      case Measure::kLevenshtein:
        plan = Plan::kLevenshtein;
        break;
      case Measure::kDamerau:
        plan = Plan::kDamerau;
        break;
      case Measure::kJaro:
        plan = Plan::kJaro;
        break;
      case Measure::kJaroWinkler:
        plan = Plan::kJaroWinkler;
        break;
      case Measure::kSoundexEqual:
        plan = Plan::kSoundex;
        break;
      case Measure::kMongeElkan:
      case Measure::kDoubleMetaphone:
      case Measure::kSmithWaterman:
      case Measure::kLcsSubstring:
        plan = Plan::kFallback;
        break;
    }
    plans_[i] = {plan, BuildFieldTable(spec.field)};
  }
  // Build the per-value signatures each table actually needs (a field can
  // be referenced by several specs with different measures).
  for (size_t i = 0; i < specs.size(); ++i) {
    const SpecPlan& plan = plans_[i];
    if (plan.table < 0) continue;
    FieldTable& table = tables_[plan.table];
    const size_t n = table.num_values();
    if (plan.plan == Plan::kBigramDice && table.gram2_starts.empty()) {
      table.gram2_starts.reserve(n + 1);
      table.gram2_starts.push_back(0);
      for (uint32_t vid = 0; vid < n; ++vid) {
        simkernel::BuildPaddedGramProfile(table.Ref(vid).view(), 2,
                                          &table.gram2_data);
        table.gram2_starts.push_back(
            static_cast<uint32_t>(table.gram2_data.size()));
      }
    }
    if (plan.plan == Plan::kTrigramDice && table.gram3_starts.empty()) {
      table.gram3_starts.reserve(n + 1);
      table.gram3_starts.push_back(0);
      for (uint32_t vid = 0; vid < n; ++vid) {
        simkernel::BuildPaddedGramProfile(table.Ref(vid).view(), 3,
                                          &table.gram3_data);
        table.gram3_starts.push_back(
            static_cast<uint32_t>(table.gram3_data.size()));
      }
    }
    if (plan.plan == Plan::kSoundex && table.soundex_codes.empty()) {
      table.soundex_codes.reserve(n);
      for (uint32_t vid = 0; vid < n; ++vid) {
        table.soundex_codes.push_back(
            simkernel::PackPhoneticCode(Soundex(table.Ref(vid).view())));
      }
    }
  }
  // Logical sizes (element counts, not capacities) so the figure is a pure
  // function of the inputs and bench_diff.py can gate it exactly.
  uint64_t arena_bytes = 0;
  for (const FieldTable& table : tables_) {
    arena_bytes += table.arena.size();
    arena_bytes += table.offsets.size() * sizeof(uint32_t);
    arena_bytes += table.first_char.size();
    arena_bytes += table.old_ids.size() * sizeof(uint32_t);
    arena_bytes += table.new_ids.size() * sizeof(uint32_t);
    arena_bytes += table.gram2_data.size() * sizeof(uint32_t);
    arena_bytes += table.gram2_starts.size() * sizeof(uint32_t);
    arena_bytes += table.gram3_data.size() * sizeof(uint32_t);
    arena_bytes += table.gram3_starts.size() * sizeof(uint32_t);
    arena_bytes += table.soundex_codes.size() * sizeof(uint64_t);
  }
  obs::ReportArenaBytes("simbatch", arena_bytes);
}

int SimBatch::BuildFieldTable(Field field) {
  int& index = field_table_[static_cast<size_t>(field)];
  if (index >= 0) return index;
  index = static_cast<int>(tables_.size());
  tables_.emplace_back();
  FieldTable& table = tables_.back();
  table.offsets.push_back(0);
  std::unordered_map<std::string, uint32_t> interner;
  const auto intern = [&](const PersonRecord& record) {
    const auto [it, inserted] = interner.emplace(
        GetFieldValue(record, field), static_cast<uint32_t>(interner.size()));
    if (inserted) {
      table.arena.append(it->first);
      table.offsets.push_back(static_cast<uint32_t>(table.arena.size()));
      table.first_char.push_back(
          it->first.empty() ? 0
                            : static_cast<unsigned char>(it->first.front()));
    }
    return it->second;
  };
  table.old_ids.reserve(old_dataset_.num_records());
  for (const PersonRecord& record : old_dataset_.records()) {
    table.old_ids.push_back(intern(record));
  }
  table.new_ids.reserve(new_dataset_.num_records());
  for (const PersonRecord& record : new_dataset_.records()) {
    table.new_ids.push_back(intern(record));
  }
  TGLINK_COUNTER_ADD("simcache.interned_values", interner.size());
  return index;
}

size_t SimBatch::num_interned_values() const {
  size_t total = 0;
  for (const FieldTable& table : tables_) total += table.num_values();
  return total;
}

double SimBatch::PresentValue(size_t spec_index, uint32_t va, uint32_t vb,
                              const PersonRecord& ra, const PersonRecord& rb,
                              double kernel_min,
                              const FallbackFn& fallback) const {
  const SpecPlan& plan = plans_[spec_index];
  switch (plan.plan) {
    case Plan::kAge:
      return TemporalAgeSimilarity(ra.age, rb.age, fn_.year_gap(),
                                   fn_.age_tolerance());
    case Plan::kExactId:
      return va == vb ? 1.0 : 0.0;
    case Plan::kSoundex: {
      const FieldTable& t = tables_[plan.table];
      return t.soundex_codes[va] == t.soundex_codes[vb] ? 1.0 : 0.0;
    }
    case Plan::kBigramDice: {
      if (va == vb) return 1.0;
      const FieldTable& t = tables_[plan.table];
      return simkernel::DiceProfileKernel(
          t.gram2_data.data() + t.gram2_starts[va],
          t.gram2_starts[va + 1] - t.gram2_starts[va],
          t.gram2_data.data() + t.gram2_starts[vb],
          t.gram2_starts[vb + 1] - t.gram2_starts[vb], kernel_min);
    }
    case Plan::kTrigramDice: {
      if (va == vb) return 1.0;
      const FieldTable& t = tables_[plan.table];
      return simkernel::DiceProfileKernel(
          t.gram3_data.data() + t.gram3_starts[va],
          t.gram3_starts[va + 1] - t.gram3_starts[va],
          t.gram3_data.data() + t.gram3_starts[vb],
          t.gram3_starts[vb + 1] - t.gram3_starts[vb], kernel_min);
    }
    case Plan::kLevenshtein: {
      if (va == vb) return 1.0;
      const FieldTable& t = tables_[plan.table];
      return simkernel::LevenshteinKernel(t.Ref(va), t.Ref(vb), kernel_min);
    }
    case Plan::kDamerau: {
      if (va == vb) return 1.0;
      const FieldTable& t = tables_[plan.table];
      return simkernel::DamerauKernel(t.Ref(va), t.Ref(vb), kernel_min);
    }
    case Plan::kJaro: {
      if (va == vb) return 1.0;
      const FieldTable& t = tables_[plan.table];
      return simkernel::JaroKernel(t.Ref(va), t.Ref(vb), kernel_min);
    }
    case Plan::kJaroWinkler: {
      if (va == vb) return 1.0;
      const FieldTable& t = tables_[plan.table];
      return simkernel::JaroWinklerKernel(t.Ref(va), t.Ref(vb), kernel_min);
    }
    case Plan::kFallback: {
      const FieldTable& t = tables_[plan.table];
      return fallback(spec_index, va, vb, t.Ref(va).view(), t.Ref(vb).view());
    }
  }
  return 0.0;
}

double SimBatch::Aggregate(RecordId old_id, RecordId new_id,
                           const FallbackFn& fallback) const {
  const PersonRecord& ra = old_dataset_.record(old_id);
  const PersonRecord& rb = new_dataset_.record(new_id);
  return fn_.AggregateWith([&](size_t i, bool* missing_one,
                               bool* missing_both) -> double {
    const SpecPlan& plan = plans_[i];
    bool ma = false, mb = false;
    uint32_t va = 0, vb = 0;
    if (plan.table < 0) {
      ma = !ra.has_age();
      mb = !rb.has_age();
    } else {
      const FieldTable& t = tables_[plan.table];
      va = t.old_ids[old_id];
      vb = t.new_ids[new_id];
      ma = t.Missing(va);
      mb = t.Missing(vb);
    }
    // ComponentSimilarity's missing-value protocol, verbatim.
    *missing_both = ma && mb;
    *missing_one = (ma || mb) && !*missing_both;
    if (ma || mb) return 0.0;
    const double s = PresentValue(i, va, vb, ra, rb, /*kernel_min=*/0.0,
                                  fallback);
    TGLINK_DCHECK(s >= 0.0 && s <= 1.0)
        << "batched measure " << MeasureName(fn_.specs()[i].measure) << " on "
        << FieldName(fn_.specs()[i].field) << " returned " << s;
    return s;
  });
}

double SimBatch::AggregateWithThreshold(RecordId old_id, RecordId new_id,
                                        double min_sim,
                                        const FallbackFn& fallback) const {
  if (min_sim <= 0.0) return Aggregate(old_id, new_id, fallback);
  TGLINK_COUNTER_INC("simkernel.screened");
  const PersonRecord& ra = old_dataset_.record(old_id);
  const PersonRecord& rb = new_dataset_.record(new_id);
  const std::vector<AttributeSpec>& specs = fn_.specs();
  const MissingPolicy policy = fn_.missing_policy();
  PairScratch& scratch = ThreadPairScratch();
  scratch.state.resize(specs.size());
  scratch.rem_after.resize(specs.size());

  // Phase 0+1: missing flags and O(1) per-component upper bounds. The
  // missing pattern fully determines the Eq. 3 denominator and the
  // coverage floor, so those are evaluated exactly here; only the present
  // components' values remain uncertain.
  double weight_total = 0.0;
  double weight_counted = 0.0;
  double weight_covered = 0.0;
  double ub_sum = 0.0;       // optimistic weighted sum, all bounds applied
  double ub_len_sum = 0.0;   // ditto with gram-profile bounds relaxed to 1
  for (size_t i = 0; i < specs.size(); ++i) {
    const AttributeSpec& spec = specs[i];
    const SpecPlan& plan = plans_[i];
    SpecState& st = scratch.state[i];
    st = SpecState{};
    weight_total += spec.weight;
    bool ma = false, mb = false;
    if (plan.table < 0) {
      ma = !ra.has_age();
      mb = !rb.has_age();
    } else {
      const FieldTable& t = tables_[plan.table];
      st.va = t.old_ids[old_id];
      st.vb = t.new_ids[new_id];
      ma = t.Missing(st.va);
      mb = t.Missing(st.vb);
    }
    st.missing_both = ma && mb;
    st.missing_one = (ma || mb) && !st.missing_both;
    if (ma || mb) {
      // AggregateWith's contribution for a missing component is an exact
      // constant; fold it into both bound sums.
      double contrib = 0.0;
      switch (policy) {
        case MissingPolicy::kRedistribute:
          if (st.missing_both) break;  // excluded entirely
          weight_counted += spec.weight;
          break;
        case MissingPolicy::kZero:
          weight_counted += spec.weight;
          break;
        case MissingPolicy::kNeutral:
          weight_counted += spec.weight;
          contrib = spec.weight * 0.5;
          break;
      }
      st.contrib_ub = contrib;
      ub_sum += contrib;
      ub_len_sum += contrib;
      continue;
    }
    st.present = true;
    weight_counted += spec.weight;
    weight_covered += spec.weight;
    double ub = 1.0;
    double len_ub = 1.0;
    switch (plan.plan) {
      case Plan::kAge:
      case Plan::kExactId:
      case Plan::kSoundex:
        // O(1) exact values: use them as their own (tight) bound and skip
        // the kernel dispatch in phase 2.
        st.value = PresentValue(i, st.va, st.vb, ra, rb, 0.0, fallback);
        st.known = true;
        ub = st.value;
        len_ub = ub;
        break;
      case Plan::kBigramDice: {
        const FieldTable& t = tables_[plan.table];
        if (st.va == st.vb) {
          st.value = 1.0;
          st.known = true;
          ub = 1.0;
        } else {
          ub = simkernel::DiceUpperBound(
              t.gram2_starts[st.va + 1] - t.gram2_starts[st.va],
              t.gram2_starts[st.vb + 1] - t.gram2_starts[st.vb]);
        }
        break;
      }
      case Plan::kTrigramDice: {
        const FieldTable& t = tables_[plan.table];
        if (st.va == st.vb) {
          st.value = 1.0;
          st.known = true;
          ub = 1.0;
        } else {
          ub = simkernel::DiceUpperBound(
              t.gram3_starts[st.va + 1] - t.gram3_starts[st.va],
              t.gram3_starts[st.vb + 1] - t.gram3_starts[st.vb]);
        }
        break;
      }
      case Plan::kLevenshtein:
      case Plan::kDamerau: {
        const FieldTable& t = tables_[plan.table];
        ub = simkernel::EditUpperBound(t.Ref(st.va).len, t.Ref(st.vb).len);
        len_ub = ub;
        break;
      }
      case Plan::kJaro: {
        const FieldTable& t = tables_[plan.table];
        ub = simkernel::JaroUpperBound(t.Ref(st.va).len, t.Ref(st.vb).len);
        len_ub = ub;
        break;
      }
      case Plan::kJaroWinkler: {
        const FieldTable& t = tables_[plan.table];
        ub = simkernel::JaroWinklerUpperBound(t.Ref(st.va).len,
                                              t.Ref(st.vb).len);
        len_ub = ub;
        break;
      }
      case Plan::kFallback:
        break;  // no sound bound; ub stays 1
    }
    st.contrib_ub = spec.weight * ub;
    ub_sum += st.contrib_ub;
    ub_len_sum += spec.weight * len_ub;
  }

  // Structural zeroes: AggregateWith returns exactly 0.0 for these, and
  // 0 < min_sim here, so rejecting is sound (and exact).
  if (weight_counted <= 0.0 ||
      (policy == MissingPolicy::kRedistribute &&
       weight_covered < 0.5 * weight_total)) {
    TGLINK_COUNTER_INC("simkernel.pruned_by_coverage");
    return kPruned;
  }

  const double denom =
      policy == MissingPolicy::kRedistribute ? weight_counted : weight_total;
  // Reject only when the optimistic aggregate is below min_sim by more
  // than the margin, so fp rounding of the bound arithmetic can never
  // reject a pair whose exact aggregate reaches min_sim.
  const double cutoff = (min_sim - simkernel::kPruneMargin) * denom;
  if (ub_sum < cutoff) {
    if (ub_len_sum < cutoff) {
      TGLINK_COUNTER_INC("simkernel.pruned_by_length");
    } else {
      TGLINK_COUNTER_INC("simkernel.pruned_by_profile");
    }
    return kPruned;
  }

  // Suffix bounds: rem_after[i] = sum of contrib_ub over specs after i.
  {
    double acc = 0.0;
    for (size_t i = specs.size(); i-- > 0;) {
      scratch.rem_after[i] = acc;
      acc += scratch.state[i].contrib_ub;
    }
  }

  // Phase 2: exact evaluation through the shared aggregation arithmetic,
  // with a running cutoff handed to each kernel. Once `pruned` flips, the
  // remaining components return 0 (their flags stay correct) and the
  // aggregate is discarded.
  bool pruned = false;
  double exact_sum = 0.0;  // exact weighted contributions so far
  const double agg = fn_.AggregateWith([&](size_t i, bool* missing_one,
                                           bool* missing_both) -> double {
    const SpecState& st = scratch.state[i];
    *missing_one = st.missing_one;
    *missing_both = st.missing_both;
    if (!st.present) {
      exact_sum += st.contrib_ub;  // the exact policy constant
      return 0.0;
    }
    if (pruned) return 0.0;
    const AttributeSpec& spec = specs[i];
    double s;
    if (st.known) {
      s = st.value;
    } else {
      // Minimum value component i must reach for the pair to stay viable,
      // given the exact sum so far and the remaining components' bounds.
      double kernel_min = 0.0;
      const double needed = cutoff - exact_sum - scratch.rem_after[i];
      if (needed > 0.0 && spec.weight > 0.0) kernel_min = needed / spec.weight;
      s = PresentValue(i, st.va, st.vb, ra, rb, kernel_min, fallback);
      if (s == simkernel::kBelowMinSim) {
        pruned = true;  // the kernel already counted the bound type
        return 0.0;
      }
      TGLINK_DCHECK(s >= 0.0 && s <= 1.0)
          << "batched measure " << MeasureName(spec.measure) << " on "
          << FieldName(spec.field) << " returned " << s;
    }
    exact_sum += spec.weight * s;
    if (exact_sum + scratch.rem_after[i] < cutoff) {
      pruned = true;
      TGLINK_COUNTER_INC("simkernel.pruned_by_cutoff");
    }
    return s;
  });
  if (pruned) return kPruned;
  return agg;
}

}  // namespace tglink
