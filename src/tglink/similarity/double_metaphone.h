// Double Metaphone (Lawrence Philips, 2000): a phonetic encoding that is
// considerably more accurate than Soundex for the mixed Anglo/Irish/
// continental surname stock of 19th-century England, and that produces a
// *secondary* code for names with ambiguous pronunciation (e.g. "schmidt").
// Used as an alternative blocking key and as a similarity measure
// (codes-equal), complementing Soundex/NYSIIS in phonetic.h.

#ifndef TGLINK_SIMILARITY_DOUBLE_METAPHONE_H_
#define TGLINK_SIMILARITY_DOUBLE_METAPHONE_H_

#include <string>
#include <string_view>

namespace tglink {

struct MetaphoneCodes {
  std::string primary;
  std::string secondary;  // equals primary when unambiguous

  bool operator==(const MetaphoneCodes&) const = default;
};

/// Computes the primary and secondary Double Metaphone codes, truncated to
/// `max_length` characters (4 is the conventional default). Non-alphabetic
/// characters are ignored; empty input yields empty codes.
[[nodiscard]] MetaphoneCodes DoubleMetaphone(std::string_view name, size_t max_length = 4);

/// 1.0 if the primary codes match, 0.8 if any primary/secondary cross pair
/// matches, else 0.0 — the conventional phonetic similarity grading.
[[nodiscard]] double DoubleMetaphoneSimilarity(std::string_view a, std::string_view b);

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_DOUBLE_METAPHONE_H_
