// Jaro and Jaro–Winkler similarity — the standard matcher family for short
// personal names; used by the collective-linkage baseline and available as a
// FieldMeasure everywhere.

#ifndef TGLINK_SIMILARITY_JARO_H_
#define TGLINK_SIMILARITY_JARO_H_

#include <string_view>

namespace tglink {

/// Jaro similarity in [0,1]. Two empty strings score 1.
[[nodiscard]] double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler: boosts Jaro by up to 4 characters of common prefix.
/// `prefix_scale` is clamped to [0, 0.25] to keep the result within [0,1].
[[nodiscard]] double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

}  // namespace tglink

#endif  // TGLINK_SIMILARITY_JARO_H_
