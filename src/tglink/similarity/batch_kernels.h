// Allocation-free batched similarity kernels with threshold-aware pruning.
//
// The scalar measures in edit_distance/jaro/qgram are exact but allocate on
// every call (DP rows, matched-flag vectors, q-gram string multisets). The
// kernels here compute the *same doubles* — every arithmetic expression is
// copied from the scalar implementation, and the integer intermediates
// (edit distances, match/transposition counts, gram intersection sizes) are
// provably equal — while reading flat `StringRef` views and reusing
// thread-local scratch buffers, so the pre-matching hot loop does no heap
// work per pair.
//
// Threshold-aware pruning: each kernel takes a `min_sim` cutoff. When an
// O(1) upper bound (length difference for the edit/Jaro family, gram-profile
// counts for Dice) already proves the similarity cannot reach `min_sim`,
// the kernel returns `kBelowMinSim` without running the comparison. The
// bounds are evaluated with a `kPruneMargin` safety margin so floating-point
// rounding can never reject a pair whose true similarity is >= min_sim
// (pruned ⇒ true sim < min_sim, the invariant the property tests pin).
// `min_sim <= 0` disables pruning and the kernels are then total functions,
// bit-identical to their scalar counterparts.
//
// The scalar kernels remain the reference oracle; see
// tests/similarity_kernel_property_test.cc.

#ifndef TGLINK_SIMILARITY_BATCH_KERNELS_H_
#define TGLINK_SIMILARITY_BATCH_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "tglink/similarity/field_similarity.h"

namespace tglink {
namespace simkernel {

/// Offset+length view into a contiguous arena (half the size of a
/// std::string_view so per-value tables stay cache-dense).
struct StringRef {
  const char* data = nullptr;
  uint32_t len = 0;

  [[nodiscard]] std::string_view view() const { return {data, len}; }
  [[nodiscard]] bool empty() const { return len == 0; }
};

inline StringRef MakeRef(std::string_view s) {
  return {s.data(), static_cast<uint32_t>(s.size())};
}

/// Sentinel for "provably below the min_sim cutoff". Real similarities are
/// always in [0, 1], so the sentinel never collides with a value.
inline constexpr double kBelowMinSim = -1.0;

/// Safety margin for every pruning comparison: a bound only rejects when it
/// is below `min_sim - kPruneMargin`, absorbing the (≤ a few ulps) rounding
/// of the bound arithmetic so pruning is sound, never merely probable.
inline constexpr double kPruneMargin = 1e-9;

// ---------------------------------------------------------------------------
// O(1) upper bounds. Each returns a value >= the corresponding similarity
// as computed by the scalar kernel (in the same floating-point arithmetic,
// so `computed_sim <= bound` holds ulp-for-ulp for the monotone formulas;
// the kPruneMargin above covers the rest).

/// Levenshtein/Damerau: dist >= |la - lb|, so sim <= 1 - |la-lb|/max.
[[nodiscard]] double EditUpperBound(size_t la, size_t lb);

/// Jaro: matches m <= min(la, lb) and the transposition term is <= 1, so
/// jaro <= (2 + min/max) / 3.
[[nodiscard]] double JaroUpperBound(size_t la, size_t lb);

/// Jaro-Winkler with the default 0.1 prefix scale (the only configuration
/// ComputeMeasure uses): jw = j + p*0.1*(1-j) is nondecreasing in both j
/// and p, so plugging in the Jaro bound and p = 4 bounds it.
[[nodiscard]] double JaroWinklerUpperBound(size_t la, size_t lb);

/// Dice over gram profiles of sizes na, nb: |A∩B| <= min(na, nb), so
/// dice <= 2*min/(na+nb).
[[nodiscard]] double DiceUpperBound(size_t na, size_t nb);

// ---------------------------------------------------------------------------
// Kernels. Empty-string conventions mirror ComputeMeasure (both empty -> 1,
// one empty -> 0); for non-empty inputs each returns exactly the scalar
// measure's double, or kBelowMinSim when an O(1) bound (or the banded DP's
// band overflow) proves the result is below min_sim.

/// Myers bit-parallel edit distance when the shorter string fits one 64-bit
/// word ("simkernel.myers_hits"), banded dynamic programming otherwise
/// ("simkernel.fallback_hits"); the band is derived from min_sim.
[[nodiscard]] double LevenshteinKernel(StringRef a, StringRef b,
                                       double min_sim);

/// Optimal-string-alignment distance on thread-local rolling rows (Myers
/// has no transposition term, so Damerau stays a scratch-buffer DP).
[[nodiscard]] double DamerauKernel(StringRef a, StringRef b, double min_sim);

/// Jaro with thread-local matched-flag scratch instead of per-call
/// std::vector<bool>.
[[nodiscard]] double JaroKernel(StringRef a, StringRef b, double min_sim);

/// Jaro-Winkler over JaroKernel with the default 0.1 prefix scale.
[[nodiscard]] double JaroWinklerKernel(StringRef a, StringRef b,
                                       double min_sim);

/// Dice coefficient from two precomputed sorted gram profiles (see
/// BuildPaddedGramProfile) via sorted merge. Both profiles must be
/// non-empty (padded grams of non-empty strings always are).
[[nodiscard]] double DiceProfileKernel(const uint32_t* a, size_t na,
                                       const uint32_t* b, size_t nb,
                                       double min_sim);

// ---------------------------------------------------------------------------
// Precomputed per-string signatures.

/// Appends the sorted, packed padded q-gram profile of `s` (q in {2, 3}:
/// big-endian byte packing, one uint32_t per gram) to `*out`. The multiset
/// of codes corresponds 1:1 to QGrams(s, {q, padded=true}), so sorted-merge
/// intersection counts are identical to the scalar string-gram counts.
void BuildPaddedGramProfile(std::string_view s, int q,
                            std::vector<uint32_t>* out);

/// Packs a Soundex code (<= 8 chars, never containing NUL) into one
/// uint64_t; equality of packed codes ⟺ equality of the code strings.
[[nodiscard]] uint64_t PackPhoneticCode(std::string_view code);

// ---------------------------------------------------------------------------
// Standalone dispatch for property tests and microbenches: evaluates
// `measure` on two plain strings through the batched kernels (building gram
// profiles in thread-local scratch), with the same result as
// ComputeMeasure(measure, a, b) or kBelowMinSim under pruning. Measures
// without a batched kernel (Monge-Elkan, metaphone, Smith-Waterman, LCS)
// fall through to ComputeMeasure and never prune.
[[nodiscard]] double BatchMeasure(Measure measure, std::string_view a,
                                  std::string_view b, double min_sim);

/// True when `measure` has a batched kernel (and an O(1) upper bound).
[[nodiscard]] bool HasBatchKernel(Measure measure);

}  // namespace simkernel
}  // namespace tglink

#endif  // TGLINK_SIMILARITY_BATCH_KERNELS_H_
