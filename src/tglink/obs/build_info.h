// Build provenance for RunReports: which exact binary produced a baseline.
// The compile-time fields (git SHA, compiler, flags, build type, preset)
// are injected by CMake as compile definitions on build_info.cc at
// configure time; hostname is resolved once at runtime. Serialized as the
// `build` block of every tglink.run_report/2 (DESIGN.md §12).

#ifndef TGLINK_OBS_BUILD_INFO_H_
#define TGLINK_OBS_BUILD_INFO_H_

#include <string>

namespace tglink {
namespace obs {

struct BuildInfo {
  std::string git_sha;     // HEAD at configure time; "unknown" outside git
  std::string compiler;    // "<id> <version>", e.g. "GNU 12.2.0"
  std::string flags;       // CMAKE_CXX_FLAGS (may be empty)
  std::string build_type;  // CMAKE_BUILD_TYPE, e.g. "Release"
  std::string preset;      // CMake preset name; "" for raw configures
  std::string hostname;    // runtime gethostname(); "unknown" on failure
};

/// The process-wide provenance record (hostname resolved on first call).
const BuildInfo& GetBuildInfo();

}  // namespace obs
}  // namespace tglink

#endif  // TGLINK_OBS_BUILD_INFO_H_
