// RunReport — one machine-readable JSON document per pipeline run, merging
// the global metrics snapshot, the aggregated span tree, the memory
// profile, build provenance, the iterative driver's per-δ IterationStats
// and any evaluation results. Emitted by the bench harnesses
// (--report=FILE) and tglink_cli; the BENCH_*.json perf-trajectory
// baselines are RunReports and tools/bench_diff.py compares two of them.
// Schema: "tglink.run_report/2", documented in DESIGN.md §7/§12 and
// validated by tools/check_report.py (which still accepts /1 baselines).

#ifndef TGLINK_OBS_RUN_REPORT_H_
#define TGLINK_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tglink/eval/metrics.h"
#include "tglink/linkage/iterative.h"
#include "tglink/obs/memprof.h"
#include "tglink/obs/metrics.h"
#include "tglink/obs/trace.h"
#include "tglink/util/status.h"

namespace tglink {
namespace obs {

inline constexpr const char* kRunReportSchema = "tglink.run_report/2";

/// Accumulates the pieces of one run's report, then serializes. Options,
/// scalars and quality entries keep insertion order; metrics and spans are
/// captured from the process-wide registry/tracer at serialization time
/// unless explicit snapshots are supplied.
class RunReportBuilder {
 public:
  explicit RunReportBuilder(std::string tool);

  RunReportBuilder& AddOption(std::string name, std::string value);
  RunReportBuilder& AddOption(std::string name, double value);
  RunReportBuilder& AddOption(std::string name, uint64_t value);

  /// Free-form numeric result, e.g. "link_seconds" or "record_links".
  RunReportBuilder& AddScalar(std::string name, double value);

  /// Precision/recall under a labeled protocol, e.g. "record.verified".
  RunReportBuilder& AddQuality(std::string label, const PrecisionRecall& pr);

  /// Per-δ iteration diagnostics of one LinkCensusPair run.
  RunReportBuilder& AddIterations(const std::vector<IterationStats>& stats);

  /// Marks the report as the partial flush of an abnormally-exiting run
  /// ("aborted": true in the JSON, plus the reason when known). Written by
  /// the bench harnesses' terminate-handler guard — see bench_common.h.
  RunReportBuilder& SetAborted(std::string reason = "");

  /// Serializes against explicit observability state (for tests); the
  /// memory block is captured from the live memprof registry.
  [[nodiscard]] std::string ToJson(const MetricsSnapshot& metrics,
                                   const std::vector<TraceEvent>& spans) const;

  /// Serializes against fully explicit state, memory snapshot included.
  [[nodiscard]] std::string ToJson(const MetricsSnapshot& metrics,
                                   const std::vector<TraceEvent>& spans,
                                   const MemorySnapshot& memory) const;

  /// Serializes against GlobalMetrics(), GlobalTracer() and
  /// SnapshotMemory().
  [[nodiscard]] std::string ToJson() const;

  /// ToJson() written to `path`.
  [[nodiscard]] Status WriteFile(const std::string& path) const;

 private:
  struct Option {
    std::string name;
    std::string text;  // pre-rendered JSON value
  };
  struct Scalar {
    std::string name;
    double value;
  };
  struct Quality {
    std::string label;
    PrecisionRecall pr;
  };

  std::string tool_;
  bool aborted_ = false;
  std::string abort_reason_;
  std::vector<Option> options_;
  std::vector<Scalar> scalars_;
  std::vector<Quality> quality_;
  std::vector<IterationStats> iterations_;
};

}  // namespace obs
}  // namespace tglink

#endif  // TGLINK_OBS_RUN_REPORT_H_
