#include "tglink/obs/build_info.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define TGLINK_HAVE_GETHOSTNAME 1
#else
#define TGLINK_HAVE_GETHOSTNAME 0
#endif

// Configure-time injection (src/CMakeLists.txt); the fallbacks keep the
// file compiling when someone builds it outside the CMake tree.
#ifndef TGLINK_BUILD_GIT_SHA
#define TGLINK_BUILD_GIT_SHA "unknown"
#endif
#ifndef TGLINK_BUILD_COMPILER
#define TGLINK_BUILD_COMPILER "unknown"
#endif
#ifndef TGLINK_BUILD_CXX_FLAGS
#define TGLINK_BUILD_CXX_FLAGS ""
#endif
#ifndef TGLINK_BUILD_TYPE
#define TGLINK_BUILD_TYPE "unknown"
#endif
#ifndef TGLINK_BUILD_PRESET
#define TGLINK_BUILD_PRESET ""
#endif

namespace tglink {
namespace obs {

namespace {

std::string ResolveHostname() {
#if TGLINK_HAVE_GETHOSTNAME
  char buffer[256];
  if (gethostname(buffer, sizeof(buffer)) == 0) {
    buffer[sizeof(buffer) - 1] = '\0';
    return std::string(buffer);
  }
#endif
  return "unknown";
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_sha = TGLINK_BUILD_GIT_SHA;
    b.compiler = TGLINK_BUILD_COMPILER;
    b.flags = TGLINK_BUILD_CXX_FLAGS;
    b.build_type = TGLINK_BUILD_TYPE;
    b.preset = TGLINK_BUILD_PRESET;
    b.hostname = ResolveHostname();
    return b;
  }();
  return info;
}

}  // namespace obs
}  // namespace tglink
