#include "tglink/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "tglink/obs/json_writer.h"
#include "tglink/util/logging.h"

namespace tglink {
namespace obs {

// --- AtomicDouble ----------------------------------------------------------

AtomicDouble::AtomicDouble(double initial)
    : bits_(std::bit_cast<uint64_t>(initial)) {}

void AtomicDouble::Store(double value) {
  bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
}

double AtomicDouble::Load() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

void AtomicDouble::Add(double delta) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(
      observed, std::bit_cast<uint64_t>(std::bit_cast<double>(observed) + delta),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

void AtomicDouble::Min(double value) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(observed) > value &&
         !bits_.compare_exchange_weak(observed, std::bit_cast<uint64_t>(value),
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicDouble::Max(double value) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(observed) < value &&
         !bits_.compare_exchange_weak(observed, std::bit_cast<uint64_t>(value),
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  TGLINK_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  // upper_bound finds the first bound strictly greater; bounds are
  // inclusive upper limits, so step back onto an exactly-hit bound.
  const size_t index =
      (bucket > 0 && bounds_[bucket - 1] == value) ? bucket - 1 : bucket;
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.Add(value);  // tglink-lint: disable=ignored-status (returns void)
  min_.Min(value);
  max_.Max(value);
}

uint64_t Histogram::BucketCount(size_t i) const {
  TGLINK_DCHECK(i <= bounds_.size()) << "bucket index out of range";
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::ResetForTesting() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.Store(0.0);
  min_.Store(std::numeric_limits<double>::infinity());
  max_.Store(-std::numeric_limits<double>::infinity());
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t count) {
  TGLINK_CHECK(start > 0.0 && factor > 1.0 && count > 0)
      << "degenerate exponential bounds";
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::LatencyBoundsNs() {
  return ExponentialBounds(1e3, 4.0, 13);  // 1µs .. ~17s
}

std::vector<double> Histogram::SizeBounds() {
  return ExponentialBounds(1.0, 4.0, 15);  // 1 .. ~2.7e8
}

std::vector<double> Histogram::UnitIntervalBounds() {
  std::vector<double> bounds;
  bounds.reserve(20);
  for (int i = 1; i <= 20; ++i) bounds.push_back(0.05 * i);
  return bounds;
}

// --- MetricsSnapshot -------------------------------------------------------

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const CounterValue& c : counters) w.Key(c.name).UInt(c.value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const GaugeValue& g : gauges) w.Key(g.name).Double(g.value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const HistogramValue& h : histograms) {
    w.Key(h.name).BeginObject();
    w.Key("count").UInt(h.count);
    w.Key("sum").Double(h.sum);
    if (h.count > 0) {
      w.Key("min").Double(h.min);
      w.Key("max").Double(h.max);
      w.Key("mean").Double(h.sum / static_cast<double>(h.count));
    }
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (h.bucket_counts[i] == 0) continue;  // sparse: empty buckets elided
      w.BeginObject();
      if (i < h.bounds.size()) {
        w.Key("le").Double(h.bounds[i]);
      } else {
        w.Key("le").String("+Inf");
      }
      w.Key("count").UInt(h.bucket_counts[i]);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

// --- MetricsRegistry -------------------------------------------------------

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.count = histogram->Count();
    value.sum = histogram->Sum();
    value.min = histogram->MinValue();
    value.max = histogram->MaxValue();
    value.bounds = histogram->bounds();
    value.bucket_counts.reserve(value.bounds.size() + 1);
    for (size_t i = 0; i <= value.bounds.size(); ++i) {
      value.bucket_counts.push_back(histogram->BucketCount(i));
    }
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::ResetAllForTesting() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetForTesting();
  for (auto& [name, gauge] : gauges_) gauge->ResetForTesting();
  for (auto& [name, histogram] : histograms_) histogram->ResetForTesting();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace obs
}  // namespace tglink
