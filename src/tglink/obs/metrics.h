// Thread-safe metrics for the linkage pipeline: named counters, gauges and
// fixed-bucket histograms held in a registry, with point-in-time snapshots
// and JSON serialization (consumed by the RunReport writer and the bench
// harnesses' --report flag).
//
// Design constraints, in priority order:
//   1. TSan-clean under concurrent updates — every mutable cell is a
//      std::atomic accessed with relaxed ordering (metrics never carry
//      synchronization; snapshots are advisory, not linearizable).
//   2. Near-free on the hot path — an update is one relaxed RMW; name
//      lookup happens once per call site via the function-local static in
//      the TGLINK_COUNTER_* / TGLINK_HISTOGRAM_* macros below.
//   3. Stable references — registry entries are never removed, so a
//      Counter& obtained once stays valid for the process lifetime;
//      ResetAllForTesting zeroes values without invalidating references.
//
// Naming scheme: lowercase dot-separated "<module>.<what>[_<unit>]", e.g.
// "blocking.candidate_pairs", "similarity.agg_call_ns". See DESIGN.md §7.

#ifndef TGLINK_OBS_METRICS_H_
#define TGLINK_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tglink/util/thread_annotations.h"

namespace tglink {
namespace obs {

/// Lock-free double cell built on a uint64_t bit pattern: portable (no
/// reliance on C++20 atomic<double>::fetch_add support) and TSan-clean.
class AtomicDouble {
 public:
  explicit AtomicDouble(double initial = 0.0);

  void Store(double value);
  [[nodiscard]] double Load() const;
  void Add(double delta);
  /// Lowers/raises the stored value to include `value` (for min/max).
  void Min(double value);
  void Max(double value);

 private:
  std::atomic<uint64_t> bits_;
};

/// Monotone event count.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void ResetForTesting() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.Store(value); }
  void Add(double delta) { value_.Add(delta); }
  [[nodiscard]] double Value() const { return value_.Load(); }
  void ResetForTesting() { value_.Store(0.0); }

 private:
  AtomicDouble value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
/// N buckets; one implicit overflow bucket catches everything above the
/// last bound. Tracks count, sum, min and max alongside the buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double Sum() const { return sum_.Load(); }
  [[nodiscard]] double MinValue() const { return min_.Load(); }
  [[nodiscard]] double MaxValue() const { return max_.Load(); }
  /// Bucket i counts observations in (bounds[i-1], bounds[i]]; the final
  /// entry (index bounds().size()) is the overflow bucket.
  [[nodiscard]] uint64_t BucketCount(size_t i) const;

  void ResetForTesting();

  /// `count` exponentially spaced bounds: start, start*factor, ... —
  /// the stock shape for latency (ns) and size distributions.
  [[nodiscard]] static std::vector<double> ExponentialBounds(double start,
                                                             double factor,
                                                             size_t count);
  /// 1µs .. ~17s in ×4 steps — default for *_ns latency histograms.
  [[nodiscard]] static std::vector<double> LatencyBoundsNs();
  /// 1 .. ~2.6e8 in ×4 steps — default for size/count distributions.
  [[nodiscard]] static std::vector<double> SizeBounds();
  /// 0.05 .. 1.0 in 0.05 steps — for similarity scores in [0,1].
  [[nodiscard]] static std::vector<double> UnitIntervalBounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  AtomicDouble sum_{0.0};
  AtomicDouble min_;
  AtomicDouble max_;
};

/// One serializable point-in-time view of a registry. Entries are sorted by
/// name; relaxed reads, so concurrent updates may straddle the snapshot.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value;
  };
  struct GaugeValue {
    std::string name;
    double value;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count;
    double sum;
    double min;  // +inf when empty
    double max;  // -inf when empty
    std::vector<double> bounds;
    std::vector<uint64_t> bucket_counts;  // bounds.size() + 1
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — see DESIGN.md §7
  /// for the exact schema.
  [[nodiscard]] std::string ToJson() const;
};

/// Named metric store. Get* registers on first use and returns a reference
/// that stays valid forever; repeated calls with the same name return the
/// same object. Registration takes a mutex; updates through the returned
/// references are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name) TGLINK_EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name) TGLINK_EXCLUDES(mu_);
  /// First registration fixes the bucket bounds; later calls with a
  /// different shape get the original histogram (bounds are part of the
  /// metric's identity and must not drift between call sites).
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds)
      TGLINK_EXCLUDES(mu_);

  [[nodiscard]] MetricsSnapshot Snapshot() const TGLINK_EXCLUDES(mu_);

  /// Zeroes every value, keeping all registered objects (and therefore all
  /// cached references) alive. For per-run isolation in tests and benches.
  void ResetAllForTesting() TGLINK_EXCLUDES(mu_);

 private:
  // mu_ guards the registry *structure* only. The metric objects are heap
  // nodes that are never removed, so references returned by Get* stay valid
  // and are updated lock-free through their own atomics.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      TGLINK_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      TGLINK_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      TGLINK_GUARDED_BY(mu_);
};

/// The process-wide registry all pipeline instrumentation reports to.
MetricsRegistry& GlobalMetrics();

}  // namespace obs
}  // namespace tglink

// Instrumentation macros: resolve the metric once per call site (guarded
// function-local static), then update with a single relaxed RMW.
#define TGLINK_COUNTER_INC(name) TGLINK_COUNTER_ADD(name, 1)

#define TGLINK_COUNTER_ADD(name, delta)                              \
  do {                                                               \
    static ::tglink::obs::Counter& tglink_obs_counter_ =             \
        ::tglink::obs::GlobalMetrics().GetCounter(name);             \
    tglink_obs_counter_.Add(static_cast<uint64_t>(delta));           \
  } while (0)

#define TGLINK_GAUGE_SET(name, value)                                \
  do {                                                               \
    static ::tglink::obs::Gauge& tglink_obs_gauge_ =                 \
        ::tglink::obs::GlobalMetrics().GetGauge(name);               \
    tglink_obs_gauge_.Set(static_cast<double>(value));               \
  } while (0)

/// Histogram with default latency buckets (nanoseconds).
#define TGLINK_HISTOGRAM_LATENCY_NS(name, ns)                        \
  do {                                                               \
    static ::tglink::obs::Histogram& tglink_obs_hist_ =              \
        ::tglink::obs::GlobalMetrics().GetHistogram(                 \
            name, ::tglink::obs::Histogram::LatencyBoundsNs());      \
    tglink_obs_hist_.Observe(static_cast<double>(ns));               \
  } while (0)

/// Histogram with default size buckets (element counts).
#define TGLINK_HISTOGRAM_SIZE(name, value)                           \
  do {                                                               \
    static ::tglink::obs::Histogram& tglink_obs_hist_ =              \
        ::tglink::obs::GlobalMetrics().GetHistogram(                 \
            name, ::tglink::obs::Histogram::SizeBounds());           \
    tglink_obs_hist_.Observe(static_cast<double>(value));            \
  } while (0)

/// Histogram over [0,1] scores (similarities).
#define TGLINK_HISTOGRAM_SCORE(name, value)                          \
  do {                                                               \
    static ::tglink::obs::Histogram& tglink_obs_hist_ =              \
        ::tglink::obs::GlobalMetrics().GetHistogram(                 \
            name, ::tglink::obs::Histogram::UnitIntervalBounds());   \
    tglink_obs_hist_.Observe(static_cast<double>(value));            \
  } while (0)

#endif  // TGLINK_OBS_METRICS_H_
