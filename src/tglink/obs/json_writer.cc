#include "tglink/obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "tglink/util/logging.h"

namespace tglink {
namespace obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched.
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void JsonWriter::BeforeValue() {
  if (is_object_.empty()) return;
  if (is_object_.back()) {
    // Inside an object a value must have been announced by Key(), which
    // already handled the comma.
    TGLINK_DCHECK(pending_key_) << "JSON value inside object without Key()";
    pending_key_ = false;
    return;
  }
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  is_object_.push_back(true);
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  TGLINK_DCHECK(!is_object_.empty() && is_object_.back())
      << "EndObject with no open object";
  out_ += '}';
  is_object_.pop_back();
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  is_object_.push_back(false);
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  TGLINK_DCHECK(!is_object_.empty() && !is_object_.back())
      << "EndArray with no open array";
  out_ += ']';
  is_object_.pop_back();
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  TGLINK_DCHECK(!is_object_.empty() && is_object_.back())
      << "Key() outside an object";
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  out_ += JsonNumber(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

}  // namespace obs
}  // namespace tglink
