// Memory & resource profiling: where the pipeline's bytes go, per stage.
//
// Three cooperating layers (DESIGN.md §12):
//
//  (a) Allocation tracking — global operator new/delete interposition
//      (defined in memprof.cc, linked into any binary that references this
//      header's API) feeding per-thread running totals plus process-wide
//      relaxed-atomic counters. Gated at runtime by the TGLINK_MEMPROF
//      environment variable (or SetMemProfEnabled); when off, every hook
//      is a single relaxed load and a tail call into malloc/free — near
//      free. The span tracer snapshots the thread totals at span entry and
//      exit, so every TGLINK_TRACE_SPAN carries bytes allocated / freed /
//      live-delta next to its wall time.
//
//  (b) Stage boundaries — TGLINK_MEM_STAGE(name) opens a scope on a
//      thread-local stage stack; entry and exit sample VmRSS/VmHWM from
//      /proc/self/status and fold allocation deltas into a process-wide
//      registry of named StageStats (stable entries, relaxed atomics —
//      same discipline as obs/metrics.h). Stages are phase-granular, so
//      the two /proc reads per scope are noise.
//
//  (c) Arena accounting — components that own large flat storage (SimBatch
//      value arenas, CandidateIndex posting lists, SimCache memo shards,
//      the thread pool) report their *logical* footprint once it is final
//      via ReportArenaBytes(component, bytes). Logical sizes (size(), not
//      capacity()) keep the numbers bit-deterministic across runs and
//      machines, which is what lets tools/bench_diff.py gate them exactly.
//
// Compile-time escape hatch: building with -DTGLINK_MEMPROF_DISABLED
// (CMake: -DTGLINK_MEMPROF=OFF) compiles the stage scope down to an empty
// object and the allocator hooks out entirely; the static_asserts below
// pin that zero-overhead claim. The interposition itself can also be
// compiled out alone with TGLINK_MEMPROF_NO_HOOKS (the asan/tsan presets
// do this so the sanitizer allocators keep full fidelity); everything else
// — stages, RSS sampling, arenas — still works, with zero byte counts.

#ifndef TGLINK_OBS_MEMPROF_H_
#define TGLINK_OBS_MEMPROF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace tglink {
namespace obs {

/// Running allocation totals, per thread or process-wide. Byte counts use
/// the allocator's usable size symmetrically on both sides, so
/// bytes_allocated - bytes_freed is an exact live figure.
struct AllocTotals {
  uint64_t bytes_allocated = 0;
  uint64_t bytes_freed = 0;
  uint64_t alloc_calls = 0;
  uint64_t free_calls = 0;
};

// The thread totals live in constant-initialized, trivially-destructible
// thread_local storage: no TLS guard on the allocation hot path, no
// __cxa_thread_atexit registration (which would itself allocate). These
// asserts pin the properties the hooks' re-entrancy safety rests on.
static_assert(std::is_trivially_destructible_v<AllocTotals>,
              "AllocTotals must stay trivially destructible: the allocator "
              "hooks touch it and must never re-enter the allocator");
static_assert(std::is_standard_layout_v<AllocTotals> &&
                  std::is_trivially_copyable_v<AllocTotals>,
              "AllocTotals is snapshotted by memcpy-like reads from the "
              "span tracer; keep it a plain aggregate");

/// True when the operator new/delete interposition is compiled into this
/// build (off under TGLINK_MEMPROF_NO_HOOKS / TGLINK_MEMPROF_DISABLED and
/// in binaries that do not link memprof.o). With hooks absent all byte
/// counts read zero; stages and arenas still function.
[[nodiscard]] bool MemProfHooksCompiledIn();

/// Runtime collection gate. First query reads the TGLINK_MEMPROF
/// environment variable (unset, "" or "0" = off); SetMemProfEnabled
/// overrides it either way.
[[nodiscard]] bool MemProfEnabled();
void SetMemProfEnabled(bool enabled);

/// The calling thread's running totals (zeros while disabled). The span
/// tracer subtracts two of these snapshots to price a span; the deltas are
/// therefore per-thread-inclusive: a span only sees allocations made on
/// its own thread (worker chunks carry their own spans).
[[nodiscard]] AllocTotals ThreadAllocTotals();

/// Process-wide totals across all threads.
[[nodiscard]] AllocTotals GlobalAllocTotals();

/// One VmRSS/VmHWM reading (kilobytes, as /proc reports them).
struct RssSample {
  uint64_t vm_rss_kb = 0;
  uint64_t vm_hwm_kb = 0;
};

/// Parses the "VmRSS:/VmHWM: ... kB" lines out of /proc/self/status text.
/// Returns false when neither field is present (non-Linux /proc text).
/// Exposed separately so the parser is testable on fixture text.
bool ParseProcStatus(std::string_view status_text, RssSample* out);

/// Reads /proc/self/status; all-zero sample when unavailable.
[[nodiscard]] RssSample SampleRss();

/// Aggregated statistics of one named stage across all its executions.
struct StageStats {
  std::string name;
  uint64_t count = 0;            // completed executions
  uint64_t bytes_allocated = 0;  // thread-inclusive, summed over executions
  uint64_t bytes_freed = 0;
  uint64_t alloc_calls = 0;
  uint64_t free_calls = 0;
  uint64_t peak_rss_kb = 0;     // max VmRSS seen at any boundary
  uint64_t peak_vm_hwm_kb = 0;  // max VmHWM seen at any boundary
};

/// Cumulative footprint reports of one named arena component.
struct ArenaStats {
  std::string name;
  uint64_t bytes_total = 0;  // sum over all reports
  uint64_t max_bytes = 0;    // largest single report
  uint64_t reports = 0;
};

/// Everything the RunReport `memory` block serializes, in one consistent
/// grab. Arenas and stages are sorted by name (deterministic).
struct MemorySnapshot {
  bool hooks_compiled = false;
  bool enabled = false;
  AllocTotals allocator;
  std::vector<ArenaStats> arenas;
  std::vector<StageStats> stages;
  RssSample rss;
};

[[nodiscard]] MemorySnapshot SnapshotMemory();

/// Records `bytes` of logical footprint against `component` (e.g.
/// "simbatch", "candindex", "simcache", "pool"). Callers report once, when
/// the figure is final (constructor end or destructor); repeated reports
/// accumulate into bytes_total. Thread-safe.
void ReportArenaBytes(std::string_view component, uint64_t bytes);

/// Depth of the calling thread's stage stack (0 = no open stage) and the
/// innermost open stage name process-wide ("" when none; advisory — the
/// heartbeat reads it without synchronizing against stage exit).
[[nodiscard]] int ThreadStageDepth();
[[nodiscard]] const char* CurrentStageName();

/// Drops all stage/arena/allocator state. Test-only: never call while
/// another thread is inside a stage.
void ResetMemProfForTesting();

/// Periodic progress line on stderr: current stage, pairs/sec (from the
/// similarity.agg_calls counter) and live VmRSS. Idempotent; the thread is
/// joined by StopHeartbeat or automatically at process exit.
void StartHeartbeat(double interval_seconds);
void StopHeartbeat();

#if defined(TGLINK_MEMPROF_DISABLED)

/// Disabled mode: the scope carries no state and the macro compiles to a
/// no-op object — the static_assert is the "zero overhead" contract.
class ScopedMemStage {
 public:
  explicit ScopedMemStage(std::string_view) {}
  ScopedMemStage(const ScopedMemStage&) = delete;
  ScopedMemStage& operator=(const ScopedMemStage&) = delete;
};
static_assert(std::is_empty_v<ScopedMemStage>,
              "TGLINK_MEMPROF_DISABLED must compile the stage scope down "
              "to an empty object");

#else

/// RAII stage scope: registers on the thread-local stage stack, samples
/// RSS at both boundaries and folds this thread's allocation delta into
/// the named StageStats entry on exit.
class ScopedMemStage {
 public:
  explicit ScopedMemStage(std::string_view name);
  ~ScopedMemStage();

  ScopedMemStage(const ScopedMemStage&) = delete;
  ScopedMemStage& operator=(const ScopedMemStage&) = delete;

 private:
  void* entry_ = nullptr;  // StageEntry*, opaque to keep the header light
  AllocTotals on_entry_;
};

#endif  // TGLINK_MEMPROF_DISABLED

}  // namespace obs
}  // namespace tglink

#define TGLINK_MEMPROF_CONCAT_INNER(a, b) a##b
#define TGLINK_MEMPROF_CONCAT(a, b) TGLINK_MEMPROF_CONCAT_INNER(a, b)

/// Marks the enclosing scope as pipeline stage `name` for memory
/// accounting; pairs with (and is named like) the stage's TGLINK_TRACE_SPAN.
#define TGLINK_MEM_STAGE(name)                                        \
  ::tglink::obs::ScopedMemStage TGLINK_MEMPROF_CONCAT(                \
      tglink_mem_stage_, __LINE__)(name)

#endif  // TGLINK_OBS_MEMPROF_H_
