#include "tglink/obs/run_report.h"

#include <utility>

#include "tglink/obs/build_info.h"
#include "tglink/obs/json_writer.h"
#include "tglink/util/csv.h"
#include "tglink/util/parallel.h"

namespace tglink {
namespace obs {

RunReportBuilder::RunReportBuilder(std::string tool)
    : tool_(std::move(tool)) {}

RunReportBuilder& RunReportBuilder::AddOption(std::string name,
                                             std::string value) {
  options_.push_back({std::move(name), '"' + JsonEscape(value) + '"'});
  return *this;
}

RunReportBuilder& RunReportBuilder::AddOption(std::string name, double value) {
  options_.push_back({std::move(name), JsonNumber(value)});
  return *this;
}

RunReportBuilder& RunReportBuilder::AddOption(std::string name,
                                              uint64_t value) {
  options_.push_back({std::move(name), std::to_string(value)});
  return *this;
}

RunReportBuilder& RunReportBuilder::AddScalar(std::string name, double value) {
  scalars_.push_back({std::move(name), value});
  return *this;
}

RunReportBuilder& RunReportBuilder::AddQuality(std::string label,
                                               const PrecisionRecall& pr) {
  quality_.push_back({std::move(label), pr});
  return *this;
}

RunReportBuilder& RunReportBuilder::AddIterations(
    const std::vector<IterationStats>& stats) {
  iterations_.insert(iterations_.end(), stats.begin(), stats.end());
  return *this;
}

RunReportBuilder& RunReportBuilder::SetAborted(std::string reason) {
  aborted_ = true;
  abort_reason_ = std::move(reason);
  return *this;
}

std::string RunReportBuilder::ToJson(
    const MetricsSnapshot& metrics,
    const std::vector<TraceEvent>& spans) const {
  return ToJson(metrics, spans, SnapshotMemory());
}

std::string RunReportBuilder::ToJson(const MetricsSnapshot& metrics,
                                     const std::vector<TraceEvent>& spans,
                                     const MemorySnapshot& memory) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kRunReportSchema);
  w.Key("tool").String(tool_);
  if (aborted_) {
    w.Key("aborted").Bool(true);
    if (!abort_reason_.empty()) w.Key("abort_reason").String(abort_reason_);
  }

  const BuildInfo& build = GetBuildInfo();
  w.Key("build").BeginObject();
  w.Key("git_sha").String(build.git_sha);
  w.Key("compiler").String(build.compiler);
  w.Key("flags").String(build.flags);
  w.Key("build_type").String(build.build_type);
  w.Key("preset").String(build.preset);
  w.Key("hostname").String(build.hostname);
  w.Key("threads").UInt(static_cast<uint64_t>(ParallelThreadCount()));
  w.EndObject();

  w.Key("options").BeginObject();
  for (const Option& option : options_) w.Key(option.name).Raw(option.text);
  w.EndObject();

  w.Key("scalars").BeginObject();
  for (const Scalar& scalar : scalars_) {
    w.Key(scalar.name).Double(scalar.value);
  }
  w.EndObject();

  w.Key("quality").BeginObject();
  for (const Quality& q : quality_) {
    w.Key(q.label).BeginObject();
    w.Key("precision").Double(q.pr.precision());
    w.Key("recall").Double(q.pr.recall());
    w.Key("f_measure").Double(q.pr.f_measure());
    w.Key("true_positives").UInt(q.pr.true_positives);
    w.Key("false_positives").UInt(q.pr.false_positives);
    w.Key("false_negatives").UInt(q.pr.false_negatives);
    w.EndObject();
  }
  w.EndObject();

  w.Key("iterations").BeginArray();
  for (const IterationStats& it : iterations_) {
    w.BeginObject();
    w.Key("delta").Double(it.delta);
    w.Key("scored_pairs").UInt(it.scored_pairs);
    w.Key("candidate_subgraphs").UInt(it.candidate_subgraphs);
    w.Key("accepted_subgraphs").UInt(it.accepted_subgraphs);
    w.Key("new_group_links").UInt(it.new_group_links);
    w.Key("new_record_links").UInt(it.new_record_links);
    w.EndObject();
  }
  w.EndArray();

  w.Key("memory").BeginObject();
  w.Key("allocator").BeginObject();
  w.Key("hooks_compiled").Bool(memory.hooks_compiled);
  w.Key("enabled").Bool(memory.enabled);
  w.Key("bytes_allocated").UInt(memory.allocator.bytes_allocated);
  w.Key("bytes_freed").UInt(memory.allocator.bytes_freed);
  w.Key("live_bytes")
      .Int(static_cast<int64_t>(memory.allocator.bytes_allocated) -
           static_cast<int64_t>(memory.allocator.bytes_freed));
  w.Key("alloc_calls").UInt(memory.allocator.alloc_calls);
  w.Key("free_calls").UInt(memory.allocator.free_calls);
  w.EndObject();
  w.Key("arenas").BeginObject();
  for (const ArenaStats& arena : memory.arenas) {
    w.Key(arena.name).BeginObject();
    w.Key("bytes_total").UInt(arena.bytes_total);
    w.Key("max_bytes").UInt(arena.max_bytes);
    w.Key("reports").UInt(arena.reports);
    w.EndObject();
  }
  w.EndObject();
  w.Key("stages").BeginArray();
  for (const StageStats& stage : memory.stages) {
    w.BeginObject();
    w.Key("name").String(stage.name);
    w.Key("count").UInt(stage.count);
    w.Key("bytes_allocated").UInt(stage.bytes_allocated);
    w.Key("bytes_freed").UInt(stage.bytes_freed);
    w.Key("alloc_calls").UInt(stage.alloc_calls);
    w.Key("free_calls").UInt(stage.free_calls);
    w.Key("peak_rss_kb").UInt(stage.peak_rss_kb);
    w.Key("peak_vm_hwm_kb").UInt(stage.peak_vm_hwm_kb);
    w.EndObject();
  }
  w.EndArray();
  // Sampled at serialization time; vm_hwm_kb is the kernel's own peak-RSS
  // high-water mark for the whole process.
  w.Key("rss_kb").UInt(memory.rss.vm_rss_kb);
  w.Key("vm_hwm_kb").UInt(memory.rss.vm_hwm_kb);
  w.EndObject();

  w.Key("metrics").Raw(metrics.ToJson());

  w.Key("spans").BeginArray();
  for (const SpanAggregate& agg : AggregateSpans(spans)) {
    w.BeginObject();
    w.Key("path").String(agg.path);
    w.Key("count").UInt(agg.count);
    w.Key("total_ms").Double(static_cast<double>(agg.total_ns) / 1e6);
    w.Key("alloc_bytes").UInt(agg.alloc_bytes);
    w.Key("free_bytes").UInt(agg.free_bytes);
    w.Key("live_delta_bytes")
        .Int(static_cast<int64_t>(agg.alloc_bytes) -
             static_cast<int64_t>(agg.free_bytes));
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.Take();
}

std::string RunReportBuilder::ToJson() const {
  return ToJson(GlobalMetrics().Snapshot(), GlobalTracer().Snapshot(),
                SnapshotMemory());
}

Status RunReportBuilder::WriteFile(const std::string& path) const {
  return WriteStringToFile(path, ToJson() + "\n");
}

}  // namespace obs
}  // namespace tglink
