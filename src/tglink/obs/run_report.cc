#include "tglink/obs/run_report.h"

#include <utility>

#include "tglink/obs/json_writer.h"
#include "tglink/util/csv.h"

namespace tglink {
namespace obs {

RunReportBuilder::RunReportBuilder(std::string tool)
    : tool_(std::move(tool)) {}

RunReportBuilder& RunReportBuilder::AddOption(std::string name,
                                             std::string value) {
  options_.push_back({std::move(name), '"' + JsonEscape(value) + '"'});
  return *this;
}

RunReportBuilder& RunReportBuilder::AddOption(std::string name, double value) {
  options_.push_back({std::move(name), JsonNumber(value)});
  return *this;
}

RunReportBuilder& RunReportBuilder::AddOption(std::string name,
                                              uint64_t value) {
  options_.push_back({std::move(name), std::to_string(value)});
  return *this;
}

RunReportBuilder& RunReportBuilder::AddScalar(std::string name, double value) {
  scalars_.push_back({std::move(name), value});
  return *this;
}

RunReportBuilder& RunReportBuilder::AddQuality(std::string label,
                                               const PrecisionRecall& pr) {
  quality_.push_back({std::move(label), pr});
  return *this;
}

RunReportBuilder& RunReportBuilder::AddIterations(
    const std::vector<IterationStats>& stats) {
  iterations_.insert(iterations_.end(), stats.begin(), stats.end());
  return *this;
}

std::string RunReportBuilder::ToJson(
    const MetricsSnapshot& metrics,
    const std::vector<TraceEvent>& spans) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kRunReportSchema);
  w.Key("tool").String(tool_);

  w.Key("options").BeginObject();
  for (const Option& option : options_) w.Key(option.name).Raw(option.text);
  w.EndObject();

  w.Key("scalars").BeginObject();
  for (const Scalar& scalar : scalars_) {
    w.Key(scalar.name).Double(scalar.value);
  }
  w.EndObject();

  w.Key("quality").BeginObject();
  for (const Quality& q : quality_) {
    w.Key(q.label).BeginObject();
    w.Key("precision").Double(q.pr.precision());
    w.Key("recall").Double(q.pr.recall());
    w.Key("f_measure").Double(q.pr.f_measure());
    w.Key("true_positives").UInt(q.pr.true_positives);
    w.Key("false_positives").UInt(q.pr.false_positives);
    w.Key("false_negatives").UInt(q.pr.false_negatives);
    w.EndObject();
  }
  w.EndObject();

  w.Key("iterations").BeginArray();
  for (const IterationStats& it : iterations_) {
    w.BeginObject();
    w.Key("delta").Double(it.delta);
    w.Key("scored_pairs").UInt(it.scored_pairs);
    w.Key("candidate_subgraphs").UInt(it.candidate_subgraphs);
    w.Key("accepted_subgraphs").UInt(it.accepted_subgraphs);
    w.Key("new_group_links").UInt(it.new_group_links);
    w.Key("new_record_links").UInt(it.new_record_links);
    w.EndObject();
  }
  w.EndArray();

  w.Key("metrics").Raw(metrics.ToJson());

  w.Key("spans").BeginArray();
  for (const SpanAggregate& agg : AggregateSpans(spans)) {
    w.BeginObject();
    w.Key("path").String(agg.path);
    w.Key("count").UInt(agg.count);
    w.Key("total_ms").Double(static_cast<double>(agg.total_ns) / 1e6);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.Take();
}

std::string RunReportBuilder::ToJson() const {
  return ToJson(GlobalMetrics().Snapshot(), GlobalTracer().Snapshot());
}

Status RunReportBuilder::WriteFile(const std::string& path) const {
  return WriteStringToFile(path, ToJson() + "\n");
}

}  // namespace obs
}  // namespace tglink
