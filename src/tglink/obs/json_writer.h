// Minimal streaming JSON writer for the observability layer (metrics
// snapshots, Chrome trace events, run reports). Deterministic output: no
// locale dependence, fixed float formatting, caller-controlled key order.
// Not a general-purpose JSON library — no parsing, no DOM.

#ifndef TGLINK_OBS_JSON_WRITER_H_
#define TGLINK_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tglink {
namespace obs {

/// Escapes `text` per RFC 8259 (quotes, backslash, control characters);
/// returns the escaped body WITHOUT surrounding quotes.
[[nodiscard]] std::string JsonEscape(std::string_view text);

/// Formats a double as a JSON number token. Uses shortest-round-trip-ish
/// "%.17g"; NaN and infinities (not representable in JSON) become null.
[[nodiscard]] std::string JsonNumber(double value);

/// Streaming writer with nesting bookkeeping: commas are inserted
/// automatically, Key() is required before values inside objects.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits `"name":` inside the current object.
  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices a pre-serialized JSON value (already valid JSON) in place.
  JsonWriter& Raw(std::string_view json);

  /// The document so far; valid JSON once every Begin has been Ended.
  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true = object, false = array.
  std::vector<bool> is_object_;
  // Whether the current container already holds at least one element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace tglink

#endif  // TGLINK_OBS_JSON_WRITER_H_
