#include "tglink/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "tglink/obs/json_writer.h"
#include "tglink/obs/memprof.h"
#include "tglink/util/logging.h"

namespace tglink {
namespace obs {

namespace {

/// Per-thread span context: the stack of open span names, joined into the
/// path of each recorded event. Only touched while tracing is enabled.
struct ThreadSpanStack {
  std::vector<std::string> names;
  std::string JoinedPath() const {
    std::string path;
    for (const std::string& name : names) {
      if (!path.empty()) path += '/';
      path += name;
    }
    return path;
  }
};

ThreadSpanStack& LocalStack() {
  thread_local ThreadSpanStack stack;
  return stack;
}

}  // namespace

std::vector<SpanAggregate> AggregateSpans(
    const std::vector<TraceEvent>& events) {
  std::map<std::string, SpanAggregate> by_path;
  for (const TraceEvent& event : events) {
    SpanAggregate& agg = by_path[event.path];
    if (agg.count == 0) agg.path = event.path;
    ++agg.count;
    agg.total_ns += event.dur_ns;
    agg.alloc_bytes += event.alloc_bytes;
    agg.free_bytes += event.free_bytes;
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_path.size());
  for (auto& [path, agg] : by_path) out.push_back(std::move(agg));
  return out;
}

void Tracer::Record(TraceEvent event) {
  MutexLock lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  MutexLock lock(mu_);
  return events_;
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  events_.clear();
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Snapshot();
  // Deterministic order: by thread, then start time, then longest first so
  // parents precede their children.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.name < b.name;
            });
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& event : events) {
    w.BeginObject();
    w.Key("name").String(event.name);
    w.Key("cat").String("tglink");
    w.Key("ph").String("X");
    w.Key("ts").Double(static_cast<double>(event.start_ns) / 1e3);
    w.Key("dur").Double(static_cast<double>(event.dur_ns) / 1e3);
    w.Key("pid").Int(1);
    w.Key("tid").Int(event.tid);
    w.Key("args").BeginObject();
    w.Key("path").String(event.path);
    w.Key("depth").UInt(event.depth);
    if (event.has_arg) w.Key("value").Double(event.arg);
    // Memory next to wall time in the Perfetto UI; zeros when the memprof
    // hooks are off, so the trace shape is stable either way.
    w.Key("alloc_bytes").UInt(event.alloc_bytes);
    w.Key("free_bytes").UInt(event.free_bytes);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.Take();
}

uint64_t Tracer::NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           origin)
          .count());
}

Tracer& GlobalTracer() {
  static Tracer tracer;
  return tracer;
}

void ScopedSpan::Enter(std::string name) {
  if (!GlobalTracer().enabled()) return;
  active_ = true;
  ThreadSpanStack& stack = LocalStack();
  event_.depth = static_cast<uint32_t>(stack.names.size());
  stack.names.push_back(std::move(name));
  event_.path = stack.JoinedPath();
  event_.name = stack.names.back();
  event_.tid = ThreadId();
  // Stash the entry snapshot in the byte fields; the destructor converts
  // them to deltas. Zero-cost while the allocation hooks are disabled.
  const AllocTotals mem = ThreadAllocTotals();
  event_.alloc_bytes = mem.bytes_allocated;
  event_.free_bytes = mem.bytes_freed;
  event_.start_ns = Tracer::NowNs();
}

ScopedSpan::ScopedSpan(std::string name) { Enter(std::move(name)); }

ScopedSpan::ScopedSpan(std::string name, double arg) {
  Enter(std::move(name));
  event_.has_arg = true;
  event_.arg = arg;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  event_.dur_ns = Tracer::NowNs() - event_.start_ns;
  const AllocTotals mem = ThreadAllocTotals();
  event_.alloc_bytes = mem.bytes_allocated - event_.alloc_bytes;
  event_.free_bytes = mem.bytes_freed - event_.free_bytes;
  ThreadSpanStack& stack = LocalStack();
  TGLINK_DCHECK(!stack.names.empty() && stack.names.back() == event_.name)
      << "span stack corrupted: scoped spans must strictly nest";
  stack.names.pop_back();
  GlobalTracer().Record(std::move(event_));
}

}  // namespace obs
}  // namespace tglink
