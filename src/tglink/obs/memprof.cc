#include "tglink/obs/memprof.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <deque>
#include <new>
#include <thread>  // tglink-lint: disable=raw-thread
#include <unordered_map>
#include <utility>

#include "tglink/obs/metrics.h"
#include "tglink/util/thread_annotations.h"

#if defined(__GLIBC__)
#include <malloc.h>  // malloc_usable_size — sanctioned here only (lint rule)
#endif

// The interposition is compiled unless either escape hatch is set. Note the
// usual static-archive caveat: the replacement operators live in this
// translation unit, so they interpose only in binaries whose link pulls
// memprof.o in — which any use of the memprof/stage/report API does.
#if !defined(TGLINK_MEMPROF_DISABLED) && !defined(TGLINK_MEMPROF_NO_HOOKS)
#define TGLINK_MEMPROF_HOOKS_ACTIVE 1
#else
#define TGLINK_MEMPROF_HOOKS_ACTIVE 0
#endif

namespace tglink {
namespace obs {

namespace {

// ---------------------------------------------------------------------------
// Allocation counting. The hooks below run under EVERY operator new/delete
// in the binary, including during static initialization and inside the
// registries of this very file — so this layer must never allocate, never
// lock, and never touch TLS with a non-trivial destructor. It is plain
// constant-initialized PODs and relaxed atomics all the way down.
// ---------------------------------------------------------------------------

thread_local AllocTotals t_alloc_totals;  // constant-initialized, trivial dtor

std::atomic<uint64_t> g_bytes_allocated{0};
std::atomic<uint64_t> g_bytes_freed{0};
std::atomic<uint64_t> g_alloc_calls{0};
std::atomic<uint64_t> g_free_calls{0};

/// -1 = not yet resolved from the environment, else 0/1. getenv is safe
/// this early (no allocation) and the resolution is idempotent, so a
/// racing first-read is harmless.
std::atomic<int> g_enabled{-1};

bool ResolveEnabledSlow() {
  const char* env = std::getenv("TGLINK_MEMPROF");
  const int on = (env != nullptr && env[0] != '\0' &&
                  !(env[0] == '0' && env[1] == '\0'))
                     ? 1
                     : 0;
  g_enabled.store(on, std::memory_order_relaxed);
  return on == 1;
}

inline bool CollectionEnabled() {
  const int v = g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v == 1;
  return ResolveEnabledSlow();
}

#if TGLINK_MEMPROF_HOOKS_ACTIVE

/// Usable (allocator-rounded) size of a live block. Counting the same
/// figure on both the alloc and the free side makes the live delta exact;
/// without malloc_usable_size we fall back to the requested size and let
/// sized delete carry the free side.
inline uint64_t UsableSize(void* ptr, uint64_t requested) {
#if defined(__GLIBC__)
  (void)requested;
  return static_cast<uint64_t>(malloc_usable_size(ptr));
#else
  (void)ptr;
  return requested;
#endif
}

inline void CountAlloc(void* ptr, uint64_t requested) {
  if (!CollectionEnabled()) return;
  const uint64_t bytes = UsableSize(ptr, requested);
  t_alloc_totals.bytes_allocated += bytes;
  ++t_alloc_totals.alloc_calls;
  g_bytes_allocated.fetch_add(bytes, std::memory_order_relaxed);
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
}

inline void CountFree(void* ptr, uint64_t sized_hint) {
  if (!CollectionEnabled()) return;
  const uint64_t bytes = UsableSize(ptr, sized_hint);
  t_alloc_totals.bytes_freed += bytes;
  ++t_alloc_totals.free_calls;
  g_bytes_freed.fetch_add(bytes, std::memory_order_relaxed);
  g_free_calls.fetch_add(1, std::memory_order_relaxed);
}

/// malloc with the standard new-handler retry protocol.
void* AllocOrHandler(size_t size) {
  if (size == 0) size = 1;
  for (;;) {
    void* ptr = std::malloc(size);
    if (ptr != nullptr) {
      CountAlloc(ptr, size);
      return ptr;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void CountedFree(void* ptr, uint64_t sized_hint) noexcept {
  if (ptr == nullptr) return;
  CountFree(ptr, sized_hint);
  std::free(ptr);
}

#endif  // TGLINK_MEMPROF_HOOKS_ACTIVE

// ---------------------------------------------------------------------------
// Stage registry. Entries are created once per distinct name under a mutex
// and never move afterwards (deque), so the hot path — a finished stage
// folding its deltas in — is lock-free relaxed atomics on a stable entry,
// the same discipline obs/metrics.h uses for counters.
// ---------------------------------------------------------------------------

struct StageEntry {
  std::string name;
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> bytes_allocated{0};
  std::atomic<uint64_t> bytes_freed{0};
  std::atomic<uint64_t> alloc_calls{0};
  std::atomic<uint64_t> free_calls{0};
  std::atomic<uint64_t> peak_rss_kb{0};
  std::atomic<uint64_t> peak_vm_hwm_kb{0};
};

struct ArenaEntry {
  std::string name;
  std::atomic<uint64_t> bytes_total{0};
  std::atomic<uint64_t> max_bytes{0};
  std::atomic<uint64_t> reports{0};
};

struct Registry {
  Mutex mu;
  std::deque<StageEntry> stages TGLINK_GUARDED_BY(mu);
  std::unordered_map<std::string, StageEntry*> stage_index
      TGLINK_GUARDED_BY(mu);
  std::deque<ArenaEntry> arenas TGLINK_GUARDED_BY(mu);
  std::unordered_map<std::string, ArenaEntry*> arena_index
      TGLINK_GUARDED_BY(mu);
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry;  // leaked: outlives all threads
  return *registry;
}

StageEntry* InternStage(std::string_view name) {
  Registry& reg = GlobalRegistry();
  MutexLock lock(reg.mu);
  const auto it = reg.stage_index.find(std::string(name));
  if (it != reg.stage_index.end()) return it->second;
  reg.stages.emplace_back();
  StageEntry* entry = &reg.stages.back();
  entry->name = std::string(name);
  reg.stage_index.emplace(entry->name, entry);
  return entry;
}

ArenaEntry* InternArena(std::string_view name) {
  Registry& reg = GlobalRegistry();
  MutexLock lock(reg.mu);
  const auto it = reg.arena_index.find(std::string(name));
  if (it != reg.arena_index.end()) return it->second;
  reg.arenas.emplace_back();
  ArenaEntry* entry = &reg.arenas.back();
  entry->name = std::string(name);
  reg.arena_index.emplace(entry->name, entry);
  return entry;
}

void AtomicMax(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

/// The innermost stage name, process-wide, for the heartbeat. Entry name
/// storage is immutable once interned, so publishing the c_str() is safe;
/// which stage is "current" when several threads nest is advisory.
std::atomic<const char*> g_current_stage{nullptr};

/// Per-thread stack of open stages; parent restored on scope exit.
struct ThreadStageStack {
  // Fixed capacity keeps the type trivially destructible (same constraint
  // as the alloc totals: stage scopes sit under allocator-visible code).
  static constexpr int kMaxDepth = 16;
  StageEntry* open[kMaxDepth];
  int depth;
};

thread_local ThreadStageStack t_stage_stack;  // zero-initialized

static_assert(std::is_trivially_destructible_v<ThreadStageStack>,
              "the stage stack must not register a TLS destructor");

void FoldStageExit(StageEntry* entry, const AllocTotals& on_entry) {
  const AllocTotals now = t_alloc_totals;
  entry->count.fetch_add(1, std::memory_order_relaxed);
  entry->bytes_allocated.fetch_add(now.bytes_allocated - on_entry.bytes_allocated,
                                   std::memory_order_relaxed);
  entry->bytes_freed.fetch_add(now.bytes_freed - on_entry.bytes_freed,
                               std::memory_order_relaxed);
  entry->alloc_calls.fetch_add(now.alloc_calls - on_entry.alloc_calls,
                               std::memory_order_relaxed);
  entry->free_calls.fetch_add(now.free_calls - on_entry.free_calls,
                              std::memory_order_relaxed);
}

void SampleStageBoundary(StageEntry* entry) {
  const RssSample rss = SampleRss();
  AtomicMax(entry->peak_rss_kb, rss.vm_rss_kb);
  AtomicMax(entry->peak_vm_hwm_kb, rss.vm_hwm_kb);
}

// ---------------------------------------------------------------------------
// Heartbeat.
// ---------------------------------------------------------------------------

struct HeartbeatState {
  Mutex mu;
  CondVar cv;
  bool stop TGLINK_GUARDED_BY(mu) = false;
  bool running TGLINK_GUARDED_BY(mu) = false;
  double interval_s TGLINK_GUARDED_BY(mu) = 0.0;
  // The heartbeat is a lifetime monitor, not parallel work: it cannot go
  // through the task pool it reports on, so it owns its thread directly.
  std::thread thread;  // tglink-lint: disable=raw-thread
};

HeartbeatState& GlobalHeartbeat() {
  static HeartbeatState* state = new HeartbeatState;  // leaked, see Registry
  return *state;
}

void HeartbeatLoop() {
  HeartbeatState& hb = GlobalHeartbeat();
  uint64_t last_pairs =
      GlobalMetrics().GetCounter("similarity.agg_calls").Value();
  auto last_time = std::chrono::steady_clock::now();
  for (;;) {
    {
      MutexLock lock(hb.mu);
      const auto interval =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::duration<double>(hb.interval_s));
      const auto deadline = std::chrono::steady_clock::now() + interval;
      while (!hb.stop) {
        const auto remaining = deadline - std::chrono::steady_clock::now();
        if (remaining <= std::chrono::nanoseconds::zero()) break;
        hb.cv.WaitFor(hb.mu, remaining);
      }
      if (hb.stop) return;
    }
    const uint64_t pairs =
        GlobalMetrics().GetCounter("similarity.agg_calls").Value();
    const auto now = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now - last_time).count();
    const double pairs_per_s =
        dt > 0.0 ? static_cast<double>(pairs - last_pairs) / dt : 0.0;
    last_pairs = pairs;
    last_time = now;
    const RssSample rss = SampleRss();
    std::fprintf(stderr,
                 "[tglink] heartbeat stage=%s pairs/s=%.3g rss=%.1fMB "
                 "live_alloc=%.1fMB\n",
                 CurrentStageName()[0] != '\0' ? CurrentStageName() : "-",
                 pairs_per_s, static_cast<double>(rss.vm_rss_kb) / 1024.0,
                 (static_cast<double>(GlobalAllocTotals().bytes_allocated) -
                  static_cast<double>(GlobalAllocTotals().bytes_freed)) /
                     (1024.0 * 1024.0));
  }
}

void StopHeartbeatAtExit() { StopHeartbeat(); }

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

bool MemProfHooksCompiledIn() { return TGLINK_MEMPROF_HOOKS_ACTIVE != 0; }

bool MemProfEnabled() { return CollectionEnabled(); }

void SetMemProfEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

AllocTotals ThreadAllocTotals() { return t_alloc_totals; }

AllocTotals GlobalAllocTotals() {
  AllocTotals totals;
  totals.bytes_allocated = g_bytes_allocated.load(std::memory_order_relaxed);
  totals.bytes_freed = g_bytes_freed.load(std::memory_order_relaxed);
  totals.alloc_calls = g_alloc_calls.load(std::memory_order_relaxed);
  totals.free_calls = g_free_calls.load(std::memory_order_relaxed);
  return totals;
}

bool ParseProcStatus(std::string_view status_text, RssSample* out) {
  *out = RssSample{};
  bool found = false;
  size_t pos = 0;
  while (pos < status_text.size()) {
    size_t eol = status_text.find('\n', pos);
    if (eol == std::string_view::npos) eol = status_text.size();
    const std::string_view line = status_text.substr(pos, eol - pos);
    pos = eol + 1;
    uint64_t* slot = nullptr;
    std::string_view rest;
    if (line.rfind("VmRSS:", 0) == 0) {
      slot = &out->vm_rss_kb;
      rest = line.substr(6);
    } else if (line.rfind("VmHWM:", 0) == 0) {
      slot = &out->vm_hwm_kb;
      rest = line.substr(6);
    } else {
      continue;
    }
    size_t i = 0;
    while (i < rest.size() && (rest[i] == ' ' || rest[i] == '\t')) ++i;
    uint64_t value = 0;
    bool any_digit = false;
    while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') {
      value = value * 10 + static_cast<uint64_t>(rest[i] - '0');
      any_digit = true;
      ++i;
    }
    if (!any_digit) continue;
    *slot = value;  // the trailing " kB" unit is implied by /proc's format
    found = true;
  }
  return found;
}

RssSample SampleRss() {
  RssSample sample;
  // Raw stdio keeps this allocation-free; the file is tiny and /proc reads
  // never short-read, so one fixed buffer suffices.
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return sample;
  char buffer[4096];
  const size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  buffer[n] = '\0';
  (void)ParseProcStatus(std::string_view(buffer, n), &sample);
  return sample;
}

MemorySnapshot SnapshotMemory() {
  MemorySnapshot snapshot;
  snapshot.hooks_compiled = MemProfHooksCompiledIn();
  snapshot.enabled = MemProfEnabled();
  snapshot.allocator = GlobalAllocTotals();
  snapshot.rss = SampleRss();
  Registry& reg = GlobalRegistry();
  MutexLock lock(reg.mu);
  snapshot.stages.reserve(reg.stages.size());
  for (const StageEntry& entry : reg.stages) {
    StageStats stats;
    stats.name = entry.name;
    stats.count = entry.count.load(std::memory_order_relaxed);
    stats.bytes_allocated =
        entry.bytes_allocated.load(std::memory_order_relaxed);
    stats.bytes_freed = entry.bytes_freed.load(std::memory_order_relaxed);
    stats.alloc_calls = entry.alloc_calls.load(std::memory_order_relaxed);
    stats.free_calls = entry.free_calls.load(std::memory_order_relaxed);
    stats.peak_rss_kb = entry.peak_rss_kb.load(std::memory_order_relaxed);
    stats.peak_vm_hwm_kb =
        entry.peak_vm_hwm_kb.load(std::memory_order_relaxed);
    snapshot.stages.push_back(std::move(stats));
  }
  snapshot.arenas.reserve(reg.arenas.size());
  for (const ArenaEntry& entry : reg.arenas) {
    ArenaStats stats;
    stats.name = entry.name;
    stats.bytes_total = entry.bytes_total.load(std::memory_order_relaxed);
    stats.max_bytes = entry.max_bytes.load(std::memory_order_relaxed);
    stats.reports = entry.reports.load(std::memory_order_relaxed);
    snapshot.arenas.push_back(std::move(stats));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snapshot.stages.begin(), snapshot.stages.end(), by_name);
  std::sort(snapshot.arenas.begin(), snapshot.arenas.end(), by_name);
  return snapshot;
}

void ReportArenaBytes(std::string_view component, uint64_t bytes) {
  ArenaEntry* entry = InternArena(component);
  entry->bytes_total.fetch_add(bytes, std::memory_order_relaxed);
  entry->reports.fetch_add(1, std::memory_order_relaxed);
  AtomicMax(entry->max_bytes, bytes);
}

int ThreadStageDepth() { return t_stage_stack.depth; }

const char* CurrentStageName() {
  const char* name = g_current_stage.load(std::memory_order_relaxed);
  return name != nullptr ? name : "";
}

void ResetMemProfForTesting() {
  g_bytes_allocated.store(0, std::memory_order_relaxed);
  g_bytes_freed.store(0, std::memory_order_relaxed);
  g_alloc_calls.store(0, std::memory_order_relaxed);
  g_free_calls.store(0, std::memory_order_relaxed);
  t_alloc_totals = AllocTotals{};
  Registry& reg = GlobalRegistry();
  MutexLock lock(reg.mu);
  reg.stage_index.clear();
  reg.stages.clear();
  reg.arena_index.clear();
  reg.arenas.clear();
}

void StartHeartbeat(double interval_seconds) {
  if (interval_seconds <= 0.0) return;
  HeartbeatState& hb = GlobalHeartbeat();
  MutexLock lock(hb.mu);
  hb.interval_s = interval_seconds;
  if (hb.running) return;
  hb.stop = false;
  hb.running = true;
  hb.thread = std::thread(HeartbeatLoop);  // tglink-lint: disable=raw-thread
  std::atexit(StopHeartbeatAtExit);
}

void StopHeartbeat() {
  HeartbeatState& hb = GlobalHeartbeat();
  {
    MutexLock lock(hb.mu);
    if (!hb.running) return;
    hb.stop = true;
    hb.running = false;
  }
  hb.cv.NotifyAll();
  hb.thread.join();
}

#if !defined(TGLINK_MEMPROF_DISABLED)

ScopedMemStage::ScopedMemStage(std::string_view name) {
  ThreadStageStack& stack = t_stage_stack;
  if (stack.depth >= ThreadStageStack::kMaxDepth) return;  // entry_ stays null
  StageEntry* entry = InternStage(name);
  stack.open[stack.depth++] = entry;
  entry_ = entry;
  on_entry_ = t_alloc_totals;
  g_current_stage.store(entry->name.c_str(), std::memory_order_relaxed);
  SampleStageBoundary(entry);
}

ScopedMemStage::~ScopedMemStage() {
  if (entry_ == nullptr) return;
  auto* entry = static_cast<StageEntry*>(entry_);
  ThreadStageStack& stack = t_stage_stack;
  --stack.depth;
  SampleStageBoundary(entry);
  FoldStageExit(entry, on_entry_);
  StageEntry* parent = stack.depth > 0 ? stack.open[stack.depth - 1] : nullptr;
  g_current_stage.store(parent != nullptr ? parent->name.c_str() : nullptr,
                        std::memory_order_relaxed);
}

#endif  // !TGLINK_MEMPROF_DISABLED

}  // namespace obs
}  // namespace tglink

#if TGLINK_MEMPROF_HOOKS_ACTIVE

// ---------------------------------------------------------------------------
// Global operator new/delete replacement ([new.delete.single]/[array]).
// The aligned (align_val_t) forms are deliberately NOT replaced: libstdc++'s
// defaults allocate those through aligned_alloc/free independently of these
// operators, so over-aligned types simply go uncounted (documented caveat,
// DESIGN.md §12).
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  return tglink::obs::AllocOrHandler(size);
}

void* operator new[](std::size_t size) {
  return tglink::obs::AllocOrHandler(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return tglink::obs::AllocOrHandler(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return tglink::obs::AllocOrHandler(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* ptr) noexcept { tglink::obs::CountedFree(ptr, 0); }

void operator delete[](void* ptr) noexcept {
  tglink::obs::CountedFree(ptr, 0);
}

void operator delete(void* ptr, std::size_t size) noexcept {
  tglink::obs::CountedFree(ptr, size);
}

void operator delete[](void* ptr, std::size_t size) noexcept {
  tglink::obs::CountedFree(ptr, size);
}

void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  tglink::obs::CountedFree(ptr, 0);
}

void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  tglink::obs::CountedFree(ptr, 0);
}

#endif  // TGLINK_MEMPROF_HOOKS_ACTIVE
