// Scoped span tracer: hierarchical phase timings per thread, exported as
// Chrome trace-event JSON (load in chrome://tracing or https://ui.perfetto.dev)
// and as an aggregated span tree for RunReport.
//
//   TGLINK_TRACE_SPAN("subgraph.score");          // times the enclosing scope
//   TGLINK_TRACE_SPAN("linkage.iteration", delta);  // with a numeric arg
//
// Disabled by default: a span construction is then a single relaxed atomic
// load and nothing is recorded. When enabled, span entry/exit maintains a
// thread-local name stack (so every event knows its full "a/b/c" path) and
// appends the completed event to a mutex-guarded buffer on exit. Spans are
// phase-granular (per pipeline stage, per δ round) — never per record pair —
// so the lock is uncontended in practice and TSan-clean by construction.

#ifndef TGLINK_OBS_TRACE_H_
#define TGLINK_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "tglink/util/thread_annotations.h"

namespace tglink {
namespace obs {

/// A completed span. Times are nanoseconds since the tracer's process-wide
/// origin (first use of the clock).
struct TraceEvent {
  std::string name;  // leaf name, e.g. "subgraph.score"
  std::string path;  // slash-joined ancestry, e.g. "linkage.pair/subgraph.score"
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  // Bytes this thread allocated/freed while the span was open (inclusive of
  // child spans; zero unless the memprof allocation hooks are enabled —
  // see obs/memprof.h). Per-thread: a span does not see its workers'
  // allocations, the workers' chunk spans carry those.
  uint64_t alloc_bytes = 0;
  uint64_t free_bytes = 0;
  uint32_t tid = 0;    // small sequential thread id (tglink::ThreadId())
  uint32_t depth = 0;  // nesting depth at entry, 0 = top level
  bool has_arg = false;
  double arg = 0.0;  // optional numeric annotation (e.g. the δ of a round)
};

/// One name-aggregated node of the span tree: all events sharing a path.
struct SpanAggregate {
  std::string path;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t alloc_bytes = 0;
  uint64_t free_bytes = 0;
};

/// Collapses events by path; sorted by path. Deterministic for a fixed
/// event multiset.
[[nodiscard]] std::vector<SpanAggregate> AggregateSpans(
    const std::vector<TraceEvent>& events);

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends a completed event (called by ScopedSpan on destruction).
  void Record(TraceEvent event) TGLINK_EXCLUDES(mu_);

  [[nodiscard]] std::vector<TraceEvent> Snapshot() const TGLINK_EXCLUDES(mu_);
  void Clear() TGLINK_EXCLUDES(mu_);

  /// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds).
  [[nodiscard]] std::string ToChromeTraceJson() const;

  /// Nanoseconds since the process-wide trace origin.
  [[nodiscard]] static uint64_t NowNs();

 private:
  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ TGLINK_GUARDED_BY(mu_);
};

/// The process-wide tracer all TGLINK_TRACE_SPAN sites report to.
Tracer& GlobalTracer();

/// RAII span over the global tracer. Captures the enabled flag at entry;
/// a span that started enabled is recorded even if tracing is turned off
/// mid-flight (and vice versa nothing half-started is recorded).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  ScopedSpan(std::string name, double arg);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Enter(std::string name);

  bool active_ = false;
  TraceEvent event_;
};

}  // namespace obs
}  // namespace tglink

#define TGLINK_OBS_CONCAT_INNER(a, b) a##b
#define TGLINK_OBS_CONCAT(a, b) TGLINK_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope as a span named `...` (a name, optionally
/// followed by a numeric arg) on the global tracer.
#define TGLINK_TRACE_SPAN(...)                                      \
  ::tglink::obs::ScopedSpan TGLINK_OBS_CONCAT(tglink_trace_span_,   \
                                              __LINE__)(__VA_ARGS__)

#endif  // TGLINK_OBS_TRACE_H_
