// End-to-end synthetic census series generation: runs the population
// simulator, takes a corrupted snapshot per census year, and derives the
// ground-truth record and group mappings between every successive pair.
// This is the substitute for the paper's restricted Rawtenstall data (see
// DESIGN.md, Section 1).

#ifndef TGLINK_SYNTH_GENERATOR_H_
#define TGLINK_SYNTH_GENERATOR_H_

#include <vector>

#include "tglink/census/dataset.h"
#include "tglink/eval/gold.h"
#include "tglink/synth/corruption.h"
#include "tglink/synth/population.h"

namespace tglink {

struct GeneratorConfig {
  uint64_t seed = 42;
  int start_year = 1851;
  int num_censuses = 6;

  /// Scales the Table-1 household targets (0.25 → quarter-size datasets;
  /// used to keep multi-configuration experiment sweeps fast).
  double scale = 1.0;

  PopulationConfig population;
  CorruptionConfig corruption;
};

struct SyntheticSeries {
  std::vector<CensusDataset> snapshots;           // num_censuses entries
  std::vector<GoldMapping> gold;                  // per successive pair
  std::vector<std::vector<uint64_t>> record_pids; // per snapshot, by RecordId
};

/// Generates the full series deterministically from the seed.
SyntheticSeries GenerateCensusSeries(const GeneratorConfig& config);

/// Convenience: generates only snapshots i and i+1 of the series (still
/// simulating from the start year so that the population has realistic
/// history), returning the two datasets and their gold mapping.
struct SyntheticPair {
  CensusDataset old_dataset;
  CensusDataset new_dataset;
  GoldMapping gold;
};
SyntheticPair GenerateCensusPair(const GeneratorConfig& config,
                                 int pair_index);

}  // namespace tglink

#endif  // TGLINK_SYNTH_GENERATOR_H_
