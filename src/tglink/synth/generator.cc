#include "tglink/synth/generator.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "tglink/synth/scenario.h"
#include "tglink/util/logging.h"

namespace tglink {

namespace {

/// Gold mapping between two snapshots: persons present in both, plus the
/// household pairs induced by those person links.
GoldMapping BuildGold(const Population::Snapshot& old_snapshot,
                      const Population::Snapshot& new_snapshot) {
  std::unordered_map<uint64_t, RecordId> new_by_pid;
  new_by_pid.reserve(new_snapshot.record_pids.size());
  for (RecordId r = 0; r < new_snapshot.record_pids.size(); ++r) {
    new_by_pid.emplace(new_snapshot.record_pids[r], r);
  }
  GoldMapping gold;
  std::vector<std::pair<std::string, std::string>> group_links;
  // With within-snapshot duplicates (duplicate_record_prob scenarios) one
  // pid can own several records per side. Gold stays one-to-one: the first
  // old-side record links to the first new-side record (new_by_pid::emplace
  // already keeps the first); further copies are unlinked enumeration noise
  // the linker should NOT match. A no-op for duplicate-free snapshots.
  std::unordered_set<uint64_t> linked_pids;
  for (RecordId r_old = 0; r_old < old_snapshot.record_pids.size(); ++r_old) {
    auto it = new_by_pid.find(old_snapshot.record_pids[r_old]);
    if (it == new_by_pid.end()) continue;
    if (!linked_pids.insert(old_snapshot.record_pids[r_old]).second) continue;
    const RecordId r_new = it->second;
    gold.record_links.emplace_back(
        old_snapshot.dataset.record(r_old).external_id,
        new_snapshot.dataset.record(r_new).external_id);
    const GroupId g_old = old_snapshot.dataset.record(r_old).group;
    const GroupId g_new = new_snapshot.dataset.record(r_new).group;
    group_links.emplace_back(
        old_snapshot.dataset.household(g_old).external_id,
        new_snapshot.dataset.household(g_new).external_id);
  }
  std::sort(group_links.begin(), group_links.end());
  group_links.erase(std::unique(group_links.begin(), group_links.end()),
                    group_links.end());
  gold.group_links = std::move(group_links);
  return gold;
}

PopulationConfig ScaledPopulationConfig(const GeneratorConfig& config) {
  PopulationConfig population = config.population;
  population.start_year = config.start_year;
  for (size_t& target : population.household_targets) {
    target = static_cast<size_t>(
        std::max(1.0, static_cast<double>(target) * config.scale));
  }
  return population;
}

}  // namespace

SyntheticSeries GenerateCensusSeries(const GeneratorConfig& config) {
  const Status valid = ValidateGeneratorConfig(config);
  TGLINK_CHECK(valid.ok()) << valid.ToString();
  Rng rng(config.seed);
  const CorruptionModel corruption(config.corruption);
  Population population(ScaledPopulationConfig(config), &rng);

  SyntheticSeries series;
  Population::Snapshot previous;
  for (int i = 0; i < config.num_censuses; ++i) {
    if (i > 0) population.AdvanceDecade(&rng);
    Population::Snapshot snapshot = population.TakeSnapshot(corruption, &rng);
    if (i > 0) series.gold.push_back(BuildGold(previous, snapshot));
    series.snapshots.push_back(snapshot.dataset);
    series.record_pids.push_back(snapshot.record_pids);
    previous = std::move(snapshot);
  }
  return series;
}

SyntheticPair GenerateCensusPair(const GeneratorConfig& config,
                                 int pair_index) {
  assert(pair_index >= 0 && pair_index + 1 < config.num_censuses);
  GeneratorConfig trimmed = config;
  trimmed.num_censuses = pair_index + 2;
  SyntheticSeries series = GenerateCensusSeries(trimmed);
  SyntheticPair pair;
  pair.old_dataset = std::move(series.snapshots[pair_index]);
  pair.new_dataset = std::move(series.snapshots[pair_index + 1]);
  pair.gold = std::move(series.gold[pair_index]);
  return pair;
}

}  // namespace tglink
