#include "tglink/synth/corruption.h"

#include <algorithm>

#include "tglink/synth/name_pools.h"

namespace tglink {

namespace {
/// Frequent hand-writing / OCR confusion pairs in transcribed census data.
constexpr std::pair<char, char> kConfusions[] = {
    {'a', 'o'}, {'e', 'c'}, {'i', 'l'}, {'u', 'v'}, {'m', 'n'},
    {'h', 'b'}, {'t', 'f'}, {'r', 'n'}, {'s', 'z'}, {'g', 'q'},
};
}  // namespace

std::string CorruptionModel::ApplyTypo(const std::string& value,
                                       Rng* rng) const {
  if (value.size() < 2) return value;
  std::string out = value;
  const size_t pos = rng->NextBounded(out.size());
  switch (rng->NextBounded(5)) {
    case 0: {  // substitution with a random letter
      out[pos] = static_cast<char>('a' + rng->NextBounded(26));
      break;
    }
    case 1: {  // deletion
      out.erase(pos, 1);
      break;
    }
    case 2: {  // insertion
      out.insert(pos, 1, static_cast<char>('a' + rng->NextBounded(26)));
      break;
    }
    case 3: {  // transposition of adjacent characters
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
    }
    case 4: {  // OCR confusion (either direction)
      const auto& conf = kConfusions[rng->NextBounded(std::size(kConfusions))];
      for (char& c : out) {
        if (c == conf.first) {
          c = conf.second;
          break;
        }
        if (c == conf.second) {
          c = conf.first;
          break;
        }
      }
      break;
    }
  }
  return out;
}

void CorruptionModel::CorruptRecord(PersonRecord* record, Rng* rng) const {
  // Nickname substitution before typos (a nickname can itself be mangled).
  if (!record->first_name.empty() && Hit(config_.nickname_prob, rng)) {
    const auto& nicknames = NicknamesFor(record->first_name);
    if (!nicknames.empty()) {
      record->first_name = nicknames[rng->NextBounded(nicknames.size())];
    }
  }
  if (!record->first_name.empty() && Hit(config_.name_typo_prob, rng)) {
    record->first_name = ApplyTypo(record->first_name, rng);
  }
  if (!record->surname.empty() && Hit(config_.name_typo_prob, rng)) {
    record->surname = ApplyTypo(record->surname, rng);
  }
  if (record->has_age() && Hit(config_.age_error_prob, rng)) {
    const int magnitude =
        1 + static_cast<int>(rng->NextBounded(
                static_cast<uint64_t>(std::max(1, config_.age_error_max))));
    record->age += rng->Bernoulli(0.5) ? magnitude : -magnitude;
    record->age = std::max(0, record->age);
  }

  if (Hit(config_.missing_first_name, rng)) record->first_name.clear();
  if (Hit(config_.missing_surname, rng)) record->surname.clear();
  if (Hit(config_.missing_sex, rng)) record->sex = Sex::kUnknown;
  if (Hit(config_.missing_age, rng)) record->age = -1;
  if (Hit(config_.missing_address, rng)) record->address.clear();
  if (Hit(config_.missing_occupation, rng)) record->occupation.clear();
}

}  // namespace tglink
