#include "tglink/synth/name_pools.h"

#include <unordered_map>

namespace tglink {

const std::vector<std::string>& MaleFirstNames() {
  static const std::vector<std::string> kNames = {
      "john",     "william",  "thomas",   "james",    "george",   "joseph",
      "henry",    "robert",   "samuel",   "edward",   "charles",  "richard",
      "david",    "peter",    "daniel",   "matthew",  "mark",     "luke",
      "albert",   "alfred",   "arthur",   "ernest",   "fred",     "frank",
      "harry",    "walter",   "herbert",  "sidney",   "percy",    "stanley",
      "leonard",  "horace",   "wilfred",  "cecil",    "clifford", "norman",
      "reginald", "hugh",     "edwin",    "edgar",    "isaac",    "abraham",
      "benjamin", "levi",     "eli",      "moses",    "aaron",    "jacob",
      "adam",     "andrew",   "stephen",  "philip",   "simon",    "nathan",
      "jesse",    "seth",     "caleb",    "joshua",   "elijah",   "amos",
      "lawrence", "oliver",   "ralph",    "roger",    "hubert",   "gilbert",
      "steve",    "michael",  "patrick",  "dennis",
  };
  return kNames;
}

const std::vector<std::string>& FemaleFirstNames() {
  static const std::vector<std::string> kNames = {
      "mary",      "elizabeth", "sarah",     "ann",       "jane",
      "alice",     "emma",      "ellen",     "margaret",  "hannah",
      "martha",    "harriet",   "emily",     "esther",    "eliza",
      "charlotte", "caroline",  "louisa",    "fanny",     "agnes",
      "ada",       "edith",     "florence",  "annie",     "bertha",
      "clara",     "dora",      "ethel",     "gertrude",  "hilda",
      "ivy",       "jessie",    "kate",      "lily",      "mabel",
      "maud",      "nellie",    "olive",     "rose",      "ruth",
      "susan",     "sophia",    "rachel",    "rebecca",   "lucy",
      "grace",     "frances",   "amelia",    "betsy",     "nancy",
      "selina",    "priscilla", "phoebe",    "dinah",     "leah",
      "miriam",    "naomi",     "abigail",   "dorcas",    "tabitha",
      "catherine", "isabella",  "matilda",   "henrietta", "rosanna",
      "bridget",   "winifred",  "constance", "beatrice",  "violet",
  };
  return kNames;
}

const std::vector<std::string>& Surnames() {
  // Lancashire-heavy: the first entries get the Zipf head, reproducing the
  // frequent-surname skew (ashworth, smith, ...) the paper highlights.
  static const std::vector<std::string> kNames = {
      "ashworth",    "smith",      "taylor",      "holt",        "lord",
      "hargreaves",  "pickup",     "heys",        "barnes",      "whittaker",
      "nuttall",     "rothwell",   "haworth",     "duckworth",   "ormerod",
      "ramsbottom",  "kershaw",    "schofield",   "greenwood",   "sutcliffe",
      "butterworth", "clegg",      "crabtree",    "dearden",     "entwistle",
      "fielden",     "gregson",    "hacking",     "ingham",      "jackson",
      "kenyon",      "lonsdale",   "metcalfe",    "nowell",      "openshaw",
      "pilkington",  "riley",      "stansfield",  "tattersall",  "uttley",
      "varley",      "walmsley",   "yates",       "jones",       "brown",
      "wilson",      "thompson",   "walker",      "wright",      "robinson",
      "white",       "hall",       "green",       "wood",        "turner",
      "hill",        "moore",      "clark",       "harrison",    "lewis",
      "baker",       "carter",     "shaw",        "bennett",     "booth",
      "bradley",     "brierley",   "buckley",     "chadwick",    "collinge",
      "cronshaw",    "dewhurst",   "eastwood",    "farnworth",   "gorton",
      "grimshaw",    "halstead",   "hamer",       "hindle",      "hoyle",
      "hudson",      "kay",        "law",         "leach",       "lees",
      "livesey",     "marsden",    "mitchell",    "parker",      "pollard",
      "proctor",     "radcliffe",  "rawsthorne",  "redman",      "rigby",
      "rushton",     "scholes",    "slater",      "stott",       "tomlinson",
      "townsend",    "wadsworth",  "warburton",   "whitehead",   "whitworth",
      "wilkinson",   "windle",     "wolstenholme","worsley",     "barcroft",
      "birtwistle",  "cockerill",  "cunliffe",    "dugdale",     "emmett",
      "foulds",      "garsden",    "hartley",     "horrocks",    "ogden",
  };
  // The curated Lancashire list carries the Zipf head (frequent, ambiguous
  // surnames); a generated long tail of plausible English compound surnames
  // supplies the diversity that makes the unique-name counts of Table 1
  // grow with dataset size.
  static const std::vector<std::string> kAll = [] {
    std::vector<std::string> all = kNames;
    static const char* kRoots[] = {
        "ash",   "black", "brad",  "bram",  "brook", "burn",  "carl",
        "chad",  "clay",  "cross", "dal",   "dew",   "east",  "fair",
        "farn",  "grim",  "had",   "hard",  "hart",  "haw",   "hazel",
        "heath", "high",  "holl",  "holm",  "kirk",  "lang",  "leigh",
        "lock",  "long",  "mar",   "mead",  "mill",  "moss",  "nor",
        "oak",   "old",   "pen",   "pick",  "rams",  "red",   "ridge",
        "rush",  "short", "small", "spring","stan",  "stone", "sud",
        "sun",   "thorn", "town",  "under", "wald",  "ward",  "west",
        "whit",  "wild",  "win",   "wool",  "wor",   "york",
    };
    static const char* kSuffixes[] = {
        "ley", "worth", "field", "ham",    "ton",  "son",
        "croft", "shaw", "well",  "den",   "head", "stall",
        "ford", "gate",
    };
    // Interleave so consecutive Zipf ranks vary in both root and suffix.
    for (size_t s = 0; s < std::size(kSuffixes); ++s) {
      for (size_t r = 0; r < std::size(kRoots); ++r) {
        all.push_back(std::string(kRoots[(r * 7 + s) % std::size(kRoots)]) +
                      kSuffixes[(s + r) % std::size(kSuffixes)]);
      }
    }
    // Deduplicate while preserving order (rank = frequency).
    std::vector<std::string> unique;
    std::unordered_map<std::string, bool> seen;
    for (std::string& name : all) {
      if (!seen.emplace(name, true).second) continue;
      unique.push_back(std::move(name));
    }
    return unique;
  }();
  return kAll;
}

const std::vector<std::string>& Occupations() {
  static const std::vector<std::string> kOccupations = {
      "cotton weaver",     "cotton spinner",   "power loom weaver",
      "woollen weaver",    "farmer",           "farm labourer",
      "coal miner",        "stone mason",      "blacksmith",
      "carpenter",         "joiner",           "shoemaker",
      "tailor",            "dressmaker",       "seamstress",
      "domestic servant",  "housekeeper",      "charwoman",
      "laundress",         "grocer",           "butcher",
      "baker",             "publican",         "innkeeper",
      "clerk",             "teacher",          "schoolmaster",
      "minister",          "physician",        "engine driver",
      "mechanic",          "iron moulder",     "bricklayer",
      "plasterer",         "painter",          "plumber",
      "wheelwright",       "saddler",          "cooper",
      "printer",           "bookkeeper",       "warehouseman",
      "carter",            "carrier",          "railway porter",
      "gardener",          "shepherd",         "quarryman",
      "slater",            "bleacher",         "dyer",
      "overlooker",        "mill manager",     "cotton piecer",
      "bobbin winder",     "reeler",           "throstle spinner",
      "cardroom hand",     "sizer",            "twister",
  };
  return kOccupations;
}

const std::vector<std::string>& StreetNames() {
  static const std::vector<std::string> kStreets = {
      "mill street",       "bury road",         "bank street",
      "newchurch road",    "burnley road",      "haslingden road",
      "market street",     "church street",     "bridge street",
      "dale street",       "hall carr lane",    "cloughfold road",
      "waterfoot lane",    "crawshawbooth road","goodshaw lane",
      "schofield street",  "peel street",       "albert terrace",
      "victoria street",   "queen street",      "king street",
      "prince street",     "spring gardens",    "holly mount",
      "hurst lane",        "lime street",       "oak street",
      "ash street",        "beech street",      "cherry tree lane",
      "back lane",         "chapel street",     "commercial street",
      "cooperative street","crow wood lane",    "daisy hill",
      "fall barn road",    "fern hill",         "grange street",
      "hareholme lane",    "height side",       "higher cloughfold",
      "hollin lane",       "kay street",        "longholme road",
      "lower mill street", "moss side",         "new hall hey",
      "north street",      "old street",        "prospect terrace",
      "rakefoot lane",     "reeds holme",       "south street",
      "staghills road",    "townsend street",   "tup bridge",
      "water street",      "whitewell bottom",  "woodlea road",
  };
  return kStreets;
}

const std::vector<std::string>& NicknamesFor(const std::string& first_name) {
  static const std::unordered_map<std::string, std::vector<std::string>>
      kNicknames = {
          {"john", {"jack", "johnny"}},
          {"william", {"will", "bill", "willie"}},
          {"elizabeth", {"betsy", "bessie", "eliza", "lizzie", "beth"}},
          {"margaret", {"maggie", "peggy", "madge"}},
          {"mary", {"polly", "molly"}},
          {"sarah", {"sally"}},
          {"robert", {"bob", "bobby", "rob"}},
          {"richard", {"dick"}},
          {"thomas", {"tom", "tommy"}},
          {"james", {"jim", "jimmy", "jem"}},
          {"joseph", {"joe"}},
          {"edward", {"ted", "ned", "ed"}},
          {"henry", {"harry", "hal"}},
          {"ann", {"annie", "nan"}},
          {"catherine", {"kate", "kitty", "cathy"}},
          {"hannah", {"annie"}},
          {"charles", {"charlie"}},
          {"george", {"georgie"}},
          {"samuel", {"sam"}},
          {"daniel", {"dan", "danny"}},
          {"benjamin", {"ben"}},
          {"frances", {"fanny"}},
          {"ellen", {"nellie", "nell"}},
          {"martha", {"mattie", "patty"}},
          {"susan", {"susie", "sukey"}},
          {"isabella", {"bella"}},
          {"matilda", {"tilly"}},
      };
  static const std::vector<std::string> kEmpty;
  auto it = kNicknames.find(first_name);
  return it == kNicknames.end() ? kEmpty : it->second;
}

NameSampler::NameSampler(double first_name_skew, double surname_skew)
    : male_first_(MaleFirstNames().size(), first_name_skew),
      female_first_(FemaleFirstNames().size(), first_name_skew),
      surname_(Surnames().size(), surname_skew),
      surname_diverse_(Surnames().size(), 0.4),
      occupation_(Occupations().size(), 0.6) {}

std::string NameSampler::SampleFirstName(Sex sex, Rng* rng) const {
  if (sex == Sex::kFemale) {
    return FemaleFirstNames()[female_first_.Sample(rng)];
  }
  return MaleFirstNames()[male_first_.Sample(rng)];
}

std::string NameSampler::SampleSurname(Rng* rng) const {
  return Surnames()[surname_.Sample(rng)];
}

std::string NameSampler::SampleSurnameDiverse(Rng* rng) const {
  return Surnames()[surname_diverse_.Sample(rng)];
}

std::string NameSampler::SampleOccupation(Rng* rng) const {
  return Occupations()[occupation_.Sample(rng)];
}

std::string NameSampler::SampleAddress(Rng* rng) const {
  const auto& streets = StreetNames();
  const size_t street = rng->NextBounded(streets.size());
  const int number = static_cast<int>(rng->NextBounded(120)) + 1;
  return std::to_string(number) + " " + streets[street];
}

}  // namespace tglink
