#include "tglink/synth/population.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

namespace tglink {

namespace {
constexpr int kDecade = 10;
}  // namespace

Population::Population(const PopulationConfig& config, Rng* rng)
    : config_(config), current_year_(config.start_year) {
  assert(!config_.household_targets.empty());
  const size_t initial = config_.household_targets[0];
  for (size_t i = 0; i < initial; ++i) CreateFoundingHousehold(rng);
}

uint64_t Population::NewPerson(std::string first_name, std::string surname,
                               Sex sex, int birth_year) {
  const uint64_t pid = next_pid_++;
  SimPerson person;
  person.pid = pid;
  person.first_name = std::move(first_name);
  person.surname = std::move(surname);
  person.sex = sex;
  person.birth_year = birth_year;
  persons_.emplace(pid, std::move(person));
  return pid;
}

uint64_t Population::NewHousehold(Rng* rng) {
  const uint64_t hid = next_hid_++;
  SimHousehold household;
  household.hid = hid;
  household.address = names_.SampleAddress(rng);
  households_.emplace(hid, std::move(household));
  return hid;
}

void Population::AddToHousehold(uint64_t pid, uint64_t hid) {
  SimPerson& person = persons_.at(pid);
  assert(person.household == 0);
  person.household = hid;
  households_.at(hid).members.push_back(pid);
}

void Population::RemoveFromHousehold(uint64_t pid) {
  SimPerson& person = persons_.at(pid);
  if (person.household == 0) return;
  SimHousehold& household = households_.at(person.household);
  auto it =
      std::find(household.members.begin(), household.members.end(), pid);
  assert(it != household.members.end());
  household.members.erase(it);
  person.household = 0;
  if (household.members.empty()) {
    household.present = false;
    household.head = 0;
  } else if (household.head == pid) {
    // Promote the spouse of the departed head if co-resident, otherwise the
    // eldest remaining member.
    uint64_t successor = 0;
    const uint64_t spouse = persons_.at(pid).spouse;
    for (uint64_t member : household.members) {
      if (member == spouse) {
        successor = member;
        break;
      }
    }
    if (successor == 0) {
      // Eldest male by the era's convention, falling back to the eldest
      // member of any sex. Without the male preference, a deceased head's
      // daughter-in-law could outrank her own husband and the snapshot
      // would record a male "wife".
      int eldest_birth = INT32_MAX;
      for (uint64_t member : household.members) {
        const SimPerson& person = persons_.at(member);
        if (person.sex == Sex::kMale && person.birth_year < eldest_birth) {
          eldest_birth = person.birth_year;
          successor = member;
        }
      }
      if (successor == 0) {
        for (uint64_t member : household.members) {
          const int by = persons_.at(member).birth_year;
          if (by < eldest_birth) {
            eldest_birth = by;
            successor = member;
          }
        }
      }
    }
    household.head = successor;
  }
}

void Population::EnsureOccupation(SimPerson* person, Rng* rng) {
  if (!person->occupation.empty()) return;
  if (person->is_servant) {
    person->occupation = "domestic servant";
    return;
  }
  if (person->sex == Sex::kFemale &&
      !rng->Bernoulli(config_.female_occupation_prob)) {
    return;
  }
  person->occupation = names_.SampleOccupation(rng);
}

void Population::CreateFoundingHousehold(Rng* rng) {
  const uint64_t hid = NewHousehold(rng);
  SimHousehold& household = households_.at(hid);

  // Founding-era households draw from the skewed local surname stock;
  // later-decade immigrants bring a flatter surname mix (Table 1's
  // unique-name growth).
  const std::string surname = decade_index_ == 0
                                  ? names_.SampleSurname(rng)
                                  : names_.SampleSurnameDiverse(rng);
  const int head_age = static_cast<int>(rng->NextInt(24, 55));
  const uint64_t head = NewPerson(names_.SampleFirstName(Sex::kMale, rng),
                                  surname, Sex::kMale,
                                  current_year_ - head_age);
  household.head = head;
  AddToHousehold(head, hid);
  EnsureOccupation(&persons_.at(head), rng);

  uint64_t wife = 0;
  if (rng->Bernoulli(0.88)) {
    const int wife_age =
        std::max<int>(19, head_age + static_cast<int>(rng->NextInt(-8, 2)));
    wife = NewPerson(names_.SampleFirstName(Sex::kFemale, rng), surname,
                     Sex::kFemale, current_year_ - wife_age);
    persons_.at(wife).spouse = head;
    persons_.at(head).spouse = wife;
    AddToHousehold(wife, hid);
    EnsureOccupation(&persons_.at(wife), rng);
  }

  if (wife != 0) {
    const int wife_age = current_year_ - persons_.at(wife).birth_year;
    const int max_child_age = std::min(16, wife_age - 19);
    if (max_child_age >= 0) {
      const int num_children = rng->NextPoisson(config_.initial_children_mean);
      for (int c = 0; c < num_children; ++c) {
        const Sex sex = rng->Bernoulli(0.5) ? Sex::kMale : Sex::kFemale;
        const int age = static_cast<int>(rng->NextInt(0, max_child_age));
        const uint64_t child = NewPerson(names_.SampleFirstName(sex, rng),
                                         surname, sex, current_year_ - age);
        persons_.at(child).father = head;
        persons_.at(child).mother = wife;
        AddToHousehold(child, hid);
        if (age >= 13) EnsureOccupation(&persons_.at(child), rng);
      }
    }
  }

  if (rng->Bernoulli(config_.parent_coresident_prob)) {
    const int mother_age = head_age + static_cast<int>(rng->NextInt(24, 32));
    const uint64_t mother =
        NewPerson(names_.SampleFirstName(Sex::kFemale, rng), surname,
                  Sex::kFemale, current_year_ - mother_age);
    persons_.at(head).mother = mother;
    AddToHousehold(mother, hid);
  }

  if (rng->Bernoulli(config_.servant_prob)) {
    const Sex sex = rng->Bernoulli(0.7) ? Sex::kFemale : Sex::kMale;
    const int age = static_cast<int>(rng->NextInt(14, 25));
    const uint64_t servant =
        NewPerson(names_.SampleFirstName(sex, rng), names_.SampleSurname(rng),
                  sex, current_year_ - age);
    persons_.at(servant).is_servant = true;
    AddToHousehold(servant, hid);
    EnsureOccupation(&persons_.at(servant), rng);
  }

  if (rng->Bernoulli(config_.lodger_prob)) {
    const Sex sex = rng->Bernoulli(0.6) ? Sex::kMale : Sex::kFemale;
    const int age = static_cast<int>(rng->NextInt(18, 50));
    const uint64_t lodger =
        NewPerson(names_.SampleFirstName(sex, rng), names_.SampleSurname(rng),
                  sex, current_year_ - age);
    persons_.at(lodger).is_lodger = true;
    AddToHousehold(lodger, hid);
    EnsureOccupation(&persons_.at(lodger), rng);
  }
}

bool Population::AreCloseKin(const SimPerson& a, const SimPerson& b) const {
  if ((a.father != 0 && a.father == b.father) ||
      (a.mother != 0 && a.mother == b.mother)) {
    return true;  // siblings
  }
  return a.father == b.pid || a.mother == b.pid || b.father == a.pid ||
         b.mother == a.pid;
}

void Population::ApplyDeaths(Rng* rng) {
  std::vector<uint64_t> deaths;
  for (const auto& [pid, person] : persons_) {
    if (!person.present) continue;
    const int age = current_year_ - person.birth_year;
    double prob;
    if (age < 10) {
      prob = config_.death_prob_child;
    } else if (age < 40) {
      prob = config_.death_prob_young;
    } else if (age < 60) {
      prob = config_.death_prob_mid;
    } else if (age < 70) {
      prob = config_.death_prob_old;
    } else {
      prob = config_.death_prob_elder;
    }
    if (rng->Bernoulli(prob)) deaths.push_back(pid);
  }
  for (uint64_t pid : deaths) {
    SimPerson& person = persons_.at(pid);
    person.present = false;
    if (person.spouse != 0) {
      persons_.at(person.spouse).spouse = 0;  // widowed
      person.spouse = 0;
    }
    RemoveFromHousehold(pid);
  }
}

void Population::ApplyMarriages(Rng* rng) {
  std::vector<uint64_t> bachelors, spinsters;
  for (const auto& [pid, person] : persons_) {
    if (!person.present || person.spouse != 0) continue;
    const int age = current_year_ - person.birth_year;
    if (age < 18 || age > 45) continue;
    (person.sex == Sex::kMale ? bachelors : spinsters).push_back(pid);
  }
  const std::vector<size_t> perm_m = rng->Permutation(bachelors.size());
  const std::vector<size_t> perm_f = rng->Permutation(spinsters.size());
  const size_t pairs = std::min(bachelors.size(), spinsters.size());
  for (size_t i = 0; i < pairs; ++i) {
    if (!rng->Bernoulli(config_.marriage_prob)) continue;
    SimPerson& groom = persons_.at(bachelors[perm_m[i]]);
    SimPerson& bride = persons_.at(spinsters[perm_f[i]]);
    if (AreCloseKin(groom, bride)) continue;
    groom.spouse = bride.pid;
    bride.spouse = groom.pid;
    bride.surname = groom.surname;  // the census convention of the era
    groom.is_servant = groom.is_lodger = false;
    bride.is_servant = bride.is_lodger = false;
    EnsureOccupation(&groom, rng);
    // A groom already heading a multi-person household (e.g. a widower with
    // children) keeps it; the bride moves in.
    const bool groom_is_settled_head =
        groom.household != 0 &&
        households_.at(groom.household).head == groom.pid &&
        households_.at(groom.household).members.size() > 1;
    if (!groom_is_settled_head &&
        rng->Bernoulli(config_.couple_new_household_prob)) {
      RemoveFromHousehold(groom.pid);
      RemoveFromHousehold(bride.pid);
      const uint64_t hid = NewHousehold(rng);
      households_.at(hid).head = groom.pid;
      AddToHousehold(groom.pid, hid);
      AddToHousehold(bride.pid, hid);
    } else {
      // The bride moves into the groom's household.
      RemoveFromHousehold(bride.pid);
      AddToHousehold(bride.pid, groom.household);
    }
  }
}

void Population::ApplyLeavingHome(Rng* rng) {
  std::vector<uint64_t> leavers;
  for (const auto& [pid, person] : persons_) {
    if (!person.present || person.spouse != 0) continue;
    if (person.household == 0) continue;
    const SimHousehold& household = households_.at(person.household);
    if (household.head == pid) continue;
    const int age = current_year_ - person.birth_year;
    if (age < 21 || age > 40) continue;
    // Only children of the household leave "home"; servants/lodgers are
    // handled by turnover.
    if (person.is_servant || person.is_lodger) continue;
    leavers.push_back(pid);
  }
  // Collect lodging destinations once (present households).
  std::vector<uint64_t> hids;
  for (const auto& [hid, household] : households_) {
    if (household.present) hids.push_back(hid);
  }
  for (uint64_t pid : leavers) {
    SimPerson& person = persons_.at(pid);
    if (rng->Bernoulli(config_.leave_home_prob)) {
      RemoveFromHousehold(pid);
      const uint64_t hid = NewHousehold(rng);
      households_.at(hid).head = pid;
      AddToHousehold(pid, hid);
      EnsureOccupation(&person, rng);
    } else if (rng->Bernoulli(config_.leave_as_lodger_prob) && !hids.empty()) {
      const uint64_t dest = hids[rng->NextBounded(hids.size())];
      if (dest == person.household || !households_.at(dest).present) continue;
      RemoveFromHousehold(pid);
      person.is_lodger = true;
      AddToHousehold(pid, dest);
      EnsureOccupation(&person, rng);
    }
  }
}

void Population::ApplyBirths(Rng* rng) {
  std::vector<uint64_t> mothers;
  for (const auto& [pid, person] : persons_) {
    if (!person.present || person.sex != Sex::kFemale) continue;
    if (person.spouse == 0 || person.household == 0) continue;
    const SimPerson& husband = persons_.at(person.spouse);
    if (!husband.present || husband.household != person.household) continue;
    const int age = current_year_ - person.birth_year;
    if (age < 20 || age > 50) continue;  // fertile during some of the decade
    mothers.push_back(pid);
  }
  for (uint64_t pid : mothers) {
    // Copy the links we need before persons_ may rehash on insert.
    const uint64_t father = persons_.at(pid).spouse;
    const uint64_t household = persons_.at(pid).household;
    const std::string surname = persons_.at(father).surname;
    const int mother_birth = persons_.at(pid).birth_year;
    const int births = rng->NextPoisson(config_.birth_mean);
    for (int b = 0; b < births; ++b) {
      const int birth_year =
          static_cast<int>(rng->NextInt(current_year_ - 9, current_year_));
      const int mother_age = birth_year - mother_birth;
      if (mother_age < 18 || mother_age > 45) continue;
      const Sex sex = rng->Bernoulli(0.5) ? Sex::kMale : Sex::kFemale;
      const uint64_t child =
          NewPerson(names_.SampleFirstName(sex, rng), surname, sex,
                    birth_year);
      persons_.at(child).father = father;
      persons_.at(child).mother = pid;
      AddToHousehold(child, household);
    }
  }
}

void Population::ApplyWidowMerges(Rng* rng) {
  // Index: parent pid -> pids of present children heading a household.
  std::unordered_map<uint64_t, std::vector<uint64_t>> heads_by_parent;
  for (const auto& [hid, household] : households_) {
    if (!household.present || household.head == 0) continue;
    const SimPerson& head = persons_.at(household.head);
    if (head.father != 0) heads_by_parent[head.father].push_back(head.pid);
    if (head.mother != 0) heads_by_parent[head.mother].push_back(head.pid);
  }
  std::vector<uint64_t> candidates;
  for (const auto& [hid, household] : households_) {
    if (!household.present || household.members.size() > 2) continue;
    if (household.head == 0) continue;
    const SimPerson& head = persons_.at(household.head);
    if (head.spouse != 0) continue;  // only widowed/single small households
    if (heads_by_parent.count(head.pid)) candidates.push_back(hid);
  }
  for (uint64_t hid : candidates) {
    if (!rng->Bernoulli(config_.widow_merge_prob)) continue;
    SimHousehold& household = households_.at(hid);
    if (!household.present) continue;
    const auto& child_heads = heads_by_parent.at(household.head);
    const uint64_t target_head = child_heads[rng->NextBounded(
        child_heads.size())];
    const uint64_t target_hid = persons_.at(target_head).household;
    if (target_hid == 0 || target_hid == hid) continue;
    const std::vector<uint64_t> members = household.members;  // copy
    for (uint64_t pid : members) {
      RemoveFromHousehold(pid);
      AddToHousehold(pid, target_hid);
    }
  }
}

void Population::ApplyServantTurnover(Rng* rng) {
  std::vector<uint64_t> servants;
  for (const auto& [pid, person] : persons_) {
    if (person.present && person.is_servant && person.household != 0) {
      servants.push_back(pid);
    }
  }
  std::vector<uint64_t> hids;
  for (const auto& [hid, household] : households_) {
    if (household.present) hids.push_back(hid);
  }
  if (hids.empty()) return;
  for (uint64_t pid : servants) {
    if (!rng->Bernoulli(config_.servant_turnover_prob)) continue;
    const uint64_t dest = hids[rng->NextBounded(hids.size())];
    SimPerson& person = persons_.at(pid);
    if (dest == person.household || !households_.at(dest).present) continue;
    RemoveFromHousehold(pid);
    AddToHousehold(pid, dest);
  }
}

void Population::ApplyOccupationChurn(Rng* rng) {
  for (auto& [pid, person] : persons_) {
    if (!person.present) continue;
    const int age = current_year_ - person.birth_year;
    if (age < 13) continue;
    if (person.occupation.empty()) {
      EnsureOccupation(&person, rng);
    } else if (rng->Bernoulli(config_.occupation_change_prob)) {
      person.occupation = person.is_servant ? "domestic servant"
                                            : names_.SampleOccupation(rng);
    }
  }
}

void Population::ApplyHouseholdMoves(Rng* rng) {
  for (auto& [hid, household] : households_) {
    if (!household.present) continue;
    if (rng->Bernoulli(config_.household_move_prob)) {
      household.address = names_.SampleAddress(rng);
    }
  }
}

void Population::ApplyEmigration(Rng* rng) {
  // A migration shock multiplies the per-household emigration rate in
  // exactly one decade; outside it (and with multiplier 1.0, the default)
  // the draw sequence is unchanged.
  double emigration_prob = config_.emigration_prob;
  if (config_.migration_shock_decade != 0 &&
      decade_index_ == config_.migration_shock_decade) {
    emigration_prob =
        std::min(1.0, emigration_prob * config_.migration_shock_multiplier);
  }
  std::vector<uint64_t> leaving;
  for (const auto& [hid, household] : households_) {
    if (household.present && rng->Bernoulli(emigration_prob)) {
      leaving.push_back(hid);
    }
  }
  for (uint64_t hid : leaving) {
    SimHousehold& household = households_.at(hid);
    for (uint64_t pid : household.members) {
      SimPerson& person = persons_.at(pid);
      person.present = false;
      person.household = 0;
    }
    household.members.clear();
    household.present = false;
    household.head = 0;
  }
}

void Population::ApplyImmigration(Rng* rng) {
  size_t target;
  if (decade_index_ < config_.household_targets.size()) {
    target = config_.household_targets[decade_index_];
  } else {
    // Extrapolate the last observed growth ratio.
    const auto& t = config_.household_targets;
    const double ratio =
        t.size() >= 2 ? static_cast<double>(t[t.size() - 1]) / t[t.size() - 2]
                      : 1.07;
    target = static_cast<size_t>(
        static_cast<double>(t.back()) *
        std::pow(ratio, static_cast<double>(decade_index_ - t.size() + 1)));
  }
  size_t present = PresentHouseholds();
  while (present < target) {
    CreateFoundingHousehold(rng);
    ++present;
  }
  // Endogenous growth (marriages, splits) can also overshoot the target; the
  // surplus emigrates — whole households leaving the region, exactly the
  // high remove_G counts the paper observes for 1891-1901.
  if (present > target) {
    std::vector<uint64_t> hids;
    for (const auto& [hid, household] : households_) {
      if (household.present && !household.members.empty()) {
        hids.push_back(hid);
      }
    }
    const std::vector<size_t> order = rng->Permutation(hids.size());
    for (size_t i = 0; i < order.size() && present > target; ++i) {
      SimHousehold& household = households_.at(hids[order[i]]);
      for (uint64_t pid : household.members) {
        SimPerson& person = persons_.at(pid);
        person.present = false;
        person.household = 0;
      }
      household.members.clear();
      household.present = false;
      household.head = 0;
      --present;
    }
  }
}

void Population::AdvanceDecade(Rng* rng) {
  current_year_ += kDecade;
  ++decade_index_;
  ApplyDeaths(rng);
  ApplyMarriages(rng);
  ApplyLeavingHome(rng);
  ApplyBirths(rng);
  ApplyWidowMerges(rng);
  ApplyServantTurnover(rng);
  ApplyOccupationChurn(rng);
  ApplyHouseholdMoves(rng);
  ApplyEmigration(rng);
  ApplyImmigration(rng);
  // Scenario dynamics run last so the friendly event phases above keep
  // their historical draw sequence; each is a strict no-op at rate zero.
  ApplyMassSurnameChange(rng);
  ApplyHouseholdDissolution(rng);
}

void Population::ApplyMassSurnameChange(Rng* rng) {
  if (config_.mass_surname_change_prob <= 0.0) return;
  for (auto& [hid, household] : households_) {
    if (!household.present || household.members.empty()) continue;
    if (!rng->Bernoulli(config_.mass_surname_change_prob)) continue;
    // The whole household adopts the new name, so its internal structure
    // stays coherent — the break is purely against the previous snapshot.
    const std::string surname = names_.SampleSurnameDiverse(rng);
    for (uint64_t pid : household.members) {
      persons_.at(pid).surname = surname;
    }
  }
}

void Population::ApplyHouseholdDissolution(Rng* rng) {
  if (config_.household_dissolution_prob <= 0.0) return;
  // Partition up front: dissolution fills other households and creates new
  // ones, and mutating households_ mid-iteration would invalidate the loop.
  std::vector<uint64_t> dissolving;
  std::vector<uint64_t> hosts;
  for (const auto& [hid, household] : households_) {
    if (!household.present || household.members.size() < 2) continue;
    if (rng->Bernoulli(config_.household_dissolution_prob)) {
      dissolving.push_back(hid);
    } else {
      hosts.push_back(hid);
    }
  }
  for (uint64_t hid : dissolving) {
    // The head keeps the shrunken household; everyone else scatters, half
    // into surviving households as lodgers, half into new one-person homes.
    const uint64_t head = households_.at(hid).head;
    const std::vector<uint64_t> members = households_.at(hid).members;
    for (uint64_t pid : members) {
      if (pid == head) continue;
      RemoveFromHousehold(pid);
      SimPerson& person = persons_.at(pid);
      if (!hosts.empty() && rng->Bernoulli(0.5)) {
        person.is_lodger = true;
        AddToHousehold(pid, hosts[rng->NextBounded(hosts.size())]);
      } else {
        const uint64_t new_hid = NewHousehold(rng);
        AddToHousehold(pid, new_hid);
        households_.at(new_hid).head = pid;
      }
    }
  }
}

size_t Population::PresentHouseholds() const {
  size_t count = 0;
  for (const auto& [hid, household] : households_) {
    if (household.present && !household.members.empty()) ++count;
  }
  return count;
}

size_t Population::PresentPersons() const {
  size_t count = 0;
  for (const auto& [pid, person] : persons_) {
    if (person.present) ++count;
  }
  return count;
}

Role Population::RoleOf(const SimPerson& person,
                        const SimHousehold& household) const {
  const uint64_t head_pid = household.head;
  if (person.pid == head_pid) return Role::kHead;
  const SimPerson& head = persons_.at(head_pid);
  // Only a female spouse is recorded as "wife"; a male spouse of a female
  // head (possible only in exotic promotion corner cases) falls through to
  // the kinship rules below.
  if (person.spouse == head_pid && person.sex == Sex::kFemale) {
    return Role::kWife;
  }
  if (head.father == person.pid) return Role::kFather;
  if (head.mother == person.pid) return Role::kMother;

  auto is_child_of = [this](const SimPerson& child, uint64_t parent) {
    return parent != 0 && (child.father == parent || child.mother == parent);
  };
  // Children of the head or of the head's spouse.
  if (is_child_of(person, head_pid) ||
      (head.spouse != 0 && is_child_of(person, head.spouse))) {
    return person.sex == Sex::kFemale ? Role::kDaughter : Role::kSon;
  }
  // Siblings: shared parent.
  if ((person.father != 0 && person.father == head.father) ||
      (person.mother != 0 && person.mother == head.mother)) {
    return person.sex == Sex::kFemale ? Role::kSister : Role::kBrother;
  }
  // Grandchildren: a parent of this person is a child of the head.
  for (uint64_t parent : {person.father, person.mother}) {
    if (parent == 0) continue;
    auto it = persons_.find(parent);
    if (it != persons_.end() && is_child_of(it->second, head_pid)) {
      return person.sex == Sex::kFemale ? Role::kGranddaughter
                                        : Role::kGrandson;
    }
  }
  // Nephews/nieces: a parent of this person is a sibling of the head.
  for (uint64_t parent : {person.father, person.mother}) {
    if (parent == 0) continue;
    auto it = persons_.find(parent);
    if (it == persons_.end()) continue;
    const SimPerson& p = it->second;
    if ((p.father != 0 && p.father == head.father) ||
        (p.mother != 0 && p.mother == head.mother)) {
      return person.sex == Sex::kFemale ? Role::kNiece : Role::kNephew;
    }
  }
  if (person.is_servant) return Role::kServant;
  if (person.is_lodger) return Role::kLodger;
  return Role::kBoarder;
}

Population::Snapshot Population::TakeSnapshot(const CorruptionModel& corruption,
                                              Rng* rng) const {
  Snapshot snapshot;
  snapshot.dataset.set_year(current_year_);
  size_t household_seq = 0;
  for (const auto& [hid, household] : households_) {
    if (!household.present || household.members.empty()) continue;

    // Enumeration order: head, spouse, then by age (eldest first).
    std::vector<uint64_t> ordered = household.members;
    const uint64_t head = household.head;
    const uint64_t spouse = head != 0 ? persons_.at(head).spouse : 0;
    std::sort(ordered.begin(), ordered.end(),
              [&](uint64_t a, uint64_t b) {
                auto rank = [&](uint64_t pid) {
                  if (pid == head) return 0;
                  if (pid != 0 && pid == spouse) return 1;
                  return 2;
                };
                if (rank(a) != rank(b)) return rank(a) < rank(b);
                const SimPerson& pa = persons_.at(a);
                const SimPerson& pb = persons_.at(b);
                if (pa.birth_year != pb.birth_year) {
                  return pa.birth_year < pb.birth_year;
                }
                return a < b;
              });

    const double dup_prob = corruption.config().duplicate_record_prob;
    std::vector<PersonRecord> records;
    records.reserve(ordered.size());
    std::vector<uint64_t> pids;
    for (uint64_t pid : ordered) {
      const SimPerson& person = persons_.at(pid);
      PersonRecord clean;
      clean.first_name = person.first_name;
      clean.surname = person.surname;
      clean.sex = person.sex;
      clean.age = current_year_ - person.birth_year;
      clean.address = household.address;
      const int age = clean.age;
      if (age < 3) {
        clean.occupation.clear();
      } else if (age < 13) {
        clean.occupation = "scholar";
      } else {
        clean.occupation = person.occupation;
      }
      clean.role = RoleOf(person, household);

      // One enumeration is the common case; the duplicate (scenario-only,
      // dup_prob == 0 by default and then no Rng draw happens) re-corrupts
      // the same clean record independently, so the two copies usually
      // disagree — a within-snapshot near-duplicate, not an exact one.
      const int copies =
          1 + (dup_prob > 0.0 && rng->Bernoulli(dup_prob) ? 1 : 0);
      for (int copy = 0; copy < copies; ++copy) {
        PersonRecord record = clean;
        record.external_id = "r" + std::to_string(current_year_) + "_" +
                             std::to_string(snapshot.record_pids.size() +
                                            pids.size());
        corruption.CorruptRecord(&record, rng);
        records.push_back(std::move(record));
        pids.push_back(pid);
      }
    }
    snapshot.dataset.AddHousehold(
        "h" + std::to_string(current_year_) + "_" +
            std::to_string(household_seq++),
        std::move(records));
    snapshot.household_hids.push_back(hid);
    for (uint64_t pid : pids) snapshot.record_pids.push_back(pid);
  }
  return snapshot;
}

}  // namespace tglink
