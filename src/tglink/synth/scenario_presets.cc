// tglink-lint: disable=include-self -- second TU of scenario.h (data only).
// Built-in scenario presets. Each preset's JSON is embedded verbatim so the
// registry resolves from any working directory; the same text is mirrored
// byte-for-byte under scenarios/<name>.json in the source tree (pinned by
// scenario_test's embedded-vs-file comparison, and by the tglink_lint
// scenario-schema rule on the checked-in files).
//
// Registry order is presentation order: the faithful calibrations first,
// then the adversarial regimes roughly by how specifically they target one
// linkage mechanism.

#include "tglink/synth/scenario.h"

namespace tglink {

namespace {
constexpr std::string_view k_rawtenstall = R"json({
  "schema": "tglink.scenario/1",
  "name": "rawtenstall",
  "description": "Default calibration: the paper's Rawtenstall-shaped series (Table 1 household counts, 3-6.5% missingness band). Carries no overrides, so its output is byte-identical to the built-in generator defaults."
}
)json";
constexpr std::string_view k_ice_id_longitudinal = R"json({
  "schema": "tglink.scenario/1",
  "name": "ice_id_longitudinal",
  "description": "Longitudinal register in the style of the Icelandic ICE-ID data: a longer eight-census series with cleaner transcription (low typo and missingness rates) but steady patronymic-style surname drift, which shifts the linkage difficulty from noise onto name instability.",
  "generator": {
    "start_year": 1850,
    "num_censuses": 8
  },
  "population": {
    "household_targets": [3298, 3560, 3840, 4150, 4480, 4840, 5220, 5640],
    "emigration_prob": 0.06,
    "mass_surname_change_prob": 0.08
  },
  "corruption": {
    "name_typo_prob": 0.02,
    "nickname_prob": 0.01,
    "age_error_prob": 0.08,
    "missing_first_name": 0.004,
    "missing_surname": 0.004,
    "missing_sex": 0.008,
    "missing_age": 0.01,
    "missing_address": 0.015,
    "missing_occupation": 0.015
  }
}
)json";
constexpr std::string_view k_mass_surname_change = R"json({
  "schema": "tglink.scenario/1",
  "name": "mass_surname_change",
  "description": "Adversarial: every decade a quarter of all households collectively adopt a new surname (anglicization waves, clerical renaming). Surname-heavy similarity and blocking keys degrade; household context must carry the linkage.",
  "population": {
    "mass_surname_change_prob": 0.25
  }
}
)json";
constexpr std::string_view k_household_dissolution_wave = R"json({
  "schema": "tglink.scenario/1",
  "name": "household_dissolution_wave",
  "description": "Adversarial: each decade a fifth of multi-member households dissolve, scattering non-head members into other households as lodgers or into new single-person homes. Group-level evidence fragments, stressing the household-match steps and the split/merge evolution patterns.",
  "population": {
    "household_dissolution_prob": 0.2
  }
}
)json";
constexpr std::string_view k_migration_shock = R"json({
  "schema": "tglink.scenario/1",
  "name": "migration_shock",
  "description": "Adversarial: a one-off emigration shock in the third inter-census transition multiplies the household emigration rate fivefold, then immigration refills toward the Table 1 targets. The shocked pair has far fewer true links amid many plausible-looking new arrivals.",
  "population": {
    "migration_shock_decade": 3,
    "migration_shock_multiplier": 5.0
  }
}
)json";
constexpr std::string_view k_extreme_missingness = R"json({
  "schema": "tglink.scenario/1",
  "name": "extreme_missingness",
  "description": "Adversarial: per-attribute missing-value rates pushed far beyond the paper's 3-6.5% band (10-20% per attribute). Record-pair similarity loses whole attributes at a time, exercising the missing-value handling of every similarity kernel.",
  "corruption": {
    "missing_first_name": 0.1,
    "missing_surname": 0.1,
    "missing_sex": 0.12,
    "missing_age": 0.15,
    "missing_address": 0.2,
    "missing_occupation": 0.2
  }
}
)json";
constexpr std::string_view k_within_snapshot_duplicates = R"json({
  "schema": "tglink.scenario/1",
  "name": "within_snapshot_duplicates",
  "description": "Adversarial: five percent of persons are enumerated twice within one snapshot, each copy corrupted independently. Ground truth links only the first copy, so the second is pure precision bait for one-to-one matching.",
  "corruption": {
    "duplicate_record_prob": 0.05
  }
}
)json";

/// The embedded text IS the file content, trailing newline included, so
/// the content hash recorded in RunReports is the same whether a preset is
/// resolved by name or loaded from its scenarios/ file.
const std::vector<ScenarioPreset> kPresets = {
    {"rawtenstall", k_rawtenstall},
    {"ice_id_longitudinal", k_ice_id_longitudinal},
    {"mass_surname_change", k_mass_surname_change},
    {"household_dissolution_wave", k_household_dissolution_wave},
    {"migration_shock", k_migration_shock},
    {"extreme_missingness", k_extreme_missingness},
    {"within_snapshot_duplicates", k_within_snapshot_duplicates},
};

}  // namespace

const std::vector<ScenarioPreset>& ScenarioPresets() { return kPresets; }

}  // namespace tglink
