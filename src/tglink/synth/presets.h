// Named generator presets: calibrated starting points for different
// regional and transcription regimes, so that studies (and tests) can vary
// exactly one regime at a time instead of hand-tuning a dozen rates.

#ifndef TGLINK_SYNTH_PRESETS_H_
#define TGLINK_SYNTH_PRESETS_H_

#include "tglink/synth/generator.h"

namespace tglink {
namespace presets {

/// The default calibration: mirrors the paper's Rawtenstall observables
/// (Table 1 sizes, 3-6.5% missing values, skewed names).
GeneratorConfig Rawtenstall();

/// An industrializing boom town: high in/out migration, frequent moves,
/// high servant/lodger turnover — more add/remove/move patterns, harder
/// linkage.
GeneratorConfig HighMobilityTown();

/// A stable rural parish: little migration, households persist — easy
/// linkage, dominated by preserve_G chains.
GeneratorConfig StableRuralParish();

/// Badly transcribed sources: double the typo/nickname/age noise and
/// missing rates of the default.
GeneratorConfig PoorTranscription();

/// Near-perfect records: corruption off, only real-world change remains.
GeneratorConfig CleanTranscription();

}  // namespace presets
}  // namespace tglink

#endif  // TGLINK_SYNTH_PRESETS_H_
