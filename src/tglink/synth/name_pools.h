// Era-appropriate name, occupation and street pools for the synthetic
// census generator, with Zipf-skewed sampling so that the name-frequency
// distribution matches the ambiguity profile the paper reports for the
// Rawtenstall data (~2.2 persons per first-name+surname combination, with
// a heavy head of frequent surnames).

#ifndef TGLINK_SYNTH_NAME_POOLS_H_
#define TGLINK_SYNTH_NAME_POOLS_H_

#include <string>
#include <vector>

#include "tglink/census/roles.h"
#include "tglink/util/random.h"

namespace tglink {

/// Raw pools (normalized, lower-case).
const std::vector<std::string>& MaleFirstNames();
const std::vector<std::string>& FemaleFirstNames();
const std::vector<std::string>& Surnames();
const std::vector<std::string>& Occupations();
const std::vector<std::string>& StreetNames();

/// Common Victorian nickname variants: returns the variants recorded in
/// census data for a canonical first name (empty if none).
const std::vector<std::string>& NicknamesFor(const std::string& first_name);

/// Zipf-skewed samplers over the pools.
class NameSampler {
 public:
  explicit NameSampler(double first_name_skew = 0.8,
                       double surname_skew = 0.95);

  std::string SampleFirstName(Sex sex, Rng* rng) const;
  std::string SampleSurname(Rng* rng) const;
  /// Flatter surname distribution, used for later-decade immigrants: real
  /// census regions diversify over time (Table 1's unique-name counts grow
  /// faster than the population), because arrivals bring new surnames.
  std::string SampleSurnameDiverse(Rng* rng) const;
  std::string SampleOccupation(Rng* rng) const;
  std::string SampleAddress(Rng* rng) const;  // "<number> <street>"

 private:
  ZipfSampler male_first_;
  ZipfSampler female_first_;
  ZipfSampler surname_;
  ZipfSampler surname_diverse_;
  ZipfSampler occupation_;
};

}  // namespace tglink

#endif  // TGLINK_SYNTH_NAME_POOLS_H_
