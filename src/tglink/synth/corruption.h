// Data-quality corruption model: applied when a census snapshot is "taken",
// reproducing the error classes of historical census transcription —
// spelling/OCR noise in names, nickname substitution, age misstatement, and
// missing values at per-attribute rates (Table 1 reports 3-6.5% overall).
//
// Corruption is record-level: the underlying simulated person keeps its true
// attributes, so the same person can be corrupted differently in successive
// censuses — exactly the difficulty temporal linkage has to overcome.

#ifndef TGLINK_SYNTH_CORRUPTION_H_
#define TGLINK_SYNTH_CORRUPTION_H_

#include <string>

#include "tglink/census/record.h"
#include "tglink/util/random.h"

namespace tglink {

struct CorruptionConfig {
  /// Probability of a typographic/OCR corruption per name-like field.
  double name_typo_prob = 0.05;
  /// Probability of recording a nickname instead of the first name.
  double nickname_prob = 0.04;
  /// Probability that the recorded age deviates from the true age.
  double age_error_prob = 0.15;
  /// Maximum magnitude of an age error (uniform in [-max, -1] ∪ [1, max]).
  int age_error_max = 3;

  /// Per-attribute missing-value probabilities (calibrated so the overall
  /// missing ratio over the five Table-1 attributes lands in the paper's
  /// 3-6.5% band).
  double missing_first_name = 0.010;
  double missing_surname = 0.010;
  double missing_sex = 0.015;
  double missing_age = 0.020;
  double missing_address = 0.030;
  double missing_occupation = 0.030;

  /// Scales every probability above (noise-sweep ablations).
  double noise_scale = 1.0;

  /// Probability that a person is enumerated TWICE within one snapshot —
  /// the duplicate record gets an independent corruption draw, so the two
  /// copies usually differ. An enumeration-process defect rather than
  /// transcription noise, so noise_scale does not apply. Zero (the
  /// default) draws no randomness: the snapshot stream is byte-identical
  /// to the pre-scenario generator.
  double duplicate_record_prob = 0.0;
};

/// Stateless corruptor; all randomness comes from the caller's Rng.
class CorruptionModel {
 public:
  explicit CorruptionModel(const CorruptionConfig& config)
      : config_(config) {}

  const CorruptionConfig& config() const { return config_; }

  /// One random typo: substitution, deletion, insertion, transposition or
  /// an OCR confusion. Returns the input unchanged when it is too short.
  std::string ApplyTypo(const std::string& value, Rng* rng) const;

  /// Corrupts a fully populated record in place (names, age, missing
  /// values). The caller has already set all true attribute values.
  void CorruptRecord(PersonRecord* record, Rng* rng) const;

 private:
  bool Hit(double p, Rng* rng) const {
    return rng->Bernoulli(p * config_.noise_scale);
  }

  CorruptionConfig config_;
};

}  // namespace tglink

#endif  // TGLINK_SYNTH_CORRUPTION_H_
