// Scenario engine: versioned JSON calibration profiles for the synthetic
// census generator. A scenario externalizes the full GeneratorConfig —
// population dynamics, corruption rates, series shape — into a loadable
// document (schema "tglink.scenario/1"), so experiment grids, adversarial
// stress corpora and external calibrations (e.g. ICE-ID-style longitudinal
// registers) are data, not code. A registry of checked-in presets covers
// the paper's Rawtenstall-shaped default plus adversarial regimes; every
// preset doubles as a property-test corpus and a bench-matrix row.
//
// Parsing is strict: unknown keys are errors (a typo in a calibration file
// must not silently fall back to a default), and every rate is validated —
// out-of-range values are Status errors, never silent clamps.

#ifndef TGLINK_SYNTH_SCENARIO_H_
#define TGLINK_SYNTH_SCENARIO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tglink/synth/generator.h"
#include "tglink/util/status.h"

namespace tglink {

/// Schema identifier a scenario document must declare.
inline constexpr std::string_view kScenarioSchema = "tglink.scenario/1";

/// A parsed, validated scenario profile.
struct Scenario {
  std::string name;         // registry key / provenance label
  std::string description;  // optional free text
  GeneratorConfig config;   // defaults overlaid with the document's values
  /// FNV-1a 64 hash of the source document, as 16 lowercase hex digits.
  /// Recorded in RunReports so a bench row pins the exact profile content.
  std::string content_hash;
};

/// One checked-in preset: the JSON text is embedded in the binary (so
/// presets resolve from any working directory) and mirrored byte-for-byte
/// under scenarios/<name>.json in the source tree.
struct ScenarioPreset {
  std::string_view name;
  std::string_view json;
};

/// All built-in presets, in registry order.
const std::vector<ScenarioPreset>& ScenarioPresets();

/// Preset names, in registry order (for --help text and CLI listings).
std::vector<std::string> ScenarioPresetNames();

/// Looks up a preset by name; nullptr when unknown.
const ScenarioPreset* FindScenarioPreset(std::string_view name);

/// Validates every rate/shape field of a GeneratorConfig. Returns
/// InvalidArgument naming the offending field on the first violation:
/// probabilities outside [0, 1], negative noise_scale, an effective
/// corruption probability (rate x noise_scale) above 1, age_error_max < 1,
/// empty or zero household targets, non-positive scale, num_censuses < 1,
/// or a negative migration-shock multiplier. GenerateCensusSeries CHECKs
/// this, so an invalid config aborts instead of silently clamping.
[[nodiscard]] Status ValidateGeneratorConfig(const GeneratorConfig& config);

/// Parses and validates one scenario document. Strict on both layers:
/// malformed JSON, a missing/mismatched "schema", unknown keys, wrongly
/// typed values, and out-of-range rates are all errors.
[[nodiscard]] Result<Scenario> ParseScenario(std::string_view json_text);

/// Reads and parses a scenario document from a file.
[[nodiscard]] Result<Scenario> LoadScenarioFile(const std::string& path);

/// Resolves a --scenario argument: a preset name from the registry, or
/// (when no preset matches) a path to a scenario JSON file.
[[nodiscard]] Result<Scenario> ResolveScenario(const std::string& name_or_path);

/// FNV-1a 64-bit content hash (scenario provenance in RunReports).
uint64_t Fnv1a64(std::string_view text);

}  // namespace tglink

#endif  // TGLINK_SYNTH_SCENARIO_H_
