#include "tglink/synth/presets.h"

namespace tglink {
namespace presets {

GeneratorConfig Rawtenstall() {
  return GeneratorConfig{};  // the defaults ARE the Rawtenstall calibration
}

GeneratorConfig HighMobilityTown() {
  GeneratorConfig config;
  config.population.emigration_prob = 0.20;
  config.population.household_move_prob = 0.30;
  config.population.leave_home_prob = 0.30;
  config.population.leave_as_lodger_prob = 0.12;
  config.population.servant_turnover_prob = 0.6;
  config.population.occupation_change_prob = 0.40;
  // Faster growth than the Rawtenstall targets.
  for (size_t i = 0; i < config.population.household_targets.size(); ++i) {
    config.population.household_targets[i] = static_cast<size_t>(
        config.population.household_targets[i] * (1.0 + 0.05 * i));
  }
  return config;
}

GeneratorConfig StableRuralParish() {
  GeneratorConfig config;
  config.population.emigration_prob = 0.01;
  config.population.household_move_prob = 0.05;
  config.population.leave_home_prob = 0.12;
  config.population.leave_as_lodger_prob = 0.03;
  config.population.servant_turnover_prob = 0.2;
  config.population.occupation_change_prob = 0.10;
  // A parish barely grows.
  config.population.household_targets = {800, 830, 860, 890, 915, 940};
  return config;
}

GeneratorConfig PoorTranscription() {
  GeneratorConfig config;
  config.corruption.noise_scale = 2.0;
  return config;
}

GeneratorConfig CleanTranscription() {
  GeneratorConfig config;
  config.corruption.noise_scale = 0.0;
  return config;
}

}  // namespace presets
}  // namespace tglink
