#include "tglink/synth/scenario.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "tglink/util/csv.h"
#include "tglink/util/json.h"

namespace tglink {

namespace {

Status FieldError(const std::string& field, const std::string& problem) {
  return Status::InvalidArgument("scenario: " + field + " " + problem);
}

Status CheckProb(const char* field, double value) {
  if (!(value >= 0.0 && value <= 1.0)) {
    return FieldError(field,
                      "= " + std::to_string(value) + " outside [0, 1]");
  }
  return Status::OK();
}

Status CheckNonNegative(const char* field, double value) {
  if (!(value >= 0.0)) {
    return FieldError(field, "= " + std::to_string(value) + " is negative");
  }
  return Status::OK();
}

/// The corruption model draws Bernoulli(rate * noise_scale); that product
/// must itself be a probability or the draw is ill-defined.
Status CheckScaledProb(const char* field, double value, double noise_scale) {
  TGLINK_RETURN_IF_ERROR(CheckProb(field, value));
  if (value * noise_scale > 1.0) {
    return FieldError(field, "* noise_scale = " +
                                 std::to_string(value * noise_scale) +
                                 " exceeds 1");
  }
  return Status::OK();
}

}  // namespace

Status ValidateGeneratorConfig(const GeneratorConfig& config) {
  if (!(config.scale > 0.0) || !std::isfinite(config.scale)) {
    return FieldError("generator.scale", "must be positive and finite");
  }
  if (config.num_censuses < 1) {
    return FieldError("generator.num_censuses", "must be >= 1");
  }

  const PopulationConfig& p = config.population;
  if (p.household_targets.empty()) {
    return FieldError("population.household_targets", "must not be empty");
  }
  for (size_t target : p.household_targets) {
    if (target < 1) {
      return FieldError("population.household_targets",
                        "entries must be >= 1");
    }
  }
  struct NamedProb {
    const char* name;
    double value;
  };
  const NamedProb population_probs[] = {
      {"population.death_prob_child", p.death_prob_child},
      {"population.death_prob_young", p.death_prob_young},
      {"population.death_prob_mid", p.death_prob_mid},
      {"population.death_prob_old", p.death_prob_old},
      {"population.death_prob_elder", p.death_prob_elder},
      {"population.marriage_prob", p.marriage_prob},
      {"population.couple_new_household_prob", p.couple_new_household_prob},
      {"population.leave_home_prob", p.leave_home_prob},
      {"population.leave_as_lodger_prob", p.leave_as_lodger_prob},
      {"population.household_move_prob", p.household_move_prob},
      {"population.occupation_change_prob", p.occupation_change_prob},
      {"population.female_occupation_prob", p.female_occupation_prob},
      {"population.emigration_prob", p.emigration_prob},
      {"population.widow_merge_prob", p.widow_merge_prob},
      {"population.servant_prob", p.servant_prob},
      {"population.lodger_prob", p.lodger_prob},
      {"population.parent_coresident_prob", p.parent_coresident_prob},
      {"population.servant_turnover_prob", p.servant_turnover_prob},
      {"population.mass_surname_change_prob", p.mass_surname_change_prob},
      {"population.household_dissolution_prob", p.household_dissolution_prob},
  };
  for (const NamedProb& prob : population_probs) {
    TGLINK_RETURN_IF_ERROR(CheckProb(prob.name, prob.value));
  }
  TGLINK_RETURN_IF_ERROR(CheckNonNegative("population.birth_mean",
                                          p.birth_mean));
  TGLINK_RETURN_IF_ERROR(CheckNonNegative("population.initial_children_mean",
                                          p.initial_children_mean));
  TGLINK_RETURN_IF_ERROR(CheckNonNegative(
      "population.migration_shock_multiplier", p.migration_shock_multiplier));

  const CorruptionConfig& c = config.corruption;
  if (!(c.noise_scale >= 0.0) || !std::isfinite(c.noise_scale)) {
    return FieldError("corruption.noise_scale",
                      "must be non-negative and finite");
  }
  if (c.age_error_max < 1) {
    return FieldError("corruption.age_error_max", "must be >= 1");
  }
  const NamedProb corruption_probs[] = {
      {"corruption.name_typo_prob", c.name_typo_prob},
      {"corruption.nickname_prob", c.nickname_prob},
      {"corruption.age_error_prob", c.age_error_prob},
      {"corruption.missing_first_name", c.missing_first_name},
      {"corruption.missing_surname", c.missing_surname},
      {"corruption.missing_sex", c.missing_sex},
      {"corruption.missing_age", c.missing_age},
      {"corruption.missing_address", c.missing_address},
      {"corruption.missing_occupation", c.missing_occupation},
  };
  for (const NamedProb& prob : corruption_probs) {
    TGLINK_RETURN_IF_ERROR(
        CheckScaledProb(prob.name, prob.value, c.noise_scale));
  }
  // Enumeration-process duplication is deliberately outside noise_scale.
  TGLINK_RETURN_IF_ERROR(
      CheckProb("corruption.duplicate_record_prob", c.duplicate_record_prob));
  return Status::OK();
}

namespace {

/// Field-assignment plumbing: each section of the document maps JSON keys
/// onto config members through a uniform setter table, so "unknown key" and
/// "wrong type" errors fall out of one code path.

Status ExpectNumber(const std::string& field, const JsonValue& value,
                    double* out) {
  if (!value.is_number()) return FieldError(field, "must be a number");
  *out = value.number_value;
  return Status::OK();
}

Status ExpectInt(const std::string& field, const JsonValue& value, int* out) {
  if (!value.is_number() ||
      value.number_value != std::floor(value.number_value)) {
    return FieldError(field, "must be an integer");
  }
  *out = static_cast<int>(value.number_value);
  return Status::OK();
}

Status ExpectSize(const std::string& field, const JsonValue& value,
                  size_t* out) {
  if (!value.is_number() || value.number_value < 0.0 ||
      value.number_value != std::floor(value.number_value)) {
    return FieldError(field, "must be a non-negative integer");
  }
  *out = static_cast<size_t>(value.number_value);
  return Status::OK();
}

Status ApplyGeneratorSection(const JsonValue& section,
                             GeneratorConfig* config) {
  for (const auto& [key, value] : section.members) {
    const std::string field = "generator." + key;
    if (key == "seed") {
      size_t seed = 0;
      TGLINK_RETURN_IF_ERROR(ExpectSize(field, value, &seed));
      config->seed = seed;
    } else if (key == "start_year") {
      TGLINK_RETURN_IF_ERROR(ExpectInt(field, value, &config->start_year));
    } else if (key == "num_censuses") {
      TGLINK_RETURN_IF_ERROR(ExpectInt(field, value, &config->num_censuses));
    } else if (key == "scale") {
      TGLINK_RETURN_IF_ERROR(ExpectNumber(field, value, &config->scale));
    } else {
      return FieldError(field, "is not a generator field");
    }
  }
  return Status::OK();
}

Status ApplyPopulationSection(const JsonValue& section,
                              PopulationConfig* population) {
  for (const auto& [key, value] : section.members) {
    const std::string field = "population." + key;
    if (key == "household_targets") {
      if (!value.is_array()) {
        return FieldError(field, "must be an array of integers");
      }
      std::vector<size_t> targets;
      targets.reserve(value.items.size());
      for (const JsonValue& item : value.items) {
        size_t target = 0;
        TGLINK_RETURN_IF_ERROR(ExpectSize(field + "[]", item, &target));
        targets.push_back(target);
      }
      population->household_targets = std::move(targets);
      continue;
    }
    if (key == "migration_shock_decade") {
      TGLINK_RETURN_IF_ERROR(
          ExpectSize(field, value, &population->migration_shock_decade));
      continue;
    }
    const struct {
      const char* name;
      double PopulationConfig::* member;
    } kDoubleFields[] = {
        {"death_prob_child", &PopulationConfig::death_prob_child},
        {"death_prob_young", &PopulationConfig::death_prob_young},
        {"death_prob_mid", &PopulationConfig::death_prob_mid},
        {"death_prob_old", &PopulationConfig::death_prob_old},
        {"death_prob_elder", &PopulationConfig::death_prob_elder},
        {"marriage_prob", &PopulationConfig::marriage_prob},
        {"couple_new_household_prob",
         &PopulationConfig::couple_new_household_prob},
        {"leave_home_prob", &PopulationConfig::leave_home_prob},
        {"leave_as_lodger_prob", &PopulationConfig::leave_as_lodger_prob},
        {"birth_mean", &PopulationConfig::birth_mean},
        {"initial_children_mean", &PopulationConfig::initial_children_mean},
        {"household_move_prob", &PopulationConfig::household_move_prob},
        {"occupation_change_prob", &PopulationConfig::occupation_change_prob},
        {"female_occupation_prob", &PopulationConfig::female_occupation_prob},
        {"emigration_prob", &PopulationConfig::emigration_prob},
        {"widow_merge_prob", &PopulationConfig::widow_merge_prob},
        {"servant_prob", &PopulationConfig::servant_prob},
        {"lodger_prob", &PopulationConfig::lodger_prob},
        {"parent_coresident_prob", &PopulationConfig::parent_coresident_prob},
        {"servant_turnover_prob", &PopulationConfig::servant_turnover_prob},
        {"mass_surname_change_prob",
         &PopulationConfig::mass_surname_change_prob},
        {"household_dissolution_prob",
         &PopulationConfig::household_dissolution_prob},
        {"migration_shock_multiplier",
         &PopulationConfig::migration_shock_multiplier},
    };
    bool matched = false;
    for (const auto& entry : kDoubleFields) {
      if (key == entry.name) {
        TGLINK_RETURN_IF_ERROR(
            ExpectNumber(field, value, &(population->*entry.member)));
        matched = true;
        break;
      }
    }
    if (!matched) return FieldError(field, "is not a population field");
  }
  return Status::OK();
}

Status ApplyCorruptionSection(const JsonValue& section,
                              CorruptionConfig* corruption) {
  for (const auto& [key, value] : section.members) {
    const std::string field = "corruption." + key;
    if (key == "age_error_max") {
      TGLINK_RETURN_IF_ERROR(
          ExpectInt(field, value, &corruption->age_error_max));
      continue;
    }
    const struct {
      const char* name;
      double CorruptionConfig::* member;
    } kDoubleFields[] = {
        {"name_typo_prob", &CorruptionConfig::name_typo_prob},
        {"nickname_prob", &CorruptionConfig::nickname_prob},
        {"age_error_prob", &CorruptionConfig::age_error_prob},
        {"missing_first_name", &CorruptionConfig::missing_first_name},
        {"missing_surname", &CorruptionConfig::missing_surname},
        {"missing_sex", &CorruptionConfig::missing_sex},
        {"missing_age", &CorruptionConfig::missing_age},
        {"missing_address", &CorruptionConfig::missing_address},
        {"missing_occupation", &CorruptionConfig::missing_occupation},
        {"noise_scale", &CorruptionConfig::noise_scale},
        {"duplicate_record_prob", &CorruptionConfig::duplicate_record_prob},
    };
    bool matched = false;
    for (const auto& entry : kDoubleFields) {
      if (key == entry.name) {
        TGLINK_RETURN_IF_ERROR(
            ExpectNumber(field, value, &(corruption->*entry.member)));
        matched = true;
        break;
      }
    }
    if (!matched) return FieldError(field, "is not a corruption field");
  }
  return Status::OK();
}

}  // namespace

uint64_t Fnv1a64(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char ch : text) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Result<Scenario> ParseScenario(std::string_view json_text) {
  Result<JsonValue> parsed = ParseJson(json_text);
  TGLINK_RETURN_IF_ERROR(parsed.status());
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("scenario: document must be an object");
  }

  Scenario scenario;
  bool saw_schema = false;
  for (const auto& [key, value] : root.members) {
    if (key == "schema") {
      if (!value.is_string() || value.string_value != kScenarioSchema) {
        return Status::InvalidArgument(
            "scenario: schema must be \"" + std::string(kScenarioSchema) +
            "\"");
      }
      saw_schema = true;
    } else if (key == "name") {
      if (!value.is_string() || value.string_value.empty()) {
        return FieldError("name", "must be a non-empty string");
      }
      scenario.name = value.string_value;
    } else if (key == "description") {
      if (!value.is_string()) return FieldError("description",
                                                "must be a string");
      scenario.description = value.string_value;
    } else if (key == "generator") {
      if (!value.is_object()) return FieldError("generator",
                                                "must be an object");
      TGLINK_RETURN_IF_ERROR(ApplyGeneratorSection(value, &scenario.config));
    } else if (key == "population") {
      if (!value.is_object()) return FieldError("population",
                                                "must be an object");
      TGLINK_RETURN_IF_ERROR(
          ApplyPopulationSection(value, &scenario.config.population));
    } else if (key == "corruption") {
      if (!value.is_object()) return FieldError("corruption",
                                                "must be an object");
      TGLINK_RETURN_IF_ERROR(
          ApplyCorruptionSection(value, &scenario.config.corruption));
    } else {
      return FieldError(key, "is not a scenario field");
    }
  }
  if (!saw_schema) {
    return Status::InvalidArgument("scenario: missing \"schema\" field");
  }
  if (scenario.name.empty()) {
    return Status::InvalidArgument("scenario: missing \"name\" field");
  }
  // Generator start_year is authoritative for the simulation; keep the
  // population copy in lockstep (ScaledPopulationConfig re-asserts this).
  scenario.config.population.start_year = scenario.config.start_year;
  TGLINK_RETURN_IF_ERROR(ValidateGeneratorConfig(scenario.config));

  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(json_text)));
  scenario.content_hash = hex;
  return scenario;
}

Result<Scenario> LoadScenarioFile(const std::string& path) {
  Result<std::string> text = ReadFileToString(path);
  TGLINK_RETURN_IF_ERROR(text.status());
  Result<Scenario> scenario = ParseScenario(text.value());
  if (!scenario.ok()) {
    return Status(scenario.status().code(),
                  path + ": " + scenario.status().message());
  }
  return scenario;
}

Result<Scenario> ResolveScenario(const std::string& name_or_path) {
  if (const ScenarioPreset* preset = FindScenarioPreset(name_or_path)) {
    return ParseScenario(preset->json);
  }
  // Not a preset: treat as a file path, but surface the registry in the
  // error when the file does not exist either (the common typo case).
  Result<Scenario> from_file = LoadScenarioFile(name_or_path);
  if (!from_file.ok() &&
      from_file.status().code() == StatusCode::kIoError) {
    std::string known;
    for (const std::string& name : ScenarioPresetNames()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("scenario '" + name_or_path +
                            "' is neither a preset (" + known +
                            ") nor a readable file");
  }
  return from_file;
}

const ScenarioPreset* FindScenarioPreset(std::string_view name) {
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    if (preset.name == name) return &preset;
  }
  return nullptr;
}

std::vector<std::string> ScenarioPresetNames() {
  std::vector<std::string> names;
  for (const ScenarioPreset& preset : ScenarioPresets()) {
    names.emplace_back(preset.name);
  }
  return names;
}

}  // namespace tglink
